//! E1 (Criterion half): wall-clock cost of committing a log entry to the
//! chain, swept over entry size and PoW difficulty.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drams_bench::log_entry_of_size;
use drams_chain::chain::ChainConfig;
use drams_chain::node::Node;
use drams_core::contract::{MonitorContract, MONITOR_CONTRACT};
use drams_crypto::codec::Encode;
use drams_crypto::schnorr::Keypair;

fn committed_entry(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_log_commit");
    group.sample_size(10);
    for payload in [64usize, 4096] {
        for bits in [4u32, 10] {
            let id = format!("{payload}B/{bits}bits");
            group.throughput(Throughput::Elements(1));
            group.bench_function(BenchmarkId::from_parameter(id), |b| {
                b.iter_batched(
                    || {
                        let mut node = Node::new(ChainConfig {
                            initial_difficulty_bits: bits,
                            retarget_interval: 0,
                            ..ChainConfig::default()
                        });
                        node.register_contract(Box::new(MonitorContract));
                        let li = Keypair::from_seed(b"bench-li");
                        node.submit_call(
                            &li,
                            MONITOR_CONTRACT,
                            "init",
                            MonitorContract::init_payload(10_000, li.public().fingerprint()),
                        )
                        .unwrap();
                        node.mine_block(0).unwrap();
                        let entry = log_entry_of_size(1, payload);
                        (node, li, entry.to_canonical_bytes())
                    },
                    |(mut node, li, payload_bytes)| {
                        node.submit_call(&li, MONITOR_CONTRACT, "store_log", payload_bytes)
                            .unwrap();
                        node.mine_block(1_000).unwrap();
                        node
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

criterion_group!(benches, committed_entry);
criterion_main!(benches);
