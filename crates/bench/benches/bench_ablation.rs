//! E8 (Criterion half): LI batching ablation and hybrid-store write cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drams_chain::chain::ChainConfig;
use drams_chain::node::Node;
use drams_core::adversary::NoAdversary;
use drams_core::monitor::{run_monitor, MonitorConfig};
use drams_crypto::schnorr::Keypair;
use drams_store::{AnchorContract, AnchoredStore};

fn bench_li_batching(c: &mut Criterion) {
    let mut group = c.benchmark_group("li_batch");
    group.sample_size(10);
    for batch in [1usize, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let config = MonitorConfig {
                    total_requests: 80,
                    request_rate_per_sec: 200.0,
                    li_batch_size: batch,
                    ..MonitorConfig::default()
                };
                run_monitor(&config, &mut NoAdversary)
            });
        });
    }
    group.finish();
}

fn bench_hybrid_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("hybrid_append_1k");
    group.sample_size(10);
    for period in [8usize, 256] {
        group.bench_with_input(
            BenchmarkId::from_parameter(period),
            &period,
            |b, &period| {
                b.iter(|| {
                    let mut node = Node::new(ChainConfig {
                        initial_difficulty_bits: 0,
                        retarget_interval: 0,
                        ..ChainConfig::default()
                    });
                    node.register_contract(Box::new(AnchorContract));
                    let mut store = AnchoredStore::new(period, Keypair::from_seed(b"bench"));
                    for i in 0..1_000u64 {
                        store
                            .append(format!("entry-{i}").into_bytes(), &mut node)
                            .unwrap();
                    }
                    (store.anchors_submitted(), node.mempool_len())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_li_batching, bench_hybrid_append);
criterion_main!(benches);
