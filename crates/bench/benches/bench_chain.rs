//! Chain micro-benchmarks: mining at various difficulties, block
//! validation, transaction verification (the wall-clock backing of E2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drams_chain::block::Block;
use drams_chain::tx::Transaction;
use drams_crypto::schnorr::Keypair;
use drams_crypto::sha256::Digest;

fn sample_txs(n: usize) -> Vec<Transaction> {
    let kp = Keypair::from_seed(b"bench-chain");
    (0..n)
        .map(|i| Transaction::new_signed(&kp, i as u64, "monitor", "store", vec![0u8; 128]))
        .collect()
}

fn bench_mining(c: &mut Criterion) {
    let mut group = c.benchmark_group("mine");
    group.sample_size(10);
    for bits in [4u32, 8, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, &bits| {
            let mut nonce_seed = 0u64;
            b.iter(|| {
                // vary the parent so each iteration mines fresh work
                nonce_seed += 1;
                Block::mine(
                    Digest::of(&nonce_seed.to_be_bytes()),
                    1,
                    vec![],
                    nonce_seed,
                    bits,
                )
            });
        });
    }
    group.finish();
}

fn bench_validation(c: &mut Criterion) {
    let block = Block::mine(Digest::ZERO, 0, sample_txs(32), 0, 8);
    c.bench_function("validate_standalone/32-txs", |b| {
        b.iter(|| block.validate_standalone().unwrap());
    });
    let tx = &block.transactions[0];
    c.bench_function("tx/verify_signature", |b| {
        b.iter(|| tx.verify_signature().unwrap());
    });
    c.bench_function("tx/id", |b| {
        b.iter(|| tx.id());
    });
}

criterion_group!(benches, bench_mining, bench_validation);
criterion_main!(benches);
