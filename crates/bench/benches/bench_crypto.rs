//! Micro-benchmarks of the cryptographic substrate (supports the
//! interpretation of E1–E3: how much of the storage latency is hashing,
//! encryption and signature cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drams_crypto::aead::{open, seal, SymmetricKey};
use drams_crypto::bignum::U256;
use drams_crypto::hmac::hmac_sha256;
use drams_crypto::merkle::MerkleTree;
use drams_crypto::montgomery::MontCtx;
use drams_crypto::schnorr::{batch_verify, group_p, Keypair};
use drams_crypto::sha256::Digest;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Digest::of(data));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 1024];
    c.bench_function("hmac_sha256/1KiB", |b| {
        b.iter(|| hmac_sha256(b"key", &data));
    });
}

fn bench_aead(c: &mut Criterion) {
    let key = SymmetricKey::from_bytes([7; 32]);
    let mut group = c.benchmark_group("aead");
    for size in [256usize, 4096] {
        let plain = vec![0x55u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &plain, |b, plain| {
            b.iter(|| seal(&key, [1; 12], b"aad", plain));
        });
        let sealed = seal(&key, [1; 12], b"aad", &plain);
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, sealed| {
            b.iter(|| open(&key, b"aad", sealed).unwrap());
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..256u32).map(|i| i.to_be_bytes().to_vec()).collect();
    c.bench_function("merkle/build-256", |b| {
        b.iter(|| MerkleTree::from_leaves(leaves.iter().map(Vec::as_slice)));
    });
    let tree = MerkleTree::from_leaves(leaves.iter().map(Vec::as_slice));
    let proof = tree.proof(100).unwrap();
    let root = tree.root();
    c.bench_function("merkle/verify-proof-256", |b| {
        b.iter(|| proof.verify(&root, &leaves[100]));
    });
}

fn bench_mod_pow(c: &mut Criterion) {
    // Old (Algorithm D division per multiply) vs new (Montgomery REDC,
    // fixed-window) — the multiplier under every signature operation.
    let p = group_p();
    let base = U256::from_hex("1e2feb89414c343c1027c4d1c386bbc4cd613e30d8f16adf91b7584a2265b1f5");
    let exp = U256::from_hex("35bf992dc9e9c616612e7696a6cecc1b78e510617311d8a3c2ce6f447ed4d57b");
    c.bench_function("mod_pow/knuth-reference", |b| {
        b.iter(|| base.mod_pow(&exp, &p));
    });
    let ctx = MontCtx::new(p);
    c.bench_function("mod_pow/montgomery", |b| {
        b.iter(|| ctx.pow(&base, &exp));
    });
}

fn bench_schnorr(c: &mut Criterion) {
    let kp = Keypair::from_seed(b"bench");
    let msg = b"a log entry submission";
    c.bench_function("schnorr/sign", |b| {
        b.iter(|| kp.sign(msg));
    });
    c.bench_function("schnorr/sign-reference", |b| {
        b.iter(|| kp.secret().sign_reference(msg));
    });
    let sig = kp.sign(msg);
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| kp.public().verify(msg, &sig).unwrap());
    });
    c.bench_function("schnorr/verify-reference", |b| {
        b.iter(|| kp.public().verify_reference(msg, &sig).unwrap());
    });
}

fn bench_batch_verify(c: &mut Criterion) {
    // A block's worth of LI submissions: 64 signatures, 4 identities —
    // the same shared fixture experiment E9 measures.
    let owned = drams_bench::schnorr_batch(4, 64);
    let batch = drams_bench::batch_items(&owned);
    c.bench_function("schnorr/batch-verify-64", |b| {
        b.iter(|| batch_verify(&batch).unwrap());
    });
    c.bench_function("schnorr/individual-verify-64", |b| {
        b.iter(|| {
            for (pk, m, s) in &batch {
                pk.verify(m, s).unwrap();
            }
        });
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_aead,
    bench_merkle,
    bench_mod_pow,
    bench_schnorr,
    bench_batch_verify
);
criterion_main!(benches);
