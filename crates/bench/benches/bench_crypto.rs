//! Micro-benchmarks of the cryptographic substrate (supports the
//! interpretation of E1–E3: how much of the storage latency is hashing,
//! encryption and signature cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drams_crypto::aead::{open, seal, SymmetricKey};
use drams_crypto::hmac::hmac_sha256;
use drams_crypto::merkle::MerkleTree;
use drams_crypto::schnorr::Keypair;
use drams_crypto::sha256::Digest;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Digest::of(data));
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 1024];
    c.bench_function("hmac_sha256/1KiB", |b| {
        b.iter(|| hmac_sha256(b"key", &data));
    });
}

fn bench_aead(c: &mut Criterion) {
    let key = SymmetricKey::from_bytes([7; 32]);
    let mut group = c.benchmark_group("aead");
    for size in [256usize, 4096] {
        let plain = vec![0x55u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::new("seal", size), &plain, |b, plain| {
            b.iter(|| seal(&key, [1; 12], b"aad", plain));
        });
        let sealed = seal(&key, [1; 12], b"aad", &plain);
        group.bench_with_input(BenchmarkId::new("open", size), &sealed, |b, sealed| {
            b.iter(|| open(&key, b"aad", sealed).unwrap());
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..256u32).map(|i| i.to_be_bytes().to_vec()).collect();
    c.bench_function("merkle/build-256", |b| {
        b.iter(|| MerkleTree::from_leaves(leaves.iter().map(Vec::as_slice)));
    });
    let tree = MerkleTree::from_leaves(leaves.iter().map(Vec::as_slice));
    let proof = tree.proof(100).unwrap();
    let root = tree.root();
    c.bench_function("merkle/verify-proof-256", |b| {
        b.iter(|| proof.verify(&root, &leaves[100]));
    });
}

fn bench_schnorr(c: &mut Criterion) {
    let kp = Keypair::from_seed(b"bench");
    let msg = b"a log entry submission";
    c.bench_function("schnorr/sign", |b| {
        b.iter(|| kp.sign(msg));
    });
    let sig = kp.sign(msg);
    c.bench_function("schnorr/verify", |b| {
        b.iter(|| kp.public().verify(msg, &sig).unwrap());
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_aead,
    bench_merkle,
    bench_schnorr
);
criterion_main!(benches);
