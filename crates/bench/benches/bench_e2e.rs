//! E6/E7/E10 (Criterion half): wall-clock cost of whole
//! monitored-federation simulation runs — monitoring off vs on, at
//! federation scale, and across the named E10 scenarios of the
//! event-driven runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drams_core::adversary::NoAdversary;
use drams_core::monitor::{run_monitor, MonitorConfig};
use drams_faas::model::FederationSpec;

fn bench_monitoring_on_off(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_run_100req");
    group.sample_size(10);
    for (name, enabled) in [("off", false), ("on", true)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let config = MonitorConfig {
                    total_requests: 100,
                    request_rate_per_sec: 200.0,
                    monitoring_enabled: enabled,
                    analyser_enabled: enabled,
                    ..MonitorConfig::default()
                };
                run_monitor(&config, &mut NoAdversary)
            });
        });
    }
    group.finish();
}

fn bench_federation_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor_run_scale");
    group.sample_size(10);
    for tenants in [2u32, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(tenants),
            &tenants,
            |b, &tenants| {
                b.iter(|| {
                    let config = MonitorConfig {
                        federation: FederationSpec::symmetric(tenants, 1, 2),
                        total_requests: 100,
                        request_rate_per_sec: 200.0,
                        ..MonitorConfig::default()
                    };
                    run_monitor(&config, &mut NoAdversary)
                });
            },
        );
    }
    group.finish();
}

/// Wall-clock cost of the E10 named scenarios on the event-driven
/// runtime (quick-sized specs, the same fixtures `run_experiments e10
/// --quick` measures).
fn bench_scenario_matrix(c: &mut Criterion) {
    use drams_bench::scenarios;
    use drams_core::scenario::run_scenario;

    let mut group = c.benchmark_group("scenario_run_quick");
    group.sample_size(10);
    for spec in scenarios::matrix(true) {
        group.bench_function(BenchmarkId::from_parameter(spec.name.clone()), |b| {
            b.iter(|| run_scenario(&spec, &mut NoAdversary));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_monitoring_on_off,
    bench_federation_scale,
    bench_scenario_matrix
);
criterion_main!(benches);
