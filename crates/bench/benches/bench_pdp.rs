//! E5 (Criterion half): PDP decision latency vs policy-base size —
//! tree-walking interpreter vs compiled engine (and the decision cache
//! on top) — plus Analyser re-evaluation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drams_analysis::verify::DecisionVerifier;
use drams_faas::workload::{PolicyGenerator, PolicyShape, RequestGenerator, Vocabulary};
use drams_policy::pdp::Pdp;

fn bench_pdp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pdp_evaluate");
    for policies in [10usize, 100, 1000] {
        let mut pgen = PolicyGenerator::new(Vocabulary::default(), 5);
        let set = pgen.next_policy_set(&PolicyShape {
            policies,
            rules_per_policy: 5,
            ..PolicyShape::default()
        });
        // Cache off: the compiled-engine numbers must not hide behind
        // memoisation. The cached variant is measured separately.
        let pdp = Pdp::with_cache_capacity(set.clone(), 0);
        let pdp_cached = Pdp::new(set);
        let mut rgen = RequestGenerator::new(Vocabulary::default(), 1.0, 6);
        let requests: Vec<_> = (0..64).map(|_| rgen.next_request()).collect();

        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("interpreter", policies),
            &requests,
            |b, requests| {
                b.iter(|| {
                    i = (i + 1) % requests.len();
                    pdp.evaluate_interpreted(&requests[i])
                });
            },
        );
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("compiled", policies),
            &requests,
            |b, requests| {
                b.iter(|| {
                    i = (i + 1) % requests.len();
                    pdp.evaluate(&requests[i])
                });
            },
        );
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new("compiled+cache", policies),
            &requests,
            |b, requests| {
                b.iter(|| {
                    i = (i + 1) % requests.len();
                    pdp_cached.evaluate(&requests[i])
                });
            },
        );
    }
    group.finish();
}

fn bench_analyser_reevaluation(c: &mut Criterion) {
    let mut pgen = PolicyGenerator::new(Vocabulary::default(), 5);
    let set = pgen.next_policy_set(&PolicyShape {
        policies: 50,
        rules_per_policy: 5,
        ..PolicyShape::default()
    });
    let verifier = DecisionVerifier::new(set);
    let mut rgen = RequestGenerator::new(Vocabulary::default(), 1.0, 6);
    let pairs: Vec<_> = (0..64)
        .map(|_| {
            let req = rgen.next_request();
            let resp = verifier.expected_response(&req);
            (req, resp)
        })
        .collect();
    // Like-for-like engine comparison: both legs measure only the
    // re-evaluation (the full verify() path is timed separately below).
    let mut i = 0usize;
    c.bench_function("analyser_reevaluate/50-policies/compiled", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            verifier.expected_response(&pairs[i].0)
        });
    });
    let mut i = 0usize;
    c.bench_function("analyser_reevaluate/50-policies/interpreter", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            verifier.expected_response_interpreted(&pairs[i].0)
        });
    });
    // End-to-end verification of a logged pair (compiled re-evaluation
    // plus decision/obligation comparison).
    let mut i = 0usize;
    c.bench_function("analyser_verify/50-policies", |b| {
        b.iter(|| {
            i = (i + 1) % pairs.len();
            verifier.verify(&pairs[i].0, &pairs[i].1)
        });
    });
}

fn bench_completeness_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("completeness");
    group.sample_size(10);
    for policies in [5usize, 20] {
        let mut pgen = PolicyGenerator::new(Vocabulary::default(), 5);
        let set = pgen.next_policy_set(&PolicyShape {
            policies,
            rules_per_policy: 4,
            ..PolicyShape::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(policies), &set, |b, set| {
            b.iter(|| drams_analysis::completeness(set).unwrap());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pdp_scaling,
    bench_analyser_reevaluation,
    bench_completeness_analysis
);
criterion_main!(benches);
