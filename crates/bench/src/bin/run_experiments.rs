//! Regenerates every experiment table of the DRAMS reproduction
//! (EXPERIMENTS.md / DESIGN.md §3).
//!
//! Usage: `cargo run --release -p drams-bench --bin run_experiments [e1..e16|all] [--quick] [--scenario <name>]`
//!
//! Run with `--release`: E1/E2 perform real proof-of-work hashing.
//!
//! `e5` and `e6` additionally write the machine-readable PDP perf
//! trajectory to `BENCH_PDP.json` at the repo root (µs/decision per
//! policy-base size, interpreter vs compiled engine; monitoring
//! overhead), `e9` writes the crypto-substrate trajectory to
//! `BENCH_CRYPTO.json` (Montgomery fast path vs the Algorithm D
//! reference; batch vs individual Schnorr verification), and `e10`
//! writes the end-to-end scenario trajectory to `BENCH_E2E.json` (one
//! row per named scenario of the event-driven runtime; `--scenario
//! <name>` restricts the matrix to one scenario without touching the
//! trajectory file), and `e11` writes the storage-engine trajectory to
//! `BENCH_STORE.json` (append/replay/snapshot cost per backend ×
//! durability, plus one row per crash-restart recovery scenario), and
//! `e12` writes the adversarial-fuzzing trajectory to `BENCH_FUZZ.json`
//! (seed-generated scenarios checked against the three-part ground-truth
//! oracle; oracle violations are shrunk to a minimal reproduction,
//! printed as Rust, and fail the run), and `e13` writes the fault-plane
//! trajectory to `BENCH_FAULT.json` (availability and retry/failover/
//! spill-replay counters under declared network faults, attack campaigns
//! that must stay fully detected under those faults, and a PDP crash
//! under duplicating faults that must stay byte-identical to its
//! uninterrupted twin; any false positive, missed detection, abandoned
//! request or twin divergence fails the run), and `e14` writes the
//! overload trajectory to `BENCH_LOAD.json` (a ≥100k-request
//! Zipf-skewed flash crowd with admission control and every
//! bounded-state cap armed: shed/degraded counters, eviction and
//! retirement counters, and peak tracked-state gauges per component;
//! a false alert under honest overload, a missed detection while
//! shedding, a crash-twin divergence, or any peak column more than
//! doubling against the committed file fails the run), and `e15`
//! writes the parallel-scaling trajectory to `BENCH_PAR.json` (the
//! signature-audit, PDP-evaluation and million-request flash-crowd
//! workloads replayed at worker counts 1/2/4/8 through the
//! `drams_faas::par` pool: throughput and speedup per row, with a
//! determinism gate asserting every parallel replay byte-identical to
//! the sequential run and an adaptive speedup gate — either flag
//! going false fails the run), and `e16` writes the real-transport
//! trajectory to `BENCH_NET.json` (loopback TCP round-trip latency and
//! frame throughput per payload size, endpoint kill/re-provision cost,
//! and a DES-vs-TCP conformance replay whose `matched` flag going
//! false fails the run).
//! `--quick` shrinks the sweeps to CI-smoke size — the JSON records
//! which mode produced it.

use drams_attack::{score, FaultWindow, ScriptedAdversary, ThreatKind, WindowedAdversary};
use drams_bench::crypto_trajectory::{self, CryptoSummary, OldNew};
use drams_bench::e2e_trajectory::{self, ScenarioRow};
use drams_bench::fault_trajectory::{self, DetectionRow, FaultRow, FaultSummary, TwinCheck};
use drams_bench::fuzz_trajectory::{self, FuzzSummary};
use drams_bench::load_trajectory::{self, LoadRow, LoadSummary, PEAK_COLUMNS};
use drams_bench::log_entry_of_size;
use drams_bench::net_trajectory;
use drams_bench::par_trajectory;
use drams_bench::scenarios;
use drams_bench::store_trajectory::{self, EngineRow, RecoveryRow};
use drams_bench::trajectory::{
    render_json, repo_root_path, LatencySummary, MonitoringOverhead, PdpScalingRow,
};
use drams_chain::block::Block;
use drams_chain::chain::ChainConfig;
use drams_chain::fork::{integrity_sweep, nakamoto_success_probability};
use drams_chain::net::{simulate, NetConfig};
use drams_chain::node::Node;
use drams_core::adversary::NoAdversary;
use drams_core::contract::{MonitorContract, MONITOR_CONTRACT};
use drams_core::monitor::{run_monitor, MonitorConfig};
use drams_crypto::codec::Encode;
use drams_crypto::schnorr::Keypair;
use drams_faas::des::{MILLIS, SECONDS};
use drams_faas::model::FederationSpec;
use drams_faas::workload::{PolicyGenerator, PolicyShape, RequestGenerator, Vocabulary};
use drams_policy::pdp::Pdp;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scenario_filter = args
        .iter()
        .position(|a| a == "--scenario")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut skip_next = false;
    let which: Vec<&String> = args
        .iter()
        .filter(|a| {
            if skip_next {
                skip_next = false;
                return false;
            }
            if *a == "--scenario" {
                skip_next = true;
            }
            !a.starts_with("--")
        })
        .collect();
    let all = which.is_empty() || which.iter().any(|w| *w == "all");
    let want = |name: &str| all || which.iter().any(|w| *w == name);

    println!("DRAMS experiment suite — reproduction of Ferdous et al., ICDCS 2017");
    println!("(derived from the paper's §III claims; see EXPERIMENTS.md)\n");

    if want("e1") {
        e1_log_size_vs_latency();
    }
    if want("e2") {
        e2_pow_tuning_and_integrity();
    }
    if want("e3") {
        e3_hybrid_store();
    }
    if want("e4") {
        e4_detection_matrix();
    }
    let e5_rows = want("e5").then(|| e5_policy_engine_scaling(quick));
    let e6_summary = want("e6").then(|| e6_monitoring_overhead(quick));
    if want("e7") {
        e7_federation_scalability();
    }
    if want("e8") {
        e8_ablations();
    }
    let e9_summary = want("e9").then(|| e9_crypto_substrate(quick));
    let e10_rows = want("e10").then(|| e10_scenario_matrix(quick, scenario_filter.as_deref()));
    let e11_results = want("e11").then(|| e11_storage_and_recovery(quick));
    let e12_summary = want("e12").then(|| e12_adversarial_fuzz(quick));
    let e13_summary = want("e13").then(|| e13_fault_plane(quick));
    let e14_summary = want("e14").then(|| e14_overload(quick));
    let e15_summary = want("e15").then(|| e15_parallel(quick));
    let e16_summary = want("e16").then(|| e16_net(quick));

    // The tracked perf trajectory: whenever E5 and/or E6 ran, rewrite
    // BENCH_PDP.json at the repo root so the diff shows what moved. A
    // section whose experiment did not run this invocation is carried
    // over from the existing file instead of being dropped.
    if e5_rows.is_some() || e6_summary.is_some() {
        let path = repo_root_path();
        let previous = std::fs::read_to_string(&path).ok();
        let json = render_json(
            quick,
            e5_rows.as_deref(),
            e6_summary.as_ref(),
            previous.as_deref(),
        );
        match std::fs::write(&path, &json) {
            Ok(()) => println!("\nwrote perf trajectory to {}", path.display()),
            Err(e) => {
                // Exit non-zero so CI's perf-smoke step cannot pass
                // against a stale committed file.
                eprintln!("\nfailed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    // The crypto-substrate trajectory: same carry-forward contract.
    if let Some(summary) = e9_summary {
        let path = crypto_trajectory::repo_path();
        let previous = std::fs::read_to_string(&path).ok();
        let json = crypto_trajectory::render_json(quick, Some(&summary), previous.as_deref());
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote crypto trajectory to {}", path.display()),
            Err(e) => {
                eprintln!("\nfailed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    // The end-to-end scenario trajectory: same carry-forward contract.
    // A filtered run (--scenario) prints its table but does not rewrite
    // the committed file with a partial matrix.
    if let Some(rows) = e10_rows {
        if scenario_filter.is_some() {
            println!("\n(--scenario filter active: BENCH_E2E.json left untouched)");
        } else {
            let path = e2e_trajectory::repo_path();
            let previous = std::fs::read_to_string(&path).ok();
            // Wall-clock regression gate: a scenario's real-time factor
            // (virtual seconds per wall second) must stay within 2x of
            // the committed same-mode figure. Wall clock is noisy across
            // hosts, so the bar is deliberately loose — it catches
            // order-of-magnitude slowdowns, not jitter.
            let mut slowdowns = Vec::new();
            if let Some((prev_quick, prev_speedups)) = previous
                .as_deref()
                .and_then(e2e_trajectory::parse_sim_speedups)
            {
                if prev_quick == quick {
                    for (name, prev) in &prev_speedups {
                        if let Some(row) = rows.iter().find(|r| &r.name == name) {
                            if *prev > 0.0 && row.sim_speedup < 0.5 * prev {
                                slowdowns.push(format!(
                                    "{name}: sim_speedup {prev:.1} -> {:.1}",
                                    row.sim_speedup
                                ));
                            }
                        }
                    }
                }
            }
            let json = e2e_trajectory::render_json(quick, Some(&rows), previous.as_deref());
            match std::fs::write(&path, &json) {
                Ok(()) => println!("wrote e2e trajectory to {}", path.display()),
                Err(e) => {
                    eprintln!("\nfailed to write {}: {e}", path.display());
                    std::process::exit(1);
                }
            }
            if !slowdowns.is_empty() {
                eprintln!("\nscenario wall-clock regressed more than 2x vs the committed file:");
                for s in &slowdowns {
                    eprintln!("  {s}");
                }
                std::process::exit(1);
            }
        }
    }
    // The storage-engine trajectory: same carry-forward contract. The
    // file is written *before* the byte-identity verdict is enforced,
    // so a recovery regression is recorded as `matched: false` in the
    // trajectory (and in the diff) rather than vanishing in a panic —
    // the non-zero exit below still fails the run and CI.
    if let Some((engine_rows, recovery_rows)) = e11_results {
        let path = store_trajectory::repo_path();
        let previous = std::fs::read_to_string(&path).ok();
        let json = store_trajectory::render_json(
            quick,
            Some(&engine_rows),
            Some(&recovery_rows),
            previous.as_deref(),
        );
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote store trajectory to {}", path.display()),
            Err(e) => {
                eprintln!("\nfailed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        let diverged: Vec<&str> = recovery_rows
            .iter()
            .filter(|r| !r.matched)
            .map(|r| r.scenario.as_str())
            .collect();
        if !diverged.is_empty() {
            eprintln!("\ncrash-restart diverged from the uninterrupted run: {diverged:?}");
            std::process::exit(1);
        }
    }
    // The fuzzing trajectory: as with E11, the file is written *before*
    // the oracle verdict is enforced, so a detection regression shows up
    // in the committed diff as a non-zero violation count rather than
    // vanishing in a panic — the non-zero exit still fails CI.
    if let Some(summary) = e12_summary {
        let path = fuzz_trajectory::repo_path();
        let previous = std::fs::read_to_string(&path).ok();
        let json = fuzz_trajectory::render_json(quick, Some(&summary), previous.as_deref());
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote fuzz trajectory to {}", path.display()),
            Err(e) => {
                eprintln!("\nfailed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        if summary.violations > 0 {
            eprintln!(
                "\nfuzz oracle violations: {} (shrunk reproductions above)",
                summary.violations
            );
            std::process::exit(1);
        }
    }
    // The fault-plane trajectory: written *before* the verdict is
    // enforced, so a robustness regression is recorded in the committed
    // diff (a false positive, an abandoned request, a missed detection
    // or a twin divergence) rather than vanishing in a panic — the
    // non-zero exit below still fails the run and CI.
    if let Some(summary) = e13_summary {
        let path = fault_trajectory::repo_path();
        let previous = std::fs::read_to_string(&path).ok();
        let json = fault_trajectory::render_json(quick, Some(&summary), previous.as_deref());
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote fault trajectory to {}", path.display()),
            Err(e) => {
                eprintln!("\nfailed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        if !summary.clean() {
            for r in &summary.rows {
                if r.alerts > 0 {
                    eprintln!(
                        "false positives under faults in {}: {}",
                        r.scenario, r.alerts
                    );
                }
                if r.dropped > 0 {
                    eprintln!(
                        "abandoned requests under faults in {}: {}",
                        r.scenario, r.dropped
                    );
                }
            }
            for d in &summary.detection {
                if d.detected < d.attacks || d.false_positives > 0 {
                    eprintln!(
                        "detection under faults degraded for {}: {}/{} detected, {} fp",
                        d.threat, d.detected, d.attacks, d.false_positives
                    );
                }
            }
            if !summary.twin.matched {
                eprintln!(
                    "crash-under-faults diverged from the uninterrupted run: {}",
                    summary.twin.scenario
                );
            }
            std::process::exit(1);
        }
    }
    // The overload trajectory: written *before* the verdict is
    // enforced, so a capacity regression (a false alert under honest
    // overload, unshed overflow, a missed detection while shedding, a
    // twin divergence, or a peak-state column more than doubling
    // against the committed file) lands in the diff rather than
    // vanishing in a panic — the non-zero exit still fails the run.
    if let Some(summary) = e14_summary {
        let path = load_trajectory::repo_path();
        let previous = std::fs::read_to_string(&path).ok();
        // Peak-state regression gate: compare against the committed
        // honest row when it was produced in the same mode.
        let mut regressions = Vec::new();
        if let Some((prev_quick, prev_peaks)) = previous
            .as_deref()
            .and_then(load_trajectory::parse_honest_peaks)
        {
            if prev_quick == quick {
                for ((key, prev), fresh) in PEAK_COLUMNS
                    .iter()
                    .zip(prev_peaks)
                    .zip(summary.honest.peaks)
                {
                    if prev > 0 && fresh > 2 * prev {
                        regressions.push(format!("{key}: {prev} -> {fresh}"));
                    }
                }
            }
        }
        let json = load_trajectory::render_json(quick, Some(&summary), previous.as_deref());
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote overload trajectory to {}", path.display()),
            Err(e) => {
                eprintln!("\nfailed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        if !regressions.is_empty() {
            eprintln!("\npeak tracked state more than doubled vs the committed trajectory:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        if !summary.clean() {
            if summary.honest.alerts > 0 {
                eprintln!(
                    "false alerts under honest overload in {}: {}",
                    summary.honest.scenario, summary.honest.alerts
                );
            }
            if summary.honest.shed == 0 {
                eprintln!("the flash crowd never overran the admission cap");
            }
            if summary.honest.completed != summary.honest.requests - summary.honest.shed {
                eprintln!(
                    "admitted requests went missing in {}: {} issued, {} shed, {} completed",
                    summary.honest.scenario,
                    summary.honest.requests,
                    summary.honest.shed,
                    summary.honest.completed
                );
            }
            for d in &summary.detection {
                if d.detected < d.attacks || d.false_positives > 0 || d.attacks == 0 {
                    eprintln!(
                        "detection under overload degraded for {}: {}/{} detected, {} fp",
                        d.threat, d.detected, d.attacks, d.false_positives
                    );
                }
            }
            if !summary.twin.matched {
                eprintln!(
                    "crash-under-overload diverged from the uninterrupted run: {}",
                    summary.twin.scenario
                );
            }
            std::process::exit(1);
        }
    }
    // The parallel-execution trajectory: written *before* the verdict
    // is enforced, so a determinism break or a speedup regression lands
    // in the diff rather than vanishing in a panic — the non-zero exit
    // still fails the run.
    if let Some(summary) = e15_summary {
        let path = par_trajectory::repo_path();
        let previous = std::fs::read_to_string(&path).ok();
        let json = par_trajectory::render_json(quick, Some(&summary), previous.as_deref());
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote parallel trajectory to {}", path.display()),
            Err(e) => {
                eprintln!("\nfailed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        if !summary.determinism_ok {
            eprintln!("\nparallel execution diverged across worker counts (see rows above)");
            std::process::exit(1);
        }
        if !summary.speedup_ok {
            eprintln!(
                "\nparallel speedup gate failed on a {}-core host (see BENCH_PAR.json)",
                summary.host_cores
            );
            std::process::exit(1);
        }
    }
    // The real-transport trajectory: same write-then-enforce shape —
    // a conformance break lands in BENCH_NET.json before the non-zero
    // exit fails the run.
    if let Some(summary) = e16_summary {
        let path = net_trajectory::repo_path();
        let previous = std::fs::read_to_string(&path).ok();
        let json = net_trajectory::render_json(quick, Some(&summary), previous.as_deref());
        match std::fs::write(&path, &json) {
            Ok(()) => println!("wrote transport trajectory to {}", path.display()),
            Err(e) => {
                eprintln!("\nfailed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        if !summary.conformance.matched {
            eprintln!(
                "\nDES-vs-TCP conformance diverged on scenario {}",
                summary.conformance.scenario
            );
            std::process::exit(1);
        }
    }
    println!("\ndone.");
}

fn header(id: &str, claim: &str) {
    println!("\n==================================================================");
    println!("{id}: {claim}");
    println!("==================================================================");
}

/// E1 — paper §III: "the bigger the \[log\] size is, the higher is the
/// latency to store the log on the blockchain."
///
/// Storage latency decomposes additively: PoW mines over the fixed-size
/// header (difficulty-dependent, size-independent), while encoding,
/// signature verification, Merkle rooting and contract execution are
/// size-dependent. The table reports both components and their sum.
fn e1_log_size_vs_latency() {
    header(
        "E1",
        "log size vs on-chain storage latency (real PoW, wall clock)",
    );

    // Component 1: size-dependent processing cost at difficulty 0.
    let mut processing_us = Vec::new();
    for &payload in &[64usize, 512, 4096, 16384] {
        let mut node = Node::new(ChainConfig {
            initial_difficulty_bits: 0,
            retarget_interval: 0,
            max_block_txs: 64,
            ..ChainConfig::default()
        });
        node.register_contract(Box::new(MonitorContract));
        let li = Keypair::from_seed(b"e1-li");
        node.submit_call(
            &li,
            MONITOR_CONTRACT,
            "init",
            MonitorContract::init_payload(10_000, li.public().fingerprint()),
        )
        .expect("init");
        node.mine_block(0).expect("mine init");
        let total_entries = 256usize;
        let payloads: Vec<Vec<u8>> = (0..total_entries)
            .map(|i| log_entry_of_size(i as u64, payload).to_canonical_bytes())
            .collect();
        let start = Instant::now();
        for bytes in payloads {
            node.submit_call(&li, MONITOR_CONTRACT, "store_log", bytes)
                .expect("submit");
        }
        let mut ts = 1u64;
        while node.mempool_len() > 0 {
            node.mine_block(ts).expect("mine");
            ts += 1;
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / total_entries as f64;
        processing_us.push((payload, us));
    }

    // Component 2: difficulty-dependent mining cost (16 blocks per bits).
    let mut mining_ms = Vec::new();
    for &bits in &[8u32, 12, 16] {
        let blocks = 16u64;
        let mut parent = drams_crypto::sha256::Digest::of(&bits.to_be_bytes());
        let start = Instant::now();
        for h in 0..blocks {
            let block = Block::mine(parent, h, vec![], h, bits);
            parent = block.hash();
        }
        mining_ms.push((
            bits,
            start.elapsed().as_secs_f64() * 1_000.0 / blocks as f64,
        ));
    }

    println!(
        "{:>10} {:>16} | per-entry total at 8 entries/block:",
        "entry B", "processing µs"
    );
    print!("{:>27} |", "");
    for (bits, _) in &mining_ms {
        print!(" {:>9}", format!("{bits} bits"));
    }
    println!(" (ms/entry)");
    for (payload, us) in &processing_us {
        print!("{:>10} {:>16.1} |", payload, us);
        for (_, mine_ms) in &mining_ms {
            let total_ms = us / 1_000.0 + mine_ms / 8.0;
            print!(" {:>9.3}", total_ms);
        }
        println!();
    }
    println!("\nshape: per-entry cost grows with entry size (encode+verify+execute)");
    println!("and with PoW difficulty (mining amortised over the block) — §III.");
}

/// E2 — paper §III: PoW parameters tune latency, but "a possibly
/// lightweight PoW … does not ensure strong integrity guarantees."
fn e2_pow_tuning_and_integrity() {
    header(
        "E2",
        "PoW difficulty vs block time; attacker rewrite probability",
    );
    println!("-- block time vs difficulty (real hashing, 6 blocks each) --");
    println!(
        "{:>8} {:>16} {:>18}",
        "bits", "mean ms/block", "expected hashes"
    );
    for &bits in &[4u32, 8, 12, 16, 18] {
        let start = Instant::now();
        let blocks = 6u64;
        let mut parent = drams_crypto::sha256::Digest::ZERO;
        for h in 0..blocks {
            let block = Block::mine(parent, h, vec![], h, bits);
            parent = block.hash();
        }
        let mean = start.elapsed().as_secs_f64() * 1_000.0 / blocks as f64;
        println!("{:>8} {:>16.3} {:>18}", bits, mean, 1u64 << bits);
    }

    println!("\n-- integrity: P[rewrite log entry] (Nakamoto analytic / Monte Carlo) --");
    println!(
        "{:>8} {:>6} {:>14} {:>14}",
        "q", "conf", "analytic", "simulated"
    );
    for point in integrity_sweep(&[0.1, 0.25, 0.4], &[1, 3, 6, 12], 20_000, 42) {
        println!(
            "{:>8.2} {:>6} {:>14.6} {:>14.6}",
            point.attacker_share,
            point.confirmations,
            point.rewrite_probability,
            point.simulated_probability
        );
    }

    println!("\n-- small-network gossip: latency vs stale rate (virtual time) --");
    println!(
        "{:>12} {:>12} {:>10} {:>8}",
        "latency ms", "blocks", "stale %", "reorgs"
    );
    for &latency in &[10u64, 100, 400] {
        let stats = simulate(&NetConfig {
            hashrates: vec![1.0; 4],
            mean_block_interval_ms: 500.0,
            link_latency_ms: latency as f64,
            horizon_ms: 150_000,
            seed: 7,
        });
        println!(
            "{:>12} {:>12} {:>10.2} {:>8}",
            latency,
            stats.blocks_mined,
            stats.stale_rate() * 100.0,
            stats.reorgs
        );
    }
    println!("\nshape: block time doubles per difficulty bit; rewrite probability");
    println!("falls with confirmations and rises sharply with attacker share;");
    println!(
        "majority attacker (q ≥ 0.5) always wins: {}",
        nakamoto_success_probability(0.5, 100)
    );
}

/// E3 — paper §III: the hybrid DB+blockchain trade-off (ref \[9\]).
fn e3_hybrid_store() {
    header(
        "E3",
        "hybrid DB+chain: write cost vs tamper-exposure window",
    );
    use drams_store::{AnchorContract, AnchoredStore};
    let entries = 4096u64;
    println!(
        "{:>14} {:>10} {:>12} {:>16} {:>16}",
        "mode", "period", "chain txs", "µs/write", "max window"
    );

    // Pure on-chain baseline: every entry is its own transaction.
    {
        let mut node = Node::new(ChainConfig {
            initial_difficulty_bits: 0,
            retarget_interval: 0,
            max_block_txs: 4096,
            ..ChainConfig::default()
        });
        node.register_contract(Box::new(MonitorContract));
        let li = Keypair::from_seed(b"e3-li");
        node.submit_call(
            &li,
            MONITOR_CONTRACT,
            "init",
            MonitorContract::init_payload(10_000, li.public().fingerprint()),
        )
        .expect("init");
        let start = Instant::now();
        for i in 0..entries {
            let entry = log_entry_of_size(i, 128);
            node.submit_call(
                &li,
                MONITOR_CONTRACT,
                "store_log",
                entry.to_canonical_bytes(),
            )
            .expect("submit");
        }
        while node.mempool_len() > 0 {
            node.mine_block(0).expect("mine");
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / entries as f64;
        println!(
            "{:>14} {:>10} {:>12} {:>16.1} {:>16}",
            "pure-chain", "-", entries, us, 0
        );
    }

    for &period in &[8usize, 64, 256] {
        let mut node = Node::new(ChainConfig {
            initial_difficulty_bits: 0,
            retarget_interval: 0,
            ..ChainConfig::default()
        });
        node.register_contract(Box::new(AnchorContract));
        let mut store = AnchoredStore::new(period, Keypair::from_seed(b"e3-store"));
        let start = Instant::now();
        let mut max_window = 0usize;
        for i in 0..entries {
            store
                .append(format!("log-{i}").into_bytes(), &mut node)
                .expect("append");
            max_window = max_window.max(store.log().unsealed_len() + 1);
        }
        node.mine_block(0).expect("mine");
        let us = start.elapsed().as_secs_f64() * 1e6 / entries as f64;
        println!(
            "{:>14} {:>10} {:>12} {:>16.1} {:>16}",
            "hybrid",
            period,
            store.anchors_submitted(),
            us,
            max_window
        );
    }
    println!("\nshape: hybrid writes are orders of magnitude cheaper and chain");
    println!("traffic drops by the anchor period — at the cost of a tamper");
    println!("window of up to `period` unanchored entries (paper's trade-off).");
}

/// E4 — paper §I: DRAMS detects attacks on components *and* on the
/// monitoring plane itself.
fn e4_detection_matrix() {
    header("E4", "attack detection matrix (virtual-time federation)");
    println!(
        "{:<18} {:>8} {:>9} {:>7} {:>5} {:>13} {:>12}",
        "threat", "attacks", "detected", "rate", "fp", "mean lat ms", "p95 lat ms"
    );
    for threat in ThreatKind::ALL {
        let config = MonitorConfig {
            total_requests: 400,
            request_rate_per_sec: 100.0,
            group_timeout: 2 * SECONDS,
            seed: 11,
            ..MonitorConfig::default()
        };
        let mut adversary = ScriptedAdversary::new(threat, 0.1, 99);
        let (report, truth) = run_monitor(&config, &mut adversary);
        let s = score(threat, &report, &truth);
        println!(
            "{:<18} {:>8} {:>9} {:>6.1}% {:>5} {:>13.1} {:>12.1}",
            threat.to_string(),
            s.attacks,
            s.detected,
            s.rate() * 100.0,
            s.false_positives,
            s.mean_detection_latency_us / 1_000.0,
            s.p95_detection_latency_us as f64 / 1_000.0
        );
    }
    println!("\nshape: 100% detection, zero false positives; timeout-based");
    println!("detections (drop-log) are slower than digest comparisons.");
}

/// E5 — paper §II: the Analyser re-evaluates decisions against the formal
/// policy semantics; here we scale the policy base — tree-walking
/// interpreter vs the compiled engine (and its decision cache).
fn e5_policy_engine_scaling(quick: bool) -> Vec<PdpScalingRow> {
    header("E5", "PDP evaluation & formal analysis vs policy size");
    println!(
        "{:>10} {:>8} {:>12} {:>12} {:>10} {:>12} {:>16}",
        "policies", "rules", "interp µs", "compiled µs", "speedup", "cached µs", "completeness ms"
    );
    let sizes: &[usize] = if quick {
        &[10, 100]
    } else {
        &[10, 50, 100, 500, 1000]
    };
    let request_count = if quick { 100 } else { 500 };
    let mut rows = Vec::new();
    for &policies in sizes {
        let shape = PolicyShape {
            policies,
            rules_per_policy: 5,
            ..PolicyShape::default()
        };
        let mut pgen = PolicyGenerator::new(Vocabulary::default(), 5);
        let set = pgen.next_policy_set(&shape);
        let rules = set.rule_count();
        // Cache off for the engine comparison; cache on measured after.
        let pdp = Pdp::with_cache_capacity(set.clone(), 0);
        let pdp_cached = Pdp::new(set.clone());
        let mut rgen = RequestGenerator::new(Vocabulary::default(), 1.0, 6);
        let requests: Vec<_> = (0..request_count).map(|_| rgen.next_request()).collect();

        let time_per_decision = |f: &dyn Fn(&drams_policy::attr::Request)| {
            let start = Instant::now();
            for r in &requests {
                f(r);
            }
            start.elapsed().as_secs_f64() * 1e6 / requests.len() as f64
        };
        // Interleave the engines over several rounds and keep each
        // engine's best round: min-of-rounds is robust against CPU
        // contention and frequency drift, which single-pass timing on a
        // shared machine is not.
        let rounds = if quick { 1 } else { 3 };
        let mut interpreter_us = f64::INFINITY;
        let mut compiled_us = f64::INFINITY;
        let mut compiled_cached_us = f64::INFINITY;
        // Warm the cache with one full pass, then measure the hit path.
        for r in &requests {
            std::hint::black_box(pdp_cached.evaluate(r));
        }
        for _ in 0..rounds {
            interpreter_us = interpreter_us.min(time_per_decision(&|r| {
                std::hint::black_box(pdp.evaluate_interpreted(r));
            }));
            compiled_us = compiled_us.min(time_per_decision(&|r| {
                std::hint::black_box(pdp.evaluate(r));
            }));
            compiled_cached_us = compiled_cached_us.min(time_per_decision(&|r| {
                std::hint::black_box(pdp_cached.evaluate(r));
            }));
        }

        let row = PdpScalingRow {
            policies,
            rules,
            interpreter_us,
            compiled_us,
            compiled_cached_us,
        };
        let analysis_ms = if policies <= 100 {
            let start = Instant::now();
            let _ = drams_analysis::completeness(&set).expect("analysable");
            format!("{:.1}", start.elapsed().as_secs_f64() * 1_000.0)
        } else {
            "-".to_string()
        };
        println!(
            "{:>10} {:>8} {:>12.2} {:>12.2} {:>9.1}x {:>12.2} {:>16}",
            policies,
            rules,
            row.interpreter_us,
            row.compiled_us,
            row.speedup(),
            row.compiled_cached_us,
            analysis_ms
        );
        rows.push(row);
    }
    println!("\nshape: interpreter latency grows linearly in the rule base; the");
    println!("compiled engine's target index touches only candidate policies, so");
    println!("its growth is governed by index fan-out; the decision cache");
    println!("flattens repeated requests to a digest lookup. Symbolic analysis");
    println!("is superlinear (SAT), run offline.");
    rows
}

/// E6 — monitoring overhead: probes must sit off the decision path.
fn e6_monitoring_overhead(quick: bool) -> MonitoringOverhead {
    header("E6", "end-to-end request latency: monitoring off vs on");
    let base = MonitorConfig {
        total_requests: if quick { 200 } else { 1_000 },
        request_rate_per_sec: 200.0,
        ..MonitorConfig::default()
    };
    let off = MonitorConfig {
        monitoring_enabled: false,
        analyser_enabled: false,
        ..base.clone()
    };
    let wall = Instant::now();
    let (r_off, _) = run_monitor(&off, &mut NoAdversary);
    let off_wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
    let wall = Instant::now();
    let (r_on, _) = run_monitor(&base, &mut NoAdversary);
    let on_wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
    println!(
        "{:>12} {:>14} {:>14} {:>14} {:>12}",
        "monitoring", "mean ms", "p95 ms", "p99 ms", "chain txs"
    );
    println!(
        "{:>12} {:>14.3} {:>14.3} {:>14.3} {:>12}",
        "off",
        r_off.e2e_latency.mean() / 1_000.0,
        r_off.e2e_latency.percentile(95.0) as f64 / 1_000.0,
        r_off.e2e_latency.percentile(99.0) as f64 / 1_000.0,
        r_off.txs_committed
    );
    println!(
        "{:>12} {:>14.3} {:>14.3} {:>14.3} {:>12}",
        "on",
        r_on.e2e_latency.mean() / 1_000.0,
        r_on.e2e_latency.percentile(95.0) as f64 / 1_000.0,
        r_on.e2e_latency.percentile(99.0) as f64 / 1_000.0,
        r_on.txs_committed
    );
    let summary = MonitoringOverhead {
        requests: base.total_requests,
        off: LatencySummary {
            mean_ms: r_off.e2e_latency.mean() / 1_000.0,
            p95_ms: r_off.e2e_latency.percentile(95.0) as f64 / 1_000.0,
            p99_ms: r_off.e2e_latency.percentile(99.0) as f64 / 1_000.0,
            chain_txs: r_off.txs_committed,
        },
        on: LatencySummary {
            mean_ms: r_on.e2e_latency.mean() / 1_000.0,
            p95_ms: r_on.e2e_latency.percentile(95.0) as f64 / 1_000.0,
            p99_ms: r_on.e2e_latency.percentile(99.0) as f64 / 1_000.0,
            chain_txs: r_on.txs_committed,
        },
        pipeline_mean_ms: r_on.log_commit_latency.mean() / 1_000.0,
        off_wall_ms,
        on_wall_ms,
    };
    println!(
        "\ncritical-path overhead: {:+.2}% (asynchronous probes);",
        summary.overhead_pct()
    );
    println!(
        "monitoring pipeline latency (observation → commit): {:.1} ms mean",
        summary.pipeline_mean_ms
    );
    println!(
        "wall clock: {:.0} ms off, {:.0} ms on (crypto cost of the pipeline)",
        summary.off_wall_ms, summary.on_wall_ms
    );
    summary
}

/// E7 — federation scale: tenants × request rate.
fn e7_federation_scalability() {
    header("E7", "scalability: tenants vs monitoring pipeline");
    println!(
        "{:>8} {:>10} {:>12} {:>14} {:>14} {:>12}",
        "tenants", "requests", "entries", "commit ms", "backlog max", "groups"
    );
    for &tenants in &[2u32, 8, 16, 32] {
        let config = MonitorConfig {
            federation: FederationSpec::symmetric(tenants, 1, 2),
            total_requests: 600,
            request_rate_per_sec: 150.0,
            block_interval: 250 * MILLIS,
            ..MonitorConfig::default()
        };
        let (report, _) = run_monitor(&config, &mut NoAdversary);
        println!(
            "{:>8} {:>10} {:>12} {:>14.1} {:>14} {:>12}",
            tenants,
            report.requests_completed,
            report.entries_logged,
            report.log_commit_latency.mean() / 1_000.0,
            report.max_mempool,
            report.groups_completed
        );
    }
    println!("\nshape: the pipeline keeps up as tenants grow — per-tenant LIs");
    println!("fan in to the chain, whose block capacity is the shared bottleneck.");
}

/// E9 — the crypto substrate: Montgomery fast path vs the retained
/// Algorithm D reference, and batch vs individual Schnorr verification.
///
/// The monitoring pipeline's cost is bounded by log hashing/signing
/// (paper §III); this table tracks the primitive layer the pipeline
/// stands on. Emits `BENCH_CRYPTO.json`.
fn e9_crypto_substrate(quick: bool) -> CryptoSummary {
    use drams_crypto::bignum::U256;
    use drams_crypto::montgomery;
    use drams_crypto::schnorr::{batch_verify, group_p};

    header(
        "E9",
        "crypto substrate: Algorithm D reference vs Montgomery fast path",
    );

    let iters = if quick { 8 } else { 64 };
    // Min-of-rounds, as in E5: robust against CPU contention on a
    // shared machine, which single-pass timing is not.
    let rounds = if quick { 2 } else { 5 };
    let time_us = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..rounds {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            best = best.min(start.elapsed().as_secs_f64() * 1e6 / f64::from(iters));
        }
        best
    };

    // mod_pow over the real group modulus with full-width exponents.
    let p = group_p();
    let base = U256::from_hex("1e2feb89414c343c1027c4d1c386bbc4cd613e30d8f16adf91b7584a2265b1f5");
    let exp = U256::from_hex("35bf992dc9e9c616612e7696a6cecc1b78e510617311d8a3c2ce6f447ed4d57b");
    let mont_p = drams_crypto::montgomery::MontCtx::new(p);
    let mod_pow = OldNew {
        reference_us: time_us(&mut || {
            std::hint::black_box(base.mod_pow(&exp, &p));
        }),
        fast_us: time_us(&mut || {
            std::hint::black_box(mont_p.pow(&base, &exp));
        }),
    };
    // Sanity: the two paths agree (also property-tested in drams-crypto).
    assert_eq!(montgomery::mod_pow(&base, &exp, &p), base.mod_pow(&exp, &p));

    let kp = Keypair::from_seed(b"e9-crypto");
    let msg = b"a log entry submission";
    let sign = OldNew {
        reference_us: time_us(&mut || {
            std::hint::black_box(kp.secret().sign_reference(msg));
        }),
        fast_us: time_us(&mut || {
            std::hint::black_box(kp.sign(msg));
        }),
    };
    let sig = kp.sign(msg);
    let verify = OldNew {
        reference_us: time_us(&mut || {
            kp.public().verify_reference(msg, &sig).expect("valid");
        }),
        fast_us: time_us(&mut || {
            kp.public().verify(msg, &sig).expect("valid");
        }),
    };

    // Batch verification over the shared fixture (the same workload
    // bench_crypto's batch targets measure).
    let batch_size = 64usize;
    let owned = drams_bench::schnorr_batch(4, batch_size);
    let batch = drams_bench::batch_items(&owned);
    let batch_rounds = if quick { 2 } else { 8 };
    let round_us = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..batch_rounds {
            let start = Instant::now();
            f();
            best = best.min(start.elapsed().as_secs_f64() * 1e6);
        }
        best
    };
    let individual_reference_us = round_us(&mut || {
        for (pk, m, s) in &batch {
            pk.verify_reference(m, s).expect("valid");
        }
    });
    let individual_fast_us = round_us(&mut || {
        for (pk, m, s) in &batch {
            pk.verify(m, s).expect("valid");
        }
    });
    let batch_us = round_us(&mut || {
        batch_verify(&batch).expect("valid batch");
    });

    let summary = CryptoSummary {
        mod_pow,
        sign,
        verify,
        batch_size,
        individual_reference_us,
        individual_fast_us,
        batch_us,
    };
    println!(
        "{:>16} {:>14} {:>14} {:>10}",
        "op", "reference µs", "fast µs", "speedup"
    );
    for (name, row) in [
        ("mod_pow", &summary.mod_pow),
        ("schnorr sign", &summary.sign),
        ("schnorr verify", &summary.verify),
    ] {
        println!(
            "{:>16} {:>14.1} {:>14.1} {:>9.1}x",
            name,
            row.reference_us,
            row.fast_us,
            row.speedup()
        );
    }
    println!(
        "\nbatch_verify({batch_size}): {:.0} µs vs {:.0} µs individual-reference \
         ({:.1}x) and {:.0} µs individual-fast ({:.2}x)",
        summary.batch_us,
        summary.individual_reference_us,
        summary.batch_speedup_vs_reference(),
        summary.individual_fast_us,
        summary.batch_speedup_vs_fast()
    );
    println!("\nshape: REDC replaces a Knuth division per multiply; the fixed-base");
    println!("g-table removes all squarings from g-exponentiations; batches share");
    println!("per-key window tables across the block's signatures.");
    summary
}

/// E10 — the end-to-end scenario matrix on the event-driven runtime:
/// steady state, burst with tenant churn, mid-flight policy flip, a
/// degraded Logging Interface, and a per-cloud PDP federation.
///
/// Emits `BENCH_E2E.json` (unless `--scenario` filtered the matrix).
fn e10_scenario_matrix(quick: bool, filter: Option<&str>) -> Vec<ScenarioRow> {
    use drams_core::scenario::run_scenario;

    header(
        "E10",
        "end-to-end scenario matrix (event-driven runtime, virtual time)",
    );
    let mut matrix = scenarios::matrix(quick);
    if let Some(name) = filter {
        matrix.retain(|s| s.name == name);
        assert!(
            !matrix.is_empty(),
            "unknown scenario {name:?}; known: {:?}",
            scenarios::matrix(quick)
                .iter()
                .map(|s| s.name.clone())
                .collect::<Vec<_>>()
        );
    }
    println!(
        "{:<16} {:>8} {:>9} {:>8} {:>8} {:>8} {:>7} {:>12} {:>12} {:>9}",
        "scenario",
        "requests",
        "completed",
        "dropped",
        "groups",
        "entries",
        "alerts",
        "e2e mean ms",
        "commit p95",
        "wall ms"
    );
    let mut rows = Vec::new();
    for spec in &matrix {
        let wall = Instant::now();
        let (report, truth) = run_scenario(spec, &mut NoAdversary);
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(truth.total_attacks(), 0, "scenario faults are not attacks");
        let e2e = report.e2e_latency.report();
        let row = ScenarioRow {
            name: spec.name.clone(),
            requests: report.requests_issued,
            completed: report.requests_completed,
            dropped: report.requests_dropped,
            groups_completed: report.groups_completed,
            entries_logged: report.entries_logged,
            alerts: report.alerts.len() as u64,
            policy_activations: report.policy_activations,
            retries: e2e.retries,
            attempts: e2e.attempts.to_vec(),
            e2e_mean_ms: report.e2e_latency.mean() / 1_000.0,
            commit_p95_ms: report.log_commit_latency.percentile(95.0) as f64 / 1_000.0,
            wall_ms,
            requests_per_sec: report.requests_issued as f64 / (wall_ms / 1_000.0).max(1e-9),
            sim_speedup: (report.finished_at as f64 / 1_000.0) / wall_ms.max(1e-9),
        };
        println!(
            "{:<16} {:>8} {:>9} {:>8} {:>8} {:>8} {:>7} {:>12.3} {:>12.1} {:>9.0}",
            row.name,
            row.requests,
            row.completed,
            row.dropped,
            row.groups_completed,
            row.entries_logged,
            row.alerts,
            row.e2e_mean_ms,
            row.commit_p95_ms,
            row.wall_ms
        );
        rows.push(row);
    }
    println!("\nshape: clean scenarios (steady, churn, policy-flip, per-cloud)");
    println!("complete every group with zero alerts — legitimate churn is not");
    println!("an attack; the degraded-LI fault surfaces as missing-observation");
    println!("alerts; per-cloud PDPs cut the decision hop to the local link.");
    rows
}

/// E11 — the durable storage engine and the crash-restart scenarios.
///
/// Part 1 measures the log engine itself (append/replay/snapshot cost
/// per backend × durability). Part 2 runs the crash-restart matrix: each
/// monitoring-plane service is killed mid-run, restarted from its
/// durable store, and the run's alerts + ground truth are required to be
/// byte-identical to the uninterrupted twin. Emits `BENCH_STORE.json`.
fn e11_storage_and_recovery(quick: bool) -> (Vec<EngineRow>, Vec<RecoveryRow>) {
    use drams_core::scenario::run_scenario;
    use drams_store::{Durability, FsBackend, MemBackend, Wal, WalConfig};

    header(
        "E11",
        "durable storage engine + crash-restart recovery scenarios",
    );

    // -- part 1: the engine ------------------------------------------------
    let records: u64 = if quick { 2_000 } else { 32_000 };
    let payload = vec![0xA5u8; 256];
    let tmp_root = std::env::temp_dir().join(format!("drams-e11-{}", std::process::id()));
    let mut engine_rows = Vec::new();
    println!(
        "{:>14} {:>9} {:>10} {:>12} {:>12} {:>14}",
        "backend", "records", "payload B", "append µs", "replay µs", "snapshot µs"
    );
    let configs: [(&str, Durability); 3] = [
        ("mem-flushed", Durability::Flushed),
        ("fs-buffered", Durability::Buffered),
        ("fs-flushed", Durability::Flushed),
    ];
    for (name, durability) in configs {
        let wal_config = WalConfig {
            segment_records: 1024,
            durability,
        };
        let mut wal = if name.starts_with("fs") {
            let dir = tmp_root.join(name);
            let _ = std::fs::remove_dir_all(&dir);
            Wal::open(
                Box::new(FsBackend::open(&dir).expect("temp dir")),
                wal_config,
            )
            .expect("fs wal")
        } else {
            Wal::open(Box::new(MemBackend::new()), wal_config).expect("mem wal")
        };
        let start = Instant::now();
        for _ in 0..records {
            wal.append(&payload).expect("append");
        }
        wal.sync().expect("sync");
        let append_us = start.elapsed().as_secs_f64() * 1e6 / records as f64;
        let start = Instant::now();
        let replayed = wal.replay().expect("replay");
        assert_eq!(replayed.len() as u64, records);
        let replay_us = start.elapsed().as_secs_f64() * 1e6 / records as f64;
        let start = Instant::now();
        wal.write_snapshot(records / 2, b"engine-bench-state")
            .expect("snapshot");
        wal.prune_through(records / 2).expect("prune");
        let snapshot_us = start.elapsed().as_secs_f64() * 1e6;
        println!(
            "{:>14} {:>9} {:>10} {:>12.2} {:>12.2} {:>14.1}",
            name,
            records,
            payload.len(),
            append_us,
            replay_us,
            snapshot_us
        );
        engine_rows.push(EngineRow {
            backend: name.to_string(),
            records,
            payload_bytes: payload.len(),
            append_us,
            replay_us,
            snapshot_us,
        });
    }
    let _ = std::fs::remove_dir_all(&tmp_root);

    // -- part 2: the recovery matrix ---------------------------------------
    println!(
        "\n{:<16} {:>9} {:>8} {:>7} {:>8} {:>9} {:>9}",
        "scenario", "completed", "groups", "alerts", "crashes", "matched", "wall ms"
    );
    let mut recovery_rows = Vec::new();
    for spec in scenarios::recovery_matrix(quick) {
        let twin = scenarios::strip_crashes(&spec);
        let (clean, clean_truth) = run_scenario(&twin, &mut NoAdversary);
        let wall = Instant::now();
        let (crashed, crashed_truth) = run_scenario(&spec, &mut NoAdversary);
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        let clean_alerts: Vec<Vec<u8>> = clean
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let crashed_alerts: Vec<Vec<u8>> = crashed
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let matched = clean_truth == crashed_truth
            && clean_alerts == crashed_alerts
            && clean.requests_completed == crashed.requests_completed
            && clean.entries_logged == crashed.entries_logged
            && clean.groups_completed == crashed.groups_completed
            && clean.txs_committed == crashed.txs_committed
            && clean.finished_at == crashed.finished_at;
        let row = RecoveryRow {
            scenario: spec.name.clone(),
            completed: crashed.requests_completed,
            groups_completed: crashed.groups_completed,
            alerts: crashed.alerts.len() as u64,
            crash_restarts: crashed.crash_restarts,
            matched,
            wall_ms,
        };
        println!(
            "{:<16} {:>9} {:>8} {:>7} {:>8} {:>9} {:>9.0}",
            row.scenario,
            row.completed,
            row.groups_completed,
            row.alerts,
            row.crash_restarts,
            row.matched,
            row.wall_ms
        );
        recovery_rows.push(row);
    }
    println!("\nshape: appends are µs-scale on every backend (fsync dominates the");
    println!("fs-flushed row); replay is sequential-scan fast; every crashed");
    println!("service restarts from disk and the run is byte-identical to the");
    println!("uninterrupted twin — recovery loses nothing and repeats nothing.");
    (engine_rows, recovery_rows)
}

/// E8 — ablations of DRAMS design choices.
fn e8_ablations() {
    header("E8", "ablations: LI batching and epoch length");
    println!("-- LI batch size (600 requests) --");
    println!(
        "{:>8} {:>10} {:>14} {:>16}",
        "batch", "chain txs", "commit ms", "entries/tx"
    );
    for &batch in &[1usize, 4, 16, 64] {
        let config = MonitorConfig {
            total_requests: 600,
            request_rate_per_sec: 200.0,
            li_batch_size: batch,
            ..MonitorConfig::default()
        };
        let (report, _) = run_monitor(&config, &mut NoAdversary);
        println!(
            "{:>8} {:>10} {:>14.1} {:>16.2}",
            batch,
            report.txs_committed,
            report.log_commit_latency.mean() / 1_000.0,
            report.entries_logged as f64 / report.txs_committed.max(1) as f64
        );
    }

    println!("\n-- epoch length vs drop-log detection latency --");
    println!(
        "{:>14} {:>10} {:>14} {:>10}",
        "epoch blocks", "attacks", "detect ms", "rate"
    );
    for &epoch in &[1u64, 2, 5, 10] {
        let config = MonitorConfig {
            total_requests: 300,
            request_rate_per_sec: 150.0,
            epoch_blocks: epoch,
            group_timeout: 2 * SECONDS,
            seed: 5,
            ..MonitorConfig::default()
        };
        let mut adversary = ScriptedAdversary::new(ThreatKind::DropLog, 0.08, 17);
        let (report, truth) = run_monitor(&config, &mut adversary);
        let s = score(ThreatKind::DropLog, &report, &truth);
        println!(
            "{:>14} {:>10} {:>14.1} {:>9.1}%",
            epoch,
            s.attacks,
            s.mean_detection_latency_us / 1_000.0,
            s.rate() * 100.0
        );
    }
    println!("\nshape: batching cuts chain traffic ~linearly at equal commit");
    println!("latency; longer epochs delay timeout-based detection.");
}

/// E12 — adversarial scenario fuzzing: `--quick` runs 60 seed-generated
/// scenarios (full mode 300) spanning honest churn, windowed attack
/// campaigns over the full nine-threat catalogue, Byzantine chain-node
/// behaviour and crash-restart points, each judged by the three-part
/// ground-truth oracle (attacks detected, honest runs alert-free,
/// crashed runs byte-identical to their uninterrupted twin). Oracle
/// violations are shrunk to a minimal scenario and printed as
/// compilable Rust. Emits `BENCH_FUZZ.json`.
fn e12_adversarial_fuzz(quick: bool) -> FuzzSummary {
    use drams_fuzz::{generate, render_rust, run_case, shrink, COVERAGE_PRELUDE};
    use std::collections::BTreeMap;

    header(
        "E12",
        "adversarial scenario fuzzing, oracle-checked end to end",
    );
    let budget: u64 = if quick { 60 } else { 300 };
    assert!(
        budget >= COVERAGE_PRELUDE,
        "budget must include the prelude"
    );
    println!("budget: {budget} scenarios (seeds 0..{budget}; 0..{COVERAGE_PRELUDE} = directed coverage prelude)\n");
    println!(
        "{:>5} {:<34} {:>7} {:>8} {:>8} {:>4} {:>5} {:>4}",
        "seed", "scenario", "events", "injectd", "detectd", "fp", "twin", "ok"
    );

    let mut summary = FuzzSummary::default();
    let mut families: BTreeMap<&'static str, u64> = BTreeMap::new();
    for seed in 0..budget {
        let case = generate(seed);
        for family in case.families() {
            *families.entry(family).or_insert(0) += 1;
        }
        let outcome = run_case(&case);
        summary.scenarios += 1;
        summary.events += outcome.events;
        summary.attacks_injected += outcome.attacks_injected as u64;
        summary.attacks_detected += outcome.attacks_detected as u64;
        summary.false_positives += outcome.false_positives as u64;
        summary.crash_twins_checked += u64::from(outcome.crash_twin_checked);
        let ok = outcome.violations.is_empty();
        println!(
            "{:>5} {:<34} {:>7} {:>8} {:>8} {:>4} {:>5} {:>4}",
            seed,
            outcome.name,
            outcome.events,
            outcome.attacks_injected,
            outcome.attacks_detected,
            outcome.false_positives,
            if outcome.crash_twin_checked {
                "yes"
            } else {
                "-"
            },
            if ok { "ok" } else { "FAIL" }
        );
        if !ok {
            summary.violations += outcome.violations.len() as u64;
            for violation in &outcome.violations {
                eprintln!("  violation: {violation}");
            }
            let minimal = shrink(&case, |c| !run_case(c).violations.is_empty());
            summary.shrunk_failures += 1;
            println!("\n--- minimal reproduction of seed {seed} ---");
            println!("{}", render_rust(&minimal));
        }
    }

    summary.families = families
        .into_iter()
        .map(|(name, count)| (name.to_string(), count))
        .collect();
    println!("\n-- attack-family coverage (scenarios per family) --");
    for (family, count) in &summary.families {
        println!("{family:>20}: {count}");
    }
    println!(
        "\n{} scenarios, {} events, {}/{} attacks detected, {} false positives, \
         {} crash twins checked, {} violations",
        summary.scenarios,
        summary.events,
        summary.attacks_detected,
        summary.attacks_injected,
        summary.false_positives,
        summary.crash_twins_checked,
        summary.violations
    );
    summary
}

/// E13 — the deterministic network fault plane and graceful degradation.
///
/// Part 1 runs the honest fault matrix (lossy links, duplication +
/// reordering + delay, an LI↔chain partition, a scripted PDP outage):
/// retries, circuit-breaker failover, WAL spill/replay and degraded-mode
/// timeout widening must fully mask every declared fault — zero alerts,
/// zero abandoned requests, 100% availability. Part 2 mounts attack
/// campaigns *on top of* the lossy plan: every injected attack must
/// still be detected, with zero false positives. Part 3 crashes a PDP
/// under duplicating faults and requires byte-identity with the
/// uninterrupted twin. Emits `BENCH_FAULT.json`.
fn e13_fault_plane(quick: bool) -> FaultSummary {
    use drams_core::scenario::run_scenario;
    use drams_faas::fault::LinkFault;

    header(
        "E13",
        "network fault plane: retry/failover/spill-replay, degraded mode",
    );

    // -- part 1: the honest fault matrix -----------------------------------
    println!(
        "{:<20} {:>6} {:>7} {:>8} {:>7} {:>6} {:>6} {:>8} {:>7} {:>7} {:>9} {:>7} {:>8}",
        "scenario",
        "compl",
        "avail%",
        "retries",
        "msgdrop",
        "dup",
        "part",
        "breaker",
        "failovr",
        "spill",
        "recov ms",
        "alerts",
        "wall ms"
    );
    let mut rows = Vec::new();
    for spec in scenarios::fault_matrix(quick) {
        let wall = Instant::now();
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        assert_eq!(truth.total_attacks(), 0, "faults are not attacks");
        let e2e = report.e2e_latency.report();
        let failover = report.failover_e2e.report();
        let recovery = report.spill_recovery.report();
        let row = FaultRow {
            scenario: spec.name.clone(),
            requests: report.requests_issued,
            completed: report.requests_completed,
            dropped: report.requests_dropped,
            availability_pct: 100.0 * report.requests_completed as f64
                / report.requests_issued.max(1) as f64,
            retries: report.retries_total,
            msgs_dropped: report.faults.dropped,
            msgs_duplicated: report.faults.duplicated,
            msgs_reordered: report.faults.reordered,
            partition_blocked: report.faults.partition_blocked,
            breaker_trips: report.breaker_trips,
            failovers: report.failovers,
            failover_p95_ms: if failover.count > 0 {
                failover.p95 as f64 / 1_000.0
            } else {
                f64::NAN
            },
            li_spilled: report.li_spilled,
            li_replayed: report.li_replayed,
            recovery_mean_ms: if recovery.count > 0 {
                recovery.mean / 1_000.0
            } else {
                f64::NAN
            },
            timeout_retunes: report.timeout_retunes,
            alerts: report.alerts.len() as u64,
            wall_ms,
        };
        // The honest scenarios complete every request exactly once, so
        // the delivery-attempt histogram sums back to the completions.
        assert_eq!(e2e.attempts.iter().sum::<u64>(), report.requests_completed);
        println!(
            "{:<20} {:>6} {:>7.1} {:>8} {:>7} {:>6} {:>6} {:>8} {:>7} {:>7} {:>9} {:>7} {:>8.0}",
            row.scenario,
            row.completed,
            row.availability_pct,
            row.retries,
            row.msgs_dropped,
            row.msgs_duplicated,
            row.partition_blocked,
            row.breaker_trips,
            row.failovers,
            row.li_spilled,
            if recovery.count > 0 {
                format!("{:.0}", row.recovery_mean_ms)
            } else {
                "-".to_string()
            },
            row.alerts,
            row.wall_ms
        );
        rows.push(row);
    }

    // -- part 2: attack campaigns under the lossy plan ---------------------
    println!("\n-- detection under faults (lossy plan active, windowed campaigns) --");
    println!(
        "{:<18} {:>8} {:>9} {:>5} {:>14}",
        "threat", "attacks", "detected", "fp", "mean detect ms"
    );
    let mut detection = Vec::new();
    for (threat, seed) in [
        (ThreatKind::DropLog, 31u64),
        (ThreatKind::TamperRequest, 32),
        (ThreatKind::FlipEnforcement, 33),
    ] {
        let mut spec = scenarios::by_name("lossy_links", quick).expect("E13 matrix scenario");
        spec.name = format!("{threat}_under_faults");
        let inner = ScriptedAdversary::new(threat, 0.1, seed);
        let mut adversary = WindowedAdversary::new(inner, vec![FaultWindow::new(0, 1500 * MILLIS)]);
        let (report, truth) = run_scenario(&spec, &mut adversary);
        let s = score(threat, &report, &truth);
        let row = DetectionRow {
            threat: threat.to_string(),
            attacks: s.attacks as u64,
            detected: s.detected as u64,
            false_positives: s.false_positives as u64,
            mean_detection_ms: s.mean_detection_latency_us / 1_000.0,
        };
        println!(
            "{:<18} {:>8} {:>9} {:>5} {:>14.1}",
            row.threat, row.attacks, row.detected, row.false_positives, row.mean_detection_ms
        );
        detection.push(row);
    }

    // -- part 3: a PDP crash under duplicating faults vs its twin ----------
    let mut spec = scenarios::by_name("crash_pdp", quick).expect("E11 matrix scenario");
    spec.name = "crash_pdp_faults".to_string();
    spec.faults.links.push(LinkFault {
        duplicate_permille: 300,
        reorder_permille: 200,
        reorder_spread: 5 * MILLIS,
        active_from: 0,
        active_until: 1500 * MILLIS,
        ..LinkFault::default()
    });
    let twin_spec = scenarios::strip_crashes(&spec);
    let (clean, clean_truth) = run_scenario(&twin_spec, &mut NoAdversary);
    let (crashed, crashed_truth) = run_scenario(&spec, &mut NoAdversary);
    let clean_alerts: Vec<Vec<u8>> = clean
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    let crashed_alerts: Vec<Vec<u8>> = crashed
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    let twin = TwinCheck {
        scenario: spec.name.clone(),
        crash_restarts: crashed.crash_restarts,
        matched: clean_truth == crashed_truth
            && clean_alerts == crashed_alerts
            && clean.requests_completed == crashed.requests_completed
            && clean.entries_logged == crashed.entries_logged
            && clean.groups_completed == crashed.groups_completed
            && clean.txs_committed == crashed.txs_committed
            && clean.finished_at == crashed.finished_at,
    };
    println!(
        "\ncrash_pdp under duplicating faults: {} crash-restart(s), twin matched: {}",
        twin.crash_restarts, twin.matched
    );

    println!("\nshape: capped-backoff retries mask loss, the journaled decision");
    println!("cache absorbs duplicates and crashes, the breaker fails new work");
    println!("over to healthy PDPs, partitions spill to the LI WAL and replay on");
    println!("heal, and degraded mode widens epoch timeouts over declared fault");
    println!("windows — transient faults never alert, real attacks always do.");
    FaultSummary {
        rows,
        detection,
        twin,
    }
}

/// E14 — overload robustness: a Zipf-skewed flash crowd over a
/// 2000-tenant population, with every bounded-state mechanism armed.
///
/// Part 1 runs the ≥100k-request honest flash crowd: the admission cap
/// must shed the overflow (never silently queue it), every admitted
/// request must complete, not a single alert may fire, and every peak
/// tracked-state gauge is recorded. Part 2 mounts attack campaigns
/// *during* the flash crowd: every mounted attack must still be
/// detected with zero false positives while shedding is active (shed
/// requests carry no evidence, so overflow can never masquerade as an
/// attack or hide one). Part 3 crashes a PDP mid-spike and requires
/// byte-identity with the uninterrupted twin. Emits `BENCH_LOAD.json`.
fn e14_overload(quick: bool) -> LoadSummary {
    use drams_core::scenario::run_scenario;

    header(
        "E14",
        "overload robustness: flash crowds, shedding, bounded peak state",
    );

    // -- part 1: the honest flash crowd ------------------------------------
    let spec = scenarios::flash_crowd(quick);
    let wall = Instant::now();
    let (report, truth) = run_scenario(&spec, &mut NoAdversary);
    let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
    assert_eq!(truth.total_attacks(), 0, "overload is not an attack");
    let peaks = [
        report.peak.pep_inflight,
        report.peak.pdp_idempotency,
        report.peak.pdp_decision_cache,
        report.peak.li_resident,
        report.peak.analyser_pending_retire,
        report.peak.contract_storage,
        report.peak.chain_journal_records,
        report.peak.policy_history,
    ];
    let honest = LoadRow {
        scenario: spec.name.clone(),
        requests: report.requests_issued,
        completed: report.requests_completed,
        shed: report.requests_shed,
        degraded: report.degraded_admissions,
        admitted_completion_pct: 100.0 * report.requests_completed as f64
            / (report.requests_issued - report.requests_shed).max(1) as f64,
        alerts: report.alerts.len() as u64,
        idempotency_evictions: report.idempotency_evictions,
        decision_cache_evictions: report.decision_cache_evictions,
        groups_retired: report.groups_retired,
        journal_compactions: report.journal_compactions,
        peaks,
        wall_ms,
    };
    println!(
        "{:<18} {:>9} {:>9} {:>8} {:>9} {:>7} {:>9}",
        "scenario", "requests", "complete", "shed", "degraded", "alerts", "wall ms"
    );
    println!(
        "{:<18} {:>9} {:>9} {:>8} {:>9} {:>7} {:>9.0}",
        honest.scenario,
        honest.requests,
        honest.completed,
        honest.shed,
        honest.degraded,
        honest.alerts,
        honest.wall_ms
    );
    println!("\n-- peak tracked state (honest flash crowd) --");
    for (key, value) in PEAK_COLUMNS.iter().zip(peaks) {
        println!("{key:<28} {value:>10}");
    }
    println!(
        "{:<28} {:>10}   (evictions: idempotency {}, decision-cache {};",
        "bounded-state counters", "", honest.idempotency_evictions, honest.decision_cache_evictions
    );
    println!(
        "{:<28} {:>10}    groups retired {}, journal compactions {})",
        "", "", honest.groups_retired, honest.journal_compactions
    );

    // -- part 2: attack campaigns inside the flash crowd -------------------
    println!("\n-- detection under overload (campaigns inside the spike window) --");
    println!(
        "{:<18} {:>8} {:>9} {:>5} {:>8}",
        "threat", "attacks", "detected", "fp", "shed"
    );
    let mut detection = Vec::new();
    for (threat, seed) in [
        (ThreatKind::DropLog, 41u64),
        (ThreatKind::TamperRequest, 42),
        (ThreatKind::FlipEnforcement, 43),
    ] {
        let mut spec = scenarios::overload_attack_base(quick);
        spec.name = format!("{threat}_under_overload");
        let inner = ScriptedAdversary::new(threat, 0.05, seed);
        let mut adversary = WindowedAdversary::new(
            inner,
            vec![FaultWindow::new(2 * SECONDS, 6 * SECONDS)], // the spike
        );
        let (report, truth) = run_scenario(&spec, &mut adversary);
        let s = score(threat, &report, &truth);
        let row = load_trajectory::DetectionRow {
            threat: threat.to_string(),
            attacks: s.attacks as u64,
            detected: s.detected as u64,
            false_positives: s.false_positives as u64,
            shed: report.requests_shed,
        };
        println!(
            "{:<18} {:>8} {:>9} {:>5} {:>8}",
            row.threat, row.attacks, row.detected, row.false_positives, row.shed
        );
        detection.push(row);
    }

    // -- part 3: a PDP crash mid-spike vs its twin -------------------------
    let crash_spec = scenarios::overload_crash(quick);
    let twin_spec = scenarios::strip_crashes(&crash_spec);
    let (clean, clean_truth) = run_scenario(&twin_spec, &mut NoAdversary);
    let (crashed, crashed_truth) = run_scenario(&crash_spec, &mut NoAdversary);
    let clean_alerts: Vec<Vec<u8>> = clean
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    let crashed_alerts: Vec<Vec<u8>> = crashed
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    let twin = load_trajectory::TwinCheck {
        scenario: crash_spec.name.clone(),
        crash_restarts: crashed.crash_restarts,
        shed: crashed.requests_shed,
        matched: clean_truth == crashed_truth
            && clean_alerts == crashed_alerts
            && clean.requests_completed == crashed.requests_completed
            && clean.entries_logged == crashed.entries_logged
            && clean.groups_completed == crashed.groups_completed
            && clean.txs_committed == crashed.txs_committed
            && clean.finished_at == crashed.finished_at,
    };
    println!(
        "\ncrash mid-spike: {} crash-restart(s), {} shed, twin matched: {}",
        twin.crash_restarts, twin.shed, twin.matched
    );

    println!("\nshape: admission control sheds overflow before interception (no");
    println!("group opens, no evidence is fabricated or lost), LRU and retention");
    println!("caps bound every cache, closed groups retire from contract storage,");
    println!("and the chain journal compacts — peak state stays flat while the");
    println!("flash crowd runs, honest overload never alerts, attacks always do.");
    LoadSummary {
        honest,
        detection,
        twin,
    }
}

/// E15 — deterministic parallel execution: worker-pool scaling.
///
/// Pins the `drams_faas::par` pool to 1/2/4/8 workers and runs three
/// workloads at each count: the chain signature-audit path (Merkle root
/// + chunked batch verification over a wide block), compiled-PDP
/// evaluation over a generated request stream, and the E14 flash crowd
/// scaled to one million requests (full mode). Every workload must be
/// byte-identical at every worker count — results merge in submission
/// order, so the worker count is invisible (`determinism_ok`).
///
/// The `speedup_ok` gate is adaptive to the producing host: with ≥2
/// cores the verify-heavy row must beat 1.0x at workers=4; on a
/// single-core host a wall-clock speedup is physically impossible, so
/// the same row must instead stay above a 0.75x overhead floor (the
/// pool's thread spawns may not eat more than a quarter of throughput).
/// Emits `BENCH_PAR.json`.
fn e15_parallel(quick: bool) -> par_trajectory::ParSummary {
    use drams_chain::tx::Transaction;
    use drams_core::scenario::run_scenario;
    use drams_faas::par;
    use par_trajectory::ParRow;

    header(
        "E15",
        "deterministic parallel execution: worker-pool scaling",
    );
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    println!("host cores: {host_cores}  (speedup gate adapts to single-core hosts)\n");
    let saved_workers = par::workers();
    let counts: [usize; 4] = [1, 2, 4, 8];
    let mut rows: Vec<ParRow> = Vec::new();
    let mut determinism_ok = true;
    let push_row =
        |rows: &mut Vec<ParRow>, workload: &str, workers: usize, items: u64, wall_ms: f64| {
            let per_sec = items as f64 / (wall_ms / 1_000.0).max(1e-9);
            let base = rows
                .iter()
                .find(|r| r.workload == workload && r.workers == 1)
                .map_or(per_sec, |r| r.per_sec);
            let row = ParRow {
                workload: workload.to_string(),
                workers,
                items,
                wall_ms,
                per_sec,
                speedup: per_sec / base.max(1e-9),
            };
            println!(
                "{:<16} workers {:>2}  items {:>9}  wall {:>9.1} ms  {:>12.0}/s  {:>6.2}x",
                row.workload, row.workers, row.items, row.wall_ms, row.per_sec, row.speedup
            );
            rows.push(row);
        };

    // -- workload 1: the signature-audit path (verify-heavy) ---------------
    let tx_count: usize = if quick { 1_024 } else { 4_096 };
    let kp = Keypair::from_seed(b"e15-sig-audit");
    let txs: Vec<Transaction> = (0..tx_count)
        .map(|i| {
            Transaction::new_signed(&kp, i as u64, "monitor", "store", vec![(i % 251) as u8; 48])
        })
        .collect();
    let block = Block::mine(drams_crypto::sha256::Digest::ZERO, 0, txs, 0, 0);
    let mut reference_root = None;
    for w in counts {
        par::set_workers(w);
        let wall = Instant::now();
        let root = Block::compute_tx_root(&block.transactions);
        let verdict = block.verify_signatures();
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        if verdict.is_err() {
            determinism_ok = false;
        }
        match &reference_root {
            None => reference_root = Some(root),
            Some(r) => {
                if *r != root {
                    determinism_ok = false;
                    eprintln!("sig_audit root diverged at workers={w}");
                }
            }
        }
        push_row(&mut rows, "sig_audit", w, tx_count as u64, wall_ms);
    }

    // -- workload 2: compiled-PDP evaluation --------------------------------
    let request_count: usize = if quick { 20_000 } else { 60_000 };
    let shape = PolicyShape {
        policies: 100,
        rules_per_policy: 5,
        ..PolicyShape::default()
    };
    let mut pgen = PolicyGenerator::new(Vocabulary::default(), 15);
    let set = pgen.next_policy_set(&shape);
    // Cache off: every evaluation does real engine work, and the
    // workload is a pure function of the request at any worker count.
    let pdp = Pdp::with_cache_capacity(set, 0);
    let mut rgen = RequestGenerator::new(Vocabulary::default(), 1.0, 16);
    let requests: Vec<_> = (0..request_count).map(|_| rgen.next_request()).collect();
    let mut reference_decisions: Option<Vec<drams_policy::decision::Response>> = None;
    for w in counts {
        par::set_workers(w);
        let wall = Instant::now();
        let decisions = par::map(&requests, 2, |r| pdp.evaluate(r));
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        match &reference_decisions {
            None => reference_decisions = Some(decisions),
            Some(d) => {
                if *d != decisions {
                    determinism_ok = false;
                    eprintln!("pdp_eval decisions diverged at workers={w}");
                }
            }
        }
        push_row(&mut rows, "pdp_eval", w, request_count as u64, wall_ms);
    }

    // -- workload 3: the million-request flash crowd ------------------------
    // The full event-driven simulation: arrivals, enforcement, logging,
    // mining, analysis. Parallel lanes cover only its pure-compute
    // fraction (per-cloud PDP evaluation, signature audit, Merkle and
    // batch encodings), so this row measures the end-to-end dividend,
    // not a microbenchmark. Quick mode trims the crowd and the counts.
    let crowd_counts: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8] };
    let spec = scenarios::mega_crowd(quick);
    let mut reference_crowd = None;
    for &w in crowd_counts {
        par::set_workers(w);
        let wall = Instant::now();
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        let alerts: Vec<Vec<u8>> = report
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let fingerprint = (
            alerts,
            truth,
            (
                report.requests_issued,
                report.requests_completed,
                report.requests_shed,
                report.entries_logged,
                report.groups_completed,
                report.txs_committed,
                report.groups_retired,
                report.policy_history_retired,
            ),
            report.peak,
            report.faults,
            report.finished_at,
        );
        match &reference_crowd {
            None => reference_crowd = Some(fingerprint),
            Some(f) => {
                if *f != fingerprint {
                    determinism_ok = false;
                    eprintln!("{} diverged at workers={w}", spec.name);
                }
            }
        }
        push_row(&mut rows, &spec.name, w, report.requests_issued, wall_ms);
    }
    par::set_workers(saved_workers);

    let audit_speedup_at_4 = rows
        .iter()
        .find(|r| r.workload == "sig_audit" && r.workers == 4)
        .map_or(0.0, |r| r.speedup);
    let speedup_ok = if host_cores >= 2 {
        audit_speedup_at_4 > 1.0
    } else {
        audit_speedup_at_4 >= 0.75
    };
    println!(
        "\nsig_audit at workers=4: {audit_speedup_at_4:.2}x ({}), determinism: {}",
        if host_cores >= 2 {
            "gate: > 1.0x"
        } else {
            "single-core host, gate: >= 0.75x overhead floor"
        },
        if determinism_ok {
            "byte-identical at every worker count"
        } else {
            "DIVERGED"
        }
    );
    println!("\nshape: compute lanes (signature audit, PDP evaluation, Merkle,");
    println!("batch encoding) scale with workers while the DES event loop stays");
    println!("single-threaded; submission-order merging makes the worker count");
    println!("observationally invisible, so the same bytes come out at any size.");
    par_trajectory::ParSummary {
        host_cores,
        rows,
        determinism_ok,
        speedup_ok,
    }
}

/// E16 — the real transport (DESIGN.md invariant 9): loopback TCP
/// round-trip latency and frame throughput per payload size, the cost
/// of killing and lazily re-provisioning a service endpoint, and a
/// DES-vs-TCP conformance replay of the steady-state scenario.
fn e16_net(quick: bool) -> net_trajectory::NetSummary {
    use drams_core::adversary::NoAdversary;
    use drams_core::scenario::{run_scenario, run_scenario_with_transport};
    use drams_crypto::codec::Encode;
    use drams_faas::transport::{Transport, WireFrame, WireRole};
    use drams_net::TcpTransport;
    use net_trajectory::{Conformance, NetRow, NetSummary, ReconnectCost};

    header(
        "E16",
        "real transport: loopback TCP round-trips and conformance",
    );
    let mut transport = TcpTransport::loopback();
    let mut seq = 0u64;
    let mut roundtrip = |transport: &mut TcpTransport, payload: Vec<u8>| {
        seq += 1;
        let frame = WireFrame {
            role: WireRole::Pdp { slot: 0 },
            kind: 0,
            seq,
            delay: 0,
            payload,
        };
        transport.roundtrip(frame).expect("loopback round-trip");
    };

    // -- round-trip latency and throughput per payload size -----------------
    // 192 bytes ≈ a canonical RequestEnvelope; 4 KiB ≈ a batched log
    // delivery. Warm-up covers endpoint provisioning + connect.
    let frames_per_size: u64 = if quick { 2_000 } else { 20_000 };
    let mut rows = Vec::new();
    for &payload_bytes in &[192usize, 4_096] {
        roundtrip(&mut transport, vec![0xA5; payload_bytes]);
        let mut lat_us = Vec::with_capacity(frames_per_size as usize);
        let wall = Instant::now();
        for _ in 0..frames_per_size {
            let t = Instant::now();
            roundtrip(&mut transport, vec![0xA5; payload_bytes]);
            lat_us.push(t.elapsed().as_secs_f64() * 1_000_000.0);
        }
        let wall_ms = wall.elapsed().as_secs_f64() * 1_000.0;
        lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let rt_mean_us = lat_us.iter().sum::<f64>() / lat_us.len() as f64;
        let rt_p95_us = lat_us[(lat_us.len() * 95 / 100).min(lat_us.len() - 1)];
        let frames_per_sec = frames_per_size as f64 / (wall_ms / 1_000.0).max(1e-9);
        println!(
            "payload {payload_bytes:>5} B  frames {frames_per_size:>6}  wall {wall_ms:>8.1} ms  \
             mean {rt_mean_us:>7.1} us  p95 {rt_p95_us:>7.1} us  {frames_per_sec:>8.0} frames/s"
        );
        rows.push(NetRow {
            payload_bytes,
            frames: frames_per_size,
            wall_ms,
            rt_mean_us,
            rt_p95_us,
            frames_per_sec,
        });
    }

    // -- reconnect cost: kill the endpoint, re-provision, first echo --------
    let cycles: u64 = if quick { 20 } else { 100 };
    let mut costs_us = Vec::with_capacity(cycles as usize);
    for _ in 0..cycles {
        let t = Instant::now();
        transport
            .restart(WireRole::Pdp { slot: 0 })
            .expect("restart");
        roundtrip(&mut transport, vec![0xA5; 192]);
        costs_us.push(t.elapsed().as_secs_f64() * 1_000_000.0);
    }
    let mean_us = costs_us.iter().sum::<f64>() / costs_us.len() as f64;
    let max_us = costs_us.iter().copied().fold(0.0f64, f64::max);
    println!(
        "reconnect: {cycles} kill/re-provision cycles  mean {mean_us:>8.1} us  max {max_us:>8.1} us"
    );
    let reconnect = ReconnectCost {
        cycles,
        mean_us,
        max_us,
    };

    // -- conformance: the steady-state scenario over both backends ----------
    let spec = scenarios::steady_state(true);
    let (des, des_truth) = run_scenario(&spec, &mut NoAdversary);
    let mut tcp_transport = TcpTransport::loopback();
    let (tcp, tcp_truth) = run_scenario_with_transport(&spec, &mut NoAdversary, &mut tcp_transport);
    let stats = tcp_transport.stats();
    let alert_bytes = |r: &drams_core::monitor::MonitorReport| -> Vec<Vec<u8>> {
        r.alerts.iter().map(Encode::to_canonical_bytes).collect()
    };
    let matched = stats.frames > 0
        && des_truth == tcp_truth
        && alert_bytes(&des) == alert_bytes(&tcp)
        && des.requests_completed == tcp.requests_completed
        && des.entries_logged == tcp.entries_logged
        && des.finished_at == tcp.finished_at;
    println!(
        "conformance: {}  frames {}  {}",
        spec.name,
        stats.frames,
        if matched {
            "byte-identical over DES and TCP"
        } else {
            "DIVERGED"
        }
    );
    NetSummary {
        transport: transport.name().to_string(),
        rows,
        reconnect,
        conformance: Conformance {
            scenario: spec.name.clone(),
            frames: stats.frames,
            matched,
        },
    }
}
