//! Determinism property: the fault plane must not cost replayability.
//!
//! The whole debugging story of the simulator (crash twins, shrinking,
//! the E12/E13 oracles) rests on runs being byte-identical given the
//! same seed and the same declared [`FaultPlan`] — the fault plane draws
//! from its own named RNG stream, so drops, duplicates, reorders and
//! partitions must replay exactly. This suite runs arbitrary bounded
//! fault plans (with a drop-log campaign on top, so the alert stream is
//! non-trivial) twice and requires the alert bytes, ground truth,
//! throughput counters, fault counters and finish time to match.
//!
//! [`FaultPlan`]: drams_faas::fault::FaultPlan

use drams_attack::{ScriptedAdversary, ThreatKind};
use drams_core::monitor::{GroundTruth, MonitorConfig, MonitorReport};
use drams_core::scenario::{run_scenario, ScenarioSpec};
use drams_crypto::codec::Encode;
use drams_faas::des::MILLIS;
use drams_faas::fault::{FaultPlan, LinkFault, PartitionWindow, Site};
use drams_faas::model::CloudId;
use proptest::prelude::*;

fn spec_with(faults: FaultPlan) -> ScenarioSpec {
    let config = MonitorConfig {
        total_requests: 40,
        request_rate_per_sec: 100.0,
        ..MonitorConfig::default()
    };
    ScenarioSpec {
        name: "prop_fault_determinism".to_string(),
        faults,
        ..ScenarioSpec::canonical(&config)
    }
}

fn run(spec: &ScenarioSpec, adversary_seed: u64) -> (MonitorReport, GroundTruth) {
    // Seed 0 = honest run: the adversary is consulted but never acts.
    let probability = if adversary_seed == 0 { 0.0 } else { 0.1 };
    let mut adversary =
        ScriptedAdversary::new(ThreatKind::DropLog, probability, adversary_seed.max(1));
    run_scenario(spec, &mut adversary)
}

/// Asserts two runs of the same spec + adversary seed are byte-identical.
fn assert_twin_runs(spec: &ScenarioSpec, adversary_seed: u64) {
    let (a, ta) = run(spec, adversary_seed);
    let (b, tb) = run(spec, adversary_seed);
    let alerts_a: Vec<Vec<u8>> = a.alerts.iter().map(Encode::to_canonical_bytes).collect();
    let alerts_b: Vec<Vec<u8>> = b.alerts.iter().map(Encode::to_canonical_bytes).collect();
    assert_eq!(alerts_a, alerts_b, "alert streams diverged");
    assert_eq!(ta, tb, "ground truths diverged");
    assert_eq!(a.requests_issued, b.requests_issued);
    assert_eq!(a.requests_completed, b.requests_completed);
    assert_eq!(a.requests_dropped, b.requests_dropped);
    assert_eq!(a.entries_logged, b.entries_logged);
    assert_eq!(a.groups_completed, b.groups_completed);
    assert_eq!(a.txs_committed, b.txs_committed);
    assert_eq!(a.blocks_mined, b.blocks_mined);
    assert_eq!(a.retries_total, b.retries_total);
    assert_eq!(a.failovers, b.failovers);
    assert_eq!(a.breaker_trips, b.breaker_trips);
    assert_eq!(a.li_spilled, b.li_spilled);
    assert_eq!(a.li_replayed, b.li_replayed);
    assert_eq!(a.timeout_retunes, b.timeout_retunes);
    assert_eq!(a.faults.dropped, b.faults.dropped);
    assert_eq!(a.faults.duplicated, b.faults.duplicated);
    assert_eq!(a.faults.reordered, b.faults.reordered);
    assert_eq!(a.faults.delayed, b.faults.delayed);
    assert_eq!(a.faults.partition_blocked, b.faults.partition_blocked);
    assert_eq!(a.finished_at, b.finished_at, "finish times diverged");
    let (ra, rb) = (a.e2e_latency.report(), b.e2e_latency.report());
    assert_eq!(ra.count, rb.count);
    assert_eq!(ra.retries, rb.retries);
    assert_eq!(ra.attempts, rb.attempts);
    assert_eq!(ra.p95, rb.p95);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary bounded fault plans (kept inside the retry budget, as
    /// the fuzzer's generator guarantees) replay byte-identically, with
    /// and without an attack campaign on top.
    #[test]
    fn same_seed_and_plan_is_byte_identical(
        drop_permille in 0u32..=250,
        duplicate_permille in 0u32..=300,
        reorder_permille in 0u32..=200,
        spread_ms in 1u64..=10,
        until_ms in 400u64..=1500,
        partition in 0u8..=1,
        adversary_seed in 0u64..=3,
    ) {
        let mut plan = FaultPlan {
            links: vec![LinkFault {
                drop_permille,
                duplicate_permille,
                reorder_permille,
                reorder_spread: spread_ms * MILLIS,
                active_from: 0,
                active_until: until_ms * MILLIS,
                ..LinkFault::default()
            }],
            partitions: Vec::new(),
        };
        if partition == 1 {
            plan.partitions.push(PartitionWindow {
                a: Site::Cloud(CloudId(0)),
                b: Site::Infra,
                from: 200 * MILLIS,
                until: 900 * MILLIS,
            });
        }
        assert_twin_runs(&spec_with(plan), adversary_seed);
    }
}

/// The satellite's pinned case: heavy duplication + reordering with an
/// active drop-log campaign — the nastiest ordering pressure the plan
/// generator produces — must still replay byte-identically.
#[test]
fn reorder_duplicate_faults_replay_byte_identically() {
    let plan = FaultPlan {
        links: vec![LinkFault {
            drop_permille: 150,
            duplicate_permille: 300,
            reorder_permille: 200,
            reorder_spread: 5 * MILLIS,
            active_from: 0,
            active_until: 1500 * MILLIS,
            ..LinkFault::default()
        }],
        partitions: vec![PartitionWindow {
            a: Site::Cloud(CloudId(0)),
            b: Site::Infra,
            from: 300 * MILLIS,
            until: 1000 * MILLIS,
        }],
    };
    assert_twin_runs(&spec_with(plan), 17);
}
