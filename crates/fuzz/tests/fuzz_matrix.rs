//! Fixed-seed fuzz corpus, oracle-checked end to end.
//!
//! The coverage prelude (`0..COVERAGE_PRELUDE`) deterministically
//! exercises every attack family — all nine hook campaigns and all four
//! Byzantine chain-node behaviours — plus honest and crash-twin cases;
//! a random tail of seeds beyond the prelude adds churny mixed
//! scenarios. Every case must pass the three-part oracle (attacks
//! detected, honest runs alert-free, crashed runs twin-identical), so
//! this test is the pinned, always-on slice of experiment E12.

use drams_fuzz::{generate, run_case, ChainAttackKind, COVERAGE_PRELUDE};
use std::collections::BTreeSet;

#[test]
fn coverage_prelude_passes_the_oracle() {
    let mut families: BTreeSet<&'static str> = BTreeSet::new();
    let mut violations = Vec::new();
    let mut injected = 0usize;
    let mut detected = 0usize;
    let mut twins = 0usize;
    for seed in 0..COVERAGE_PRELUDE {
        let case = generate(seed);
        families.extend(case.families());
        let outcome = run_case(&case);
        injected += outcome.attacks_injected;
        detected += outcome.attacks_detected;
        twins += usize::from(outcome.crash_twin_checked);
        violations.extend(outcome.violations);
    }
    assert!(violations.is_empty(), "oracle violations:\n{violations:#?}");
    assert!(injected > 0, "the prelude must actually attack");
    assert_eq!(detected, injected, "every injected attack must be detected");
    assert!(
        twins >= 2,
        "the prelude must exercise the crash-twin clause"
    );

    // All four new threat families of this milestone are represented...
    for kind in ChainAttackKind::ALL {
        assert!(families.contains(kind.name()), "missing {}", kind.name());
    }
    assert!(families.contains("collude-pdp-li"));
    assert!(families.contains("replay-log"));
    // ...alongside the pre-existing campaign catalogue.
    for name in ["tamper-request", "drop-log", "swap-policy"] {
        assert!(families.contains(name), "missing {name}");
    }
}

#[test]
fn random_tail_passes_the_oracle() {
    let mut violations = Vec::new();
    for seed in COVERAGE_PRELUDE..COVERAGE_PRELUDE + 8 {
        violations.extend(run_case(&generate(seed)).violations);
    }
    assert!(violations.is_empty(), "oracle violations:\n{violations:#?}");
}
