//! Determinism property: the worker pool must be observationally
//! invisible.
//!
//! Invariant 8 (DESIGN.md): parallel execution is a pure throughput
//! optimisation — every compute lane merges results in submission
//! order, so a run at `DRAMS_WORKERS=8` must be byte-for-byte equal to
//! the single-threaded run. This suite draws arbitrary fuzzer cases
//! (phased load, churn, policy flips, fault plans, attack campaigns,
//! crashes) and replays each at worker counts 1, 2, 4 and 8, requiring
//! the alert bytes, ground truth, throughput counters, peak state,
//! fault counters and finish time to match exactly.

use drams_core::monitor::{GroundTruth, MonitorReport};
use drams_core::scenario::run_scenario;
use drams_crypto::codec::Encode;
use drams_faas::par;
use drams_fuzz::generate;
use proptest::prelude::*;

/// One full fingerprint of a run — everything a divergent scheduler
/// could plausibly perturb.
fn fingerprint(report: &MonitorReport, truth: &GroundTruth) -> (Vec<Vec<u8>>, String) {
    let alerts: Vec<Vec<u8>> = report
        .alerts
        .iter()
        .map(Encode::to_canonical_bytes)
        .collect();
    let rest = format!(
        "{truth:?}|{}|{}|{}|{}|{}|{}|{}|{}|{:?}|{:?}|{}",
        report.requests_issued,
        report.requests_completed,
        report.requests_shed,
        report.entries_logged,
        report.groups_completed,
        report.txs_committed,
        report.groups_retired,
        report.policy_history_retired,
        report.peak,
        report.faults,
        report.finished_at,
    );
    (alerts, rest)
}

/// Serialises tests in this binary: the worker count is process-global,
/// so concurrent tests flipping it would race each other.
static WORKER_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs one generated case at every worker count and asserts all
/// fingerprints are identical to the single-threaded baseline.
fn assert_worker_count_invisible(seed: u64) {
    let _guard = WORKER_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let case = generate(seed);
    let saved = par::workers();
    let mut baseline = None;
    for workers in [1usize, 2, 4, 8] {
        par::set_workers(workers);
        let mut adversary = case.plan.build();
        let (report, truth) = run_scenario(&case.spec, &mut adversary);
        let fp = fingerprint(&report, &truth);
        match &baseline {
            None => baseline = Some(fp),
            Some(base) => assert_eq!(
                base, &fp,
                "seed {seed}: workers={workers} diverged from workers=1"
            ),
        }
    }
    par::set_workers(saved);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary fuzzer seeds — the richest ScenarioSpec source the
    /// repo has — replay byte-identically at 1, 2, 4 and 8 workers.
    #[test]
    fn arbitrary_scenarios_are_worker_count_invisible(seed in 0u64..=4096) {
        assert_worker_count_invisible(seed);
    }
}

/// Pinned heavy case: the coverage-prelude crash seed, so the replay
/// crosses checkpoint recovery at every worker count too.
#[test]
fn crash_seed_is_worker_count_invisible() {
    assert_worker_count_invisible(14);
}
