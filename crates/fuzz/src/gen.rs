//! Deterministic scenario generation: one seed, one fuzz case.
//!
//! [`generate`] maps a `u64` seed to a [`FuzzCase`] — a complete
//! [`ScenarioSpec`] plus an [`AttackPlan`] describing what (if anything)
//! attacks the run. The mapping is pure: the same seed always yields the
//! same case, so a failing seed *is* the reproduction. Seeds below
//! [`COVERAGE_PRELUDE`] are directed — they enumerate every attack
//! family once, so any budget that includes the prelude exercises the
//! whole threat matrix; seeds beyond it draw the class at random.

use drams_attack::{FaultWindow, ScriptedAdversary, ThreatKind, WindowedAdversary};
use drams_core::adversary::{Adversary, NoAdversary};
use drams_core::logent::LogEntry;
use drams_core::monitor::MonitorConfig;
use drams_core::scenario::{
    CrashTarget, DiurnalBand, FlashCrowd, LoadProfile, PdpPlacement, Phase, ScenarioSpec,
    ScriptedAction, MIN_RETENTION,
};
use drams_faas::des::{SimTime, MILLIS};
use drams_faas::fault::{FaultPlan, LinkFault, PartitionWindow, Site};
use drams_faas::model::{CloudId, FederationSpec, TenantId};
use drams_faas::msg::{RequestEnvelope, ResponseEnvelope};
use drams_policy::attr::{AttributeId, Category};
use drams_policy::combining::CombiningAlg;
use drams_policy::decision::Effect;
use drams_policy::expr::Expr;
use drams_policy::policy::{Policy, PolicySet};
use drams_policy::rule::Rule;
use drams_policy::target::Target;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Seeds below this value enumerate every attack family deterministically
/// (4 chain attacks, 9 campaign threats, honest, honest+crash,
/// campaign+crash, honest+faults, campaign+crash+faults, honest under an
/// overload profile, and a campaign with an in-window crash under an
/// overload profile); any seed budget containing `0..COVERAGE_PRELUDE`
/// covers the whole threat matrix — with and without a network fault
/// plan or a population/overload profile underneath.
pub const COVERAGE_PRELUDE: u64 = 20;

/// The Byzantine chain-node attack families (script-injected, as opposed
/// to the hook-injected [`ThreatKind`] campaigns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainAttackKind {
    /// Re-mine a suffix of the chain on a side branch and force a reorg.
    Fork,
    /// Mine two sibling blocks at the same height.
    Equivocate,
    /// Inject a block carrying a forged transaction signature.
    InvalidSignature,
    /// Silently discard a pending log transaction from the mempool.
    Withhold,
}

impl ChainAttackKind {
    /// All four families.
    pub const ALL: [ChainAttackKind; 4] = [
        ChainAttackKind::Fork,
        ChainAttackKind::Equivocate,
        ChainAttackKind::InvalidSignature,
        ChainAttackKind::Withhold,
    ];

    /// Short name for tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ChainAttackKind::Fork => "fork-chain",
            ChainAttackKind::Equivocate => "equivocate-block",
            ChainAttackKind::InvalidSignature => "invalid-sig-block",
            ChainAttackKind::Withhold => "withhold-tx",
        }
    }
}

/// What attacks a generated scenario, if anything.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackPlan {
    /// No adversary hooks; the scenario may still carry churn, policy
    /// flips, phases and crash-restarts. Chain-level attacks (which ride
    /// in the script, not in the adversary) also use this plan.
    Honest,
    /// A windowed [`ScriptedAdversary`] campaign: `kind` fires with
    /// `permille`/1000 per-event probability inside `[from, until)`.
    Campaign {
        /// The mounted threat.
        kind: ThreatKind,
        /// Per-event firing probability in permille (integers render and
        /// compare exactly; floats do not).
        permille: u32,
        /// Window start (inclusive).
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// The adversary's RNG seed.
        adversary_seed: u64,
    },
}

impl AttackPlan {
    /// Builds the adversary this plan describes. Called once per run —
    /// the crash-twin oracle builds it twice from the same plan so both
    /// runs see an identical hook sequence.
    #[must_use]
    pub fn build(&self) -> PlannedAdversary {
        match self {
            AttackPlan::Honest => PlannedAdversary::Honest(NoAdversary),
            AttackPlan::Campaign {
                kind,
                permille,
                from,
                until,
                adversary_seed,
            } => PlannedAdversary::Campaign(WindowedAdversary::new(
                ScriptedAdversary::new(*kind, f64::from(*permille) / 1000.0, *adversary_seed),
                vec![FaultWindow::new(*from, *until)],
            )),
        }
    }

    /// The campaign's threat kind, if this plan is a campaign.
    #[must_use]
    pub fn campaign_kind(&self) -> Option<ThreatKind> {
        match self {
            AttackPlan::Honest => None,
            AttackPlan::Campaign { kind, .. } => Some(*kind),
        }
    }
}

/// The adversary built from an [`AttackPlan`] — a closed enum rather
/// than a trait object so the same plan can be rebuilt bit-identically
/// for twin runs.
#[derive(Debug)]
pub enum PlannedAdversary {
    /// No hooks fire.
    Honest(NoAdversary),
    /// A windowed scripted campaign.
    Campaign(WindowedAdversary<ScriptedAdversary>),
}

impl Adversary for PlannedAdversary {
    fn tamper_request_in_transit(&mut self, envelope: &mut RequestEnvelope, now: SimTime) -> bool {
        match self {
            PlannedAdversary::Honest(a) => a.tamper_request_in_transit(envelope, now),
            PlannedAdversary::Campaign(a) => a.tamper_request_in_transit(envelope, now),
        }
    }

    fn tamper_response_in_transit(
        &mut self,
        envelope: &mut ResponseEnvelope,
        now: SimTime,
    ) -> bool {
        match self {
            PlannedAdversary::Honest(a) => a.tamper_response_in_transit(envelope, now),
            PlannedAdversary::Campaign(a) => a.tamper_response_in_transit(envelope, now),
        }
    }

    fn swap_policy(&mut self, authorised: &PolicySet) -> Option<PolicySet> {
        match self {
            PlannedAdversary::Honest(a) => a.swap_policy(authorised),
            PlannedAdversary::Campaign(a) => a.swap_policy(authorised),
        }
    }

    fn corrupt_pdp_decision(&mut self, envelope: &mut ResponseEnvelope, now: SimTime) -> bool {
        match self {
            PlannedAdversary::Honest(a) => a.corrupt_pdp_decision(envelope, now),
            PlannedAdversary::Campaign(a) => a.corrupt_pdp_decision(envelope, now),
        }
    }

    fn flip_enforcement(&mut self, granted: &mut bool, now: SimTime) -> bool {
        match self {
            PlannedAdversary::Honest(a) => a.flip_enforcement(granted, now),
            PlannedAdversary::Campaign(a) => a.flip_enforcement(granted, now),
        }
    }

    fn drop_log(&mut self, entry: &LogEntry, now: SimTime) -> bool {
        match self {
            PlannedAdversary::Honest(a) => a.drop_log(entry, now),
            PlannedAdversary::Campaign(a) => a.drop_log(entry, now),
        }
    }

    fn tamper_log(&mut self, entry: &mut LogEntry, now: SimTime) -> bool {
        match self {
            PlannedAdversary::Honest(a) => a.tamper_log(entry, now),
            PlannedAdversary::Campaign(a) => a.tamper_log(entry, now),
        }
    }

    fn replay_log(&mut self, entry: &mut LogEntry, now: SimTime) -> bool {
        match self {
            PlannedAdversary::Honest(a) => a.replay_log(entry, now),
            PlannedAdversary::Campaign(a) => a.replay_log(entry, now),
        }
    }
}

/// One generated fuzz case: the scenario and its attack plan.
#[derive(Debug, Clone)]
pub struct FuzzCase {
    /// The generating seed (the reproduction handle).
    pub seed: u64,
    /// The scenario to run.
    pub spec: ScenarioSpec,
    /// What attacks it.
    pub plan: AttackPlan,
}

impl FuzzCase {
    /// The attack families this case exercises, by short name — the
    /// campaign threat and/or any chain-attack script actions.
    #[must_use]
    pub fn families(&self) -> Vec<&'static str> {
        let mut out = Vec::new();
        if let Some(kind) = self.plan.campaign_kind() {
            out.push(kind.name());
        }
        for action in &self.spec.script {
            match action {
                ScriptedAction::ForkChain { .. } => out.push(ChainAttackKind::Fork.name()),
                ScriptedAction::EquivocateBlock { .. } => {
                    out.push(ChainAttackKind::Equivocate.name());
                }
                ScriptedAction::InvalidSignatureBlock { .. } => {
                    out.push(ChainAttackKind::InvalidSignature.name());
                }
                ScriptedAction::WithholdTx { .. } => out.push(ChainAttackKind::Withhold.name()),
                _ => {}
            }
        }
        out
    }

    /// Whether the script carries a crash-restart point.
    #[must_use]
    pub fn has_crash(&self) -> bool {
        self.spec
            .script
            .iter()
            .any(|a| matches!(a, ScriptedAction::CrashRestart { .. }))
    }

    /// Whether a network fault plan runs underneath the scenario.
    #[must_use]
    pub fn has_faults(&self) -> bool {
        !self.spec.faults.is_empty()
    }
}

/// The stricter policy the generator publishes mid-run (only doctors,
/// nothing else) — the fuzz analogue of the E10 `policy_flip` scenario.
#[must_use]
pub fn strict_policy() -> PolicySet {
    PolicySet::builder("fuzz-strict-root", CombiningAlg::DenyUnlessPermit)
        .policy(
            Policy::builder("doctors-only", CombiningAlg::PermitOverrides)
                .rule(
                    Rule::builder("doctors", Effect::Permit)
                        .target(Target::expr(Expr::equal(
                            Expr::attr(AttributeId::new(Category::Subject, "role")),
                            Expr::lit("doctor"),
                        )))
                        .build(),
                )
                .build(),
        )
        .build()
}

/// The scenario classes the generator draws from. `faults` layers a
/// bounded network fault plan underneath (honest runs must mask it
/// without alerting; campaigns must still be detected through it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Honest {
        crash: bool,
        faults: bool,
        overload: bool,
    },
    Campaign {
        kind: ThreatKind,
        crash: bool,
        faults: bool,
        overload: bool,
    },
    Chain(ChainAttackKind),
}

impl Class {
    fn overload(self) -> bool {
        match self {
            Class::Honest { overload, .. } | Class::Campaign { overload, .. } => overload,
            Class::Chain(_) => false,
        }
    }
}

fn ms(v: u64) -> SimTime {
    v * MILLIS
}

/// Generates the case for `seed`. Pure and total: every seed yields a
/// runnable case whose oracle expectations are sound by construction
/// (e.g. chain attacks are never combined with a chain-node crash, and
/// fault classes that legitimately alert are never labelled honest).
#[must_use]
pub fn generate(seed: u64) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);

    let class = if seed < COVERAGE_PRELUDE {
        directed_class(seed)
    } else {
        random_class(&mut rng)
    };

    // --- base deployment ---------------------------------------------------
    let clouds = if rng.gen_bool(0.25) { 3 } else { 2 };
    let mut config = MonitorConfig {
        federation: FederationSpec::symmetric(clouds, 2, 2),
        total_requests: rng.gen_range(40..=100),
        request_rate_per_sec: rng.gen_range(80..=300) as f64,
        seed: rng.gen_range(0..u64::MAX),
        ..MonitorConfig::default()
    };
    let placement = if rng.gen_bool(0.25) {
        PdpPlacement::PerCloud
    } else {
        PdpPlacement::Central
    };

    // --- phased load -------------------------------------------------------
    let mut phases = Vec::new();
    if rng.gen_bool(0.5) {
        phases.push(Phase {
            start: 0,
            rate_per_sec: config.request_rate_per_sec,
        });
        let extra = rng.gen_range(1..=2);
        let mut start = 0u64;
        for _ in 0..extra {
            start += rng.gen_range(300u64..1200);
            phases.push(Phase {
                start: ms(start),
                rate_per_sec: rng.gen_range(50..=500) as f64,
            });
        }
    }

    // --- benign churn and policy administration ----------------------------
    let member_tenants = config.federation.tenant_count() as u32;
    let mut script: Vec<ScriptedAction> = Vec::new();
    if rng.gen_bool(0.35) {
        script.push(ScriptedAction::TenantJoin {
            at: ms(rng.gen_range(200..1500)),
            cloud: CloudId(rng.gen_range(0..u64::from(clouds)) as u32),
            services: 2,
        });
    }
    if rng.gen_bool(0.25) {
        script.push(ScriptedAction::TenantLeave {
            at: ms(rng.gen_range(400..1800)),
            tenant: TenantId(rng.gen_range(1..=u64::from(member_tenants)) as u32),
        });
    }
    if rng.gen_bool(0.3) {
        let at = rng.gen_range(300u64..900);
        script.push(ScriptedAction::PublishPolicy {
            at: ms(at),
            policy: strict_policy(),
        });
        if rng.gen_bool(0.5) {
            script.push(ScriptedAction::RollbackPolicy {
                at: ms(at + rng.gen_range(200u64..800)),
                version: 0,
            });
        }
    }

    // --- class-specific content --------------------------------------------
    let mut faults = FaultPlan::default();
    let plan = match class {
        Class::Honest {
            crash,
            faults: with_faults,
            ..
        } => {
            if crash {
                script.push(crash_action(&mut rng, clouds, None));
            }
            if with_faults {
                faults = fault_plan(&mut rng, clouds);
            }
            AttackPlan::Honest
        }
        Class::Campaign {
            kind,
            crash,
            faults: with_faults,
            ..
        } => {
            // The policy swap happens at deployment time, so its window
            // must cover virtual time 0 to fire at all.
            let from_ms = if kind == ThreatKind::SwapPolicy {
                0
            } else {
                rng.gen_range(50u64..400)
            };
            let until_ms = from_ms + rng.gen_range(600u64..1500);
            if crash {
                // The crash lands *inside* the active attack window: the
                // hardest spot for the twin oracle, since recovery has to
                // preserve mid-campaign state byte for byte.
                script.push(crash_action(&mut rng, clouds, Some((from_ms, until_ms))));
            }
            if with_faults {
                faults = fault_plan(&mut rng, clouds);
            }
            AttackPlan::Campaign {
                kind,
                permille: rng.gen_range(80..=250),
                from: ms(from_ms),
                until: ms(until_ms),
                adversary_seed: rng.gen_range(0..u64::MAX),
            }
        }
        Class::Chain(kind) => {
            script.push(match kind {
                ChainAttackKind::Fork => ScriptedAction::ForkChain {
                    at: ms(rng.gen_range(700..1600)),
                    depth: rng.gen_range(1..=3),
                },
                ChainAttackKind::Equivocate => ScriptedAction::EquivocateBlock {
                    at: ms(rng.gen_range(600..1600)),
                },
                ChainAttackKind::InvalidSignature => ScriptedAction::InvalidSignatureBlock {
                    at: ms(rng.gen_range(600..1600)),
                },
                // Early enough that log transactions are still flowing
                // through the mempool — a withhold with nothing pending
                // is a no-op (and labelled as such in the ground truth).
                ChainAttackKind::Withhold => ScriptedAction::WithholdTx {
                    at: ms(rng.gen_range(300..900)),
                },
            });
            AttackPlan::Honest
        }
    };

    // --- overload profile ---------------------------------------------------
    // Drawn only for overload classes, so every other seed's RNG
    // sequence (and thus its generated case) is untouched.
    let load = if class.overload() {
        load_profile(&mut rng)
    } else {
        LoadProfile::default()
    };

    script.sort_by_key(ScriptedAction::at);
    // Put the class into the seed's name so shrunk reproductions and
    // trajectory tables stay self-describing.
    let label = match class {
        Class::Honest {
            crash,
            faults,
            overload,
        } => format!(
            "honest{}{}{}",
            if crash { "_crash" } else { "" },
            if faults { "_faults" } else { "" },
            if overload { "_load" } else { "" }
        ),
        Class::Campaign {
            kind,
            crash,
            faults,
            overload,
        } => format!(
            "{}{}{}{}",
            kind.name(),
            if crash { "_crash" } else { "" },
            if faults { "_faults" } else { "" },
            if overload { "_load" } else { "" }
        ),
        Class::Chain(kind) => kind.name().to_string(),
    };
    config.horizon = 600 * drams_faas::des::SECONDS;
    FuzzCase {
        seed,
        spec: ScenarioSpec {
            name: format!("fuzz_{seed}_{label}"),
            config,
            phases,
            placement,
            script,
            faults,
            load,
        },
        plan,
    }
}

/// A bounded overload profile: a Zipf-skewed virtual population, one
/// diurnal step, one in-window flash-crowd spike, and small caps on
/// every bounded pool. Every knob stays inside the clamp bands of
/// [`LoadProfile::clamped`], and retention windows only ever use
/// [`MIN_RETENTION`] — eviction can never race the retry budget, so an
/// honest overloaded run must still end with zero alerts.
fn load_profile(rng: &mut StdRng) -> LoadProfile {
    let spike_from = rng.gen_range(200u64..900);
    let step_at = rng.gen_range(300u64..1000);
    LoadProfile {
        population: rng.gen_range(200..=2000),
        zipf_exponent: f64::from(rng.gen_range(6u32..=14)) / 10.0,
        diurnal: vec![
            DiurnalBand {
                start: 0,
                multiplier_permille: 1000,
            },
            DiurnalBand {
                start: ms(step_at),
                multiplier_permille: rng.gen_range(500..=2000),
            },
        ],
        spikes: vec![FlashCrowd {
            from: ms(spike_from),
            until: ms(spike_from + rng.gen_range(200u64..=800)),
            multiplier_permille: rng.gen_range(2000..=8000),
        }],
        pep_inflight_cap: rng.gen_range(8..=64),
        li_resident_cap: rng.gen_range(32..=256),
        idempotency_retention: if rng.gen_bool(0.5) { MIN_RETENTION } else { 0 },
        analyser_retire_lag: if rng.gen_bool(0.5) { MIN_RETENTION } else { 0 },
        policy_history_retention: if rng.gen_bool(0.5) { MIN_RETENTION } else { 0 },
        chain_compact_interval: if rng.gen_bool(0.5) {
            rng.gen_range(4..=16)
        } else {
            0
        },
    }
}

/// The deterministic coverage prelude: seeds `0..=3` mount the four
/// chain-attack families, `4..=12` the nine campaign threats, `13` is
/// honest, `14` honest with a chain-node crash, `15` a drop-log campaign
/// with a crash inside its attack window, `16` honest over a network
/// fault plan, `17` a tamper-request campaign with both a fault plan
/// underneath and a crash inside the attack window, `18` honest under an
/// overload profile (shedding must not alert), `19` a drop-log campaign
/// with an in-window crash under an overload profile.
fn directed_class(seed: u64) -> Class {
    match seed {
        0..=3 => Class::Chain(ChainAttackKind::ALL[seed as usize]),
        4..=12 => Class::Campaign {
            kind: ThreatKind::ALL[(seed - 4) as usize],
            crash: false,
            faults: false,
            overload: false,
        },
        13 => Class::Honest {
            crash: false,
            faults: false,
            overload: false,
        },
        14 => Class::Honest {
            crash: true,
            faults: false,
            overload: false,
        },
        15 => Class::Campaign {
            kind: ThreatKind::DropLog,
            crash: true,
            faults: false,
            overload: false,
        },
        16 => Class::Honest {
            crash: false,
            faults: true,
            overload: false,
        },
        17 => Class::Campaign {
            kind: ThreatKind::TamperRequest,
            crash: true,
            faults: true,
            overload: false,
        },
        18 => Class::Honest {
            crash: false,
            faults: false,
            overload: true,
        },
        _ => Class::Campaign {
            kind: ThreatKind::DropLog,
            crash: true,
            faults: false,
            overload: true,
        },
    }
}

fn random_class(rng: &mut StdRng) -> Class {
    match rng.gen_range(0..10u32) {
        0..=2 => Class::Honest {
            crash: rng.gen_bool(0.4),
            faults: rng.gen_bool(0.35),
            overload: rng.gen_bool(0.2),
        },
        3..=7 => Class::Campaign {
            kind: ThreatKind::ALL[rng.gen_range(0..ThreatKind::ALL.len())],
            crash: rng.gen_bool(0.25),
            faults: rng.gen_bool(0.3),
            overload: rng.gen_bool(0.15),
        },
        _ => Class::Chain(ChainAttackKind::ALL[rng.gen_range(0..ChainAttackKind::ALL.len())]),
    }
}

/// A crash-restart of a random monitoring-plane service. Chain-attack
/// scenarios never call this ([`random_class`] keeps the classes
/// disjoint): a forked or withheld-from node's journal interplay with
/// replay is covered by dedicated tests, not left to chance labelling.
/// With `window`, the crash point lands strictly inside the campaign's
/// `[from, until)` attack window (both in milliseconds).
fn crash_action(rng: &mut StdRng, clouds: u32, window: Option<(u64, u64)>) -> ScriptedAction {
    let target = match rng.gen_range(0..5u32) {
        0 => CrashTarget::ChainNode,
        1 => CrashTarget::Li(TenantId(1)),
        2 => CrashTarget::Li(TenantId::INFRASTRUCTURE),
        3 => CrashTarget::Pdp(CloudId(rng.gen_range(0..clouds))),
        _ => CrashTarget::Analyser,
    };
    let at_ms = match window {
        Some((from, until)) => rng.gen_range(from + 1..until),
        None => rng.gen_range(300..800),
    };
    ScriptedAction::CrashRestart {
        at: ms(at_ms),
        target,
    }
}

/// A bounded network fault plan. Every knob is capped so the PEP retry
/// budget provably masks it: fault windows end by 2.5s and partitions
/// heal within 3.3s, while retransmissions keep coming for ~9s after
/// the last (≤ ~2s) arrival — so an honest run never abandons a request
/// and the oracle may demand zero alerts. Real attacks layered on top
/// must still be detected through the noise.
fn fault_plan(rng: &mut StdRng, clouds: u32) -> FaultPlan {
    let mut links = Vec::new();
    for _ in 0..rng.gen_range(1..=2u32) {
        let from_ms = rng.gen_range(0u64..800);
        links.push(LinkFault {
            // Mostly wildcard links; sometimes only one cloud's uplink.
            from: if rng.gen_bool(0.3) {
                Some(Site::Cloud(CloudId(rng.gen_range(0..clouds))))
            } else {
                None
            },
            to: None,
            drop_permille: rng.gen_range(0..=250),
            duplicate_permille: rng.gen_range(0..=200),
            reorder_permille: rng.gen_range(0..=200),
            reorder_spread: ms(rng.gen_range(1..=10)),
            delay: ms(rng.gen_range(0..=20)),
            jitter: ms(rng.gen_range(0..=10)),
            active_from: ms(from_ms),
            active_until: ms(from_ms + rng.gen_range(400u64..=1700)),
        });
    }
    let mut partitions = Vec::new();
    if rng.gen_bool(0.4) {
        let from_ms = rng.gen_range(100u64..800);
        partitions.push(PartitionWindow {
            a: Site::Cloud(CloudId(rng.gen_range(0..clouds))),
            b: Site::Infra,
            from: ms(from_ms),
            until: ms(from_ms + rng.gen_range(500u64..=2500)),
        });
    }
    FaultPlan { links, partitions }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 7, 16, 99, 1_000_003] {
            let a = generate(seed);
            let b = generate(seed);
            assert_eq!(a.spec.name, b.spec.name);
            assert_eq!(a.spec.config.seed, b.spec.config.seed);
            assert_eq!(a.spec.config.total_requests, b.spec.config.total_requests);
            assert_eq!(a.spec.phases, b.spec.phases);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.spec.script.len(), b.spec.script.len());
        }
    }

    #[test]
    fn prelude_covers_every_family() {
        let mut families: Vec<&'static str> = Vec::new();
        for seed in 0..COVERAGE_PRELUDE {
            families.extend(generate(seed).families());
        }
        for kind in ThreatKind::ALL {
            assert!(families.contains(&kind.name()), "missing {kind}");
        }
        for kind in ChainAttackKind::ALL {
            assert!(families.contains(&kind.name()), "missing {}", kind.name());
        }
    }

    #[test]
    fn prelude_includes_crash_cases() {
        let crashes = (0..COVERAGE_PRELUDE)
            .filter(|&s| generate(s).has_crash())
            .count();
        assert!(crashes >= 2, "prelude must exercise the crash-twin oracle");
    }

    #[test]
    fn scripts_are_sorted_by_time() {
        for seed in 0..64 {
            let case = generate(seed);
            let times: Vec<_> = case.spec.script.iter().map(ScriptedAction::at).collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted, "seed {seed}");
        }
    }

    #[test]
    fn prelude_includes_fault_plan_cases() {
        let faulted: Vec<u64> = (0..COVERAGE_PRELUDE)
            .filter(|&s| generate(s).has_faults())
            .collect();
        assert!(
            faulted.len() >= 2,
            "prelude must cross the fault plane with honest and attacked runs"
        );
        // Seed 17 is the hardest cross: campaign + crash inside the
        // attack window + a fault plan underneath.
        let hard = generate(17);
        assert!(hard.has_faults() && hard.has_crash());
        assert!(hard.plan.campaign_kind().is_some());
    }

    #[test]
    fn campaign_crashes_land_inside_the_attack_window() {
        let mut checked = 0;
        for seed in 0..512 {
            let case = generate(seed);
            let (Some(_), true) = (case.plan.campaign_kind(), case.has_crash()) else {
                continue;
            };
            let AttackPlan::Campaign { from, until, .. } = case.plan else {
                unreachable!()
            };
            for action in &case.spec.script {
                if let ScriptedAction::CrashRestart { at, .. } = action {
                    assert!(
                        *at > from && *at < until,
                        "seed {seed}: crash at {at} outside attack window [{from}, {until})"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked >= 10, "too few campaign+crash cases ({checked})");
    }

    #[test]
    fn generated_fault_plans_are_bounded_by_the_retry_budget() {
        // The honest-runs-stay-silent oracle clause is only sound if no
        // generated fault plan can outlast the PEP retry budget: windows
        // must close early enough that retransmissions still land.
        for seed in 0..512 {
            let case = generate(seed);
            for l in &case.spec.faults.links {
                assert!(l.drop_permille <= 250, "seed {seed}");
                assert!(l.active_until <= 2500 * MILLIS, "seed {seed}");
                assert!(l.delay + l.jitter <= 30 * MILLIS, "seed {seed}");
            }
            for p in &case.spec.faults.partitions {
                assert!(p.until - p.from <= 2500 * MILLIS, "seed {seed}");
                assert!(p.until <= 3300 * MILLIS, "seed {seed}");
            }
        }
    }

    #[test]
    fn chain_attacks_never_combine_with_crashes() {
        for seed in 0..256 {
            let case = generate(seed);
            let chain = case.spec.script.iter().any(|a| {
                matches!(
                    a,
                    ScriptedAction::ForkChain { .. }
                        | ScriptedAction::EquivocateBlock { .. }
                        | ScriptedAction::InvalidSignatureBlock { .. }
                        | ScriptedAction::WithholdTx { .. }
                )
            });
            assert!(
                !(chain && case.has_crash()),
                "seed {seed} mixes a chain attack with a crash"
            );
        }
    }
}
