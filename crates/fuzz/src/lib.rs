//! Adversarial scenario fuzzer for the DRAMS monitoring pipeline.
//!
//! A deterministic, seed-driven generator of random [`ScenarioSpec`]s —
//! phased Poisson load, tenant churn, policy publish/rollback, windowed
//! attack campaigns over the full nine-threat catalogue, Byzantine
//! chain-node behaviour and crash-restart points — checked end to end
//! against a three-part ground-truth oracle:
//!
//! 1. **Every injected attack is detected.** Campaign threats are scored
//!    through [`drams_attack::score()`]; chain-level attacks (forks,
//!    equivocation, forged-signature blocks, withheld commits) through
//!    [`drams_attack::chain_attack_score`].
//! 2. **Every honest run is alert-free.** Churn, bursts, policy flips
//!    and crashes are legitimate operations; any alert is a false
//!    positive and an oracle violation.
//! 3. **Every crashed run is byte-identical to its uninterrupted twin**
//!    (the E11 recovery bar, here enforced under adversarial load too).
//!
//! Oracle-violating cases are [shrunk](shrink::shrink) to a minimal
//! reproduction and printed as compilable Rust
//! ([`shrink::render_rust`]).
//!
//! [`ScenarioSpec`]: drams_core::scenario::ScenarioSpec

pub mod gen;
pub mod oracle;
pub mod shrink;

pub use gen::{generate, strict_policy, AttackPlan, ChainAttackKind, FuzzCase, COVERAGE_PRELUDE};
pub use oracle::{run_case, strip_crashes, CaseOutcome};
pub use shrink::{render_rust, shrink};
