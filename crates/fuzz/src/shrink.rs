//! Failure minimisation: shrink an oracle-violating case to a minimal
//! reproduction and print it as compilable Rust.
//!
//! [`shrink`] is a greedy fixpoint loop: it repeatedly tries removing
//! one scenario ingredient at a time (a script action, a workload
//! phase, the fault plan or one of its links/partitions, the attack
//! campaign, half the request volume) and keeps any
//! removal under which the supplied predicate still fails. The result
//! is a case where every remaining ingredient is load-bearing — drop
//! any one and the violation disappears.
//!
//! [`render_rust`] turns a case into a self-contained Rust snippet that
//! rebuilds the exact `ScenarioSpec` and adversary, so a fuzz failure
//! pastes straight into a regression test.

use crate::gen::{AttackPlan, FuzzCase};
use drams_core::scenario::{CrashTarget, LoadProfile, ScenarioSpec, ScriptedAction};
use std::fmt::Write as _;

/// Shrinks `case` to a locally-minimal failing case: the returned case
/// still satisfies `still_fails`, and no single simplification step
/// (drop an action, drop a phase, drop the campaign, halve the load)
/// preserves the failure.
///
/// `still_fails` is typically `|c| !run_case(c).violations.is_empty()`;
/// it is re-run once per candidate, so shrinking a case with `n` script
/// actions costs `O(n²)` scenario executions in the worst case.
pub fn shrink<F: Fn(&FuzzCase) -> bool>(case: &FuzzCase, still_fails: F) -> FuzzCase {
    let mut best = case.clone();
    loop {
        let mut improved = false;

        // Try stripping the overload profile first: it multiplies the
        // request volume and arms every bounded-state mechanism, so a
        // violation that survives without it shrinks far faster.
        if !best.spec.load.is_empty() {
            let mut candidate = best.clone();
            candidate.spec.load = LoadProfile::default();
            if still_fails(&candidate) {
                best = candidate;
                continue;
            }
        }

        // Try dropping each script action, shortest-lived candidate
        // first (indices re-checked every pass because earlier drops
        // shift them).
        for i in 0..best.spec.script.len() {
            let mut candidate = best.clone();
            candidate.spec.script.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Try dropping each workload phase.
        for i in 0..best.spec.phases.len() {
            let mut candidate = best.clone();
            candidate.spec.phases.remove(i);
            if still_fails(&candidate) {
                best = candidate;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }

        // Try dropping the network fault plan (and then each of its
        // links / partitions individually).
        if !best.spec.faults.is_empty() {
            let mut candidate = best.clone();
            candidate.spec.faults = Default::default();
            if still_fails(&candidate) {
                best = candidate;
                continue;
            }
            for i in 0..best.spec.faults.links.len() {
                let mut candidate = best.clone();
                candidate.spec.faults.links.remove(i);
                if still_fails(&candidate) {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
            for i in 0..best.spec.faults.partitions.len() {
                let mut candidate = best.clone();
                candidate.spec.faults.partitions.remove(i);
                if still_fails(&candidate) {
                    best = candidate;
                    improved = true;
                    break;
                }
            }
            if improved {
                continue;
            }
        }

        // Try disarming the campaign entirely.
        if best.plan != AttackPlan::Honest {
            let mut candidate = best.clone();
            candidate.plan = AttackPlan::Honest;
            if still_fails(&candidate) {
                best = candidate;
                continue;
            }
        }

        // Try halving the request volume (floor 10 keeps the scenario
        // meaningful).
        if best.spec.config.total_requests >= 20 {
            let mut candidate = best.clone();
            candidate.spec.config.total_requests /= 2;
            if still_fails(&candidate) {
                best = candidate;
                continue;
            }
        }

        return best;
    }
}

fn render_action(action: &ScriptedAction) -> String {
    match action {
        ScriptedAction::PublishPolicy { at, .. } => format!(
            "ScriptedAction::PublishPolicy {{ at: {at}, policy: drams_fuzz::strict_policy() }}"
        ),
        ScriptedAction::RollbackPolicy { at, version } => {
            format!("ScriptedAction::RollbackPolicy {{ at: {at}, version: {version} }}")
        }
        ScriptedAction::TenantJoin {
            at,
            cloud,
            services,
        } => format!(
            "ScriptedAction::TenantJoin {{ at: {at}, cloud: CloudId({}), services: {services} }}",
            cloud.0
        ),
        ScriptedAction::TenantLeave { at, tenant } => format!(
            "ScriptedAction::TenantLeave {{ at: {at}, tenant: TenantId({}) }}",
            tenant.0
        ),
        ScriptedAction::StallLi { at, until, tenant } => format!(
            "ScriptedAction::StallLi {{ at: {at}, until: {until}, tenant: TenantId({}) }}",
            tenant.0
        ),
        ScriptedAction::SilencePdp { at, until, cloud } => format!(
            "ScriptedAction::SilencePdp {{ at: {at}, until: {until}, cloud: CloudId({}) }}",
            cloud.0
        ),
        ScriptedAction::CrashRestart { at, target } => {
            let target = match target {
                CrashTarget::ChainNode => "CrashTarget::ChainNode".to_string(),
                CrashTarget::Li(t) => format!("CrashTarget::Li(TenantId({}))", t.0),
                CrashTarget::Pdp(c) => format!("CrashTarget::Pdp(CloudId({}))", c.0),
                CrashTarget::Analyser => "CrashTarget::Analyser".to_string(),
            };
            format!("ScriptedAction::CrashRestart {{ at: {at}, target: {target} }}")
        }
        ScriptedAction::ForkChain { at, depth } => {
            format!("ScriptedAction::ForkChain {{ at: {at}, depth: {depth} }}")
        }
        ScriptedAction::EquivocateBlock { at } => {
            format!("ScriptedAction::EquivocateBlock {{ at: {at} }}")
        }
        ScriptedAction::InvalidSignatureBlock { at } => {
            format!("ScriptedAction::InvalidSignatureBlock {{ at: {at} }}")
        }
        ScriptedAction::WithholdTx { at } => {
            format!("ScriptedAction::WithholdTx {{ at: {at} }}")
        }
    }
}

fn render_site(site: drams_faas::fault::Site) -> String {
    match site {
        drams_faas::fault::Site::Cloud(c) => format!("Site::Cloud(CloudId({}))", c.0),
        drams_faas::fault::Site::Infra => "Site::Infra".to_string(),
    }
}

fn render_site_opt(site: Option<drams_faas::fault::Site>) -> String {
    site.map_or_else(
        || "None".to_string(),
        |s| format!("Some({})", render_site(s)),
    )
}

fn render_plan(plan: &AttackPlan) -> String {
    match plan {
        AttackPlan::Honest => "AttackPlan::Honest".to_string(),
        AttackPlan::Campaign {
            kind,
            permille,
            from,
            until,
            adversary_seed,
        } => format!(
            "AttackPlan::Campaign {{ kind: ThreatKind::{kind:?}, permille: {permille}, \
             from: {from}, until: {until}, adversary_seed: {adversary_seed} }}"
        ),
    }
}

/// Renders `case` as a compilable Rust snippet reproducing the exact
/// scenario and adversary. Paste it into a test, run it, and the same
/// oracle violation replays deterministically.
#[must_use]
pub fn render_rust(case: &FuzzCase) -> String {
    let spec: &ScenarioSpec = &case.spec;
    let config = &spec.config;
    // The generator only builds symmetric(c, 2, 2) federations; recover
    // the cloud count from the tenant count.
    let clouds = (config.federation.tenant_count() / 2).max(1);
    let mut out = String::new();
    let _ = writeln!(out, "// Minimal reproduction of fuzz seed {}.", case.seed);
    let _ = writeln!(out, "use drams_attack::ThreatKind;");
    if spec.load.is_empty() {
        let _ = writeln!(
            out,
            "use drams_core::scenario::{{run_scenario, CrashTarget, LoadProfile, Phase, \
             PdpPlacement, ScenarioSpec, ScriptedAction}};"
        );
    } else {
        let _ = writeln!(
            out,
            "use drams_core::scenario::{{run_scenario, CrashTarget, DiurnalBand, FlashCrowd, \
             LoadProfile, Phase, PdpPlacement, ScenarioSpec, ScriptedAction}};"
        );
    }
    let _ = writeln!(out, "use drams_core::monitor::MonitorConfig;");
    let _ = writeln!(
        out,
        "use drams_faas::model::{{CloudId, FederationSpec, TenantId}};"
    );
    let _ = writeln!(out, "use drams_fuzz::AttackPlan;");
    if !spec.faults.is_empty() {
        let _ = writeln!(
            out,
            "use drams_faas::fault::{{FaultPlan, LinkFault, PartitionWindow, Site}};"
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "let config = MonitorConfig {{");
    let _ = writeln!(
        out,
        "    federation: FederationSpec::symmetric({clouds}, 2, 2),"
    );
    let _ = writeln!(out, "    total_requests: {},", config.total_requests);
    let _ = writeln!(
        out,
        "    request_rate_per_sec: {:.1},",
        config.request_rate_per_sec
    );
    let _ = writeln!(out, "    seed: {},", config.seed);
    let _ = writeln!(out, "    ..MonitorConfig::default()");
    let _ = writeln!(out, "}};");
    let _ = writeln!(out, "let spec = ScenarioSpec {{");
    let _ = writeln!(out, "    name: {:?}.to_string(),", spec.name);
    let _ = writeln!(out, "    config,");
    if spec.phases.is_empty() {
        let _ = writeln!(out, "    phases: vec![],");
    } else {
        let _ = writeln!(out, "    phases: vec![");
        for phase in &spec.phases {
            let _ = writeln!(
                out,
                "        Phase {{ start: {}, rate_per_sec: {:.1} }},",
                phase.start, phase.rate_per_sec
            );
        }
        let _ = writeln!(out, "    ],");
    }
    let _ = writeln!(out, "    placement: PdpPlacement::{:?},", spec.placement);
    if spec.script.is_empty() {
        let _ = writeln!(out, "    script: vec![],");
    } else {
        let _ = writeln!(out, "    script: vec![");
        for action in &spec.script {
            let _ = writeln!(out, "        {},", render_action(action));
        }
        let _ = writeln!(out, "    ],");
    }
    if spec.faults.is_empty() {
        let _ = writeln!(out, "    faults: Default::default(),");
    } else {
        let _ = writeln!(out, "    faults: FaultPlan {{");
        let _ = writeln!(out, "        links: vec![");
        for l in &spec.faults.links {
            let _ = writeln!(
                out,
                "            LinkFault {{ from: {}, to: {}, drop_permille: {}, \
                 duplicate_permille: {}, reorder_permille: {}, reorder_spread: {}, \
                 delay: {}, jitter: {}, active_from: {}, active_until: {} }},",
                render_site_opt(l.from),
                render_site_opt(l.to),
                l.drop_permille,
                l.duplicate_permille,
                l.reorder_permille,
                l.reorder_spread,
                l.delay,
                l.jitter,
                l.active_from,
                l.active_until
            );
        }
        let _ = writeln!(out, "        ],");
        let _ = writeln!(out, "        partitions: vec![");
        for p in &spec.faults.partitions {
            let _ = writeln!(
                out,
                "            PartitionWindow {{ a: {}, b: {}, from: {}, until: {} }},",
                render_site(p.a),
                render_site(p.b),
                p.from,
                p.until
            );
        }
        let _ = writeln!(out, "        ],");
        let _ = writeln!(out, "    }},");
    }
    if spec.load.is_empty() {
        let _ = writeln!(out, "    load: LoadProfile::default(),");
    } else {
        let load = &spec.load;
        let _ = writeln!(out, "    load: LoadProfile {{");
        let _ = writeln!(out, "        population: {},", load.population);
        let _ = writeln!(out, "        zipf_exponent: {:?},", load.zipf_exponent);
        let _ = writeln!(out, "        diurnal: vec![");
        for band in &load.diurnal {
            let _ = writeln!(
                out,
                "            DiurnalBand {{ start: {}, multiplier_permille: {} }},",
                band.start, band.multiplier_permille
            );
        }
        let _ = writeln!(out, "        ],");
        let _ = writeln!(out, "        spikes: vec![");
        for spike in &load.spikes {
            let _ = writeln!(
                out,
                "            FlashCrowd {{ from: {}, until: {}, multiplier_permille: {} }},",
                spike.from, spike.until, spike.multiplier_permille
            );
        }
        let _ = writeln!(out, "        ],");
        let _ = writeln!(out, "        pep_inflight_cap: {},", load.pep_inflight_cap);
        let _ = writeln!(out, "        li_resident_cap: {},", load.li_resident_cap);
        let _ = writeln!(
            out,
            "        idempotency_retention: {},",
            load.idempotency_retention
        );
        let _ = writeln!(
            out,
            "        analyser_retire_lag: {},",
            load.analyser_retire_lag
        );
        let _ = writeln!(
            out,
            "        policy_history_retention: {},",
            load.policy_history_retention
        );
        let _ = writeln!(
            out,
            "        chain_compact_interval: {},",
            load.chain_compact_interval
        );
        let _ = writeln!(out, "    }},");
    }
    let _ = writeln!(out, "}};");
    let _ = writeln!(out, "let plan = {};", render_plan(&case.plan));
    let _ = writeln!(out, "let mut adversary = plan.build();");
    let _ = writeln!(
        out,
        "let (report, truth) = run_scenario(&spec, &mut adversary);"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    /// Synthetic predicate: "fails" iff the script still contains a
    /// crash-restart AND the campaign is armed. The shrinker must strip
    /// everything else and nothing more — no scenario runs needed.
    #[test]
    fn shrinks_to_exactly_the_load_bearing_ingredients() {
        let case = generate(15); // drop-log campaign + crash + churn
        assert!(case.plan != AttackPlan::Honest);
        let needs = |c: &FuzzCase| {
            c.plan != AttackPlan::Honest
                && c.spec
                    .script
                    .iter()
                    .any(|a| matches!(a, ScriptedAction::CrashRestart { .. }))
        };
        assert!(needs(&case), "seed 15 must start out failing");
        let minimal = shrink(&case, needs);
        assert!(needs(&minimal));
        assert_eq!(minimal.spec.script.len(), 1, "only the crash survives");
        assert!(minimal.spec.phases.is_empty());
        assert!(minimal.spec.config.total_requests < 20);
    }

    #[test]
    fn shrinking_a_passing_case_is_identity_shaped() {
        let case = generate(13);
        let never = |_: &FuzzCase| true; // everything "fails": shrink to the bone
        let minimal = shrink(&case, never);
        assert!(minimal.spec.script.is_empty());
        assert!(minimal.spec.phases.is_empty());
        assert_eq!(minimal.plan, AttackPlan::Honest);
    }

    #[test]
    fn shrinking_strips_a_non_load_bearing_fault_plan() {
        let case = generate(16); // honest over a fault plan
        assert!(case.has_faults(), "seed 16 must carry a fault plan");
        let never = |_: &FuzzCase| true;
        let minimal = shrink(&case, never);
        assert!(minimal.spec.faults.is_empty());
    }

    #[test]
    fn rendered_reproduction_includes_the_fault_plan() {
        let case = generate(17); // campaign + crash-in-window + faults
        assert!(case.has_faults() && case.has_crash());
        let rust = render_rust(&case);
        assert!(rust.contains("faults: FaultPlan {"));
        assert!(rust.contains("LinkFault {"));
        assert!(rust.contains("CrashTarget::"));
    }

    #[test]
    fn rendered_reproduction_mentions_every_ingredient() {
        let case = generate(15);
        let rust = render_rust(&case);
        assert!(rust.contains("FederationSpec::symmetric("));
        assert!(rust.contains("run_scenario(&spec, &mut adversary)"));
        assert!(rust.contains("AttackPlan::Campaign"));
        assert!(rust.contains(&format!("seed: {},", case.spec.config.seed)));
        for action in &case.spec.script {
            let rendered = render_action(action);
            assert!(rust.contains(&rendered), "missing {rendered}");
        }
    }
}
