//! The three-part ground-truth oracle.
//!
//! [`run_case`] executes one generated [`FuzzCase`] through the real
//! scenario runtime and judges the outcome:
//!
//! 1. **Detection** — every attack the ground truth records must be
//!    matched by an alert of the kind the threat matrix promises
//!    (scored via [`drams_attack::score()`] for hook campaigns and
//!    [`drams_attack::chain_attack_score`] for Byzantine chain-node
//!    behaviour).
//! 2. **No false alarms** — an honest run (churn, bursts, policy flips,
//!    crashes, but no adversary) must finish with zero alerts; a
//!    chain-attack run must raise only the alerts that attack explains.
//! 3. **Crash equivalence** — a run with [`CrashRestart`] points must be
//!    byte-identical (alerts, ground truth, throughput counters, finish
//!    time) to its [`strip_crashes`] twin, even under adversarial load.
//!
//! Any failed clause becomes a human-readable violation string; an empty
//! [`CaseOutcome::violations`] means the case passed.
//!
//! [`CrashRestart`]: drams_core::scenario::ScriptedAction::CrashRestart

use crate::gen::FuzzCase;
use drams_attack::{chain_attack_score, score};
use drams_core::alert::AlertKind;
use drams_core::scenario::{run_scenario, ScenarioSpec, ScriptedAction};
use drams_crypto::codec::Encode;

/// What one fuzz case did and whether the oracle accepted it.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Scenario name (carries the seed and attack class).
    pub name: String,
    /// Oracle violations; empty = the case passed.
    pub violations: Vec<String>,
    /// Attack actions the adversary (or Byzantine node) performed.
    pub attacks_injected: usize,
    /// Injected attacks matched by an alert of the promised kind.
    pub attacks_detected: usize,
    /// Alerts not explained by any injected attack.
    pub false_positives: usize,
    /// Alerts committed on-chain.
    pub alerts: usize,
    /// Simulation events executed: requests issued + entries logged +
    /// blocks mined + alerts committed.
    pub events: u64,
    /// Whether the crash-twin clause ran (the script had a crash).
    pub crash_twin_checked: bool,
    /// Whether the sampled worker-count replay clause ran (the case was
    /// re-executed at a different `drams_faas::par` pool size).
    pub worker_replay_checked: bool,
}

/// The uninterrupted twin of a scenario: same deployment, phases and
/// script minus every [`ScriptedAction::CrashRestart`]. Local
/// reimplementation of the E11 helper (`drams-bench` depends on this
/// crate, so it cannot be borrowed from there).
#[must_use]
pub fn strip_crashes(spec: &ScenarioSpec) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("{}_uninterrupted", spec.name),
        config: spec.config.clone(),
        phases: spec.phases.clone(),
        placement: spec.placement,
        script: spec
            .script
            .iter()
            .filter(|a| !matches!(a, ScriptedAction::CrashRestart { .. }))
            .cloned()
            .collect(),
        faults: spec.faults.clone(),
        load: spec.load.clone(),
    }
}

fn is_chain_attack(action: &ScriptedAction) -> bool {
    matches!(
        action,
        ScriptedAction::ForkChain { .. }
            | ScriptedAction::EquivocateBlock { .. }
            | ScriptedAction::InvalidSignatureBlock { .. }
            | ScriptedAction::WithholdTx { .. }
    )
}

/// Runs `case` end to end and applies all three oracle clauses.
#[must_use]
pub fn run_case(case: &FuzzCase) -> CaseOutcome {
    let mut adversary = case.plan.build();
    let (report, truth) = run_scenario(&case.spec, &mut adversary);

    let mut violations = Vec::new();
    let mut attacks_injected = 0usize;
    let mut attacks_detected = 0usize;
    let mut false_positives = 0usize;
    let has_chain_action = case.spec.script.iter().any(is_chain_attack);

    match case.plan.campaign_kind() {
        // Clause 1 (campaigns): everything the hook adversary did must
        // be detected through the threat's promised alert kinds.
        Some(kind) => {
            let s = score(kind, &report, &truth);
            attacks_injected = s.attacks;
            attacks_detected = s.detected;
            false_positives = s.false_positives;
            if s.detected < s.attacks {
                violations.push(format!(
                    "{}: campaign {kind} only {} of {} attacks detected",
                    case.spec.name, s.detected, s.attacks
                ));
            }
        }
        // Clause 1 + 2 (Byzantine chain node): the chain-level score
        // must be clean AND no alert may exist that the attack does not
        // explain.
        None if has_chain_action => {
            let cs = chain_attack_score(&report.alerts, &truth);
            attacks_injected = cs.forks_injected as usize
                + cs.invalid_sig_injected as usize
                + cs.withheld_injected;
            attacks_detected = cs.forks_alerted.min(cs.forks_injected) as usize
                + cs.invalid_sig_alerted.min(cs.invalid_sig_injected) as usize
                + cs.withheld_alerted.min(cs.withheld_injected);
            if !cs.all_detected() {
                violations.push(format!(
                    "{}: chain attack under-detected ({cs:?})",
                    case.spec.name
                ));
            }
            for alert in &report.alerts {
                let explained = match &alert.kind {
                    AlertKind::MonitorCompromise => {
                        alert.detail.starts_with("chain fork")
                            || alert.detail.contains("invalid transaction signature")
                    }
                    AlertKind::MissingLog { point } => {
                        truth.withheld_logs.contains(&(alert.correlation, *point))
                    }
                    _ => false,
                };
                if !explained {
                    false_positives += 1;
                    violations.push(format!(
                        "{}: unexplained alert {:?} on {:?}: {}",
                        case.spec.name, alert.kind, alert.correlation, alert.detail
                    ));
                }
            }
        }
        // Clause 2 (honest): ground truth empty, zero alerts.
        None => {
            if truth.total_attacks() != 0 || truth.policy_swapped {
                violations.push(format!(
                    "{}: honest run recorded attacks in its ground truth",
                    case.spec.name
                ));
            }
            false_positives = report.alerts.len();
            for alert in &report.alerts {
                violations.push(format!(
                    "{}: false positive in honest run: {:?} on {:?}: {}",
                    case.spec.name, alert.kind, alert.correlation, alert.detail
                ));
            }
        }
    }

    // Clause 3: a crashed run must be indistinguishable from its
    // uninterrupted twin — the E11 bar, applied under adversarial load.
    // The twin gets its own adversary built from the same plan so both
    // runs face an identical hook sequence.
    let crash_twin_checked = case.has_crash();
    if crash_twin_checked {
        let twin_spec = strip_crashes(&case.spec);
        let mut twin_adversary = case.plan.build();
        let (twin_report, twin_truth) = run_scenario(&twin_spec, &mut twin_adversary);
        let crashed_alerts: Vec<Vec<u8>> = report
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let twin_alerts: Vec<Vec<u8>> = twin_report
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        if truth != twin_truth {
            violations.push(format!(
                "{}: crashed run's ground truth diverges from its twin",
                case.spec.name
            ));
        }
        if crashed_alerts != twin_alerts {
            violations.push(format!(
                "{}: crashed run's alerts diverge from its twin ({} vs {})",
                case.spec.name,
                crashed_alerts.len(),
                twin_alerts.len()
            ));
        }
        let counters = [
            (
                "requests_completed",
                report.requests_completed,
                twin_report.requests_completed,
            ),
            (
                "entries_logged",
                report.entries_logged,
                twin_report.entries_logged,
            ),
            (
                "groups_completed",
                report.groups_completed,
                twin_report.groups_completed,
            ),
            (
                "txs_committed",
                report.txs_committed,
                twin_report.txs_committed,
            ),
            ("finished_at", report.finished_at, twin_report.finished_at),
        ];
        for (what, crashed, clean) in counters {
            if crashed != clean {
                violations.push(format!(
                    "{}: {what} diverges from twin: {crashed} vs {clean}",
                    case.spec.name
                ));
            }
        }
    }

    // Clause 4 (sampled): the worker count must be observationally
    // invisible. A quarter of cases — picked by a stable hash of the
    // case name, so a shrinking reproduction keeps re-running the
    // clause — are re-executed at a different `drams_faas::par` pool
    // size and must match the original run byte for byte: alerts,
    // ground truth, every throughput and retirement counter, peak
    // state, fault statistics and finish time.
    let base_workers = drams_faas::par::workers();
    let alt_workers = if base_workers == 4 { 1 } else { 4 };
    let worker_replay_checked = case.spec.name.bytes().map(u64::from).sum::<u64>() % 4 == 0;
    if worker_replay_checked {
        let mut replay_adversary = case.plan.build();
        drams_faas::par::set_workers(alt_workers);
        let (replay, replay_truth) = run_scenario(&case.spec, &mut replay_adversary);
        drams_faas::par::set_workers(base_workers);
        let base_alerts: Vec<Vec<u8>> = report
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let replay_alerts: Vec<Vec<u8>> = replay
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let mut diverged = Vec::new();
        if replay_alerts != base_alerts {
            diverged.push(format!(
                "alerts ({} vs {})",
                replay_alerts.len(),
                base_alerts.len()
            ));
        }
        if replay_truth != truth {
            diverged.push("ground truth".to_string());
        }
        for (what, a, b) in [
            (
                "requests_completed",
                report.requests_completed,
                replay.requests_completed,
            ),
            ("requests_shed", report.requests_shed, replay.requests_shed),
            (
                "entries_logged",
                report.entries_logged,
                replay.entries_logged,
            ),
            (
                "groups_completed",
                report.groups_completed,
                replay.groups_completed,
            ),
            ("txs_committed", report.txs_committed, replay.txs_committed),
            (
                "groups_retired",
                report.groups_retired,
                replay.groups_retired,
            ),
            (
                "policy_history_retired",
                report.policy_history_retired,
                replay.policy_history_retired,
            ),
            ("finished_at", report.finished_at, replay.finished_at),
        ] {
            if a != b {
                diverged.push(format!("{what} ({a} vs {b})"));
            }
        }
        if replay.peak != report.peak {
            diverged.push("peak state".to_string());
        }
        if replay.faults != report.faults {
            diverged.push("fault stats".to_string());
        }
        if !diverged.is_empty() {
            violations.push(format!(
                "{}: workers={alt_workers} replay diverges from workers={base_workers}: {}",
                case.spec.name,
                diverged.join(", ")
            ));
        }
    }

    CaseOutcome {
        name: case.spec.name.clone(),
        violations,
        attacks_injected,
        attacks_detected,
        false_positives,
        alerts: report.alerts.len(),
        events: report.requests_issued
            + report.entries_logged
            + report.blocks_mined
            + report.alerts.len() as u64,
        crash_twin_checked,
        worker_replay_checked,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use drams_faas::des::MILLIS;
    use drams_faas::model::TenantId;

    #[test]
    fn strip_crashes_removes_only_crash_actions() {
        let mut case = generate(13);
        case.spec.script.push(ScriptedAction::CrashRestart {
            at: 500 * MILLIS,
            target: drams_core::scenario::CrashTarget::Li(TenantId(1)),
        });
        let before = case.spec.script.len();
        let twin = strip_crashes(&case.spec);
        assert!(twin.name.ends_with("_uninterrupted"));
        assert_eq!(twin.script.len(), before - 1);
        assert!(!twin
            .script
            .iter()
            .any(|a| matches!(a, ScriptedAction::CrashRestart { .. })));
    }

    #[test]
    fn honest_prelude_case_passes_the_oracle() {
        let outcome = run_case(&generate(13));
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
        assert_eq!(outcome.attacks_injected, 0);
        assert_eq!(outcome.false_positives, 0);
        assert!(outcome.events > 0);
    }

    #[test]
    fn crash_case_exercises_the_twin_clause() {
        let outcome = run_case(&generate(14));
        assert!(outcome.crash_twin_checked);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }

    #[test]
    fn sampled_case_exercises_the_worker_replay_clause() {
        // Pick the first prelude seed whose name hash selects it for the
        // worker-count replay, so the clause demonstrably runs and holds.
        let case = (1..=64)
            .map(generate)
            .find(|c| c.spec.name.bytes().map(u64::from).sum::<u64>() % 4 == 0)
            .expect("some prelude seed samples into the replay clause");
        let outcome = run_case(&case);
        assert!(outcome.worker_replay_checked);
        assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    }
}
