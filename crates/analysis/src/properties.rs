//! Formal policy properties: completeness, conflicts, dead rules,
//! equivalence and change impact.
//!
//! These are the offline analyses of the FACPL framework (paper ref \[8\])
//! that the DRAMS Analyser builds on. Every property that fails comes with
//! a concrete *witness request* demonstrating the failure, which can be
//! replayed against the runtime engine.

use crate::constraint::{
    compile_policy_set, compile_rule, compile_target, AnalysisError, Formula, SymbolicDecision,
};
use crate::solver::solve;
use drams_policy::attr::Request;
use drams_policy::combining::CombiningAlg;
use drams_policy::policy::{Policy, PolicySet};

/// Outcome of the completeness check.
#[derive(Debug, Clone, PartialEq)]
pub enum Completeness {
    /// Every (complete, well-typed) request receives Permit or Deny.
    Complete,
    /// Some request falls through; here is one.
    Incomplete {
        /// A request that receives neither Permit nor Deny.
        witness: Request,
    },
}

impl Completeness {
    /// True when the policy is complete.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }
}

/// Checks whether every request gets a definitive decision.
///
/// # Errors
///
/// [`AnalysisError`] when the policy is outside the analysable fragment.
pub fn completeness(set: &PolicySet) -> Result<Completeness, AnalysisError> {
    let sym = compile_policy_set(set)?;
    match solve(&sym.gap())? {
        None => Ok(Completeness::Complete),
        Some(model) => Ok(Completeness::Incomplete {
            witness: model.to_request(),
        }),
    }
}

/// A detected permit/deny conflict inside a policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Conflict {
    /// Id of a permit rule that fires.
    pub permit_rule: String,
    /// Id of a deny rule that fires on the same request.
    pub deny_rule: String,
    /// A request on which both fire.
    pub witness: Request,
}

/// Finds all pairs of (permit, deny) rules of `policy` that can fire on
/// the same request (the combining algorithm then arbitrates — this check
/// surfaces where that arbitration actually matters).
///
/// # Errors
///
/// [`AnalysisError`] when outside the analysable fragment.
pub fn conflicts(policy: &Policy) -> Result<Vec<Conflict>, AnalysisError> {
    let ptarget = compile_target(&policy.target)?;
    let compiled: Vec<(String, SymbolicDecision)> = policy
        .rules
        .iter()
        .map(|r| Ok((r.id.clone(), compile_rule(r)?)))
        .collect::<Result<_, AnalysisError>>()?;
    let mut out = Vec::new();
    for (pi, psym) in &compiled {
        if psym.permit == Formula::False {
            continue;
        }
        for (di, dsym) in &compiled {
            if dsym.deny == Formula::False {
                continue;
            }
            let both = Formula::and(vec![
                ptarget.clone(),
                psym.permit.clone(),
                dsym.deny.clone(),
            ]);
            if let Some(model) = solve(&both)? {
                out.push(Conflict {
                    permit_rule: pi.clone(),
                    deny_rule: di.clone(),
                    witness: model.to_request(),
                });
            }
        }
    }
    Ok(out)
}

/// Finds rules that can never fire under their policy's algorithm
/// (dead-rule detection).
///
/// # Errors
///
/// [`AnalysisError`] when outside the analysable fragment.
pub fn dead_rules(policy: &Policy) -> Result<Vec<String>, AnalysisError> {
    let ptarget = compile_target(&policy.target)?;
    let compiled: Vec<SymbolicDecision> = policy
        .rules
        .iter()
        .map(compile_rule)
        .collect::<Result<_, _>>()?;
    let mut dead = Vec::new();
    for (i, rule) in policy.rules.iter().enumerate() {
        let fires = Formula::or(vec![compiled[i].permit.clone(), compiled[i].deny.clone()]);
        let mut parts = vec![ptarget.clone(), fires];
        if policy.algorithm == CombiningAlg::FirstApplicable {
            // Under first-applicable an earlier decisive rule shadows later
            // ones; a rule is dead if it can never be the first to fire.
            for earlier in &compiled[..i] {
                parts.push(Formula::not(Formula::or(vec![
                    earlier.permit.clone(),
                    earlier.deny.clone(),
                ])));
            }
        }
        if solve(&Formula::and(parts))?.is_none() {
            dead.push(rule.id.clone());
        }
    }
    Ok(dead)
}

/// Result of comparing two policies.
#[derive(Debug, Clone, PartialEq)]
pub enum Equivalence {
    /// The two policies decide every request identically.
    Equivalent,
    /// They differ; here is a distinguishing request.
    Different {
        /// A request the two policies decide differently.
        witness: Request,
    },
}

impl Equivalence {
    /// True when equivalent.
    #[must_use]
    pub fn is_equivalent(&self) -> bool {
        matches!(self, Equivalence::Equivalent)
    }
}

/// Decides whether two policy sets produce identical decisions on every
/// complete request.
///
/// # Errors
///
/// [`AnalysisError`] when either policy is outside the fragment.
pub fn equivalent(a: &PolicySet, b: &PolicySet) -> Result<Equivalence, AnalysisError> {
    let sa = compile_policy_set(a)?;
    let sb = compile_policy_set(b)?;
    let diff = Formula::or(vec![
        xor(sa.permit.clone(), sb.permit.clone()),
        xor(sa.deny.clone(), sb.deny.clone()),
    ]);
    match solve(&diff)? {
        None => Ok(Equivalence::Equivalent),
        Some(model) => Ok(Equivalence::Different {
            witness: model.to_request(),
        }),
    }
}

/// The semantic impact of replacing `old` with `new`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ChangeImpact {
    /// A request newly permitted (was not Permit, now is).
    pub now_permitted: Option<Request>,
    /// A request newly denied.
    pub now_denied: Option<Request>,
    /// A request that lost its Permit.
    pub lost_permit: Option<Request>,
    /// A request that lost its Deny.
    pub lost_deny: Option<Request>,
}

impl ChangeImpact {
    /// True when the change is semantically invisible.
    #[must_use]
    pub fn is_neutral(&self) -> bool {
        self.now_permitted.is_none()
            && self.now_denied.is_none()
            && self.lost_permit.is_none()
            && self.lost_deny.is_none()
    }
}

/// Computes witnesses for each direction of semantic drift between two
/// policy versions — the analysis a policy administrator runs before
/// deploying a change (and that the Analyser runs when it detects an
/// unauthorised policy swap, to report *what* the swap changed).
///
/// # Errors
///
/// [`AnalysisError`] when either version is outside the fragment.
pub fn change_impact(old: &PolicySet, new: &PolicySet) -> Result<ChangeImpact, AnalysisError> {
    let so = compile_policy_set(old)?;
    let sn = compile_policy_set(new)?;
    let witness = |f: Formula| -> Result<Option<Request>, AnalysisError> {
        Ok(solve(&f)?.map(|m| m.to_request()))
    };
    Ok(ChangeImpact {
        now_permitted: witness(Formula::and(vec![
            Formula::not(so.permit.clone()),
            sn.permit.clone(),
        ]))?,
        now_denied: witness(Formula::and(vec![
            Formula::not(so.deny.clone()),
            sn.deny.clone(),
        ]))?,
        lost_permit: witness(Formula::and(vec![
            so.permit.clone(),
            Formula::not(sn.permit.clone()),
        ]))?,
        lost_deny: witness(Formula::and(vec![so.deny, Formula::not(sn.deny)]))?,
    })
}

/// Symbolically checks whether a policy can ever Permit (useful as a
/// sanity check on generated policies).
///
/// # Errors
///
/// [`AnalysisError`] when outside the fragment.
pub fn can_permit(set: &PolicySet) -> Result<Option<Request>, AnalysisError> {
    let sym = compile_policy_set(set)?;
    Ok(solve(&sym.permit)?.map(|m| m.to_request()))
}

/// Symbolically checks whether a policy can ever Deny.
///
/// # Errors
///
/// [`AnalysisError`] when outside the fragment.
pub fn can_deny(set: &PolicySet) -> Result<Option<Request>, AnalysisError> {
    let sym = compile_policy_set(set)?;
    Ok(solve(&sym.deny)?.map(|m| m.to_request()))
}

fn xor(a: Formula, b: Formula) -> Formula {
    Formula::or(vec![
        Formula::and(vec![a.clone(), Formula::not(b.clone())]),
        Formula::and(vec![Formula::not(a), b]),
    ])
}

/// Re-exported symbolic compilation entry point for policies (paired with
/// [`compile_policy_set`] from the constraint module).
pub use crate::constraint::compile_policy_set as symbolic_semantics;

#[cfg(test)]
mod tests {
    use super::*;
    use drams_policy::attr::{AttributeId, Category};
    use drams_policy::decision::{Decision, Effect};
    use drams_policy::expr::{Expr, Func};
    use drams_policy::policy::{Policy, PolicyChild, PolicySet};
    use drams_policy::rule::Rule;
    use drams_policy::target::Target;

    fn role_eq(v: &str) -> Expr {
        Expr::equal(
            Expr::attr(AttributeId::new(Category::Subject, "role")),
            Expr::lit(v),
        )
    }

    fn hour_lt(v: i64) -> Expr {
        Expr::Apply(
            Func::Less,
            vec![
                Expr::attr(AttributeId::new(Category::Environment, "hour")),
                Expr::lit(v),
            ],
        )
    }

    fn incomplete_set() -> PolicySet {
        // Only doctors are handled at all.
        PolicySet::builder("root", CombiningAlg::DenyOverrides)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .target(Target::expr(role_eq("doctor")))
                    .rule(Rule::always("allow", Effect::Permit))
                    .build(),
            )
            .build()
    }

    fn complete_set() -> PolicySet {
        PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .target(Target::expr(role_eq("doctor")))
                    .rule(Rule::always("allow", Effect::Permit))
                    .build(),
            )
            .build()
    }

    #[test]
    fn detects_incompleteness_with_valid_witness() {
        let result = completeness(&incomplete_set()).unwrap();
        match result {
            Completeness::Incomplete { witness } => {
                // Replay the witness on the concrete engine: it must indeed
                // fall through.
                let (d, _) = incomplete_set().evaluate(&witness);
                assert_eq!(d.to_decision(), Decision::NotApplicable);
            }
            Completeness::Complete => panic!("expected incomplete"),
        }
    }

    #[test]
    fn deny_unless_permit_root_is_complete() {
        assert!(completeness(&complete_set()).unwrap().is_complete());
    }

    #[test]
    fn conflict_detection_finds_overlap() {
        let policy = Policy::builder("p", CombiningAlg::DenyOverrides)
            .rule(
                Rule::builder("allow-day", Effect::Permit)
                    .condition(hour_lt(18))
                    .build(),
            )
            .rule(
                Rule::builder("deny-early", Effect::Deny)
                    .condition(hour_lt(9))
                    .build(),
            )
            .build();
        let found = conflicts(&policy).unwrap();
        assert_eq!(found.len(), 1);
        let c = &found[0];
        assert_eq!(c.permit_rule, "allow-day");
        assert_eq!(c.deny_rule, "deny-early");
        // witness hour must be < 9 (both rules fire)
        let hour = c.witness.bag(Category::Environment, "hour")[0]
            .as_f64()
            .unwrap();
        assert!(hour < 9.0);
    }

    #[test]
    fn disjoint_rules_have_no_conflicts() {
        let policy = Policy::builder("p", CombiningAlg::DenyOverrides)
            .rule(
                Rule::builder("allow", Effect::Permit)
                    .target(Target::expr(role_eq("doctor")))
                    .build(),
            )
            .rule(
                Rule::builder("deny", Effect::Deny)
                    .target(Target::expr(role_eq("intern")))
                    .build(),
            )
            .build();
        assert!(conflicts(&policy).unwrap().is_empty());
    }

    #[test]
    fn dead_rule_detection() {
        let policy = Policy::builder("p", CombiningAlg::FirstApplicable)
            .rule(Rule::always("catch-all", Effect::Deny))
            .rule(
                Rule::builder("never-reached", Effect::Permit)
                    .target(Target::expr(role_eq("doctor")))
                    .build(),
            )
            .build();
        assert_eq!(dead_rules(&policy).unwrap(), vec!["never-reached"]);
        // Under deny-overrides the same rule is live.
        let mut p2 = policy;
        p2.algorithm = CombiningAlg::DenyOverrides;
        assert!(dead_rules(&p2).unwrap().is_empty());
    }

    #[test]
    fn contradictory_condition_is_dead_everywhere() {
        let policy = Policy::builder("p", CombiningAlg::DenyOverrides)
            .rule(
                Rule::builder("impossible", Effect::Permit)
                    .condition(Expr::and(vec![hour_lt(5), Expr::not(hour_lt(10))]))
                    .build(),
            )
            .build();
        assert_eq!(dead_rules(&policy).unwrap(), vec!["impossible"]);
    }

    #[test]
    fn equivalence_of_identical_policies() {
        assert!(equivalent(&complete_set(), &complete_set())
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn inequivalence_has_replayable_witness() {
        let a = complete_set();
        let mut b = complete_set();
        // Change the role the policy targets.
        if let PolicyChild::Policy(p) = &mut b.children[0] {
            p.target = Target::expr(role_eq("nurse"));
        }
        match equivalent(&a, &b).unwrap() {
            Equivalence::Different { witness } => {
                let da = a.evaluate(&witness).0.to_decision();
                let db = b.evaluate(&witness).0.to_decision();
                assert_ne!(da, db, "witness must distinguish: {witness:?}");
            }
            Equivalence::Equivalent => panic!("expected difference"),
        }
    }

    #[test]
    fn change_impact_directions() {
        let old = complete_set();
        let mut new = complete_set();
        if let PolicyChild::Policy(p) = &mut new.children[0] {
            // Narrow the permit with a condition: some requests lose Permit.
            p.rules[0] = Rule::builder("allow", Effect::Permit)
                .condition(hour_lt(18))
                .build();
        }
        let impact = change_impact(&old, &new).unwrap();
        assert!(!impact.is_neutral());
        // Losing a permit under deny-unless-permit means gaining a deny.
        let lost = impact.lost_permit.expect("some request lost permit");
        assert_eq!(old.evaluate(&lost).0.to_decision(), Decision::Permit);
        assert_ne!(new.evaluate(&lost).0.to_decision(), Decision::Permit);
        assert!(impact.now_denied.is_some());
        assert!(impact.now_permitted.is_none());
    }

    #[test]
    fn neutral_change_is_detected() {
        let old = complete_set();
        let mut new = complete_set();
        new.id = "renamed".into(); // ids don't affect semantics
        assert!(change_impact(&old, &new).unwrap().is_neutral());
    }

    #[test]
    fn can_permit_and_deny_witnesses_replay() {
        let set = complete_set();
        let p = can_permit(&set).unwrap().expect("permits doctors");
        assert_eq!(set.evaluate(&p).0.to_decision(), Decision::Permit);
        let d = can_deny(&set).unwrap().expect("denies others");
        assert_eq!(set.evaluate(&d).0.to_decision(), Decision::Deny);
    }
}
