//! Formally-grounded policy analysis for DRAMS.
//!
//! Implements the analysis framework the paper's Analyser builds on
//! (ref \[8\], Margheri et al. — FACPL): policies are compiled to constraint
//! formulas, a small DPLL+theory solver decides satisfiability and produces
//! concrete witness requests, and a set of property checks (completeness,
//! conflicts, dead rules, equivalence, change impact) plus a runtime
//! decision-verification oracle sit on top.
//!
//! * [`constraint`] — formula language + policy→formula compilation.
//! * [`types`] — attribute type inference for the solver's theories.
//! * [`solver`] — DPLL over comparison atoms with witness construction.
//! * [`properties`] — offline policy properties with witnesses.
//! * [`verify`] — the Analyser's runtime (request, response) oracle.
//!
//! # Example: completeness with a replayable witness
//!
//! ```
//! use drams_analysis::properties::{completeness, Completeness};
//! use drams_policy::{parser::parse_policy_set, decision::Decision};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = parse_policy_set(r#"
//!   policyset root { deny-overrides
//!     policy p { permit-overrides
//!       rule allow (permit) { target: equal(subject.role, "doctor") }
//!     }
//!   }
//! "#)?;
//! match completeness(&set)? {
//!     Completeness::Incomplete { witness } => {
//!         // the witness really does fall through the policy
//!         assert_eq!(set.evaluate(&witness).0.to_decision(), Decision::NotApplicable);
//!     }
//!     Completeness::Complete => unreachable!("non-doctors are unhandled"),
//! }
//! # Ok(())
//! # }
//! ```

pub mod constraint;
pub mod properties;
pub mod solver;
pub mod types;
pub mod verify;

pub use constraint::{AnalysisError, Atom, CmpOp, Formula, SymbolicDecision};
pub use properties::{
    can_deny, can_permit, change_impact, completeness, conflicts, dead_rules, equivalent,
    ChangeImpact, Completeness, Conflict, Equivalence,
};
pub use solver::{satisfiable, solve, Model};
pub use verify::{DecisionVerifier, Verdict, Violation};
