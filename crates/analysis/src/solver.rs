//! A DPLL-style satisfiability solver over comparison atoms.
//!
//! The solver decides satisfiability of a [`Formula`] whose atoms are
//! comparisons `attr op constant`, using:
//!
//! * formula-guided branching — the branching atom is always the first
//!   atom whose value the partial evaluation actually needs, which prunes
//!   the search to the live fragment of the formula;
//! * a per-attribute **theory check** — equality, disequality and interval
//!   reasoning over the attribute's inferred type, so `x < 3 ∧ x > 7` or
//!   `role = "a" ∧ role = "b"` conflicts are detected immediately;
//! * **witness construction** — a satisfying assignment is turned into a
//!   concrete [`Request`] that the runtime engine can evaluate, closing the
//!   loop between symbolic and concrete semantics.

use crate::constraint::{AnalysisError, Atom, CmpOp, Formula, NegatedOp};
use crate::types::{TypeEnv, ValueType};
use drams_policy::attr::{AttributeId, AttributeValue, Request};
use std::collections::BTreeMap;

/// A satisfying assignment, as concrete attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// One value per attribute occurring in the formula.
    pub values: BTreeMap<AttributeId, AttributeValue>,
}

impl Model {
    /// Converts the model into a complete, single-valued [`Request`].
    #[must_use]
    pub fn to_request(&self) -> Request {
        let mut req = Request::new();
        for (id, v) in &self.values {
            req.add(id.category, id.name.clone(), v.clone());
        }
        req
    }
}

/// Result of three-valued partial evaluation.
enum PartialEval {
    Known(bool),
    /// Undetermined; carries the index of the first needed unassigned atom.
    Needs(usize),
}

/// Decides satisfiability of `formula`.
///
/// Returns `Ok(Some(model))` with a witness, `Ok(None)` when unsatisfiable.
///
/// # Errors
///
/// Returns [`AnalysisError`] when the formula's atoms cannot be typed (see
/// [`TypeEnv::infer`]).
pub fn solve(formula: &Formula) -> Result<Option<Model>, AnalysisError> {
    let atoms = formula.atoms();
    let env = TypeEnv::infer(&atoms)?;
    let index: BTreeMap<_, usize> = atoms
        .iter()
        .enumerate()
        .map(|(i, a)| (a.key(), i))
        .collect();
    let mut assignment: Vec<Option<bool>> = vec![None; atoms.len()];
    let solver = SolverCtx {
        atoms: &atoms,
        index: &index,
        env: &env,
    };
    if solver.dpll(formula, &mut assignment) {
        Ok(Some(solver.build_model(&assignment)))
    } else {
        Ok(None)
    }
}

/// Convenience: satisfiability without a witness.
///
/// # Errors
///
/// As [`solve`].
pub fn satisfiable(formula: &Formula) -> Result<bool, AnalysisError> {
    Ok(solve(formula)?.is_some())
}

struct SolverCtx<'a> {
    atoms: &'a [Atom],
    index: &'a BTreeMap<(AttributeId, CmpOp, String), usize>,
    env: &'a TypeEnv,
}

impl SolverCtx<'_> {
    fn dpll(&self, formula: &Formula, assignment: &mut Vec<Option<bool>>) -> bool {
        if !self.theory_consistent(assignment) {
            return false;
        }
        match self.eval(formula, assignment) {
            PartialEval::Known(false) => false,
            PartialEval::Known(true) => true,
            PartialEval::Needs(i) => {
                for choice in [true, false] {
                    assignment[i] = Some(choice);
                    if self.dpll(formula, assignment) {
                        return true;
                    }
                }
                assignment[i] = None;
                false
            }
        }
    }

    fn atom_index(&self, atom: &Atom) -> usize {
        *self.index.get(&atom.key()).expect("atom was collected")
    }

    fn eval(&self, formula: &Formula, assignment: &[Option<bool>]) -> PartialEval {
        match formula {
            Formula::True => PartialEval::Known(true),
            Formula::False => PartialEval::Known(false),
            Formula::Atom(a) => match assignment[self.atom_index(a)] {
                Some(b) => PartialEval::Known(b),
                None => PartialEval::Needs(self.atom_index(a)),
            },
            Formula::Not(inner) => match self.eval(inner, assignment) {
                PartialEval::Known(b) => PartialEval::Known(!b),
                needs => needs,
            },
            Formula::And(parts) => {
                let mut first_needed: Option<usize> = None;
                for p in parts {
                    match self.eval(p, assignment) {
                        PartialEval::Known(false) => return PartialEval::Known(false),
                        PartialEval::Known(true) => {}
                        PartialEval::Needs(i) => {
                            first_needed.get_or_insert(i);
                        }
                    }
                }
                match first_needed {
                    None => PartialEval::Known(true),
                    Some(i) => PartialEval::Needs(i),
                }
            }
            Formula::Or(parts) => {
                let mut first_needed: Option<usize> = None;
                for p in parts {
                    match self.eval(p, assignment) {
                        PartialEval::Known(true) => return PartialEval::Known(true),
                        PartialEval::Known(false) => {}
                        PartialEval::Needs(i) => {
                            first_needed.get_or_insert(i);
                        }
                    }
                }
                match first_needed {
                    None => PartialEval::Known(false),
                    Some(i) => PartialEval::Needs(i),
                }
            }
        }
    }

    /// Per-attribute theory check of the currently assigned atoms.
    fn theory_consistent(&self, assignment: &[Option<bool>]) -> bool {
        let mut per_attr: BTreeMap<&AttributeId, Vec<(usize, bool)>> = BTreeMap::new();
        for (i, assigned) in assignment.iter().enumerate() {
            if let Some(polarity) = assigned {
                per_attr
                    .entry(&self.atoms[i].attr)
                    .or_default()
                    .push((i, *polarity));
            }
        }
        for (attr, entries) in per_attr {
            let ty = self.env.get(attr).expect("typed attribute");
            if self.witness_for(attr, ty, &entries).is_none() {
                return false;
            }
        }
        true
    }

    /// Finds a concrete value for `attr` satisfying the assigned atoms, or
    /// `None` when they are inconsistent.
    fn witness_for(
        &self,
        attr: &AttributeId,
        ty: ValueType,
        entries: &[(usize, bool)],
    ) -> Option<AttributeValue> {
        // Split into asserted equalities, disequalities and bounds.
        let mut eqs: Vec<&AttributeValue> = Vec::new();
        let mut nes: Vec<&AttributeValue> = Vec::new();
        // numeric bounds as (value, inclusive)
        let mut lowers: Vec<(f64, bool)> = Vec::new();
        let mut uppers: Vec<(f64, bool)> = Vec::new();

        for (i, polarity) in entries {
            let atom = &self.atoms[*i];
            debug_assert_eq!(&atom.attr, attr);
            let effective: Result<CmpOp, ()> = if *polarity {
                Ok(atom.op)
            } else {
                match atom.op.negate() {
                    NegatedOp::Ne => Err(()),
                    NegatedOp::Cmp(op) => Ok(op),
                }
            };
            match effective {
                Err(()) => nes.push(&atom.value),
                Ok(CmpOp::Eq) => eqs.push(&atom.value),
                Ok(CmpOp::Lt) => uppers.push((atom.value.as_f64()?, false)),
                Ok(CmpOp::Le) => uppers.push((atom.value.as_f64()?, true)),
                Ok(CmpOp::Gt) => lowers.push((atom.value.as_f64()?, false)),
                Ok(CmpOp::Ge) => lowers.push((atom.value.as_f64()?, true)),
            }
        }

        if let Some(first) = eqs.first() {
            // All equalities must agree, disequalities must miss, bounds hold.
            if eqs.iter().any(|v| *v != *first) {
                return None;
            }
            if nes.iter().any(|v| *v == *first) {
                return None;
            }
            if let Some(x) = first.as_f64() {
                if !within(x, &lowers, &uppers) {
                    return None;
                }
            } else if !lowers.is_empty() || !uppers.is_empty() {
                return None;
            }
            return Some((*first).clone());
        }

        match ty {
            ValueType::Bool => {
                // Domain {true,false} minus disequalities.
                for candidate in [false, true] {
                    let c = AttributeValue::Bool(candidate);
                    if !nes.iter().any(|v| **v == c) {
                        return Some(c);
                    }
                }
                None
            }
            ValueType::Str => {
                // Infinite domain: any fresh string works.
                for i in 0.. {
                    let c = AttributeValue::Str(format!("w{i}"));
                    if !nes.iter().any(|v| **v == c) {
                        return Some(c);
                    }
                }
                unreachable!()
            }
            ValueType::Numeric { int_only } => numeric_witness(int_only, &lowers, &uppers, &nes),
        }
    }

    fn build_model(&self, assignment: &[Option<bool>]) -> Model {
        let mut per_attr: BTreeMap<&AttributeId, Vec<(usize, bool)>> = BTreeMap::new();
        for (i, assigned) in assignment.iter().enumerate() {
            if let Some(polarity) = assigned {
                per_attr
                    .entry(&self.atoms[i].attr)
                    .or_default()
                    .push((i, *polarity));
            }
        }
        let mut values = BTreeMap::new();
        for (attr, ty) in self.env.iter() {
            let entries = per_attr.get(attr).map(Vec::as_slice).unwrap_or(&[]);
            let v = self
                .witness_for(attr, ty, entries)
                .expect("theory was checked consistent");
            values.insert(attr.clone(), v);
        }
        Model { values }
    }
}

fn within(x: f64, lowers: &[(f64, bool)], uppers: &[(f64, bool)]) -> bool {
    for (lo, inclusive) in lowers {
        if *inclusive {
            if x < *lo {
                return false;
            }
        } else if x <= *lo {
            return false;
        }
    }
    for (hi, inclusive) in uppers {
        if *inclusive {
            if x > *hi {
                return false;
            }
        } else if x >= *hi {
            return false;
        }
    }
    true
}

fn numeric_witness(
    int_only: bool,
    lowers: &[(f64, bool)],
    uppers: &[(f64, bool)],
    nes: &[&AttributeValue],
) -> Option<AttributeValue> {
    let excluded: Vec<f64> = nes.iter().filter_map(|v| v.as_f64()).collect();
    if int_only {
        // Effective integer interval.
        let mut lo = i64::MIN / 4;
        for (v, inclusive) in lowers {
            let bound = if *inclusive {
                v.ceil() as i64
            } else {
                v.floor() as i64 + 1
            };
            lo = lo.max(bound);
        }
        let mut hi = i64::MAX / 4;
        for (v, inclusive) in uppers {
            let bound = if *inclusive {
                v.floor() as i64
            } else {
                v.ceil() as i64 - 1
            };
            hi = hi.min(bound);
        }
        if lo > hi {
            return None;
        }
        // At most |excluded| + 1 candidates needed.
        let mut candidate = lo;
        for _ in 0..=excluded.len() {
            if candidate > hi {
                return None;
            }
            if !excluded.iter().any(|e| *e == candidate as f64) {
                return Some(AttributeValue::Int(candidate));
            }
            candidate += 1;
        }
        None
    } else {
        let lo = lowers
            .iter()
            .map(|(v, _)| *v)
            .fold(f64::NEG_INFINITY, f64::max);
        let hi = uppers.iter().map(|(v, _)| *v).fold(f64::INFINITY, f64::min);
        let lo_strict = lowers.iter().any(|(v, inc)| *v == lo && !*inc);
        let hi_strict = uppers.iter().any(|(v, inc)| *v == hi && !*inc);
        if lo > hi || (lo == hi && (lo_strict || hi_strict)) {
            return None;
        }
        // Pick a midpoint-ish value and nudge around exclusions.
        let base = if lo.is_infinite() && hi.is_infinite() {
            0.0
        } else if lo.is_infinite() {
            hi - 1.0
        } else if hi.is_infinite() {
            lo + 1.0
        } else {
            (lo + hi) / 2.0
        };
        let span = if lo.is_finite() && hi.is_finite() {
            (hi - lo) / 4.0
        } else {
            0.25
        };
        let mut candidates = vec![base];
        for k in 1..=excluded.len() + 2 {
            let delta = span / (k as f64 + 1.0);
            candidates.push(base + delta);
            candidates.push(base - delta);
        }
        if lo.is_finite() && !lo_strict {
            candidates.push(lo);
        }
        if hi.is_finite() && !hi_strict {
            candidates.push(hi);
        }
        candidates
            .into_iter()
            .find(|c| within(*c, lowers, uppers) && !excluded.iter().any(|e| e == c))
            .map(AttributeValue::Double)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_policy::attr::Category;

    fn attr(name: &str) -> AttributeId {
        AttributeId::new(Category::Subject, name)
    }

    fn atom(name: &str, op: CmpOp, v: impl Into<AttributeValue>) -> Formula {
        Formula::Atom(Atom::new(attr(name), op, v.into()))
    }

    #[test]
    fn trivial_formulas() {
        assert!(solve(&Formula::True).unwrap().is_some());
        assert!(solve(&Formula::False).unwrap().is_none());
    }

    #[test]
    fn single_atom_sat_with_witness() {
        let f = atom("role", CmpOp::Eq, "doctor");
        let model = solve(&f).unwrap().unwrap();
        assert_eq!(
            model.values[&attr("role")],
            AttributeValue::Str("doctor".into())
        );
    }

    #[test]
    fn contradictory_equalities_unsat() {
        let f = Formula::and(vec![
            atom("role", CmpOp::Eq, "a"),
            atom("role", CmpOp::Eq, "b"),
        ]);
        assert!(solve(&f).unwrap().is_none());
    }

    #[test]
    fn equality_vs_negated_equality_unsat() {
        let f = Formula::and(vec![
            atom("role", CmpOp::Eq, "a"),
            Formula::not(atom("role", CmpOp::Eq, "a")),
        ]);
        assert!(solve(&f).unwrap().is_none());
    }

    #[test]
    fn interval_reasoning() {
        // 3 < x < 7 is satisfiable
        let f = Formula::and(vec![atom("x", CmpOp::Gt, 3i64), atom("x", CmpOp::Lt, 7i64)]);
        let model = solve(&f).unwrap().unwrap();
        let v = model.values[&attr("x")].as_f64().unwrap();
        assert!(v > 3.0 && v < 7.0);
        // 7 < x < 3 is not
        let f = Formula::and(vec![atom("x", CmpOp::Gt, 7i64), atom("x", CmpOp::Lt, 3i64)]);
        assert!(solve(&f).unwrap().is_none());
    }

    #[test]
    fn integer_tight_interval() {
        // 2 < x < 4 has the single integer solution 3
        let f = Formula::and(vec![atom("x", CmpOp::Gt, 2i64), atom("x", CmpOp::Lt, 4i64)]);
        let model = solve(&f).unwrap().unwrap();
        assert_eq!(model.values[&attr("x")], AttributeValue::Int(3));
        // 2 < x < 3 has none
        let f = Formula::and(vec![atom("x", CmpOp::Gt, 2i64), atom("x", CmpOp::Lt, 3i64)]);
        assert!(solve(&f).unwrap().is_none());
        // …but for doubles it does
        let f = Formula::and(vec![atom("x", CmpOp::Gt, 2.0), atom("x", CmpOp::Lt, 3.0)]);
        assert!(solve(&f).unwrap().is_some());
    }

    #[test]
    fn integer_interval_with_exclusions() {
        // x in [1,3], x != 1, x != 2, x != 3 → unsat
        let f = Formula::and(vec![
            atom("x", CmpOp::Ge, 1i64),
            atom("x", CmpOp::Le, 3i64),
            Formula::not(atom("x", CmpOp::Eq, 1i64)),
            Formula::not(atom("x", CmpOp::Eq, 2i64)),
            Formula::not(atom("x", CmpOp::Eq, 3i64)),
        ]);
        assert!(solve(&f).unwrap().is_none());
        // leave a hole at 2
        let f = Formula::and(vec![
            atom("x", CmpOp::Ge, 1i64),
            atom("x", CmpOp::Le, 3i64),
            Formula::not(atom("x", CmpOp::Eq, 1i64)),
            Formula::not(atom("x", CmpOp::Eq, 3i64)),
        ]);
        let model = solve(&f).unwrap().unwrap();
        assert_eq!(model.values[&attr("x")], AttributeValue::Int(2));
    }

    #[test]
    fn bool_domain_exhaustion() {
        let f = Formula::and(vec![
            Formula::not(atom("b", CmpOp::Eq, true)),
            Formula::not(atom("b", CmpOp::Eq, false)),
        ]);
        assert!(solve(&f).unwrap().is_none());
    }

    #[test]
    fn string_disequalities_always_satisfiable() {
        let f = Formula::and(vec![
            Formula::not(atom("s", CmpOp::Eq, "w0")),
            Formula::not(atom("s", CmpOp::Eq, "w1")),
        ]);
        let model = solve(&f).unwrap().unwrap();
        let v = &model.values[&attr("s")];
        assert_ne!(*v, AttributeValue::Str("w0".into()));
        assert_ne!(*v, AttributeValue::Str("w1".into()));
    }

    #[test]
    fn disjunction_explores_branches() {
        let f = Formula::or(vec![
            Formula::and(vec![
                atom("x", CmpOp::Gt, 5i64),
                atom("x", CmpOp::Lt, 3i64), // unsat branch
            ]),
            atom("role", CmpOp::Eq, "admin"), // sat branch
        ]);
        let model = solve(&f).unwrap().unwrap();
        assert_eq!(
            model.values[&attr("role")],
            AttributeValue::Str("admin".into())
        );
    }

    #[test]
    fn model_converts_to_request() {
        let f = Formula::and(vec![
            atom("role", CmpOp::Eq, "doctor"),
            atom("age", CmpOp::Ge, 30i64),
        ]);
        let req = solve(&f).unwrap().unwrap().to_request();
        assert_eq!(req.bag(Category::Subject, "role").len(), 1);
        assert_eq!(req.bag(Category::Subject, "age").len(), 1);
    }

    #[test]
    fn mixed_int_double_bounds() {
        let f = Formula::and(vec![atom("x", CmpOp::Gt, 1i64), atom("x", CmpOp::Lt, 1.5)]);
        let model = solve(&f).unwrap().unwrap();
        let v = model.values[&attr("x")].as_f64().unwrap();
        assert!(v > 1.0 && v < 1.5);
    }

    #[test]
    fn type_conflicts_surface_as_errors() {
        let f = Formula::and(vec![atom("x", CmpOp::Eq, "s"), atom("x", CmpOp::Eq, 1i64)]);
        assert!(solve(&f).is_err());
    }

    #[test]
    fn equality_outside_bounds_unsat() {
        let f = Formula::and(vec![
            atom("x", CmpOp::Eq, 10i64),
            atom("x", CmpOp::Lt, 5i64),
        ]);
        assert!(solve(&f).unwrap().is_none());
    }
}
