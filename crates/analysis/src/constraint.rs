//! Compilation of policies into constraint formulas.
//!
//! Follows the FACPL analysis approach (paper ref \[8\]): a policy tree is
//! compiled into two boolean formulas over comparison atoms — one
//! characterising the requests that yield **Permit**, one those that yield
//! **Deny** — under the *complete-request assumption*: every attribute the
//! policy mentions is present, single-valued and well-typed. Under that
//! assumption no `Indeterminate` arises and the XACML combining algebra
//! collapses to ordinary boolean structure, which is what makes the
//! encoding exact.
//!
//! The analysable fragment excludes arithmetic over attributes, string
//! ordering and substring predicates; [`compile_bool`] reports these as
//! [`AnalysisError::Unsupported`] rather than approximating.

use drams_policy::attr::{AttributeId, AttributeValue};
use drams_policy::combining::CombiningAlg;
use drams_policy::decision::Effect;
use drams_policy::expr::{Expr, Func};
use drams_policy::policy::{Policy, PolicyChild, PolicySet};
use drams_policy::rule::Rule;
use drams_policy::target::Target;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by the symbolic analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The policy uses a construct outside the analysable fragment.
    Unsupported(String),
    /// An attribute is used with conflicting value types.
    TypeConflict {
        /// The offending attribute.
        attr: String,
        /// The two conflicting types.
        types: (String, String),
    },
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Unsupported(what) => {
                write!(f, "construct outside the analysable fragment: {what}")
            }
            AnalysisError::TypeConflict { attr, types } => {
                write!(
                    f,
                    "attribute `{attr}` used both as {} and as {}",
                    types.0, types.1
                )
            }
        }
    }
}

impl std::error::Error for AnalysisError {}

/// Comparison operator in an atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `attr == value`
    Eq,
    /// `attr < value`
    Lt,
    /// `attr <= value`
    Le,
    /// `attr > value`
    Gt,
    /// `attr >= value`
    Ge,
}

impl CmpOp {
    /// The constraint obtained by negating this one.
    #[must_use]
    pub fn negate(self) -> NegatedOp {
        match self {
            CmpOp::Eq => NegatedOp::Ne,
            CmpOp::Lt => NegatedOp::Cmp(CmpOp::Ge),
            CmpOp::Le => NegatedOp::Cmp(CmpOp::Gt),
            CmpOp::Gt => NegatedOp::Cmp(CmpOp::Le),
            CmpOp::Ge => NegatedOp::Cmp(CmpOp::Lt),
        }
    }

    /// Mirror for swapped operands: `lit op attr` ⇒ `attr mirror(op) lit`.
    #[must_use]
    pub fn mirror(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }
}

/// Negation of a [`CmpOp`]: either another comparison or a disequality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegatedOp {
    /// `attr != value`
    Ne,
    /// An ordinary comparison.
    Cmp(CmpOp),
}

/// An atomic constraint `attr op constant`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Atom {
    /// The constrained attribute.
    pub attr: AttributeId,
    /// The comparison.
    pub op: CmpOp,
    /// The constant operand.
    pub value: AttributeValue,
}

impl Atom {
    /// Creates an atom.
    #[must_use]
    pub fn new(attr: AttributeId, op: CmpOp, value: AttributeValue) -> Self {
        Atom { attr, op, value }
    }

    /// A stable ordering/dedup key (AttributeValue has no `Ord` because of
    /// `f64`, so atoms are keyed by their canonical encoding).
    #[must_use]
    pub fn key(&self) -> (AttributeId, CmpOp, String) {
        (self.attr.clone(), self.op, format!("{}", self.value))
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            CmpOp::Eq => "==",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{} {op} {}", self.attr, self.value)
    }
}

/// A boolean formula over atoms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Formula {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// An atomic constraint.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
}

impl Formula {
    /// Smart conjunction with constant folding.
    #[must_use]
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.remove(0),
            _ => Formula::And(out),
        }
    }

    /// Smart disjunction with constant folding.
    #[must_use]
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::new();
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.remove(0),
            _ => Formula::Or(out),
        }
    }

    /// Smart negation with constant folding and double-negation removal.
    #[must_use]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Collects all distinct atoms (by key) in deterministic order.
    #[must_use]
    pub fn atoms(&self) -> Vec<Atom> {
        let mut map: BTreeMap<(AttributeId, CmpOp, String), Atom> = BTreeMap::new();
        self.collect_atoms(&mut map);
        map.into_values().collect()
    }

    fn collect_atoms(&self, map: &mut BTreeMap<(AttributeId, CmpOp, String), Atom>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom(a) => {
                map.entry(a.key()).or_insert_with(|| a.clone());
            }
            Formula::Not(f) => f.collect_atoms(map),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_atoms(map);
                }
            }
        }
    }

    /// Node count, a rough complexity measure.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => 1,
            Formula::Not(f) => 1 + f.size(),
            Formula::And(fs) | Formula::Or(fs) => 1 + fs.iter().map(Formula::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => f.write_str("true"),
            Formula::False => f.write_str("false"),
            Formula::Atom(a) => write!(f, "({a})"),
            Formula::Not(inner) => write!(f, "¬{inner}"),
            Formula::And(fs) => {
                f.write_str("(")?;
                for (i, part) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∧ ")?;
                    }
                    write!(f, "{part}")?;
                }
                f.write_str(")")
            }
            Formula::Or(fs) => {
                f.write_str("(")?;
                for (i, part) in fs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" ∨ ")?;
                    }
                    write!(f, "{part}")?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Compiles a boolean expression into a formula.
///
/// # Errors
///
/// [`AnalysisError::Unsupported`] for constructs outside the fragment:
/// arithmetic, string ordering (`less` on strings is only detectable at
/// type-inference time, see [`crate::types::TypeEnv`]), `starts-with`,
/// `contains`, `size`, and comparisons between two attributes or two
/// literals.
pub fn compile_bool(expr: &Expr) -> Result<Formula, AnalysisError> {
    match expr {
        Expr::Lit(AttributeValue::Bool(b)) => Ok(if *b { Formula::True } else { Formula::False }),
        Expr::Lit(other) => Err(AnalysisError::Unsupported(format!(
            "non-boolean literal `{other}` in boolean position"
        ))),
        Expr::Attr(id) => Ok(Formula::Atom(Atom::new(
            id.clone(),
            CmpOp::Eq,
            AttributeValue::Bool(true),
        ))),
        Expr::Apply(func, args) => compile_apply(*func, args),
    }
}

fn compile_apply(func: Func, args: &[Expr]) -> Result<Formula, AnalysisError> {
    match func {
        Func::And => {
            let parts = args
                .iter()
                .map(compile_bool)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Formula::and(parts))
        }
        Func::Or => {
            let parts = args
                .iter()
                .map(compile_bool)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Formula::or(parts))
        }
        Func::Not => {
            if args.len() != 1 {
                return Err(AnalysisError::Unsupported("not/≠1 args".into()));
            }
            Ok(Formula::not(compile_bool(&args[0])?))
        }
        Func::Equal
        | Func::NotEqual
        | Func::Less
        | Func::LessEq
        | Func::Greater
        | Func::GreaterEq => {
            if args.len() != 2 {
                return Err(AnalysisError::Unsupported(format!(
                    "{}/{} args",
                    func.name(),
                    args.len()
                )));
            }
            let op = match func {
                Func::Equal | Func::NotEqual => CmpOp::Eq,
                Func::Less => CmpOp::Lt,
                Func::LessEq => CmpOp::Le,
                Func::Greater => CmpOp::Gt,
                Func::GreaterEq => CmpOp::Ge,
                _ => unreachable!(),
            };
            let formula = match (&args[0], &args[1]) {
                (Expr::Attr(id), Expr::Lit(v)) => {
                    Formula::Atom(Atom::new(id.clone(), op, v.clone()))
                }
                (Expr::Lit(v), Expr::Attr(id)) => {
                    Formula::Atom(Atom::new(id.clone(), op.mirror(), v.clone()))
                }
                _ => {
                    return Err(AnalysisError::Unsupported(format!(
                        "`{}` must compare an attribute with a literal",
                        func.name()
                    )))
                }
            };
            Ok(if func == Func::NotEqual {
                Formula::not(formula)
            } else {
                formula
            })
        }
        Func::In => {
            if args.len() != 2 {
                return Err(AnalysisError::Unsupported("in/≠2 args".into()));
            }
            // Under the single-valued assumption, `in(lit, attr)` is
            // equality with the lone value.
            match (&args[0], &args[1]) {
                (Expr::Lit(v), Expr::Attr(id)) => {
                    Ok(Formula::Atom(Atom::new(id.clone(), CmpOp::Eq, v.clone())))
                }
                _ => Err(AnalysisError::Unsupported(
                    "`in` must test a literal against an attribute".into(),
                )),
            }
        }
        other => Err(AnalysisError::Unsupported(format!(
            "function `{}` is outside the analysable fragment",
            other.name()
        ))),
    }
}

/// Compiles a target into its applicability formula.
///
/// # Errors
///
/// Propagates [`AnalysisError::Unsupported`] from the match expressions.
pub fn compile_target(target: &Target) -> Result<Formula, AnalysisError> {
    match target {
        Target::Any => Ok(Formula::True),
        Target::Clauses(clauses) => {
            let mut ands = Vec::new();
            for any_of in clauses {
                let mut ors = Vec::new();
                for all_of in any_of {
                    let ms = all_of
                        .iter()
                        .map(compile_bool)
                        .collect::<Result<Vec<_>, _>>()?;
                    ors.push(Formula::and(ms));
                }
                ands.push(Formula::or(ors));
            }
            Ok(Formula::and(ands))
        }
    }
}

/// The symbolic semantics of a policy element: the formulas over requests
/// under which it evaluates to Permit / Deny (its target-applicability
/// formula is kept separately for `only-one-applicable`).
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolicDecision {
    /// Target applicability.
    pub applicable: Formula,
    /// Requests yielding Permit.
    pub permit: Formula,
    /// Requests yielding Deny.
    pub deny: Formula,
}

impl SymbolicDecision {
    /// Requests yielding NotApplicable (or the `only-one-applicable`
    /// error outcome): neither Permit nor Deny.
    #[must_use]
    pub fn gap(&self) -> Formula {
        Formula::and(vec![
            Formula::not(self.permit.clone()),
            Formula::not(self.deny.clone()),
        ])
    }
}

/// Compiles a rule.
///
/// # Errors
///
/// Propagates [`AnalysisError`] from target/condition compilation.
pub fn compile_rule(rule: &Rule) -> Result<SymbolicDecision, AnalysisError> {
    let target = compile_target(&rule.target)?;
    let condition = match &rule.condition {
        None => Formula::True,
        Some(c) => compile_bool(c)?,
    };
    let fires = Formula::and(vec![target.clone(), condition]);
    let (permit, deny) = match rule.effect {
        Effect::Permit => (fires, Formula::False),
        Effect::Deny => (Formula::False, fires),
    };
    Ok(SymbolicDecision {
        applicable: target,
        permit,
        deny,
    })
}

/// Combines child symbolic decisions under `alg` (complete-request
/// semantics — see module docs).
#[must_use]
pub fn combine_symbolic(alg: CombiningAlg, children: &[SymbolicDecision]) -> SymbolicDecision {
    let any_permit = Formula::or(children.iter().map(|c| c.permit.clone()).collect());
    let any_deny = Formula::or(children.iter().map(|c| c.deny.clone()).collect());
    let applicable = Formula::or(
        children
            .iter()
            .map(|c| c.applicable.clone())
            .collect::<Vec<_>>(),
    );
    let (permit, deny) = match alg {
        CombiningAlg::DenyOverrides => (
            Formula::and(vec![any_permit.clone(), Formula::not(any_deny.clone())]),
            any_deny,
        ),
        CombiningAlg::PermitOverrides => (
            any_permit.clone(),
            Formula::and(vec![any_deny, Formula::not(any_permit)]),
        ),
        CombiningAlg::FirstApplicable => {
            let mut permit_parts = Vec::new();
            let mut deny_parts = Vec::new();
            for (i, child) in children.iter().enumerate() {
                // Child i decides iff it fires and no earlier child fired.
                let mut earlier_silent = Vec::new();
                for earlier in &children[..i] {
                    earlier_silent.push(Formula::not(Formula::or(vec![
                        earlier.permit.clone(),
                        earlier.deny.clone(),
                    ])));
                }
                let guard = Formula::and(earlier_silent);
                permit_parts.push(Formula::and(vec![child.permit.clone(), guard.clone()]));
                deny_parts.push(Formula::and(vec![child.deny.clone(), guard]));
            }
            (Formula::or(permit_parts), Formula::or(deny_parts))
        }
        CombiningAlg::OnlyOneApplicable => {
            let mut permit_parts = Vec::new();
            let mut deny_parts = Vec::new();
            for (i, child) in children.iter().enumerate() {
                let mut others_inapplicable = Vec::new();
                for (j, other) in children.iter().enumerate() {
                    if i != j {
                        others_inapplicable.push(Formula::not(other.applicable.clone()));
                    }
                }
                let alone = Formula::and(others_inapplicable);
                permit_parts.push(Formula::and(vec![
                    child.applicable.clone(),
                    child.permit.clone(),
                    alone.clone(),
                ]));
                deny_parts.push(Formula::and(vec![
                    child.applicable.clone(),
                    child.deny.clone(),
                    alone,
                ]));
            }
            (Formula::or(permit_parts), Formula::or(deny_parts))
        }
        CombiningAlg::DenyUnlessPermit => (any_permit.clone(), Formula::not(any_permit)),
        CombiningAlg::PermitUnlessDeny => (Formula::not(any_deny.clone()), any_deny),
    };
    SymbolicDecision {
        applicable,
        permit,
        deny,
    }
}

/// Compiles a policy.
///
/// # Errors
///
/// Propagates [`AnalysisError`].
pub fn compile_policy(policy: &Policy) -> Result<SymbolicDecision, AnalysisError> {
    let target = compile_target(&policy.target)?;
    let children = policy
        .rules
        .iter()
        .map(compile_rule)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(gate(target, combine_symbolic(policy.algorithm, &children)))
}

/// Compiles a policy set (recursively).
///
/// # Errors
///
/// Propagates [`AnalysisError`].
pub fn compile_policy_set(set: &PolicySet) -> Result<SymbolicDecision, AnalysisError> {
    let target = compile_target(&set.target)?;
    let children = set
        .children
        .iter()
        .map(|c| match c {
            PolicyChild::Policy(p) => compile_policy(p),
            PolicyChild::Set(s) => compile_policy_set(s),
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(gate(target, combine_symbolic(set.algorithm, &children)))
}

/// Gates a combined decision behind the node's own target.
fn gate(target: Formula, inner: SymbolicDecision) -> SymbolicDecision {
    SymbolicDecision {
        applicable: target.clone(),
        permit: Formula::and(vec![target.clone(), inner.permit]),
        deny: Formula::and(vec![target, inner.deny]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_policy::attr::AttributeId;
    use drams_policy::attr::Category;
    use drams_policy::combining::CombiningAlg;
    use drams_policy::decision::Effect;
    use drams_policy::policy::{Policy, PolicySet};
    use drams_policy::rule::Rule;
    use drams_policy::target::Target;

    fn role_eq(v: &str) -> Expr {
        Expr::equal(
            Expr::attr(AttributeId::new(Category::Subject, "role")),
            Expr::lit(v),
        )
    }

    #[test]
    fn compile_simple_equality() {
        let f = compile_bool(&role_eq("doctor")).unwrap();
        assert!(matches!(f, Formula::Atom(_)));
        assert_eq!(f.atoms().len(), 1);
    }

    #[test]
    fn compile_flips_literal_first_comparisons() {
        // less(5, attr) ⇒ attr > 5
        let e = Expr::Apply(
            Func::Less,
            vec![
                Expr::lit(5i64),
                Expr::attr(AttributeId::new(Category::Environment, "hour")),
            ],
        );
        match compile_bool(&e).unwrap() {
            Formula::Atom(a) => assert_eq!(a.op, CmpOp::Gt),
            other => panic!("expected atom, got {other:?}"),
        }
    }

    #[test]
    fn not_equal_compiles_to_negation() {
        let e = Expr::Apply(
            Func::NotEqual,
            vec![
                Expr::attr(AttributeId::new(Category::Subject, "role")),
                Expr::lit("x"),
            ],
        );
        assert!(matches!(compile_bool(&e).unwrap(), Formula::Not(_)));
    }

    #[test]
    fn unsupported_constructs_are_reported() {
        let arith = Expr::Apply(Func::Add, vec![Expr::lit(1i64), Expr::lit(2i64)]);
        assert!(matches!(
            compile_bool(&arith),
            Err(AnalysisError::Unsupported(_))
        ));
        let attr_attr = Expr::equal(
            Expr::attr(AttributeId::new(Category::Subject, "a")),
            Expr::attr(AttributeId::new(Category::Subject, "b")),
        );
        assert!(compile_bool(&attr_attr).is_err());
        let contains = Expr::Apply(
            Func::Contains,
            vec![
                Expr::attr(AttributeId::new(Category::Subject, "a")),
                Expr::lit("x"),
            ],
        );
        assert!(compile_bool(&contains).is_err());
    }

    #[test]
    fn smart_constructors_fold_constants() {
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::True]),
            Formula::True
        );
        assert_eq!(
            Formula::and(vec![Formula::True, Formula::False]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::not(Formula::not(Formula::True)), Formula::True);
    }

    #[test]
    fn rule_symbolic_semantics() {
        let rule = Rule::builder("r", Effect::Permit)
            .target(Target::expr(role_eq("doctor")))
            .build();
        let sym = compile_rule(&rule).unwrap();
        assert_eq!(sym.deny, Formula::False);
        assert_ne!(sym.permit, Formula::False);
    }

    #[test]
    fn deny_overrides_symbolically() {
        let permit_all = compile_rule(&Rule::always("p", Effect::Permit)).unwrap();
        let deny_all = compile_rule(&Rule::always("d", Effect::Deny)).unwrap();
        let combined = combine_symbolic(CombiningAlg::DenyOverrides, &[permit_all, deny_all]);
        // Deny always fires ⇒ permit formula must be unsatisfiable
        // (structurally: permit ∧ ¬deny = true ∧ ¬true = false).
        assert_eq!(combined.permit, Formula::False);
        assert_eq!(combined.deny, Formula::True);
    }

    #[test]
    fn deny_unless_permit_is_total() {
        let na = compile_rule(
            &Rule::builder("r", Effect::Permit)
                .target(Target::expr(role_eq("nobody")))
                .build(),
        )
        .unwrap();
        let combined = combine_symbolic(CombiningAlg::DenyUnlessPermit, &[na]);
        // gap = ¬P ∧ ¬D = ¬P ∧ ¬¬P = false: no request falls through.
        let gap = combined.gap();
        // structurally this folds to a contradiction once solved; here we
        // just check both branches are non-trivial complements.
        assert_eq!(combined.deny, Formula::not(combined.permit.clone()));
        let _ = gap;
    }

    #[test]
    fn policy_set_compilation_recurses() {
        let set = PolicySet::builder("root", CombiningAlg::DenyOverrides)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .target(Target::expr(role_eq("doctor")))
                    .rule(Rule::always("r", Effect::Permit))
                    .build(),
            )
            .build();
        let sym = compile_policy_set(&set).unwrap();
        assert_eq!(sym.permit.atoms().len(), 1);
    }

    #[test]
    fn formula_display_is_readable() {
        let f = compile_bool(&Expr::and(vec![role_eq("a"), Expr::not(role_eq("b"))])).unwrap();
        let s = f.to_string();
        assert!(s.contains("subject.role"));
        assert!(s.contains("∧"));
    }
}
