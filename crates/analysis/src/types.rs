//! Attribute type inference for the symbolic analysis.
//!
//! The solver reasons per attribute, so every attribute must have a single
//! value type across the whole formula. Types are inferred from the
//! constants the policy compares each attribute against; conflicts are
//! reported as [`AnalysisError::TypeConflict`], and ordering comparisons on
//! strings or booleans are rejected as unsupported (the runtime engine
//! evaluates them, but the analyser's witness search does not cover dense
//! string order).

use crate::constraint::{AnalysisError, Atom, CmpOp};
use drams_policy::attr::{AttributeId, AttributeValue};
use std::collections::BTreeMap;

/// The value type of an attribute, from the analyser's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueType {
    /// UTF-8 string (equality/disequality only).
    Str,
    /// Boolean.
    Bool,
    /// Numeric; `int_only` when every constant is an integer, in which
    /// case witnesses are integers too.
    Numeric {
        /// All constants are integers.
        int_only: bool,
    },
}

impl ValueType {
    fn name(self) -> &'static str {
        match self {
            ValueType::Str => "string",
            ValueType::Bool => "bool",
            ValueType::Numeric { .. } => "numeric",
        }
    }
}

/// A typing of every attribute occurring in a formula.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    types: BTreeMap<AttributeId, ValueType>,
}

impl TypeEnv {
    /// Infers types from a set of atoms.
    ///
    /// # Errors
    ///
    /// [`AnalysisError::TypeConflict`] when an attribute is compared with
    /// constants of different classes; [`AnalysisError::Unsupported`] for
    /// order comparisons on strings or booleans.
    pub fn infer(atoms: &[Atom]) -> Result<TypeEnv, AnalysisError> {
        let mut env = TypeEnv::default();
        for atom in atoms {
            let this = match &atom.value {
                AttributeValue::Str(_) => ValueType::Str,
                AttributeValue::Bool(_) => ValueType::Bool,
                AttributeValue::Int(_) => ValueType::Numeric { int_only: true },
                AttributeValue::Double(_) => ValueType::Numeric { int_only: false },
            };
            if atom.op != CmpOp::Eq && matches!(this, ValueType::Str | ValueType::Bool) {
                return Err(AnalysisError::Unsupported(format!(
                    "order comparison on {} attribute `{}`",
                    this.name(),
                    atom.attr
                )));
            }
            match env.types.get_mut(&atom.attr) {
                None => {
                    env.types.insert(atom.attr.clone(), this);
                }
                Some(existing) => match (*existing, this) {
                    (ValueType::Str, ValueType::Str) | (ValueType::Bool, ValueType::Bool) => {}
                    (ValueType::Numeric { int_only: a }, ValueType::Numeric { int_only: b }) => {
                        *existing = ValueType::Numeric { int_only: a && b };
                    }
                    (a, b) => {
                        return Err(AnalysisError::TypeConflict {
                            attr: atom.attr.to_string(),
                            types: (a.name().to_string(), b.name().to_string()),
                        })
                    }
                },
            }
        }
        Ok(env)
    }

    /// The inferred type of an attribute, if it occurs.
    #[must_use]
    pub fn get(&self, attr: &AttributeId) -> Option<ValueType> {
        self.types.get(attr).copied()
    }

    /// Iterates over all typed attributes.
    pub fn iter(&self) -> impl Iterator<Item = (&AttributeId, ValueType)> {
        self.types.iter().map(|(k, v)| (k, *v))
    }

    /// Number of typed attributes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// True when no attribute occurs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_policy::attr::Category;

    fn attr(name: &str) -> AttributeId {
        AttributeId::new(Category::Subject, name)
    }

    #[test]
    fn infers_basic_types() {
        let atoms = vec![
            Atom::new(attr("role"), CmpOp::Eq, AttributeValue::Str("x".into())),
            Atom::new(attr("age"), CmpOp::Lt, AttributeValue::Int(5)),
            Atom::new(attr("flag"), CmpOp::Eq, AttributeValue::Bool(true)),
        ];
        let env = TypeEnv::infer(&atoms).unwrap();
        assert_eq!(env.get(&attr("role")), Some(ValueType::Str));
        assert_eq!(
            env.get(&attr("age")),
            Some(ValueType::Numeric { int_only: true })
        );
        assert_eq!(env.get(&attr("flag")), Some(ValueType::Bool));
        assert_eq!(env.len(), 3);
    }

    #[test]
    fn int_and_double_unify_to_double_witnesses() {
        let atoms = vec![
            Atom::new(attr("x"), CmpOp::Gt, AttributeValue::Int(1)),
            Atom::new(attr("x"), CmpOp::Lt, AttributeValue::Double(2.5)),
        ];
        let env = TypeEnv::infer(&atoms).unwrap();
        assert_eq!(
            env.get(&attr("x")),
            Some(ValueType::Numeric { int_only: false })
        );
    }

    #[test]
    fn string_vs_numeric_conflicts() {
        let atoms = vec![
            Atom::new(attr("x"), CmpOp::Eq, AttributeValue::Str("a".into())),
            Atom::new(attr("x"), CmpOp::Eq, AttributeValue::Int(1)),
        ];
        assert!(matches!(
            TypeEnv::infer(&atoms),
            Err(AnalysisError::TypeConflict { .. })
        ));
    }

    #[test]
    fn string_ordering_is_unsupported() {
        let atoms = vec![Atom::new(
            attr("x"),
            CmpOp::Lt,
            AttributeValue::Str("a".into()),
        )];
        assert!(matches!(
            TypeEnv::infer(&atoms),
            Err(AnalysisError::Unsupported(_))
        ));
    }
}
