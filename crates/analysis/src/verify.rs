//! Runtime decision verification — the Analyser's core check.
//!
//! Paper §II: *"On the base of a logical representation of the access
//! control policies evaluated by the PDP, the Analyser checks if for a
//! given request the calculated response is the expected one."* This module
//! implements that oracle: it holds an independent copy of the authorised
//! policy (pinned by version digest) and re-evaluates every logged
//! (request, response) pair, reporting any divergence.

use drams_crypto::sha256::Digest;
use drams_policy::attr::Request;
use drams_policy::compiled::PreparedPolicySet;
use drams_policy::decision::{Decision, Response};
use drams_policy::policy::PolicySet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Why a logged decision was judged incorrect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The logged decision differs from the recomputed one — either the
    /// PDP lied (altered evaluation process) or the policy it used was not
    /// the authorised one.
    WrongDecision {
        /// Decision the PDP reported.
        claimed: Decision,
        /// Decision the authorised policy actually yields.
        expected: Decision,
    },
    /// The decision matches but the obligation set does not — the PEP
    /// would discharge the wrong duties.
    WrongObligations {
        /// Obligation ids the PDP reported.
        claimed: Vec<String>,
        /// Obligation ids the authorised policy yields.
        expected: Vec<String>,
    },
    /// The response was computed against a policy version other than the
    /// authorised one (unauthorised policy swap at the PRP).
    WrongPolicyVersion {
        /// Version digest in the logged response.
        claimed: Digest,
        /// Authorised version digest.
        expected: Digest,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongDecision { claimed, expected } => {
                write!(
                    f,
                    "decision mismatch: claimed {claimed}, expected {expected}"
                )
            }
            Violation::WrongObligations { claimed, expected } => write!(
                f,
                "obligation mismatch: claimed {claimed:?}, expected {expected:?}"
            ),
            Violation::WrongPolicyVersion { claimed, expected } => write!(
                f,
                "policy version mismatch: claimed {claimed}, expected {expected}"
            ),
        }
    }
}

/// The verdict for one logged decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The logged decision is exactly what the authorised policy yields.
    Consistent,
    /// The logged decision is wrong.
    Violation(Violation),
}

impl Verdict {
    /// True when the decision checked out.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        matches!(self, Verdict::Consistent)
    }
}

/// The decision-verification oracle.
///
/// Holds the authorised policy in both forms: the source tree (for
/// inspection and the interpreted reference path) and the compiled
/// [`PreparedPolicySet`] the re-evaluation hot path runs on — the
/// Analyser replays *every* completed observation group through
/// [`DecisionVerifier::expected_response`], so this is the second
/// heaviest policy-evaluation path after the PDP itself.
#[derive(Debug, Clone)]
pub struct DecisionVerifier {
    policy: PolicySet,
    prepared: Arc<PreparedPolicySet>,
    version: Digest,
}

impl DecisionVerifier {
    /// Creates a verifier pinned to the given authorised policy,
    /// compiling it once.
    #[must_use]
    pub fn new(policy: PolicySet) -> Self {
        let prepared = Arc::new(PreparedPolicySet::compile(&policy));
        let version = prepared.version_digest();
        DecisionVerifier {
            policy,
            prepared,
            version,
        }
    }

    /// The authorised policy version digest.
    #[must_use]
    pub fn authorised_version(&self) -> Digest {
        self.version
    }

    /// The authorised policy (source form).
    #[must_use]
    pub fn policy(&self) -> &PolicySet {
        &self.policy
    }

    /// Replaces the authorised policy (e.g. after a legitimate update
    /// announced through the policy administration channel).
    pub fn set_policy(&mut self, policy: PolicySet) {
        self.prepared = Arc::new(PreparedPolicySet::compile(&policy));
        self.version = self.prepared.version_digest();
        self.policy = policy;
    }

    /// The response the authorised policy yields for `request`
    /// (compiled engine).
    #[must_use]
    pub fn expected_response(&self, request: &Request) -> Response {
        let (extended, obligations) = self.prepared.evaluate(request);
        Response::new(extended, obligations)
    }

    /// The response via the tree-walking reference interpreter — the
    /// oracle the compiled path is cross-checked against in tests and
    /// benches.
    #[must_use]
    pub fn expected_response_interpreted(&self, request: &Request) -> Response {
        let (extended, obligations) = self.policy.evaluate(request);
        Response::new(extended, obligations)
    }

    /// Verifies a logged `(request, response)` pair.
    #[must_use]
    pub fn verify(&self, request: &Request, claimed: &Response) -> Verdict {
        let expected = self.expected_response(request);
        if claimed.decision != expected.decision {
            return Verdict::Violation(Violation::WrongDecision {
                claimed: claimed.decision,
                expected: expected.decision,
            });
        }
        let claimed_obs: Vec<String> = claimed.obligations.iter().map(|o| o.id.clone()).collect();
        let expected_obs: Vec<String> = expected.obligations.iter().map(|o| o.id.clone()).collect();
        if claimed_obs != expected_obs {
            return Verdict::Violation(Violation::WrongObligations {
                claimed: claimed_obs,
                expected: expected_obs,
            });
        }
        Verdict::Consistent
    }

    /// Verifies a logged pair that also carries the policy version it was
    /// evaluated under. A version mismatch is reported even when the
    /// decision happens to coincide — the paper's threat model includes
    /// policy substitution, and a swap that agrees on this request may
    /// diverge on the next.
    #[must_use]
    pub fn verify_versioned(
        &self,
        request: &Request,
        claimed: &Response,
        claimed_version: Digest,
    ) -> Verdict {
        if claimed_version != self.version {
            return Verdict::Violation(Violation::WrongPolicyVersion {
                claimed: claimed_version,
                expected: self.version,
            });
        }
        self.verify(request, claimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_policy::attr::{AttributeId, Category};
    use drams_policy::combining::CombiningAlg;
    use drams_policy::decision::{Effect, ExtDecision, Obligation};
    use drams_policy::expr::Expr;
    use drams_policy::policy::{Policy, PolicySet};
    use drams_policy::rule::Rule;
    use drams_policy::target::Target;

    fn policy() -> PolicySet {
        PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .rule(
                        Rule::builder("allow-doctors", Effect::Permit)
                            .target(Target::expr(Expr::equal(
                                Expr::attr(AttributeId::new(Category::Subject, "role")),
                                Expr::lit("doctor"),
                            )))
                            .obligation(Obligation::new("log", Effect::Permit))
                            .build(),
                    )
                    .build(),
            )
            .build()
    }

    fn doctor() -> Request {
        Request::builder().subject("role", "doctor").build()
    }

    #[test]
    fn consistent_decision_passes() {
        let verifier = DecisionVerifier::new(policy());
        let honest = verifier.expected_response(&doctor());
        assert!(verifier.verify(&doctor(), &honest).is_consistent());
    }

    #[test]
    fn lying_pdp_is_caught() {
        let verifier = DecisionVerifier::new(policy());
        let lie = Response::new(ExtDecision::Deny, vec![]);
        match verifier.verify(&doctor(), &lie) {
            Verdict::Violation(Violation::WrongDecision { claimed, expected }) => {
                assert_eq!(claimed, Decision::Deny);
                assert_eq!(expected, Decision::Permit);
            }
            other => panic!("expected wrong-decision violation, got {other:?}"),
        }
    }

    #[test]
    fn dropped_obligation_is_caught() {
        let verifier = DecisionVerifier::new(policy());
        // Right decision, but the obligation was stripped.
        let stripped = Response::new(ExtDecision::Permit, vec![]);
        match verifier.verify(&doctor(), &stripped) {
            Verdict::Violation(Violation::WrongObligations { expected, .. }) => {
                assert_eq!(expected, vec!["log".to_string()]);
            }
            other => panic!("expected obligation violation, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_caught_even_when_decision_agrees() {
        let verifier = DecisionVerifier::new(policy());
        let honest = verifier.expected_response(&doctor());
        let bogus_version = Digest::of(b"attacker policy");
        match verifier.verify_versioned(&doctor(), &honest, bogus_version) {
            Verdict::Violation(Violation::WrongPolicyVersion { .. }) => {}
            other => panic!("expected version violation, got {other:?}"),
        }
        // Correct version passes through to the decision check.
        assert!(verifier
            .verify_versioned(&doctor(), &honest, verifier.authorised_version())
            .is_consistent());
    }

    #[test]
    fn policy_update_changes_authorised_version() {
        let mut verifier = DecisionVerifier::new(policy());
        let v1 = verifier.authorised_version();
        let new = PolicySet::builder("root2", CombiningAlg::PermitUnlessDeny).build();
        verifier.set_policy(new);
        assert_ne!(verifier.authorised_version(), v1);
        // Everything now permits (permit-unless-deny with no children).
        assert_eq!(
            verifier.expected_response(&doctor()).decision,
            Decision::Permit
        );
    }

    #[test]
    fn compiled_and_interpreted_oracles_agree() {
        let verifier = DecisionVerifier::new(policy());
        for role in ["doctor", "nurse", "admin"] {
            let req = Request::builder().subject("role", role).build();
            assert_eq!(
                verifier.expected_response(&req),
                verifier.expected_response_interpreted(&req)
            );
        }
        // missing attribute → deny-unless-permit collapses Indeterminate
        let empty = Request::new();
        assert_eq!(
            verifier.expected_response(&empty),
            verifier.expected_response_interpreted(&empty)
        );
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::WrongDecision {
            claimed: Decision::Permit,
            expected: Decision::Deny,
        };
        assert!(v.to_string().contains("Permit"));
        assert!(v.to_string().contains("Deny"));
    }
}
