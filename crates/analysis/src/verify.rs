//! Runtime decision verification — the Analyser's core check.
//!
//! Paper §II: *"On the base of a logical representation of the access
//! control policies evaluated by the PDP, the Analyser checks if for a
//! given request the calculated response is the expected one."* This module
//! implements that oracle: it holds an independent copy of the authorised
//! policy (pinned by version digest) and re-evaluates every logged
//! (request, response) pair, reporting any divergence.

use drams_crypto::sha256::Digest;
use drams_policy::attr::Request;
use drams_policy::compiled::PreparedPolicySet;
use drams_policy::decision::{Decision, Response};
use drams_policy::policy::PolicySet;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Why a logged decision was judged incorrect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The logged decision differs from the recomputed one — either the
    /// PDP lied (altered evaluation process) or the policy it used was not
    /// the authorised one.
    WrongDecision {
        /// Decision the PDP reported.
        claimed: Decision,
        /// Decision the authorised policy actually yields.
        expected: Decision,
    },
    /// The decision matches but the obligation set does not — the PEP
    /// would discharge the wrong duties.
    WrongObligations {
        /// Obligation ids the PDP reported.
        claimed: Vec<String>,
        /// Obligation ids the authorised policy yields.
        expected: Vec<String>,
    },
    /// The response was computed against a policy version other than the
    /// authorised one (unauthorised policy swap at the PRP).
    WrongPolicyVersion {
        /// Version digest in the logged response.
        claimed: Digest,
        /// Authorised version digest.
        expected: Digest,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::WrongDecision { claimed, expected } => {
                write!(
                    f,
                    "decision mismatch: claimed {claimed}, expected {expected}"
                )
            }
            Violation::WrongObligations { claimed, expected } => write!(
                f,
                "obligation mismatch: claimed {claimed:?}, expected {expected:?}"
            ),
            Violation::WrongPolicyVersion { claimed, expected } => write!(
                f,
                "policy version mismatch: claimed {claimed}, expected {expected}"
            ),
        }
    }
}

/// The verdict for one logged decision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// The logged decision is exactly what the authorised policy yields.
    Consistent,
    /// The logged decision is wrong.
    Violation(Violation),
}

impl Verdict {
    /// True when the decision checked out.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        matches!(self, Verdict::Consistent)
    }
}

/// The decision-verification oracle.
///
/// Holds the authorised policy in both forms: the source tree (for
/// inspection and the interpreted reference path) and the compiled
/// [`PreparedPolicySet`] the re-evaluation hot path runs on — the
/// Analyser replays *every* completed observation group through
/// [`DecisionVerifier::expected_response`], so this is the second
/// heaviest policy-evaluation path after the PDP itself.
#[derive(Debug, Clone)]
pub struct DecisionVerifier {
    policy: PolicySet,
    prepared: Arc<PreparedPolicySet>,
    version: Digest,
    /// Every version legitimately authorised over the run, including the
    /// current one. During policy churn a decision can be logged under
    /// version *n* and checked after version *n+1* became active; such
    /// in-flight decisions are verified against the version they claim —
    /// provided that version was authorised and *still active when the
    /// decision was taken* — instead of being flagged as swaps. The
    /// second element records when the version was superseded (`None` =
    /// still active): a PDP stuck on a retired version is caught, not
    /// grandfathered forever.
    history: std::collections::HashMap<Digest, (Arc<PreparedPolicySet>, Option<u64>)>,
}

impl DecisionVerifier {
    /// Creates a verifier pinned to the given authorised policy,
    /// compiling it once.
    #[must_use]
    pub fn new(policy: PolicySet) -> Self {
        let prepared = Arc::new(PreparedPolicySet::compile(&policy));
        let version = prepared.version_digest();
        let mut history = std::collections::HashMap::new();
        history.insert(version, (prepared.clone(), None));
        DecisionVerifier {
            policy,
            prepared,
            version,
            history,
        }
    }

    /// The authorised policy version digest (the currently active one).
    #[must_use]
    pub fn authorised_version(&self) -> Digest {
        self.version
    }

    /// Whether `version` was ever legitimately authorised.
    #[must_use]
    pub fn is_authorised_version(&self, version: &Digest) -> bool {
        self.history.contains_key(version)
    }

    /// Number of distinct authorised versions seen so far.
    #[must_use]
    pub fn authorised_version_count(&self) -> usize {
        self.history.len()
    }

    /// The authorised policy (source form).
    #[must_use]
    pub fn policy(&self) -> &PolicySet {
        &self.policy
    }

    /// Replaces the authorised policy and **forgets** all previous
    /// versions (e.g. provisioning a fresh verifier, or revoking a
    /// version retroactively).
    pub fn set_policy(&mut self, policy: PolicySet) {
        self.prepared = Arc::new(PreparedPolicySet::compile(&policy));
        self.version = self.prepared.version_digest();
        self.policy = policy;
        self.history.clear();
        self.history
            .insert(self.version, (self.prepared.clone(), None));
    }

    /// Makes `policy` the active authorised version as of time `now`
    /// while keeping earlier versions authorised for decisions taken
    /// before they were superseded — the legitimate
    /// policy-administration path (publication or rollback through the
    /// PRP). `now` is the activation instant in whatever clock the
    /// deployment logs decision times in (the DES uses virtual
    /// microseconds).
    pub fn publish_policy(&mut self, policy: PolicySet, now: u64) {
        let old = self.version;
        self.prepared = Arc::new(PreparedPolicySet::compile(&policy));
        self.version = self.prepared.version_digest();
        self.policy = policy;
        if old != self.version {
            if let Some((_, retired_at)) = self.history.get_mut(&old) {
                retired_at.get_or_insert(now);
            }
        }
        // The new current version is active again even if it was retired
        // before (rollback re-activates an old digest).
        self.history
            .insert(self.version, (self.prepared.clone(), None));
    }

    /// The response the authorised policy yields for `request`
    /// (compiled engine).
    #[must_use]
    pub fn expected_response(&self, request: &Request) -> Response {
        let (extended, obligations) = self.prepared.evaluate(request);
        Response::new(extended, obligations)
    }

    /// The response via the tree-walking reference interpreter — the
    /// oracle the compiled path is cross-checked against in tests and
    /// benches.
    #[must_use]
    pub fn expected_response_interpreted(&self, request: &Request) -> Response {
        let (extended, obligations) = self.policy.evaluate(request);
        Response::new(extended, obligations)
    }

    /// Verifies a logged `(request, response)` pair.
    #[must_use]
    pub fn verify(&self, request: &Request, claimed: &Response) -> Verdict {
        Self::compare(claimed, &self.expected_response(request))
    }

    fn compare(claimed: &Response, expected: &Response) -> Verdict {
        if claimed.decision != expected.decision {
            return Verdict::Violation(Violation::WrongDecision {
                claimed: claimed.decision,
                expected: expected.decision,
            });
        }
        let claimed_obs: Vec<String> = claimed.obligations.iter().map(|o| o.id.clone()).collect();
        let expected_obs: Vec<String> = expected.obligations.iter().map(|o| o.id.clone()).collect();
        if claimed_obs != expected_obs {
            return Verdict::Violation(Violation::WrongObligations {
                claimed: claimed_obs,
                expected: expected_obs,
            });
        }
        Verdict::Consistent
    }

    /// Verifies a logged pair that also carries the policy version it was
    /// evaluated under. A version outside the authorised history is
    /// reported even when the decision happens to coincide — the paper's
    /// threat model includes policy substitution, and a swap that agrees
    /// on this request may diverge on the next. A superseded-but-
    /// authorised version (in-flight decision during legitimate churn) is
    /// re-evaluated against that version.
    ///
    /// This time-blind variant accepts a superseded version regardless of
    /// when the decision was taken; prefer
    /// [`DecisionVerifier::verify_versioned_at`] when the decision time
    /// is known.
    #[must_use]
    pub fn verify_versioned(
        &self,
        request: &Request,
        claimed: &Response,
        claimed_version: Digest,
    ) -> Verdict {
        self.verify_versioned_inner(request, claimed, claimed_version, None)
    }

    /// Like [`DecisionVerifier::verify_versioned`], but also checks the
    /// decision *time*: a decision logged under a superseded version is
    /// legitimate only if it was taken while that version was still
    /// active — a PDP that keeps serving a retired (perhaps more
    /// permissive) version after a new one activated raises
    /// `WrongPolicyVersion` instead of being grandfathered forever.
    #[must_use]
    pub fn verify_versioned_at(
        &self,
        request: &Request,
        claimed: &Response,
        claimed_version: Digest,
        decided_at: u64,
    ) -> Verdict {
        self.verify_versioned_inner(request, claimed, claimed_version, Some(decided_at))
    }

    /// Drops authorised-history versions retired strictly before
    /// `horizon`, returning how many were removed. The active version is
    /// never dropped (its `retired_at` is `None`).
    ///
    /// This is the retention bound for long-lived federations under
    /// policy churn: once every decision that could legitimately cite a
    /// version has been checked (the caller derives `horizon` from its
    /// oldest unretired observation epoch minus the retry/settle
    /// retention floor), keeping the compiled version around only grows
    /// the history without bound. Decisions citing a pruned version are
    /// subsequently reported as [`Violation::WrongPolicyVersion`] —
    /// exactly what a PDP stuck on a long-retired version deserves.
    pub fn prune_history(&mut self, horizon: u64) -> usize {
        let before = self.history.len();
        self.history
            .retain(|_, (_, retired_at)| retired_at.is_none_or(|t| t >= horizon));
        before - self.history.len()
    }

    fn verify_versioned_inner(
        &self,
        request: &Request,
        claimed: &Response,
        claimed_version: Digest,
        decided_at: Option<u64>,
    ) -> Verdict {
        if claimed_version == self.version {
            return self.verify(request, claimed);
        }
        let Some((prepared, retired_at)) = self.history.get(&claimed_version) else {
            return Verdict::Violation(Violation::WrongPolicyVersion {
                claimed: claimed_version,
                expected: self.version,
            });
        };
        // A decision taken at the activation instant of the successor may
        // legitimately still be the old version's, hence strict `>`.
        if let (Some(decided), Some(retired)) = (decided_at, retired_at) {
            if decided > *retired {
                return Verdict::Violation(Violation::WrongPolicyVersion {
                    claimed: claimed_version,
                    expected: self.version,
                });
            }
        }
        let (extended, obligations) = prepared.evaluate(request);
        Self::compare(claimed, &Response::new(extended, obligations))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_policy::attr::{AttributeId, Category};
    use drams_policy::combining::CombiningAlg;
    use drams_policy::decision::{Effect, ExtDecision, Obligation};
    use drams_policy::expr::Expr;
    use drams_policy::policy::{Policy, PolicySet};
    use drams_policy::rule::Rule;
    use drams_policy::target::Target;

    fn policy() -> PolicySet {
        PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .rule(
                        Rule::builder("allow-doctors", Effect::Permit)
                            .target(Target::expr(Expr::equal(
                                Expr::attr(AttributeId::new(Category::Subject, "role")),
                                Expr::lit("doctor"),
                            )))
                            .obligation(Obligation::new("log", Effect::Permit))
                            .build(),
                    )
                    .build(),
            )
            .build()
    }

    fn doctor() -> Request {
        Request::builder().subject("role", "doctor").build()
    }

    #[test]
    fn consistent_decision_passes() {
        let verifier = DecisionVerifier::new(policy());
        let honest = verifier.expected_response(&doctor());
        assert!(verifier.verify(&doctor(), &honest).is_consistent());
    }

    #[test]
    fn lying_pdp_is_caught() {
        let verifier = DecisionVerifier::new(policy());
        let lie = Response::new(ExtDecision::Deny, vec![]);
        match verifier.verify(&doctor(), &lie) {
            Verdict::Violation(Violation::WrongDecision { claimed, expected }) => {
                assert_eq!(claimed, Decision::Deny);
                assert_eq!(expected, Decision::Permit);
            }
            other => panic!("expected wrong-decision violation, got {other:?}"),
        }
    }

    #[test]
    fn dropped_obligation_is_caught() {
        let verifier = DecisionVerifier::new(policy());
        // Right decision, but the obligation was stripped.
        let stripped = Response::new(ExtDecision::Permit, vec![]);
        match verifier.verify(&doctor(), &stripped) {
            Verdict::Violation(Violation::WrongObligations { expected, .. }) => {
                assert_eq!(expected, vec!["log".to_string()]);
            }
            other => panic!("expected obligation violation, got {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_caught_even_when_decision_agrees() {
        let verifier = DecisionVerifier::new(policy());
        let honest = verifier.expected_response(&doctor());
        let bogus_version = Digest::of(b"attacker policy");
        match verifier.verify_versioned(&doctor(), &honest, bogus_version) {
            Verdict::Violation(Violation::WrongPolicyVersion { .. }) => {}
            other => panic!("expected version violation, got {other:?}"),
        }
        // Correct version passes through to the decision check.
        assert!(verifier
            .verify_versioned(&doctor(), &honest, verifier.authorised_version())
            .is_consistent());
    }

    #[test]
    fn policy_update_changes_authorised_version() {
        let mut verifier = DecisionVerifier::new(policy());
        let v1 = verifier.authorised_version();
        let new = PolicySet::builder("root2", CombiningAlg::PermitUnlessDeny).build();
        verifier.set_policy(new);
        assert_ne!(verifier.authorised_version(), v1);
        // Everything now permits (permit-unless-deny with no children).
        assert_eq!(
            verifier.expected_response(&doctor()).decision,
            Decision::Permit
        );
    }

    #[test]
    fn published_versions_stay_authorised_for_in_flight_decisions() {
        let mut verifier = DecisionVerifier::new(policy());
        let v0 = verifier.authorised_version();
        let v0_response = verifier.expected_response(&doctor());
        // Legitimate churn: a permit-unless-deny policy becomes active.
        let new = PolicySet::builder("root2", CombiningAlg::PermitUnlessDeny).build();
        verifier.publish_policy(new, 1_000);
        let v1 = verifier.authorised_version();
        assert_ne!(v0, v1);
        assert_eq!(verifier.authorised_version_count(), 2);
        assert!(verifier.is_authorised_version(&v0));
        // An in-flight decision logged under v0 verifies against v0…
        assert!(verifier
            .verify_versioned(&doctor(), &v0_response, v0)
            .is_consistent());
        // …but a *wrong* decision under v0 is still caught against v0.
        let nurse = Request::builder().subject("role", "nurse").build();
        let lie = Response::new(ExtDecision::Permit, vec![]);
        assert!(matches!(
            verifier.verify_versioned(&nurse, &lie, v0),
            Verdict::Violation(Violation::WrongDecision { .. })
        ));
        // A never-authorised version remains a swap.
        assert!(matches!(
            verifier.verify_versioned(&doctor(), &v0_response, Digest::of(b"rogue")),
            Verdict::Violation(Violation::WrongPolicyVersion { .. })
        ));
        // set_policy forgets history: v0 becomes unauthorised again.
        verifier.set_policy(policy());
        assert_eq!(verifier.authorised_version_count(), 1);
        assert!(!verifier.is_authorised_version(&v1));
    }

    #[test]
    fn stuck_pdp_on_retired_version_is_caught_by_decision_time() {
        let mut verifier = DecisionVerifier::new(policy());
        let v0 = verifier.authorised_version();
        let v0_response = verifier.expected_response(&doctor());
        let new = PolicySet::builder("root2", CombiningAlg::PermitUnlessDeny).build();
        verifier.publish_policy(new, 1_000);
        // In-flight: decided at (or before) the activation instant — ok.
        assert!(verifier
            .verify_versioned_at(&doctor(), &v0_response, v0, 900)
            .is_consistent());
        assert!(verifier
            .verify_versioned_at(&doctor(), &v0_response, v0, 1_000)
            .is_consistent());
        // Stuck PDP: still deciding under v0 after v1 activated.
        assert!(matches!(
            verifier.verify_versioned_at(&doctor(), &v0_response, v0, 1_001),
            Verdict::Violation(Violation::WrongPolicyVersion { .. })
        ));
        // Rolling back re-activates v0: late v0 decisions are current
        // again, and v1 is now the retired one.
        let v1 = verifier.authorised_version();
        let v1_response = verifier.expected_response(&doctor());
        verifier.publish_policy(policy(), 2_000);
        assert_eq!(verifier.authorised_version(), v0);
        assert!(verifier
            .verify_versioned_at(&doctor(), &v0_response, v0, 5_000)
            .is_consistent());
        assert!(matches!(
            verifier.verify_versioned_at(&doctor(), &v1_response, v1, 3_000),
            Verdict::Violation(Violation::WrongPolicyVersion { .. })
        ));
    }

    #[test]
    fn prune_history_drops_long_retired_versions_only() {
        let mut verifier = DecisionVerifier::new(policy());
        let v0 = verifier.authorised_version();
        let v0_response = verifier.expected_response(&doctor());
        let mid = PolicySet::builder("root2", CombiningAlg::PermitUnlessDeny).build();
        verifier.publish_policy(mid, 1_000);
        let v1 = verifier.authorised_version();
        let newest = PolicySet::builder("root3", CombiningAlg::DenyUnlessPermit).build();
        verifier.publish_policy(newest, 2_000);
        assert_eq!(verifier.authorised_version_count(), 3);

        // Horizon below every retirement: nothing to drop.
        assert_eq!(verifier.prune_history(500), 0);
        // Horizon past v0's retirement (1_000) but not v1's (2_000).
        assert_eq!(verifier.prune_history(1_500), 1);
        assert!(!verifier.is_authorised_version(&v0));
        assert!(verifier.is_authorised_version(&v1));
        // A decision citing the pruned version is now a reported swap,
        // even in-flight.
        assert!(matches!(
            verifier.verify_versioned_at(&doctor(), &v0_response, v0, 900),
            Verdict::Violation(Violation::WrongPolicyVersion { .. })
        ));
        // The active version survives any horizon.
        assert_eq!(verifier.prune_history(u64::MAX), 1);
        assert_eq!(verifier.authorised_version_count(), 1);
        assert!(verifier.is_authorised_version(&verifier.authorised_version()));
    }

    #[test]
    fn prune_history_spares_reactivated_rollback_versions() {
        let mut verifier = DecisionVerifier::new(policy());
        let v0 = verifier.authorised_version();
        let mid = PolicySet::builder("root2", CombiningAlg::PermitUnlessDeny).build();
        verifier.publish_policy(mid, 1_000);
        // Roll back: v0 is active again, so its old retirement must not
        // count against it.
        verifier.publish_policy(policy(), 2_000);
        assert_eq!(verifier.authorised_version(), v0);
        assert_eq!(verifier.prune_history(u64::MAX), 1); // drops only the mid version
        assert!(verifier.is_authorised_version(&v0));
    }

    #[test]
    fn compiled_and_interpreted_oracles_agree() {
        let verifier = DecisionVerifier::new(policy());
        for role in ["doctor", "nurse", "admin"] {
            let req = Request::builder().subject("role", role).build();
            assert_eq!(
                verifier.expected_response(&req),
                verifier.expected_response_interpreted(&req)
            );
        }
        // missing attribute → deny-unless-permit collapses Indeterminate
        let empty = Request::new();
        assert_eq!(
            verifier.expected_response(&empty),
            verifier.expected_response_interpreted(&empty)
        );
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::WrongDecision {
            claimed: Decision::Permit,
            expected: Decision::Deny,
        };
        assert!(v.to_string().contains("Permit"));
        assert!(v.to_string().contains("Deny"));
    }
}
