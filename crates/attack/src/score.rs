//! Detection scoring: joins a run's alerts with the adversary's ground
//! truth into the detection-rate / false-positive / latency numbers of
//! experiment E4.

use crate::threat::ThreatKind;
use drams_core::alert::AlertKind;
use drams_core::monitor::{GroundTruth, MonitorReport};
use drams_faas::msg::CorrelationId;
use std::collections::HashSet;
use std::fmt;

/// Which alert kinds count as detecting a given threat.
#[must_use]
pub fn expected_alert_kinds(threat: ThreatKind) -> &'static [fn(&AlertKind) -> bool] {
    fn is_request_tampering(k: &AlertKind) -> bool {
        matches!(k, AlertKind::RequestTampering)
    }
    fn is_response_tampering(k: &AlertKind) -> bool {
        matches!(k, AlertKind::ResponseTampering)
    }
    fn is_policy_violation(k: &AlertKind) -> bool {
        matches!(k, AlertKind::PolicyViolation)
    }
    fn is_enforcement(k: &AlertKind) -> bool {
        matches!(k, AlertKind::EnforcementMismatch)
    }
    fn is_missing(k: &AlertKind) -> bool {
        matches!(k, AlertKind::MissingLog { .. })
    }
    fn is_monitor_compromise(k: &AlertKind) -> bool {
        matches!(
            k,
            AlertKind::MonitorCompromise
                | AlertKind::ConflictingObservation { .. }
                | AlertKind::RequestTampering
                | AlertKind::ResponseTampering
        )
    }
    fn is_policy_swap(k: &AlertKind) -> bool {
        matches!(
            k,
            AlertKind::WrongPolicyVersion | AlertKind::PolicyViolation
        )
    }
    match threat {
        ThreatKind::TamperRequest => &[is_request_tampering],
        ThreatKind::TamperResponse => &[is_response_tampering],
        ThreatKind::CorruptDecision => &[is_policy_violation],
        ThreatKind::FlipEnforcement => &[is_enforcement],
        ThreatKind::DropLog => &[is_missing],
        // A compromised LI surfaces either as a broken probe MAC or as the
        // digest-mismatch it caused; both mean "monitoring plane attacked".
        ThreatKind::TamperLog => &[is_monitor_compromise],
        ThreatKind::SwapPolicy => &[is_policy_swap],
    }
}

/// Counts how many of `correlations` have **any** alert at all.
///
/// Under composite attacks, threats can mask each other's *signatures*
/// (e.g. dropping the logs of a corrupted decision turns the
/// `PolicyViolation` into a `MissingLog`) while the transaction is still
/// flagged — this is the right detection notion for multi-threat runs.
#[must_use]
pub fn detected_by_any_alert(report: &MonitorReport, correlations: &[CorrelationId]) -> usize {
    let alerted: HashSet<CorrelationId> = report.alerts.iter().map(|a| a.correlation).collect();
    correlations
        .iter()
        .collect::<HashSet<_>>()
        .iter()
        .filter(|c| alerted.contains(c))
        .count()
}

/// Detection score for one threat in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionScore {
    /// The scored threat.
    pub threat: ThreatKind,
    /// Attack actions the adversary actually performed.
    pub attacks: usize,
    /// Attacked transactions for which a matching alert was raised.
    pub detected: usize,
    /// Alerts of the matching kinds on *non-attacked* transactions.
    pub false_positives: usize,
    /// Mean request-issue → alert-committed latency (µs) over detections.
    pub mean_detection_latency_us: f64,
    /// 95th-percentile detection latency (µs).
    pub p95_detection_latency_us: u64,
}

impl DetectionScore {
    /// Detection rate in `[0, 1]`; 1.0 when there were no attacks.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.attacks == 0 {
            1.0
        } else {
            self.detected as f64 / self.attacks as f64
        }
    }
}

impl fmt::Display for DetectionScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} attacks {:>5}  detected {:>5}  rate {:>6.1}%  fp {:>3}  latency {:>9.1}ms (p95 {:>7.1}ms)",
            self.threat.to_string(),
            self.attacks,
            self.detected,
            self.rate() * 100.0,
            self.false_positives,
            self.mean_detection_latency_us / 1_000.0,
            self.p95_detection_latency_us as f64 / 1_000.0,
        )
    }
}

fn attacked_correlations(threat: ThreatKind, truth: &GroundTruth) -> Vec<CorrelationId> {
    match threat {
        ThreatKind::TamperRequest => truth.tampered_requests.clone(),
        ThreatKind::TamperResponse => truth.tampered_responses.clone(),
        ThreatKind::CorruptDecision => truth.corrupted_decisions.clone(),
        ThreatKind::FlipEnforcement => truth.flipped_enforcements.clone(),
        ThreatKind::DropLog => truth.dropped_logs.iter().map(|(c, _)| *c).collect(),
        ThreatKind::TamperLog => truth.tampered_logs.iter().map(|(c, _)| *c).collect(),
        ThreatKind::SwapPolicy => Vec::new(), // policy-level, scored globally
    }
}

/// Scores one run for one threat.
#[must_use]
pub fn score(threat: ThreatKind, report: &MonitorReport, truth: &GroundTruth) -> DetectionScore {
    let matchers = expected_alert_kinds(threat);
    let matches = |k: &AlertKind| matchers.iter().any(|m| m(k));

    if threat == ThreatKind::SwapPolicy {
        // Policy swap is a single global attack; detection = any matching
        // alert at all.
        let detections: Vec<_> = report.alerts.iter().filter(|a| matches(&a.kind)).collect();
        let attacks = usize::from(truth.policy_swapped);
        let detected = usize::from(truth.policy_swapped && !detections.is_empty());
        let false_positives = usize::from(!truth.policy_swapped && !detections.is_empty());
        let mut latencies: Vec<u64> = detections.iter().map(|a| a.detected_at).collect();
        latencies.sort_unstable();
        let first = latencies.first().copied().unwrap_or(0);
        return DetectionScore {
            threat,
            attacks,
            detected,
            false_positives,
            mean_detection_latency_us: first as f64,
            p95_detection_latency_us: first,
        };
    }

    let attacked: HashSet<CorrelationId> =
        attacked_correlations(threat, truth).into_iter().collect();
    let mut detected_set: HashSet<CorrelationId> = HashSet::new();
    let mut false_positives = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    for alert in &report.alerts {
        if !matches(&alert.kind) {
            continue;
        }
        if attacked.contains(&alert.correlation) {
            if detected_set.insert(alert.correlation) {
                latencies.push(alert.detected_at);
            }
        } else {
            false_positives += 1;
        }
    }
    latencies.sort_unstable();
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let p95 = if latencies.is_empty() {
        0
    } else {
        latencies[((latencies.len() as f64 * 0.95).ceil() as usize).saturating_sub(1)]
    };
    DetectionScore {
        threat,
        attacks: attacked.len(),
        detected: detected_set.len(),
        false_positives,
        mean_detection_latency_us: mean,
        p95_detection_latency_us: p95,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_core::alert::Alert;

    fn report_with(alerts: Vec<Alert>) -> MonitorReport {
        MonitorReport {
            alerts,
            ..MonitorReport::default()
        }
    }

    #[test]
    fn perfect_detection_scores_one() {
        let truth = GroundTruth {
            tampered_requests: vec![CorrelationId(1), CorrelationId(2)],
            ..GroundTruth::default()
        };
        let report = report_with(vec![
            Alert::new(AlertKind::RequestTampering, CorrelationId(1), 100, ""),
            Alert::new(AlertKind::RequestTampering, CorrelationId(2), 200, ""),
        ]);
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert_eq!(s.attacks, 2);
        assert_eq!(s.detected, 2);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.rate(), 1.0);
        assert_eq!(s.mean_detection_latency_us, 150.0);
    }

    #[test]
    fn missed_attack_lowers_rate() {
        let truth = GroundTruth {
            tampered_requests: vec![CorrelationId(1), CorrelationId(2)],
            ..GroundTruth::default()
        };
        let report = report_with(vec![Alert::new(
            AlertKind::RequestTampering,
            CorrelationId(1),
            100,
            "",
        )]);
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert_eq!(s.rate(), 0.5);
    }

    #[test]
    fn unrelated_alert_is_false_positive() {
        let truth = GroundTruth::default();
        let report = report_with(vec![Alert::new(
            AlertKind::RequestTampering,
            CorrelationId(9),
            100,
            "",
        )]);
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert_eq!(s.attacks, 0);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.rate(), 1.0); // no attacks to miss
    }

    #[test]
    fn duplicate_alerts_count_once() {
        let truth = GroundTruth {
            corrupted_decisions: vec![CorrelationId(3)],
            ..GroundTruth::default()
        };
        let report = report_with(vec![
            Alert::new(AlertKind::PolicyViolation, CorrelationId(3), 100, ""),
            Alert::new(AlertKind::PolicyViolation, CorrelationId(3), 150, ""),
        ]);
        let s = score(ThreatKind::CorruptDecision, &report, &truth);
        assert_eq!(s.detected, 1);
    }

    #[test]
    fn policy_swap_scored_globally() {
        let truth = GroundTruth {
            policy_swapped: true,
            ..GroundTruth::default()
        };
        let report = report_with(vec![Alert::new(
            AlertKind::WrongPolicyVersion,
            CorrelationId(1),
            500,
            "",
        )]);
        let s = score(ThreatKind::SwapPolicy, &report, &truth);
        assert_eq!(s.attacks, 1);
        assert_eq!(s.detected, 1);
        // undetected swap
        let s2 = score(ThreatKind::SwapPolicy, &report_with(vec![]), &truth);
        assert_eq!(s2.detected, 0);
    }

    #[test]
    fn wrong_alert_kind_does_not_count() {
        let truth = GroundTruth {
            tampered_requests: vec![CorrelationId(1)],
            ..GroundTruth::default()
        };
        let report = report_with(vec![Alert::new(
            AlertKind::ResponseTampering,
            CorrelationId(1),
            100,
            "",
        )]);
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert_eq!(s.detected, 0);
    }
}
