//! Detection scoring: joins a run's alerts with the adversary's ground
//! truth into the detection-rate / false-positive / latency numbers of
//! experiment E4.

use crate::threat::ThreatKind;
use drams_core::alert::{Alert, AlertKind};
use drams_core::monitor::{GroundTruth, MonitorReport};
use drams_faas::msg::CorrelationId;
use std::collections::HashSet;
use std::fmt;

/// Which alert kinds count as detecting a given threat.
#[must_use]
pub fn expected_alert_kinds(threat: ThreatKind) -> &'static [fn(&AlertKind) -> bool] {
    fn is_request_tampering(k: &AlertKind) -> bool {
        matches!(k, AlertKind::RequestTampering)
    }
    fn is_response_tampering(k: &AlertKind) -> bool {
        matches!(k, AlertKind::ResponseTampering)
    }
    fn is_policy_violation(k: &AlertKind) -> bool {
        matches!(k, AlertKind::PolicyViolation)
    }
    fn is_enforcement(k: &AlertKind) -> bool {
        matches!(k, AlertKind::EnforcementMismatch)
    }
    fn is_missing(k: &AlertKind) -> bool {
        matches!(k, AlertKind::MissingLog { .. })
    }
    fn is_monitor_compromise(k: &AlertKind) -> bool {
        matches!(
            k,
            AlertKind::MonitorCompromise
                | AlertKind::ConflictingObservation { .. }
                | AlertKind::RequestTampering
                | AlertKind::ResponseTampering
        )
    }
    fn is_policy_swap(k: &AlertKind) -> bool {
        matches!(
            k,
            AlertKind::WrongPolicyVersion | AlertKind::PolicyViolation
        )
    }
    match threat {
        ThreatKind::TamperRequest => &[is_request_tampering],
        ThreatKind::TamperResponse => &[is_response_tampering],
        ThreatKind::CorruptDecision => &[is_policy_violation],
        ThreatKind::FlipEnforcement => &[is_enforcement],
        ThreatKind::DropLog => &[is_missing],
        // A compromised LI surfaces either as a broken probe MAC or as the
        // digest-mismatch it caused; both mean "monitoring plane attacked".
        ThreatKind::TamperLog => &[is_monitor_compromise],
        ThreatKind::SwapPolicy => &[is_policy_swap],
        // The suppressed PDP-side evidence keeps the group from
        // completing, so the only remaining signature is the timeout; a
        // late-arriving PolicyViolation (if the group did complete) also
        // counts.
        ThreatKind::ColludePdpLi => &[is_missing, is_policy_violation],
        // Spliced stale evidence breaks the probe MAC and mismatches the
        // pairwise digests.
        ThreatKind::ReplayLog => &[is_monitor_compromise],
    }
}

/// Counts how many of `correlations` have **any** alert at all.
///
/// Under composite attacks, threats can mask each other's *signatures*
/// (e.g. dropping the logs of a corrupted decision turns the
/// `PolicyViolation` into a `MissingLog`) while the transaction is still
/// flagged — this is the right detection notion for multi-threat runs.
#[must_use]
pub fn detected_by_any_alert(report: &MonitorReport, correlations: &[CorrelationId]) -> usize {
    let alerted: HashSet<CorrelationId> = report.alerts.iter().map(|a| a.correlation).collect();
    correlations
        .iter()
        .collect::<HashSet<_>>()
        .iter()
        .filter(|c| alerted.contains(c))
        .count()
}

/// Detection score for one threat in one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectionScore {
    /// The scored threat.
    pub threat: ThreatKind,
    /// Attack actions the adversary actually performed.
    pub attacks: usize,
    /// Attacked transactions for which a matching alert was raised.
    pub detected: usize,
    /// Alerts of the matching kinds on *non-attacked* transactions.
    pub false_positives: usize,
    /// Mean request-issue → alert-committed latency (µs) over detections.
    pub mean_detection_latency_us: f64,
    /// 95th-percentile detection latency (µs).
    pub p95_detection_latency_us: u64,
}

impl DetectionScore {
    /// Detection rate in `[0, 1]`; 1.0 when there were no attacks.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.attacks == 0 {
            1.0
        } else {
            self.detected as f64 / self.attacks as f64
        }
    }
}

impl fmt::Display for DetectionScore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<18} attacks {:>5}  detected {:>5}  rate {:>6.1}%  fp {:>3}  latency {:>9.1}ms (p95 {:>7.1}ms)",
            self.threat.to_string(),
            self.attacks,
            self.detected,
            self.rate() * 100.0,
            self.false_positives,
            self.mean_detection_latency_us / 1_000.0,
            self.p95_detection_latency_us as f64 / 1_000.0,
        )
    }
}

fn attacked_correlations(threat: ThreatKind, truth: &GroundTruth) -> Vec<CorrelationId> {
    match threat {
        ThreatKind::TamperRequest => truth.tampered_requests.clone(),
        ThreatKind::TamperResponse => truth.tampered_responses.clone(),
        ThreatKind::CorruptDecision => truth.corrupted_decisions.clone(),
        ThreatKind::FlipEnforcement => truth.flipped_enforcements.clone(),
        ThreatKind::DropLog => truth.dropped_logs.iter().map(|(c, _)| *c).collect(),
        ThreatKind::TamperLog => truth.tampered_logs.iter().map(|(c, _)| *c).collect(),
        ThreatKind::SwapPolicy => Vec::new(), // policy-level, scored globally
        // The collusion is one attack per corrupted decision; the
        // coordinated log suppression is part of the same action.
        ThreatKind::ColludePdpLi => truth.corrupted_decisions.clone(),
        ThreatKind::ReplayLog => truth.replayed_logs.iter().map(|(c, _)| *c).collect(),
    }
}

/// Scores one run for one threat.
#[must_use]
pub fn score(threat: ThreatKind, report: &MonitorReport, truth: &GroundTruth) -> DetectionScore {
    let matchers = expected_alert_kinds(threat);
    let matches = |k: &AlertKind| matchers.iter().any(|m| m(k));

    if threat == ThreatKind::SwapPolicy {
        // Policy swap is a single global attack; detection = any matching
        // alert at all.
        let detections: Vec<_> = report.alerts.iter().filter(|a| matches(&a.kind)).collect();
        let attacks = usize::from(truth.policy_swapped);
        let detected = usize::from(truth.policy_swapped && !detections.is_empty());
        let false_positives = usize::from(!truth.policy_swapped && !detections.is_empty());
        let mut latencies: Vec<u64> = detections.iter().map(|a| a.detected_at).collect();
        latencies.sort_unstable();
        let first = latencies.first().copied().unwrap_or(0);
        return DetectionScore {
            threat,
            attacks,
            detected,
            false_positives,
            mean_detection_latency_us: first as f64,
            p95_detection_latency_us: first,
        };
    }

    let attacked: HashSet<CorrelationId> =
        attacked_correlations(threat, truth).into_iter().collect();
    let mut detected_set: HashSet<CorrelationId> = HashSet::new();
    let mut false_positives = 0usize;
    let mut latencies: Vec<u64> = Vec::new();
    for alert in &report.alerts {
        if !matches(&alert.kind) {
            continue;
        }
        if attacked.contains(&alert.correlation) {
            if detected_set.insert(alert.correlation) {
                latencies.push(alert.detected_at);
            }
        } else {
            false_positives += 1;
        }
    }
    latencies.sort_unstable();
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let p95 = if latencies.is_empty() {
        0
    } else {
        latencies[((latencies.len() as f64 * 0.95).ceil() as usize).saturating_sub(1)]
    };
    DetectionScore {
        threat,
        attacks: attacked.len(),
        detected: detected_set.len(),
        false_positives,
        mean_detection_latency_us: mean,
        p95_detection_latency_us: p95,
    }
}

/// Per-family outcome of the chain-level attack oracle: the Byzantine
/// behaviours that are injected by scenario script rather than by an
/// [`Adversary`](drams_core::adversary::Adversary) hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainAttackScore {
    /// Fork and equivocation imports the ground truth records.
    pub forks_injected: u64,
    /// `MonitorCompromise` alerts carrying a "chain fork" detail.
    pub forks_alerted: u64,
    /// Invalid-signature blocks imported.
    pub invalid_sig_injected: u64,
    /// `MonitorCompromise` alerts naming an invalid transaction signature.
    pub invalid_sig_alerted: u64,
    /// Withheld log entries ((correlation, point) pairs).
    pub withheld_injected: usize,
    /// Withheld entries covered by a matching `MissingLog` alert.
    pub withheld_alerted: usize,
}

impl ChainAttackScore {
    /// True when every injected chain-level attack produced its expected
    /// alert: at least one fork alert per run with fork activity, at
    /// least one invalid-signature audit alert per bad block, and a
    /// `MissingLog` for **each** withheld entry.
    #[must_use]
    pub fn all_detected(&self) -> bool {
        (self.forks_injected == 0 || self.forks_alerted >= 1)
            && self.invalid_sig_alerted >= self.invalid_sig_injected
            && self.withheld_alerted == self.withheld_injected
    }
}

/// Joins a scenario run's alerts with the chain-level ground truth.
#[must_use]
pub fn chain_attack_score(alerts: &[Alert], truth: &GroundTruth) -> ChainAttackScore {
    let forks_alerted = alerts
        .iter()
        .filter(|a| {
            matches!(a.kind, AlertKind::MonitorCompromise) && a.detail.starts_with("chain fork")
        })
        .count() as u64;
    let invalid_sig_alerted = alerts
        .iter()
        .filter(|a| {
            matches!(a.kind, AlertKind::MonitorCompromise)
                && a.detail.contains("invalid transaction signature")
        })
        .count() as u64;
    let withheld_alerted = truth
        .withheld_logs
        .iter()
        .filter(|(corr, point)| {
            alerts.iter().any(|a| {
                a.correlation == *corr
                    && matches!(&a.kind, AlertKind::MissingLog { point: p } if p == point)
            })
        })
        .count();
    ChainAttackScore {
        forks_injected: truth.chain_forks + truth.equivocations,
        forks_alerted,
        invalid_sig_injected: truth.invalid_sig_blocks,
        invalid_sig_alerted,
        withheld_injected: truth.withheld_logs.len(),
        withheld_alerted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(alerts: Vec<Alert>) -> MonitorReport {
        MonitorReport {
            alerts,
            ..MonitorReport::default()
        }
    }

    #[test]
    fn perfect_detection_scores_one() {
        let truth = GroundTruth {
            tampered_requests: vec![CorrelationId(1), CorrelationId(2)],
            ..GroundTruth::default()
        };
        let report = report_with(vec![
            Alert::new(AlertKind::RequestTampering, CorrelationId(1), 100, ""),
            Alert::new(AlertKind::RequestTampering, CorrelationId(2), 200, ""),
        ]);
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert_eq!(s.attacks, 2);
        assert_eq!(s.detected, 2);
        assert_eq!(s.false_positives, 0);
        assert_eq!(s.rate(), 1.0);
        assert_eq!(s.mean_detection_latency_us, 150.0);
    }

    #[test]
    fn missed_attack_lowers_rate() {
        let truth = GroundTruth {
            tampered_requests: vec![CorrelationId(1), CorrelationId(2)],
            ..GroundTruth::default()
        };
        let report = report_with(vec![Alert::new(
            AlertKind::RequestTampering,
            CorrelationId(1),
            100,
            "",
        )]);
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert_eq!(s.rate(), 0.5);
    }

    #[test]
    fn unrelated_alert_is_false_positive() {
        let truth = GroundTruth::default();
        let report = report_with(vec![Alert::new(
            AlertKind::RequestTampering,
            CorrelationId(9),
            100,
            "",
        )]);
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert_eq!(s.attacks, 0);
        assert_eq!(s.false_positives, 1);
        assert_eq!(s.rate(), 1.0); // no attacks to miss
    }

    #[test]
    fn duplicate_alerts_count_once() {
        let truth = GroundTruth {
            corrupted_decisions: vec![CorrelationId(3)],
            ..GroundTruth::default()
        };
        let report = report_with(vec![
            Alert::new(AlertKind::PolicyViolation, CorrelationId(3), 100, ""),
            Alert::new(AlertKind::PolicyViolation, CorrelationId(3), 150, ""),
        ]);
        let s = score(ThreatKind::CorruptDecision, &report, &truth);
        assert_eq!(s.detected, 1);
    }

    #[test]
    fn policy_swap_scored_globally() {
        let truth = GroundTruth {
            policy_swapped: true,
            ..GroundTruth::default()
        };
        let report = report_with(vec![Alert::new(
            AlertKind::WrongPolicyVersion,
            CorrelationId(1),
            500,
            "",
        )]);
        let s = score(ThreatKind::SwapPolicy, &report, &truth);
        assert_eq!(s.attacks, 1);
        assert_eq!(s.detected, 1);
        // undetected swap
        let s2 = score(ThreatKind::SwapPolicy, &report_with(vec![]), &truth);
        assert_eq!(s2.detected, 0);
    }

    #[test]
    fn wrong_alert_kind_does_not_count() {
        let truth = GroundTruth {
            tampered_requests: vec![CorrelationId(1)],
            ..GroundTruth::default()
        };
        let report = report_with(vec![Alert::new(
            AlertKind::ResponseTampering,
            CorrelationId(1),
            100,
            "",
        )]);
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert_eq!(s.detected, 0);
    }
}
