//! Composite adversaries: several threats mounted simultaneously.
//!
//! Real compromises rarely come one at a time — a compromised
//! infrastructure section may tamper responses *and* drop the logs that
//! would expose it. [`CompositeAdversary`] runs any number of scripted
//! single-threat adversaries side by side, preserving per-threat ground
//! truth so detection can still be scored exactly.

use crate::threat::{ScriptedAdversary, ThreatKind};
use drams_core::adversary::Adversary;
use drams_core::logent::LogEntry;
use drams_faas::des::SimTime;
use drams_faas::msg::{RequestEnvelope, ResponseEnvelope};
use drams_policy::policy::PolicySet;

/// Runs several [`ScriptedAdversary`]s at once; a hook fires when any
/// constituent fires (first mutation wins per hook invocation).
#[derive(Debug, Default)]
pub struct CompositeAdversary {
    parts: Vec<ScriptedAdversary>,
}

impl CompositeAdversary {
    /// Creates an empty composite (equivalent to no adversary).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a threat with its firing probability (builder style).
    #[must_use]
    pub fn with(mut self, kind: ThreatKind, probability: f64, seed: u64) -> Self {
        self.parts
            .push(ScriptedAdversary::new(kind, probability, seed));
        self
    }

    /// Number of constituent adversaries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when no threats are configured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

impl Adversary for CompositeAdversary {
    fn tamper_request_in_transit(&mut self, envelope: &mut RequestEnvelope, now: SimTime) -> bool {
        self.parts
            .iter_mut()
            .any(|p| p.tamper_request_in_transit(envelope, now))
    }

    fn tamper_response_in_transit(
        &mut self,
        envelope: &mut ResponseEnvelope,
        now: SimTime,
    ) -> bool {
        self.parts
            .iter_mut()
            .any(|p| p.tamper_response_in_transit(envelope, now))
    }

    fn swap_policy(&mut self, authorised: &PolicySet) -> Option<PolicySet> {
        self.parts
            .iter_mut()
            .find_map(|p| p.swap_policy(authorised))
    }

    fn corrupt_pdp_decision(&mut self, envelope: &mut ResponseEnvelope, now: SimTime) -> bool {
        self.parts
            .iter_mut()
            .any(|p| p.corrupt_pdp_decision(envelope, now))
    }

    fn flip_enforcement(&mut self, granted: &mut bool, now: SimTime) -> bool {
        self.parts
            .iter_mut()
            .any(|p| p.flip_enforcement(granted, now))
    }

    fn drop_log(&mut self, entry: &LogEntry, now: SimTime) -> bool {
        self.parts.iter_mut().any(|p| p.drop_log(entry, now))
    }

    fn tamper_log(&mut self, entry: &mut LogEntry, now: SimTime) -> bool {
        self.parts.iter_mut().any(|p| p.tamper_log(entry, now))
    }

    fn replay_log(&mut self, entry: &mut LogEntry, now: SimTime) -> bool {
        self.parts.iter_mut().any(|p| p.replay_log(entry, now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score;
    use drams_core::monitor::{run_monitor, MonitorConfig};

    #[test]
    fn empty_composite_is_honest() {
        let config = MonitorConfig {
            total_requests: 20,
            ..MonitorConfig::default()
        };
        let (report, truth) = run_monitor(&config, &mut CompositeAdversary::new());
        assert_eq!(truth.total_attacks(), 0);
        assert!(report.alerts.is_empty());
    }

    #[test]
    fn simultaneous_threats_are_all_detected() {
        let config = MonitorConfig {
            total_requests: 120,
            request_rate_per_sec: 120.0,
            seed: 3,
            ..MonitorConfig::default()
        };
        let mut adversary = CompositeAdversary::new()
            .with(ThreatKind::TamperRequest, 0.08, 1)
            .with(ThreatKind::CorruptDecision, 0.08, 2)
            .with(ThreatKind::DropLog, 0.05, 3);
        assert_eq!(adversary.len(), 3);
        let (report, truth) = run_monitor(&config, &mut adversary);
        assert!(truth.tampered_requests.len() > 1);
        assert!(truth.corrupted_decisions.len() > 1);
        assert!(!truth.dropped_logs.is_empty());
        // Simultaneous threats can mask each other's *signatures* (a
        // dropped log turns a PolicyViolation into a MissingLog), so the
        // composite detection notion is any-alert coverage: every attacked
        // transaction must be flagged somehow.
        use crate::score::detected_by_any_alert;
        let dropped: Vec<_> = truth.dropped_logs.iter().map(|(c, _)| *c).collect();
        for (name, attacked) in [
            ("tamper-request", &truth.tampered_requests),
            ("corrupt-decision", &truth.corrupted_decisions),
            ("drop-log", &dropped),
        ] {
            let unique: std::collections::HashSet<_> = attacked.iter().collect();
            let covered = detected_by_any_alert(&report, attacked);
            assert_eq!(
                covered,
                unique.len(),
                "{name}: {covered}/{} attacked transactions flagged",
                unique.len()
            );
        }
        // Signature-exact scoring still holds for the wire-level tamper,
        // whose digest evidence cannot be masked by log drops on *other*
        // observation points of the same transaction.
        let s = score(ThreatKind::TamperRequest, &report, &truth);
        assert!(s.detected <= s.attacks);
    }

    #[test]
    fn composite_preserves_per_threat_attribution() {
        // Request tampering must not inflate response-tamper ground truth.
        let config = MonitorConfig {
            total_requests: 60,
            seed: 5,
            ..MonitorConfig::default()
        };
        let mut adversary = CompositeAdversary::new().with(ThreatKind::TamperRequest, 0.2, 9);
        let (_, truth) = run_monitor(&config, &mut adversary);
        assert!(!truth.tampered_requests.is_empty());
        assert!(truth.tampered_responses.is_empty());
        assert!(truth.corrupted_decisions.is_empty());
    }
}
