//! Schedulable adversaries: fault windows over virtual time.
//!
//! The scenario runtime (`drams_core::scenario`) drives everything off
//! virtual-time events; [`WindowedAdversary`] makes attack campaigns
//! schedulable the same way — any [`Adversary`] is wrapped so its hooks
//! only fire inside declared [`FaultWindow`]s. A scenario can thus model
//! "the LI is compromised between t₁ and t₂" or "requests are tampered
//! only during the burst phase" and score detection against a ground
//! truth that is empty outside the windows.

use drams_core::adversary::Adversary;
use drams_core::logent::LogEntry;
use drams_faas::des::SimTime;
use drams_faas::msg::{RequestEnvelope, ResponseEnvelope};
use drams_policy::policy::PolicySet;

/// A half-open virtual-time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive).
    pub until: SimTime,
}

impl FaultWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics on an empty window (`until <= from`).
    #[must_use]
    pub fn new(from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "fault window must be non-empty");
        FaultWindow { from, until }
    }

    /// Whether `now` falls inside the window.
    #[must_use]
    pub fn contains(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }

    /// Whether the half-open interval `[from, until)` intersects this
    /// window. Used to cross attack windows with fault-plan disruption
    /// windows (e.g. "did this campaign overlap the partition?").
    #[must_use]
    pub fn overlaps(&self, from: SimTime, until: SimTime) -> bool {
        self.from < until && from < self.until
    }
}

/// Wraps any adversary so its hooks fire only inside the given windows.
///
/// Outside every window the wrapper is indistinguishable from
/// [`drams_core::adversary::NoAdversary`] — the inner adversary is not
/// even consulted, so its RNG state does not advance and the attack
/// campaign inside the windows is independent of how long the honest
/// phases last.
#[derive(Debug)]
pub struct WindowedAdversary<A> {
    inner: A,
    windows: Vec<FaultWindow>,
}

impl<A> WindowedAdversary<A> {
    /// Wraps `inner` with the activity `windows`.
    #[must_use]
    pub fn new(inner: A, windows: Vec<FaultWindow>) -> Self {
        WindowedAdversary { inner, windows }
    }

    /// Whether any window covers `now`.
    #[must_use]
    pub fn active_at(&self, now: SimTime) -> bool {
        self.windows.iter().any(|w| w.contains(now))
    }

    /// The wrapped adversary.
    #[must_use]
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: Adversary> Adversary for WindowedAdversary<A> {
    fn tamper_request_in_transit(&mut self, envelope: &mut RequestEnvelope, now: SimTime) -> bool {
        self.active_at(now) && self.inner.tamper_request_in_transit(envelope, now)
    }

    fn tamper_response_in_transit(
        &mut self,
        envelope: &mut ResponseEnvelope,
        now: SimTime,
    ) -> bool {
        self.active_at(now) && self.inner.tamper_response_in_transit(envelope, now)
    }

    fn swap_policy(&mut self, authorised: &PolicySet) -> Option<PolicySet> {
        // Policy swap happens at deployment time (virtual time 0): it
        // fires only when a window covers the start of the run.
        if self.active_at(0) {
            self.inner.swap_policy(authorised)
        } else {
            None
        }
    }

    fn corrupt_pdp_decision(&mut self, envelope: &mut ResponseEnvelope, now: SimTime) -> bool {
        self.active_at(now) && self.inner.corrupt_pdp_decision(envelope, now)
    }

    fn flip_enforcement(&mut self, granted: &mut bool, now: SimTime) -> bool {
        self.active_at(now) && self.inner.flip_enforcement(granted, now)
    }

    fn drop_log(&mut self, entry: &LogEntry, now: SimTime) -> bool {
        self.active_at(now) && self.inner.drop_log(entry, now)
    }

    fn tamper_log(&mut self, entry: &mut LogEntry, now: SimTime) -> bool {
        self.active_at(now) && self.inner.tamper_log(entry, now)
    }

    fn replay_log(&mut self, entry: &mut LogEntry, now: SimTime) -> bool {
        self.active_at(now) && self.inner.replay_log(entry, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score;
    use crate::threat::{ScriptedAdversary, ThreatKind};
    use drams_core::adversary::NoAdversary;
    use drams_core::monitor::{run_monitor, MonitorConfig};
    use drams_faas::des::{MILLIS, SECONDS};
    use drams_faas::model::{PepId, TenantId};
    use drams_faas::msg::CorrelationId;
    use drams_policy::attr::Request;

    fn request_env() -> RequestEnvelope {
        RequestEnvelope {
            correlation: CorrelationId(1),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc".into(),
            request: Request::builder().subject("role", "nurse").build(),
            issued_at: 0,
        }
    }

    #[test]
    fn hooks_fire_only_inside_windows() {
        let inner = ScriptedAdversary::new(ThreatKind::TamperRequest, 1.0, 1);
        let mut adv = WindowedAdversary::new(inner, vec![FaultWindow::new(100, 200)]);
        let mut env = request_env();
        assert!(!adv.tamper_request_in_transit(&mut env, 99));
        assert!(adv.tamper_request_in_transit(&mut env, 100));
        assert!(adv.tamper_request_in_transit(&mut env, 199));
        assert!(!adv.tamper_request_in_transit(&mut env, 200));
    }

    #[test]
    fn multiple_windows_are_unioned() {
        let inner = ScriptedAdversary::new(ThreatKind::FlipEnforcement, 1.0, 2);
        let mut adv = WindowedAdversary::new(
            inner,
            vec![FaultWindow::new(0, 10), FaultWindow::new(50, 60)],
        );
        let mut granted = true;
        assert!(adv.flip_enforcement(&mut granted, 5));
        assert!(!adv.flip_enforcement(&mut granted, 30));
        assert!(adv.flip_enforcement(&mut granted, 55));
    }

    #[test]
    fn swap_policy_needs_a_window_over_deployment_time() {
        let authorised = drams_core::monitor::default_policy();
        let late = ScriptedAdversary::new(ThreatKind::SwapPolicy, 1.0, 3);
        let mut windowed_late = WindowedAdversary::new(late, vec![FaultWindow::new(100, 200)]);
        assert!(windowed_late.swap_policy(&authorised).is_none());
        let early = ScriptedAdversary::new(ThreatKind::SwapPolicy, 1.0, 3);
        let mut windowed_early = WindowedAdversary::new(early, vec![FaultWindow::new(0, 200)]);
        assert!(windowed_early.swap_policy(&authorised).is_some());
    }

    #[test]
    fn no_adversary_stays_silent_even_inside_windows() {
        let mut adv = WindowedAdversary::new(NoAdversary, vec![FaultWindow::new(0, 1_000)]);
        let mut env = request_env();
        assert!(!adv.tamper_request_in_transit(&mut env, 500));
        assert!(adv.active_at(500));
    }

    #[test]
    #[should_panic(expected = "fault window must be non-empty")]
    fn empty_window_panics() {
        let _ = FaultWindow::new(10, 10);
    }

    #[test]
    fn overlaps_uses_half_open_intervals() {
        let w = FaultWindow::new(100, 200);
        assert!(w.overlaps(150, 160)); // fully inside
        assert!(w.overlaps(50, 101)); // clips the start
        assert!(w.overlaps(199, 300)); // clips the end
        assert!(w.overlaps(0, 1_000)); // covers the window
        assert!(!w.overlaps(0, 100)); // ends exactly at the start
        assert!(!w.overlaps(200, 300)); // starts exactly at the end
    }

    /// End-to-end: a windowed campaign only attacks inside the window,
    /// and everything it does is still detected.
    #[test]
    fn windowed_campaign_is_bounded_and_fully_detected() {
        let config = MonitorConfig {
            total_requests: 80,
            request_rate_per_sec: 100.0,
            group_timeout: 2 * SECONDS,
            seed: 21,
            ..MonitorConfig::default()
        };
        let inner = ScriptedAdversary::new(ThreatKind::TamperResponse, 0.5, 9);
        let mut adv =
            WindowedAdversary::new(inner, vec![FaultWindow::new(200 * MILLIS, 500 * MILLIS)]);
        let (report, truth) = run_monitor(&config, &mut adv);
        let s = score(ThreatKind::TamperResponse, &report, &truth);
        assert!(s.attacks > 0, "the window must see some traffic");
        assert!(
            (s.attacks as u64) < config.total_requests / 2,
            "attacks must be bounded by the window, got {}",
            s.attacks
        );
        assert_eq!(s.detected, s.attacks);
        assert_eq!(s.false_positives, 0);
    }
}
