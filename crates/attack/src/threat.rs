//! The threat catalogue and scripted adversaries.
//!
//! One implementation of [`Adversary`] per threat the paper names (§I):
//! modified requests, modified responses, altered policies, altered
//! evaluation process — plus the monitoring-plane attacks DRAMS claims
//! resilience against: dropped logs, tampered logs, compromised LIs.

use drams_core::adversary::Adversary;
use drams_core::logent::{LogEntry, ObservationPoint};
use drams_crypto::sha256::Digest;
use drams_faas::des::SimTime;
use drams_faas::msg::{RequestEnvelope, ResponseEnvelope};
use drams_policy::attr::Category;
use drams_policy::decision::{Decision, ExtDecision, Response};
use drams_policy::policy::PolicySet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The attacks in the evaluation matrix (experiment E4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreatKind {
    /// Modify the access request on the PEP→PDP wire.
    TamperRequest,
    /// Modify the access decision on the PDP→PEP wire.
    TamperResponse,
    /// Make the PDP itself emit a wrong decision (altered evaluation
    /// process).
    CorruptDecision,
    /// Make the PEP enforce the opposite of the decision.
    FlipEnforcement,
    /// Suppress probe logs before they reach the Logging Interface.
    DropLog,
    /// Alter log entries inside a compromised Logging Interface.
    TamperLog,
    /// Replace the policy the PDP evaluates (altered policy).
    SwapPolicy,
    /// A colluding PDP **and** Logging Interface: the PDP emits a wrong
    /// decision and the compromised LI suppresses the PDP-side log entry
    /// that would reveal it. Detection must come from the group timeout,
    /// not from comparing the (suppressed) evidence.
    ColludePdpLi,
    /// A compromised LI replays evidence (digest, sealed payload and
    /// probe MAC) from an earlier entry — possibly another tenant's —
    /// in place of the current observation. The probe MAC binds the
    /// correlation and point, so the stale splice cannot verify.
    ReplayLog,
}

impl ThreatKind {
    /// All nine threats.
    pub const ALL: [ThreatKind; 9] = [
        ThreatKind::TamperRequest,
        ThreatKind::TamperResponse,
        ThreatKind::CorruptDecision,
        ThreatKind::FlipEnforcement,
        ThreatKind::DropLog,
        ThreatKind::TamperLog,
        ThreatKind::SwapPolicy,
        ThreatKind::ColludePdpLi,
        ThreatKind::ReplayLog,
    ];

    /// Short name for tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ThreatKind::TamperRequest => "tamper-request",
            ThreatKind::TamperResponse => "tamper-response",
            ThreatKind::CorruptDecision => "corrupt-decision",
            ThreatKind::FlipEnforcement => "flip-enforcement",
            ThreatKind::DropLog => "drop-log",
            ThreatKind::TamperLog => "tamper-log",
            ThreatKind::SwapPolicy => "swap-policy",
            ThreatKind::ColludePdpLi => "collude-pdp-li",
            ThreatKind::ReplayLog => "replay-log",
        }
    }
}

impl fmt::Display for ThreatKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A scripted adversary: fires one [`ThreatKind`] with a fixed per-event
/// probability.
#[derive(Debug)]
pub struct ScriptedAdversary {
    kind: ThreatKind,
    probability: f64,
    rng: StdRng,
    /// Correlations whose decision this adversary corrupted — the
    /// colluding LI suppresses the PDP-side entries for exactly these
    /// ([`ThreatKind::ColludePdpLi`]).
    colluding: BTreeSet<u64>,
    /// Previously observed entries a replaying LI can splice evidence
    /// from ([`ThreatKind::ReplayLog`]). Bounded; oldest are kept since
    /// staleness is the point.
    stash: Vec<LogEntry>,
}

/// How many donor entries a replaying LI keeps around.
const REPLAY_STASH_CAP: usize = 64;

impl ScriptedAdversary {
    /// Creates an adversary mounting `kind` with the given per-event
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics when `probability` is outside `[0, 1]`.
    #[must_use]
    pub fn new(kind: ThreatKind, probability: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&probability),
            "probability must be in [0, 1]"
        );
        ScriptedAdversary {
            kind,
            probability,
            rng: StdRng::seed_from_u64(seed),
            colluding: BTreeSet::new(),
            stash: Vec::new(),
        }
    }

    /// The threat being mounted.
    #[must_use]
    pub fn kind(&self) -> ThreatKind {
        self.kind
    }

    fn fires(&mut self) -> bool {
        self.probability > 0.0 && self.rng.gen_bool(self.probability)
    }
}

fn flip_response(response: &mut Response) {
    let flipped = match response.decision {
        Decision::Permit => ExtDecision::Deny,
        _ => ExtDecision::Permit,
    };
    *response = Response::new(flipped, response.obligations.clone());
}

impl Adversary for ScriptedAdversary {
    fn tamper_request_in_transit(&mut self, envelope: &mut RequestEnvelope, _now: SimTime) -> bool {
        if self.kind != ThreatKind::TamperRequest || !self.fires() {
            return false;
        }
        // Privilege escalation: rewrite the subject role.
        let mut request = envelope.request.clone();
        request.add(Category::Subject, "role", "doctor");
        envelope.request = request;
        true
    }

    fn tamper_response_in_transit(
        &mut self,
        envelope: &mut ResponseEnvelope,
        _now: SimTime,
    ) -> bool {
        if self.kind != ThreatKind::TamperResponse || !self.fires() {
            return false;
        }
        flip_response(&mut envelope.response);
        true
    }

    fn corrupt_pdp_decision(&mut self, envelope: &mut ResponseEnvelope, _now: SimTime) -> bool {
        let colluding = self.kind == ThreatKind::ColludePdpLi;
        if (self.kind != ThreatKind::CorruptDecision && !colluding) || !self.fires() {
            return false;
        }
        flip_response(&mut envelope.response);
        if colluding {
            // Mark the correlation so the colluding LI knows which
            // PDP-side entries to suppress.
            self.colluding.insert(envelope.correlation.0);
        }
        true
    }

    fn flip_enforcement(&mut self, granted: &mut bool, _now: SimTime) -> bool {
        if self.kind != ThreatKind::FlipEnforcement || !self.fires() {
            return false;
        }
        *granted = !*granted;
        true
    }

    fn drop_log(&mut self, entry: &LogEntry, _now: SimTime) -> bool {
        match self.kind {
            ThreatKind::DropLog => self.fires(),
            // The colluding LI deterministically suppresses the PDP-side
            // evidence of every corrupted decision. PEP-side entries are
            // delivered by the (honest) member-tenant LI, so the group
            // still opens and the timeout sweep can notice the gap.
            ThreatKind::ColludePdpLi => {
                matches!(
                    entry.point,
                    ObservationPoint::PdpRequest | ObservationPoint::PdpResponse
                ) && self.colluding.contains(&entry.correlation.0)
            }
            _ => false,
        }
    }

    fn tamper_log(&mut self, entry: &mut LogEntry, _now: SimTime) -> bool {
        if self.kind != ThreatKind::TamperLog || !self.fires() {
            return false;
        }
        // A compromised LI rewriting the comparable digest; it cannot fix
        // the probe MAC because the key sits in the tenant TPM.
        entry.digest = Digest::of_parts(&[b"li-rewrite", entry.digest.as_bytes()]);
        true
    }

    fn replay_log(&mut self, entry: &mut LogEntry, _now: SimTime) -> bool {
        if self.kind != ThreatKind::ReplayLog {
            return false;
        }
        if self.fires() {
            // Splice the full evidence (digest, sealed payload, MAC) of a
            // stale entry from a *different* correlation — a replaying LI
            // passing off old observations as current. The donor MAC was
            // computed over the donor's correlation and point, so it can
            // never verify against this entry's.
            if let Some(donor) = self
                .stash
                .iter()
                .find(|e| e.correlation != entry.correlation)
            {
                entry.digest = donor.digest;
                entry.sealed_payload = donor.sealed_payload.clone();
                entry.probe_mac = donor.probe_mac;
                return true;
            }
        }
        if self.stash.len() < REPLAY_STASH_CAP {
            self.stash.push(entry.clone());
        }
        false
    }

    fn swap_policy(&mut self, authorised: &PolicySet) -> Option<PolicySet> {
        if self.kind != ThreatKind::SwapPolicy {
            return None;
        }
        // Replace with an open-door policy: everything is permitted.
        use drams_policy::combining::CombiningAlg;
        use drams_policy::decision::Effect;
        use drams_policy::policy::Policy;
        use drams_policy::rule::Rule;
        let _ = authorised;
        Some(
            PolicySet::builder("swapped-root", CombiningAlg::PermitUnlessDeny)
                .policy(
                    Policy::builder("open-door", CombiningAlg::PermitOverrides)
                        .rule(Rule::always("allow-everything", Effect::Permit))
                        .build(),
                )
                .build(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_faas::model::{PepId, TenantId};
    use drams_faas::msg::CorrelationId;
    use drams_policy::attr::Request;

    fn request_env() -> RequestEnvelope {
        RequestEnvelope {
            correlation: CorrelationId(1),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc".into(),
            request: Request::builder().subject("role", "nurse").build(),
            issued_at: 0,
        }
    }

    fn response_env() -> ResponseEnvelope {
        ResponseEnvelope {
            correlation: CorrelationId(1),
            pep: PepId(1),
            response: Response::new(ExtDecision::Deny, vec![]),
            policy_version: Digest::ZERO,
            decided_at: 0,
        }
    }

    #[test]
    fn request_tamper_changes_digest() {
        let mut adv = ScriptedAdversary::new(ThreatKind::TamperRequest, 1.0, 1);
        let mut env = request_env();
        let before = env.digest();
        assert!(adv.tamper_request_in_transit(&mut env, 0));
        assert_ne!(env.digest(), before);
    }

    #[test]
    fn response_tamper_flips_decision() {
        let mut adv = ScriptedAdversary::new(ThreatKind::TamperResponse, 1.0, 1);
        let mut env = response_env();
        assert!(adv.tamper_response_in_transit(&mut env, 0));
        assert_eq!(env.response.decision, Decision::Permit);
        // and the internal consistency of the response is preserved
        assert_eq!(env.response.extended.to_decision(), env.response.decision);
    }

    #[test]
    fn threats_do_not_cross_fire() {
        // A request-tampering adversary never touches responses or logs.
        let mut adv = ScriptedAdversary::new(ThreatKind::TamperRequest, 1.0, 1);
        let mut resp = response_env();
        assert!(!adv.tamper_response_in_transit(&mut resp, 0));
        let mut granted = true;
        assert!(!adv.flip_enforcement(&mut granted, 0));
        assert!(adv
            .swap_policy(&drams_core::monitor::default_policy())
            .is_none());
    }

    #[test]
    fn probability_zero_never_fires() {
        let mut adv = ScriptedAdversary::new(ThreatKind::TamperRequest, 0.0, 1);
        let mut env = request_env();
        for _ in 0..100 {
            assert!(!adv.tamper_request_in_transit(&mut env, 0));
        }
    }

    #[test]
    fn probability_is_respected_statistically() {
        let mut adv = ScriptedAdversary::new(ThreatKind::FlipEnforcement, 0.3, 42);
        let mut fired = 0;
        for _ in 0..10_000 {
            let mut granted = true;
            if adv.flip_enforcement(&mut granted, 0) {
                fired += 1;
            }
        }
        let rate = fired as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn swap_policy_produces_permissive_policy() {
        let mut adv = ScriptedAdversary::new(ThreatKind::SwapPolicy, 1.0, 1);
        let authorised = drams_core::monitor::default_policy();
        let swapped = adv.swap_policy(&authorised).unwrap();
        assert_ne!(swapped.version_digest(), authorised.version_digest());
        // the swapped policy permits a request the authorised one denies
        let req = Request::builder().subject("role", "external").build();
        assert_eq!(swapped.evaluate(&req).0, ExtDecision::Permit);
        assert_eq!(authorised.evaluate(&req).0, ExtDecision::Deny);
    }

    #[test]
    #[should_panic(expected = "probability must be in [0, 1]")]
    fn invalid_probability_panics() {
        let _ = ScriptedAdversary::new(ThreatKind::DropLog, 1.5, 1);
    }
}
