//! Attack-injection framework for the DRAMS evaluation.
//!
//! Implements the paper's threat model (§I: compromised components that
//! modify "access requests or responses … or the policies and the
//! evaluation process", plus attacks "targeting the integrity of the logs
//! or of the monitoring components") as scripted
//! [`Adversary`](drams_core::adversary::Adversary) implementations, and
//! scores detection against exact ground truth.
//!
//! * [`threat`] — the nine-threat catalogue and [`ScriptedAdversary`],
//!   including the colluding PDP+LI and cross-tenant log-replay families.
//! * [`score`](mod@score) — detection rate / false positives / latency scoring.
//! * [`window`] — fault windows: any adversary becomes a schedulable
//!   scenario component active only inside declared virtual-time windows.
//!
//! # Example
//!
//! ```
//! use drams_attack::{ScriptedAdversary, ThreatKind, score};
//! use drams_core::monitor::{run_monitor, MonitorConfig};
//!
//! let config = MonitorConfig { total_requests: 30, ..MonitorConfig::default() };
//! let mut adversary = ScriptedAdversary::new(ThreatKind::TamperRequest, 0.3, 1);
//! let (report, truth) = run_monitor(&config, &mut adversary);
//! let s = score(ThreatKind::TamperRequest, &report, &truth);
//! assert_eq!(s.detected, s.attacks); // every tamper is caught
//! ```

pub mod composite;
pub mod score;
pub mod threat;
pub mod window;

pub use composite::CompositeAdversary;
pub use score::{
    chain_attack_score, detected_by_any_alert, expected_alert_kinds, score, ChainAttackScore,
    DetectionScore,
};
pub use threat::{ScriptedAdversary, ThreatKind};
pub use window::{FaultWindow, WindowedAdversary};
