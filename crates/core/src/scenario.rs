//! The event-driven scenario runtime: Figure 1 as a graph of services.
//!
//! The monolithic monitor loop is decomposed into actor-style
//! [`SimService`]s on the deterministic DES
//! ([`drams_faas::des::ServiceRuntime`]): a workload source, the PEPs
//! with their probes, one-or-more PDPs (central in the infrastructure
//! tenant, or one per member cloud), the per-tenant Logging Interfaces,
//! the chain node with its contract sweep, the Analyser, and a scenario
//! controller. Services share nothing but the simulation context
//! ([`measurement sinks`](crate::monitor::MonitorReport) and the chain
//! substrate); everything between them travels as a typed scheduled
//! event (the private `Msg` enum below).
//!
//! On top of the services sits the declarative [`ScenarioSpec`] layer:
//! phased arrival rates, mid-run policy publication/rollback through the
//! PRP, tenant join/leave churn, per-cloud PDP placement and scripted
//! fault windows (a stalled LI, a silent PDP). The canonical scenario —
//! no phases, central PDP, empty script — reproduces the classic
//! [`run_monitor`](crate::monitor::run_monitor) deployment exactly.
//!
//! A declared [`FaultPlan`] additionally interposes a deterministic
//! [`FaultPlane`] between every service outbox and the event queue:
//! per-link drop / duplicate / reorder / delay faults and timed
//! partitions between named sites. The protocol is robust against it —
//! PEPs retry with capped exponential backoff and fail over through a
//! per-cloud circuit breaker, PDPs answer retransmissions from a
//! journaled decision cache, LIs spill their backlog to the WAL while
//! the chain is unreachable and replay on heal, and the epoch sweep is
//! retuned to a widened group timeout across each disruption window so
//! transient faults never surface as `MissingLog` false positives.
//!
//! # Event taxonomy (service graph)
//!
//! ```text
//! Workload --Intercept--> PEPs --PdpReceive--> PDPs
//!    ^                     ^  \                 |  \
//!    |          PepReceive-+   +--LiDeliver--+  |   +--LiDeliver--+
//!  Arrival                                   v  v                 v
//! Controller --Script/Activate...-->       LIs --(chain submit)--> [node]
//!     |\--PolicyAdmin/SilencePdp--> PDPs    ^
//!     |\--StallLi/ProvisionLi-----> LIs     +--LiFlushTick (self)
//!     |\--ProvisionPep------------> PEPs
//!      \--ProvisionProbeKey/AnalyserPolicy--> Analyser --AnalyserTick (self)
//! Chain --MineTick (self)--> [mines, sweeps epochs, harvests alerts]
//! ```

use crate::adversary::Adversary;
use crate::alert::Alert;
use crate::analyser::Analyser;
use crate::contract::{MonitorContract, GROUP_COMPLETE_EVENT, MONITOR_CONTRACT};
use crate::li::LoggingInterface;
use crate::logent::{LogEntry, ObservationPoint, ProbeId};
use crate::monitor::{GroundTruth, MonitorConfig, MonitorReport};
use crate::probe::Probe;
use drams_chain::block::Block;
use drams_chain::chain::ChainConfig;
use drams_chain::node::Node;
use drams_chain::tx::{Transaction, TxId};
use drams_crypto::aead::SymmetricKey;
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::schnorr::Keypair;
use drams_crypto::sha256::Digest;
use drams_faas::des::{Outbox, ServiceRuntime, SimService, SimTime, MILLIS, SECONDS};
use drams_faas::fault::{FaultPlan, FaultPlane, Site};
use drams_faas::model::{CloudId, LatencyModel, PepId, TenantId, TenantSpec};
use drams_faas::msg::{CorrelationId, RequestEnvelope, ResponseEnvelope};
use drams_faas::pep::Pep;
use drams_faas::prp::Prp;
use drams_faas::transport::{DesTransport, Transport, TransportError, WireFrame, WireRole};
use drams_faas::workload::{PoissonArrivals, RequestGenerator, Vocabulary, Zipf};
use drams_policy::attr::Request;
use drams_policy::policy::PolicySet;
use drams_store::persist::{compact_node_journal, recover_node, WalJournal};
use drams_store::{Durability, MemBackend, SnapshotStore, Wal, WalConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::rc::Rc;

/// Probe ids `>= PDP_PROBE_BASE` belong to per-cloud PDP probes; member
/// PEP probes count up from 1 and the central PDP probe is 0, as in the
/// classic deployment.
pub const PDP_PROBE_BASE: u32 = 0x8000_0000;

// ---------------------------------------------------------------------------
// Named RNG streams
// ---------------------------------------------------------------------------

/// Derives a named, independent RNG stream from the master seed.
///
/// Each simulation component draws from its own stream, so adding a
/// scenario component (or making one draw more often) no longer perturbs
/// every other component's sequence — scenarios stay comparable across
/// variations.
#[must_use]
pub fn stream_rng(master_seed: u64, name: &str) -> StdRng {
    let digest = Digest::of_parts(&[
        b"drams-rng-stream",
        &master_seed.to_be_bytes(),
        name.as_bytes(),
    ]);
    let mut word = [0u8; 8];
    word.copy_from_slice(&digest.as_bytes()[..8]);
    StdRng::seed_from_u64(u64::from_be_bytes(word))
}

/// The per-component streams of one run.
#[derive(Debug)]
pub struct RngStreams {
    /// Arrival gaps, tenant/service selection (the request generator has
    /// its own seed, as before).
    pub workload: StdRng,
    /// Network link latency sampling.
    pub net: StdRng,
    /// Churn timing jitter (tenant join settle time).
    pub churn: StdRng,
    /// Retry backoff jitter. Drawn from only when a retransmission
    /// actually happens, so fault-free runs leave the stream untouched
    /// and stay byte-comparable with pre-fault-plane baselines.
    pub retry: StdRng,
    /// Zipf tenant-rank sampling of the population model. Drawn from
    /// only when a [`LoadProfile`] declares a population, so profile-less
    /// runs leave every other stream's sequence untouched.
    pub population: StdRng,
}

impl RngStreams {
    /// Builds all streams from the master seed.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        RngStreams {
            workload: stream_rng(master_seed, "workload"),
            net: stream_rng(master_seed, "net"),
            churn: stream_rng(master_seed, "churn"),
            retry: stream_rng(master_seed, "retry"),
            population: stream_rng(master_seed, "population"),
        }
    }
}

// ---------------------------------------------------------------------------
// Robustness knobs
// ---------------------------------------------------------------------------

/// First retransmission timeout of a PEP request (well above any
/// round-trip the latency models can produce).
const RETRY_BASE: SimTime = 100 * MILLIS;
/// Exponential backoff ceiling between retransmissions.
const RETRY_CAP: SimTime = 2 * SECONDS;
/// Delivery attempts before the PEP abandons a request for good; the
/// schedule `100ms·2^n` capped at [`RETRY_CAP`] makes this a retry
/// budget of roughly nine seconds — any outage shorter than that is
/// masked, anything longer is a real, monitorable loss.
const MAX_ATTEMPTS: u32 = 8;
/// Worst-case wall time from a request's first send to its abandonment:
/// the first timer is `RETRY_BASE` flat, then each retry waits
/// `backoff + jitter` with `jitter ≤ backoff/4`, so
/// `0.1 + 1.25·(0.2+0.4+0.8+1.6+2+2+2) ≈ 11.35s`. The drain deadline
/// must outlive this or abandonments (and their alerts) are cut off.
const RETRY_BUDGET: SimTime = 12 * SECONDS;
/// Consecutive timeouts on one PDP slot before its circuit breaker
/// opens and the PEP fails over to a healthy slot.
const BREAKER_THRESHOLD: u32 = 3;
/// How long an open breaker refuses traffic before letting one
/// half-open probe through.
const BREAKER_COOLDOWN: SimTime = SECONDS;
/// Settling margin around a declared disruption window: retransmissions
/// queued at the end of a window need `RETRY_CAP` plus commit latency to
/// land, so degraded-mode timeouts stay widened this long past the heal.
pub const FAULT_SETTLE: SimTime = 4 * SECONDS;

/// The MAC key a probe obtains from its tenant TPM at provisioning time
/// (deterministic per probe id, so the Analyser can be provisioned with
/// the same key).
#[must_use]
pub fn probe_mac_key(id: ProbeId) -> [u8; 32] {
    *Digest::of_parts(&[b"probe-mac", &id.0.to_be_bytes()]).as_bytes()
}

// ---------------------------------------------------------------------------
// Overload / population model
// ---------------------------------------------------------------------------

/// Hard ceiling on any effective arrival rate: beyond this the DES would
/// grind through sub-microsecond gaps without modelling anything new.
pub const MAX_REQUEST_RATE: f64 = 50_000.0;
/// Floor for a declared arrival rate: a pathological rate (zero,
/// negative, NaN, infinite) clamps here instead of panicking the Poisson
/// sampler or freezing virtual time.
pub const MIN_REQUEST_RATE: f64 = 0.05;
/// Largest modelled tenant population.
pub const MAX_POPULATION: u32 = 1_000_000;
/// Largest diurnal/spike multiplier, in permille (×100).
pub const MAX_LOAD_MULTIPLIER_PERMILLE: u32 = 100_000;
/// Evictions of the PDP idempotency cache accumulated before its journal
/// is compacted (snapshot of the live window + prune of sealed segments).
const PDP_COMPACT_EVICTIONS: u64 = 256;
/// Floor for any retention/retirement window a [`LoadProfile`] declares:
/// the full retry budget plus the fault settle margin. No retransmission,
/// fault-plane duplicate or post-heal replay can arrive later than this,
/// so state aged out past the floor can never be asked for again —
/// eviction stays invisible to the protocol.
pub const MIN_RETENTION: SimTime = RETRY_BUDGET + FAULT_SETTLE;

/// Clamps a declared Poisson rate into the sane band. Finite in-range
/// rates pass through untouched, so profile-less runs are byte-identical
/// to pre-clamp baselines.
#[must_use]
pub fn clamp_rate(rate_per_sec: f64) -> f64 {
    if rate_per_sec.is_finite() && rate_per_sec > 0.0 {
        rate_per_sec.clamp(MIN_REQUEST_RATE, MAX_REQUEST_RATE)
    } else {
        MIN_REQUEST_RATE
    }
}

/// One band of the diurnal schedule: from `start`, the phased base rate
/// is multiplied by `multiplier_permille`/1000 (1000 = ×1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiurnalBand {
    /// Virtual time the band begins (it lasts until the next band).
    pub start: SimTime,
    /// Rate multiplier in permille.
    pub multiplier_permille: u32,
}

/// A flash-crowd spike layered on top of the diurnal schedule: between
/// `from` and `until`, the rate is additionally multiplied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashCrowd {
    /// Spike start.
    pub from: SimTime,
    /// Spike end (exclusive).
    pub until: SimTime,
    /// Rate multiplier in permille.
    pub multiplier_permille: u32,
}

/// The population/overload model of a scenario: Zipf-skewed traffic over
/// a (virtual) tenant population, diurnal rate schedules, flash-crowd
/// spikes, and the capacity knobs of every bounded state pool. The
/// default (empty) profile changes **nothing** — runs without one take
/// the exact pre-profile code paths and stay byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadProfile {
    /// Virtual tenant-population size the Zipf sampler ranks over; the
    /// sampled rank maps onto the deployed tenants modulo the active
    /// set. 0 = population model off (uniform tenant pick, as before).
    pub population: u32,
    /// Zipf skew exponent (0 = uniform; ~1 is the classic web skew).
    pub zipf_exponent: f64,
    /// Diurnal rate schedule, sorted by start (empty = flat).
    pub diurnal: Vec<DiurnalBand>,
    /// Flash-crowd spikes layered on the schedule.
    pub spikes: Vec<FlashCrowd>,
    /// Admission-control cap on in-flight PEP requests; past it new
    /// arrivals are shed with a typed outcome. 0 = unbounded.
    pub pep_inflight_cap: u32,
    /// High-water mark for LI in-memory buffers; past it entries spill
    /// to the backlog WAL. 0 = unbounded.
    pub li_resident_cap: u32,
    /// Retention window of the PDP's journaled idempotency cache;
    /// entries older than this are evicted and the journal compacted.
    /// 0 = keep forever. Clamped up to [`MIN_RETENTION`].
    pub idempotency_retention: SimTime,
    /// How long after a group's verification the Analyser retires it
    /// (prunes its evidence from contract storage). 0 = never. Clamped
    /// up to [`MIN_RETENTION`].
    pub analyser_retire_lag: SimTime,
    /// How long a superseded authorised-policy version outlives its
    /// retirement before the Analyser drops it from the verification
    /// history. 0 = keep forever. Clamped up to [`MIN_RETENTION`].
    pub policy_history_retention: SimTime,
    /// Compact the chain node's write-ahead journal every this many
    /// blocks (snapshot + prune). 0 = never.
    pub chain_compact_interval: u64,
}

impl Default for LoadProfile {
    fn default() -> Self {
        LoadProfile {
            population: 0,
            zipf_exponent: 1.0,
            diurnal: Vec::new(),
            spikes: Vec::new(),
            pep_inflight_cap: 0,
            li_resident_cap: 0,
            idempotency_retention: 0,
            analyser_retire_lag: 0,
            policy_history_retention: 0,
            chain_compact_interval: 0,
        }
    }
}

impl LoadProfile {
    /// Whether the profile is the default no-op.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == LoadProfile::default()
    }

    /// Validates and clamps every knob into its sane band: pathological
    /// populations, exponents and multipliers are bounded, and any
    /// declared retention/retirement window is floored at
    /// [`MIN_RETENTION`] so eviction can never race the retry budget.
    #[must_use]
    pub fn clamped(&self) -> Self {
        let clamp_mult = |m: u32| -> u32 { m.clamp(1, MAX_LOAD_MULTIPLIER_PERMILLE) };
        LoadProfile {
            population: self.population.min(MAX_POPULATION),
            zipf_exponent: if self.zipf_exponent.is_finite() {
                self.zipf_exponent.clamp(0.0, 8.0)
            } else {
                1.0
            },
            diurnal: self
                .diurnal
                .iter()
                .map(|b| DiurnalBand {
                    start: b.start,
                    multiplier_permille: clamp_mult(b.multiplier_permille),
                })
                .collect(),
            spikes: self
                .spikes
                .iter()
                .map(|s| FlashCrowd {
                    from: s.from,
                    until: s.until.max(s.from),
                    multiplier_permille: clamp_mult(s.multiplier_permille),
                })
                .collect(),
            pep_inflight_cap: self.pep_inflight_cap,
            li_resident_cap: self.li_resident_cap,
            idempotency_retention: if self.idempotency_retention > 0 {
                self.idempotency_retention.max(MIN_RETENTION)
            } else {
                0
            },
            analyser_retire_lag: if self.analyser_retire_lag > 0 {
                self.analyser_retire_lag.max(MIN_RETENTION)
            } else {
                0
            },
            policy_history_retention: if self.policy_history_retention > 0 {
                self.policy_history_retention.max(MIN_RETENTION)
            } else {
                0
            },
            chain_compact_interval: self.chain_compact_interval,
        }
    }

    /// The combined diurnal × spike multiplier at `now`, in permille².
    fn multiplier_at(&self, now: SimTime) -> (u64, u64) {
        let diurnal = self
            .diurnal
            .iter()
            .rev()
            .find(|b| b.start <= now)
            .map_or(1000, |b| u64::from(b.multiplier_permille));
        let spike = self
            .spikes
            .iter()
            .filter(|s| s.from <= now && now < s.until)
            .map(|s| u64::from(s.multiplier_permille))
            .max()
            .unwrap_or(1000);
        (diurnal, spike)
    }

    /// The effective arrival rate at `now` for a phased base rate:
    /// base × diurnal × spike, clamped into the sane band.
    #[must_use]
    pub fn effective_rate(&self, base_rate: f64, now: SimTime) -> f64 {
        let (diurnal, spike) = self.multiplier_at(now);
        #[allow(clippy::cast_precision_loss)]
        clamp_rate(base_rate * (diurnal as f64 / 1000.0) * (spike as f64 / 1000.0))
    }
}

// ---------------------------------------------------------------------------
// Scenario specification
// ---------------------------------------------------------------------------

/// One workload phase: from `start`, requests arrive at `rate_per_sec`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Virtual time the phase begins.
    pub start: SimTime,
    /// Poisson arrival rate while the phase is active.
    pub rate_per_sec: f64,
}

/// Where access decisions are taken.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PdpPlacement {
    /// One PDP in the infrastructure tenant (the classic deployment);
    /// PEPs reach it over the federation link.
    Central,
    /// One PDP per member cloud (the paper's Figure-1 federation:
    /// decisions are taken where the requests originate); PEPs reach
    /// their cloud's PDP over the local link.
    PerCloud,
}

/// A scripted, virtually-timed scenario action.
#[derive(Debug, Clone)]
pub enum ScriptedAction {
    /// Legitimate policy administration: publish a new version through
    /// the PRP; every PDP switches to it and the Analyser authorises it.
    PublishPolicy {
        /// When to publish.
        at: SimTime,
        /// The new policy.
        policy: PolicySet,
    },
    /// Legitimate rollback: re-activate a previously published version.
    RollbackPolicy {
        /// When to roll back.
        at: SimTime,
        /// The PRP version number to restore (0 = initial).
        version: u64,
    },
    /// A new tenant joins a member cloud: PEP, probe and LI are
    /// provisioned, the Analyser learns the probe key, then the workload
    /// starts routing requests to it.
    TenantJoin {
        /// When the join begins.
        at: SimTime,
        /// The cloud the tenant joins.
        cloud: CloudId,
        /// Services hosted by the new tenant.
        services: u32,
    },
    /// A tenant leaves gracefully: the workload stops targeting it
    /// immediately; its PEP and LI stay alive to drain in-flight work.
    TenantLeave {
        /// When the leave takes effect.
        at: SimTime,
        /// The departing tenant.
        tenant: TenantId,
    },
    /// Fault window: the tenant's Logging Interface stops submitting;
    /// observations buffer and drain when the window closes.
    StallLi {
        /// Window start.
        at: SimTime,
        /// Window end.
        until: SimTime,
        /// Whose LI ([`TenantId::INFRASTRUCTURE`] = the infra LI).
        tenant: TenantId,
    },
    /// Fault window: a PDP goes silent — requests routed to it are
    /// neither observed nor answered.
    SilencePdp {
        /// Window start.
        at: SimTime,
        /// Window end.
        until: SimTime,
        /// Which cloud's PDP (any value selects the central PDP under
        /// [`PdpPlacement::Central`]).
        cloud: CloudId,
    },
    /// Fault: a monitoring-plane service crashes, losing all in-memory
    /// state, and restarts from its durable store (the chain node's
    /// write-ahead journal, the LI's backlog WAL, the Analyser's
    /// verification checkpoint). The E11 acceptance bar is that the run
    /// then proceeds **byte-identically** to the uninterrupted run —
    /// recovery loses nothing and repeats nothing.
    CrashRestart {
        /// When the crash-and-restart happens (the restart is modelled
        /// as instantaneous in virtual time; events in flight to the
        /// service are delivered to the recovered instance).
        at: SimTime,
        /// Which service crashes.
        target: CrashTarget,
    },
    /// Chain attack: a hostile miner re-mines the top `depth` blocks of
    /// the main chain on a side branch (same transactions, shifted
    /// timestamps) and extends it by one empty block, forcing a reorg of
    /// the honest node. Contract state replays identically, so the
    /// monitoring pipeline keeps running — only the Analyser's
    /// sibling-block sweep can tell the history was rewritten.
    ForkChain {
        /// When the rewrite lands.
        at: SimTime,
        /// How many tip blocks the attacker rewrites (clamped to the
        /// blocks above genesis).
        depth: u64,
    },
    /// Byzantine chain node: mines **two** sibling blocks at the same
    /// height on the same parent (different timestamps) and feeds both
    /// to the network. One becomes a stale sibling — equivocation that
    /// the Analyser's sibling-block sweep must flag.
    EquivocateBlock {
        /// When the equivocation happens.
        at: SimTime,
    },
    /// Byzantine chain node: injects a structurally valid,
    /// sufficiently-worked block that carries a transaction with a
    /// forged signature. A node that skips signature verification
    /// accepts it; the Analyser's independent audit must flag it.
    InvalidSignatureBlock {
        /// When the block is injected.
        at: SimTime,
    },
    /// Byzantine chain node: silently discards one pending log
    /// transaction from its mempool (a withheld commit) — the youngest
    /// one of its Logging Interface, so the freed nonce slot is simply
    /// reused by the LI's next flush. The entries the withheld
    /// transaction carried never reach the chain, so the contract's
    /// epoch sweep must raise `MissingLog` for each of them, and
    /// nothing else may be disturbed.
    WithholdTx {
        /// When the transaction is discarded.
        at: SimTime,
    },
}

/// The service a [`ScriptedAction::CrashRestart`] kills and restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashTarget {
    /// The blockchain node: chain, contract state and mempool are
    /// rebuilt by replaying its write-ahead journal.
    ChainNode,
    /// A tenant's Logging Interface ([`TenantId::INFRASTRUCTURE`] = the
    /// infra LI): the unflushed batch backlog is recovered from its WAL.
    Li(TenantId),
    /// The Analyser: resumes from its verification checkpoint without
    /// re-scanning the chain or re-raising alerts.
    Analyser,
    /// A cloud's PDP (any value selects the central PDP under
    /// [`PdpPlacement::Central`]): the engine is rebuilt from the PRP's
    /// durable active policy and the as-sent decision cache plus any
    /// standing silence window replay from the slot's write-ahead
    /// journal, so a retransmission answered after the restart is
    /// byte-identical to one answered before it.
    Pdp(CloudId),
}

impl ScriptedAction {
    /// The virtual time the action fires.
    #[must_use]
    pub fn at(&self) -> SimTime {
        match self {
            ScriptedAction::PublishPolicy { at, .. }
            | ScriptedAction::RollbackPolicy { at, .. }
            | ScriptedAction::TenantJoin { at, .. }
            | ScriptedAction::TenantLeave { at, .. }
            | ScriptedAction::StallLi { at, .. }
            | ScriptedAction::SilencePdp { at, .. }
            | ScriptedAction::CrashRestart { at, .. }
            | ScriptedAction::ForkChain { at, .. }
            | ScriptedAction::EquivocateBlock { at }
            | ScriptedAction::InvalidSignatureBlock { at }
            | ScriptedAction::WithholdTx { at } => *at,
        }
    }
}

/// A declarative end-to-end scenario: base deployment knobs plus phased
/// load, PDP placement and a script of timed actions.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (tables, trajectory files).
    pub name: String,
    /// The base deployment knobs.
    pub config: MonitorConfig,
    /// Workload phases, sorted by start time. Empty = constant
    /// `config.request_rate_per_sec`.
    pub phases: Vec<Phase>,
    /// Where decisions are taken.
    pub placement: PdpPlacement,
    /// Timed scenario actions.
    pub script: Vec<ScriptedAction>,
    /// The deterministic network fault plan (empty = perfect network).
    pub faults: FaultPlan,
    /// The population/overload model (empty = no overload machinery).
    pub load: LoadProfile,
}

impl ScenarioSpec {
    /// The canonical scenario: exactly the classic fixed-topology
    /// single-PDP run of [`crate::monitor::run_monitor`].
    #[must_use]
    pub fn canonical(config: &MonitorConfig) -> Self {
        ScenarioSpec {
            name: "canonical".to_string(),
            config: config.clone(),
            phases: Vec::new(),
            placement: PdpPlacement::Central,
            script: Vec::new(),
            faults: FaultPlan::default(),
            load: LoadProfile::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Policy-administration actions routed to the PDP service (which owns
/// the PRP).
#[derive(Debug)]
enum PolicyAdmin {
    Publish(PolicySet),
    Rollback(u64),
}

/// The typed events on the wire between services.
#[derive(Debug)]
enum Msg {
    // → workload source
    Arrival,
    // → PEP service
    Intercept {
        tenant: usize,
        service: String,
        request: Request,
    },
    /// A decision coming back from PDP slot `slot` (the sender matters
    /// to the fault plane's link matching and the breaker bookkeeping).
    PepReceive {
        slot: usize,
        env: ResponseEnvelope,
    },
    /// Retransmission timer for attempt `attempt` of an in-flight
    /// request; a no-op when the response already arrived.
    PepRetry {
        correlation: CorrelationId,
        attempt: u32,
    },
    ProvisionPep {
        tenant: usize,
    },
    // → PDP service
    PdpReceive {
        slot: usize,
        env: RequestEnvelope,
    },
    PolicyAdmin(PolicyAdmin),
    SilencePdp {
        slot: usize,
        until: SimTime,
    },
    CrashPdp {
        slot: usize,
    },
    // → LI service
    LiDeliver {
        li: usize,
        entry: LogEntry,
    },
    LiFlushTick {
        li: usize,
    },
    StallLi {
        li: usize,
        until: SimTime,
    },
    ProvisionLi {
        li: usize,
    },
    CrashLi {
        li: usize,
    },
    // → chain service
    MineTick,
    CrashChain,
    /// Degraded-mode retune: point the epoch sweep at a new group
    /// timeout (widened across a disruption window, restored after it).
    SetTimeout {
        timeout: SimTime,
    },
    // → analyser service
    AnalyserTick,
    AnalyserPolicy(PolicySet),
    ProvisionProbeKey {
        probe: ProbeId,
    },
    CrashAnalyser,
    // → scenario controller
    Script(usize),
    ActivateTenant {
        tenant: usize,
    },
}

// Service registration indices; the router below is the service graph's
// address table.
const SVC_WORKLOAD: usize = 0;
const SVC_PEP: usize = 1;
const SVC_PDP: usize = 2;
const SVC_LI: usize = 3;
const SVC_CHAIN: usize = 4;
const SVC_ANALYSER: usize = 5;
const SVC_CONTROLLER: usize = 6;

fn route(msg: &Msg) -> usize {
    match msg {
        Msg::Arrival => SVC_WORKLOAD,
        Msg::Intercept { .. }
        | Msg::PepReceive { .. }
        | Msg::PepRetry { .. }
        | Msg::ProvisionPep { .. } => SVC_PEP,
        Msg::PdpReceive { .. }
        | Msg::PolicyAdmin(_)
        | Msg::SilencePdp { .. }
        | Msg::CrashPdp { .. } => SVC_PDP,
        Msg::LiDeliver { .. }
        | Msg::LiFlushTick { .. }
        | Msg::StallLi { .. }
        | Msg::ProvisionLi { .. }
        | Msg::CrashLi { .. } => SVC_LI,
        Msg::MineTick | Msg::CrashChain | Msg::SetTimeout { .. } => SVC_CHAIN,
        Msg::AnalyserTick
        | Msg::AnalyserPolicy(_)
        | Msg::ProvisionProbeKey { .. }
        | Msg::CrashAnalyser => SVC_ANALYSER,
        Msg::Script(_) | Msg::ActivateTenant { .. } => SVC_CONTROLLER,
    }
}

/// Rebuilds a wire message for an extra (duplicated) delivery. Only the
/// three link-crossing messages the fault plane classifies ever need it.
fn clone_faulted(msg: &Msg) -> Msg {
    match msg {
        Msg::PdpReceive { slot, env } => Msg::PdpReceive {
            slot: *slot,
            env: env.clone(),
        },
        Msg::PepReceive { slot, env } => Msg::PepReceive {
            slot: *slot,
            env: env.clone(),
        },
        Msg::LiDeliver { li, entry } => Msg::LiDeliver {
            li: *li,
            entry: entry.clone(),
        },
        _ => unreachable!("only wire messages cross the fault plane"),
    }
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

// Frame kinds for the messages a wire transport carries (kind 0 is the
// transport-level ping).
const KIND_PDP_RECEIVE: u8 = 1;
const KIND_PEP_RECEIVE: u8 = 2;
const KIND_LI_DELIVER: u8 = 3;
const KIND_PROVISION_PROBE_KEY: u8 = 4;

/// Serialises a message for the wire, if it is one of the
/// federation-crossing kinds: the three link messages the fault plane
/// classifies (request, response, log delivery) plus the Analyser's
/// probe-key provisioning on tenant joins. Local self-ticks, scripted
/// control and crash events stay inside the driver process.
fn wire_encode(msg: &Msg) -> Option<(WireRole, u8, Vec<u8>)> {
    let mut w = Writer::new();
    match msg {
        Msg::PdpReceive { slot, env } => {
            w.put_u32(*slot as u32);
            env.encode(&mut w);
            Some((
                WireRole::Pdp { slot: *slot as u32 },
                KIND_PDP_RECEIVE,
                w.into_bytes(),
            ))
        }
        Msg::PepReceive { slot, env } => {
            w.put_u32(*slot as u32);
            env.encode(&mut w);
            Some((WireRole::Pep, KIND_PEP_RECEIVE, w.into_bytes()))
        }
        Msg::LiDeliver { li, entry } => {
            w.put_u32(*li as u32);
            entry.encode(&mut w);
            Some((
                WireRole::Li { index: *li as u32 },
                KIND_LI_DELIVER,
                w.into_bytes(),
            ))
        }
        Msg::ProvisionProbeKey { probe } => {
            w.put_u32(probe.0);
            Some((WireRole::Analyser, KIND_PROVISION_PROBE_KEY, w.into_bytes()))
        }
        _ => None,
    }
}

/// Rebuilds the message a frame carries. The scheduler consumes exactly
/// this — whatever came back off the wire, not the emission that went in.
fn wire_decode(frame: &WireFrame) -> Result<Msg, TransportError> {
    let mut r = Reader::new(&frame.payload);
    let malformed = |e: drams_crypto::CryptoError| TransportError::Malformed(e.to_string());
    let msg = match frame.kind {
        KIND_PDP_RECEIVE => Msg::PdpReceive {
            slot: r.get_u32().map_err(malformed)? as usize,
            env: RequestEnvelope::decode(&mut r).map_err(malformed)?,
        },
        KIND_PEP_RECEIVE => Msg::PepReceive {
            slot: r.get_u32().map_err(malformed)? as usize,
            env: ResponseEnvelope::decode(&mut r).map_err(malformed)?,
        },
        KIND_LI_DELIVER => Msg::LiDeliver {
            li: r.get_u32().map_err(malformed)? as usize,
            entry: LogEntry::decode(&mut r).map_err(malformed)?,
        },
        KIND_PROVISION_PROBE_KEY => Msg::ProvisionProbeKey {
            probe: ProbeId(r.get_u32().map_err(malformed)?),
        },
        other => {
            return Err(TransportError::Malformed(format!(
                "unknown frame kind {other}"
            )))
        }
    };
    r.finish().map_err(malformed)?;
    Ok(msg)
}

/// Pushes one delivery into the scheduler's buffer, carrying it through
/// the wire transport first when one is attached: the message is framed
/// (with the scheduler's delay riding in the frame), round-tripped
/// through the destination service's socket endpoint, and re-decoded
/// from the bytes that came back. Under [`DesTransport`] this is a plain
/// push — the conformance oracle's path.
fn deliver(ctx: &mut Ctx<'_>, delay: SimTime, msg: Msg, buf: &mut Vec<(SimTime, Msg)>) {
    if !ctx.transport.is_wire() {
        buf.push((delay, msg));
        return;
    }
    let Some((role, kind, payload)) = wire_encode(&msg) else {
        buf.push((delay, msg));
        return;
    };
    ctx.wire_seq += 1;
    let frame = WireFrame {
        role,
        kind,
        seq: ctx.wire_seq,
        delay,
        payload,
    };
    let echo = ctx
        .transport
        .roundtrip(frame)
        .expect("wire transport round-trip");
    let decoded = wire_decode(&echo).expect("echoed frame decodes");
    buf.push((echo.delay, decoded));
}

// ---------------------------------------------------------------------------
// Shared context
// ---------------------------------------------------------------------------

/// One tenant's runtime state.
#[derive(Debug)]
struct TenantRuntime {
    spec: TenantSpec,
    active: bool,
    /// Set on `TenantLeave`; a pending activation (join settle time)
    /// must not resurrect a tenant that departed in the meantime.
    departed: bool,
}

/// The shared simulation context: measurement sinks, ground truth, the
/// chain substrate and the routing tables that the controller maintains.
struct Ctx<'a> {
    node: Node,
    /// The node's write-ahead journal, shared with the [`WalJournal`]
    /// attached to `node` — kept here so a `CrashRestart` of the chain
    /// service can replay it into the restarted node.
    node_wal: Rc<RefCell<Wal>>,
    report: MonitorReport,
    truth: GroundTruth,
    adversary: &'a mut dyn Adversary,
    rngs: RngStreams,
    monitoring: bool,
    /// Link latency models (from the federation spec).
    to_li: LatencyModel,
    pep_pdp: LatencyModel,
    tenants: Vec<TenantRuntime>,
    /// Indices into `tenants` the workload currently targets.
    active_tenants: Vec<usize>,
    /// Tenant index → LI index.
    li_of_tenant: Vec<usize>,
    /// Tenant index → PDP slot.
    pdp_slot_of_tenant: Vec<usize>,
    /// Cloud id → PDP slot (all clouds map to slot 0 under central
    /// placement).
    pdp_slot_of_cloud: BTreeMap<u32, usize>,
    issued_at_by_corr: HashMap<CorrelationId, SimTime>,
    tx_entry_times: HashMap<TxId, Vec<SimTime>>,
    /// The deterministic per-link fault model every wire message crosses
    /// (a no-op with an empty plan).
    fault_plane: FaultPlane,
    /// PDP slot → the site it is deployed in.
    slot_site: Vec<Site>,
    /// LI index → the site it is deployed in.
    li_site: Vec<Site>,
    /// The carrier for wire messages ([`DesTransport`] or a real socket
    /// backend); crash restarts notify it so wire backends reconnect.
    transport: &'a mut dyn Transport,
    /// Strictly increasing frame sequence number (wire backends only).
    wire_seq: u64,
}

impl Ctx<'_> {
    /// The site a tenant's edge (PEP and probe) lives in.
    fn site_of_tenant(&self, tenant: TenantId) -> Site {
        self.tenants
            .iter()
            .find(|t| t.spec.id == tenant)
            .map_or(Site::Infra, |t| Site::Cloud(t.spec.cloud))
    }

    /// The site a PEP lives in (for routing responses through the fault
    /// plane).
    fn site_of_pep(&self, pep: PepId) -> Site {
        self.tenants
            .iter()
            .find(|t| t.spec.pep == pep)
            .map_or(Site::Infra, |t| Site::Cloud(t.spec.cloud))
    }

    /// Applies the adversary's log-plane hooks and, if the entry
    /// survives, schedules its delivery to `li`.
    fn deliver_to_li(
        &mut self,
        out: &mut Outbox<Msg>,
        li: usize,
        mut entry: LogEntry,
        now: SimTime,
    ) {
        if self.adversary.drop_log(&entry, now) {
            self.truth
                .dropped_logs
                .push((entry.correlation, entry.point));
            return;
        }
        if self.adversary.replay_log(&mut entry, now) {
            self.truth
                .replayed_logs
                .push((entry.correlation, entry.point));
        }
        if self.adversary.tamper_log(&mut entry, now) {
            self.truth
                .tampered_logs
                .push((entry.correlation, entry.point));
        }
        let latency = self.to_li.sample(&mut self.rngs.net);
        out.emit(latency, Msg::LiDeliver { li, entry });
    }
}

/// The `(correlation, point)` pairs a log-carrying transaction would have
/// committed — the ground-truth labelling for a withheld commit.
fn logged_entry_keys(tx: &Transaction) -> Vec<(CorrelationId, ObservationPoint)> {
    let mut out = Vec::new();
    match tx.method.as_str() {
        "store_log" => {
            if let Ok(entry) = LogEntry::from_canonical_bytes(&tx.payload) {
                out.push((entry.correlation, entry.point));
            }
        }
        "store_log_batch" => {
            let mut r = Reader::new(&tx.payload);
            if let Ok(n) = r.get_varint() {
                for _ in 0..n {
                    match LogEntry::decode(&mut r) {
                        Ok(e) => out.push((e.correlation, e.point)),
                        Err(_) => break,
                    }
                }
            }
        }
        _ => {}
    }
    out
}

fn assign_tx_times(
    pending: &mut Vec<SimTime>,
    ids: &[TxId],
    tx_entry_times: &mut HashMap<TxId, Vec<SimTime>>,
) {
    if ids.is_empty() || pending.is_empty() {
        return;
    }
    if ids.len() == 1 {
        tx_entry_times.entry(ids[0]).or_default().append(pending);
    } else {
        // one tx per entry, in order
        for (id, t) in ids.iter().zip(pending.drain(..)) {
            tx_entry_times.entry(*id).or_default().push(t);
        }
        pending.clear();
    }
}

// ---------------------------------------------------------------------------
// Services
// ---------------------------------------------------------------------------

/// Issues the Poisson workload, phase by phase, and declares the drain
/// deadline when the request budget is exhausted.
struct WorkloadSource {
    total_requests: u64,
    base_rate: f64,
    phases: Vec<Phase>,
    /// The (clamped) overload model: diurnal/spike rate multipliers.
    load: LoadProfile,
    /// Zipf tenant-rank sampler over the virtual population; `None`
    /// keeps the pre-profile uniform pick on the workload stream.
    zipf: Option<Zipf>,
    generator: RequestGenerator,
    /// Latest scripted `TenantJoin` time, if any: while one is still
    /// ahead, an empty tenant set may refill and the source keeps
    /// idling; with none ahead it declares the drain instead of
    /// grinding to the horizon.
    last_join_at: Option<SimTime>,
    // drain-deadline margin inputs
    group_timeout: SimTime,
    block_interval: SimTime,
    analyser_poll_interval: SimTime,
    /// Earliest time the drain deadline may anchor at when a fault plan
    /// is declared: the run must outlive the last disruption window's
    /// settle-and-restore so widened sweeps still run (and real attacks
    /// mounted under faults still surface). Zero without a plan.
    fault_floor: SimTime,
}

impl WorkloadSource {
    fn rate_at(&self, now: SimTime) -> f64 {
        let base = self
            .phases
            .iter()
            .rev()
            .find(|p| p.start <= now)
            .map_or(self.base_rate, |p| p.rate_per_sec);
        self.load.effective_rate(base, now)
    }

    fn drain_margin(&self) -> SimTime {
        // The retry budget comes first: the last-issued request may
        // spend all of it before abandoning, and the sweep that turns
        // the abandonment into `MissingLog` alerts runs after that.
        RETRY_BUDGET
            + self.group_timeout
            + 6 * self.block_interval
            + 4 * self.analyser_poll_interval
            + SECONDS
    }
}

impl<'a> SimService<Msg, Ctx<'a>> for WorkloadSource {
    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'a>, out: &mut Outbox<Msg>) {
        debug_assert!(matches!(msg, Msg::Arrival));
        if ctx.report.requests_issued >= self.total_requests {
            return; // workload exhausted; nothing to reschedule
        }
        if ctx.active_tenants.is_empty() {
            if self.last_join_at.is_some_and(|t| t >= now) {
                // All tenants departed but a scripted join is still
                // ahead: idle on a slow self-tick until it lands (the
                // controller cannot reschedule us).
                out.emit(SECONDS, Msg::Arrival);
            } else {
                // Nobody left and nobody coming: wind the run down
                // instead of grinding empty ticks to the horizon.
                out.set_deadline(now.max(self.fault_floor) + self.drain_margin());
            }
            return;
        }
        ctx.report.requests_issued += 1;
        let pick = match &self.zipf {
            // Population model: a Zipf-ranked virtual tenant, folded
            // onto the deployed active set. Drawn from its own stream so
            // profile-less runs never see the difference.
            Some(zipf) => zipf.sample(&mut ctx.rngs.population) % ctx.active_tenants.len(),
            None => ctx.rngs.workload.gen_range(0..ctx.active_tenants.len()),
        };
        let tenant = ctx.active_tenants[pick];
        let services = &ctx.tenants[tenant].spec.services;
        let service = services[ctx.rngs.workload.gen_range(0..services.len().max(1))].clone();
        let request = self.generator.next_request();
        out.emit(
            0,
            Msg::Intercept {
                tenant,
                service,
                request,
            },
        );
        if ctx.report.requests_issued < self.total_requests {
            let arrivals = PoissonArrivals::with_rate_per_sec(self.rate_at(now));
            out.emit(arrivals.next_gap(&mut ctx.rngs.workload), Msg::Arrival);
        } else {
            out.set_deadline(now.max(self.fault_floor) + self.drain_margin());
        }
    }
}

/// Client-side circuit breaker for one PDP slot (kept at the PEP layer:
/// the caller decides where to send, the callee may be unreachable).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Healthy; `failures` consecutive timeouts so far.
    Closed { failures: u32 },
    /// Tripped; refuses traffic until the cooldown elapses.
    Open { until: SimTime },
    /// One probe request is testing the slot; its fate decides.
    HalfOpen,
}

impl Breaker {
    /// A response came back from the slot.
    fn on_success(&mut self) {
        *self = Breaker::Closed { failures: 0 };
    }

    /// An attempt to the slot timed out. Returns `true` when this
    /// failure trips the breaker open.
    fn on_failure(&mut self, now: SimTime) -> bool {
        match *self {
            Breaker::Closed { failures } if failures + 1 >= BREAKER_THRESHOLD => {
                *self = Breaker::Open {
                    until: now + BREAKER_COOLDOWN,
                };
                true
            }
            Breaker::Closed { failures } => {
                *self = Breaker::Closed {
                    failures: failures + 1,
                };
                false
            }
            Breaker::HalfOpen => {
                // The probe failed: straight back to open.
                *self = Breaker::Open {
                    until: now + BREAKER_COOLDOWN,
                };
                false
            }
            Breaker::Open { .. } => false,
        }
    }
}

/// One in-flight (unanswered, unabandoned) PEP request.
#[derive(Debug)]
struct Inflight {
    /// The envelope exactly as first sent (post any in-transit
    /// tampering): retransmissions are byte-identical, so re-observation
    /// digests stay idempotent.
    env: RequestEnvelope,
    tenant: usize,
    /// The slot every attempt goes to, chosen once at intercept time
    /// (retries are slot-sticky — see the `PepRetry` arm).
    sent_slot: usize,
    attempts: u32,
}

/// The tenant-edge PEPs and their probes.
struct PepService {
    peps: Vec<Pep>,
    probes: Vec<Probe>,
    bias: drams_faas::pep::EnforcementBias,
    key: SymmetricKey,
    /// Requests awaiting a decision, with their retry state.
    inflight: HashMap<CorrelationId, Inflight>,
    /// One circuit breaker per PDP slot, shared by all PEPs (the
    /// per-cloud reachability view of the tenant edge).
    breakers: Vec<Breaker>,
    /// Admission-control cap on `inflight` (`usize::MAX` = unbounded).
    /// At the cap new arrivals are shed *before* any interception or
    /// probe observation — a shed request produces no evidence and opens
    /// no decision group, so overload degrades availability, never
    /// detection. Admitted requests always carry full evidence.
    inflight_cap: usize,
}

impl PepService {
    /// Picks the slot for a *new* interception: the home slot while its
    /// breaker is closed (or due a half-open probe), otherwise the first
    /// healthy other slot — the failover path. Called only at intercept
    /// time: in-flight requests retry slot-sticky so that exactly one
    /// PDP ever decides a correlation. With a single (central) slot this
    /// always returns `home`.
    fn pick_slot(breakers: &mut [Breaker], home: usize, now: SimTime) -> usize {
        match breakers[home] {
            Breaker::Closed { .. } => home,
            Breaker::Open { until } if now >= until => {
                breakers[home] = Breaker::HalfOpen;
                home
            }
            _ => (1..breakers.len())
                .map(|d| (home + d) % breakers.len())
                .find(|&s| matches!(breakers[s], Breaker::Closed { .. }))
                .unwrap_or(home),
        }
    }
}

impl<'a> SimService<Msg, Ctx<'a>> for PepService {
    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'a>, out: &mut Outbox<Msg>) {
        match msg {
            Msg::Intercept {
                tenant,
                service,
                request,
            } => {
                // Admission control: at the in-flight cap the request is
                // shed before the PEP ever sees it — no interception, no
                // observation, no group. Between the soft watermark
                // (3/4 cap) and the cap it is admitted but flagged as a
                // degraded admission.
                if self.inflight.len() >= self.inflight_cap {
                    ctx.report.requests_shed += 1;
                    return;
                }
                if self.inflight.len() >= self.inflight_cap - self.inflight_cap / 4 {
                    ctx.report.degraded_admissions += 1;
                }
                let mut env = self.peps[tenant].intercept(service, request, now);
                ctx.issued_at_by_corr.insert(env.correlation, now);
                if ctx.monitoring {
                    let entry = self.probes[tenant].observe_request(
                        ObservationPoint::PepRequest,
                        &env,
                        now,
                    );
                    let li = ctx.li_of_tenant[tenant];
                    ctx.deliver_to_li(out, li, entry, now);
                }
                if ctx.adversary.tamper_request_in_transit(&mut env, now) {
                    ctx.truth.tampered_requests.push(env.correlation);
                }
                let home = ctx.pdp_slot_of_tenant[tenant];
                let slot = Self::pick_slot(&mut self.breakers, home, now);
                self.inflight.insert(
                    env.correlation,
                    Inflight {
                        env: env.clone(),
                        tenant,
                        sent_slot: slot,
                        attempts: 1,
                    },
                );
                ctx.report.peak.pep_inflight =
                    ctx.report.peak.pep_inflight.max(self.inflight.len() as u64);
                let correlation = env.correlation;
                let latency = ctx.pep_pdp.sample(&mut ctx.rngs.net);
                out.emit(latency, Msg::PdpReceive { slot, env });
                out.emit(
                    RETRY_BASE,
                    Msg::PepRetry {
                        correlation,
                        attempt: 1,
                    },
                );
            }
            Msg::PepReceive { slot, env } => {
                let Some(tenant) = self.peps.iter().position(|p| p.id() == env.pep) else {
                    return;
                };
                let Some(enforcement) = self.peps[tenant].enforce(&env) else {
                    return; // duplicate, late-after-abandon, or forged
                };
                self.breakers[slot].on_success();
                let inflight = self.inflight.remove(&env.correlation);
                let mut granted = enforcement.granted;
                if ctx.adversary.flip_enforcement(&mut granted, now) {
                    ctx.truth.flipped_enforcements.push(env.correlation);
                }
                ctx.report.requests_completed += 1;
                if granted {
                    ctx.report.granted += 1;
                } else {
                    ctx.report.refused += 1;
                }
                if let Some(issued) = ctx.issued_at_by_corr.get(&env.correlation) {
                    ctx.report.e2e_latency.record(now - issued);
                    if inflight.is_some() && slot != ctx.pdp_slot_of_tenant[tenant] {
                        // Answered by a slot the breaker diverted to.
                        ctx.report.failovers += 1;
                        ctx.report.failover_e2e.record(now - issued);
                    }
                }
                if let Some(inf) = &inflight {
                    ctx.report.e2e_latency.record_attempts(inf.attempts);
                }
                if ctx.monitoring {
                    let entry = self.probes[tenant].observe_pep_response(&env, granted, now);
                    let li = ctx.li_of_tenant[tenant];
                    ctx.deliver_to_li(out, li, entry, now);
                }
            }
            Msg::PepRetry {
                correlation,
                attempt,
            } => {
                let Some(inf) = self.inflight.get(&correlation) else {
                    return; // answered (or abandoned) in the meantime
                };
                if inf.attempts != attempt {
                    return; // stale timer of an earlier attempt
                }
                // This attempt timed out: charge the slot it went to.
                let (tenant, failed_slot, attempts) = (inf.tenant, inf.sent_slot, inf.attempts);
                if self.breakers[failed_slot].on_failure(now) {
                    ctx.report.breaker_trips += 1;
                }
                if attempts >= MAX_ATTEMPTS {
                    // Deadline budget exhausted: give up for good. A
                    // response limping in later is treated as stale.
                    self.inflight.remove(&correlation);
                    self.peps[tenant].abandon(correlation);
                    ctx.report.requests_dropped += 1;
                    return;
                }
                // Retries are slot-sticky: an in-flight correlation is
                // never replayed against a different PDP, so exactly one
                // authority ever decides it and the contract's
                // one-observation-per-point keying stays collision-free.
                // The breaker steers *new* interceptions away instead.
                let slot = failed_slot;
                let inf = self
                    .inflight
                    .get_mut(&correlation)
                    .expect("checked above; no removal in between");
                inf.attempts += 1;
                let env = inf.env.clone();
                let attempt = inf.attempts;
                ctx.report.retries_total += 1;
                // Capped exponential backoff with deterministic jitter
                // (its own stream: fault-free runs never draw from it).
                let backoff = (RETRY_BASE << (attempt - 1)).min(RETRY_CAP);
                let jitter = ctx.rngs.retry.gen_range(0..=backoff / 4);
                let latency = ctx.pep_pdp.sample(&mut ctx.rngs.net);
                out.emit(latency, Msg::PdpReceive { slot, env });
                out.emit(
                    backoff + jitter,
                    Msg::PepRetry {
                        correlation,
                        attempt,
                    },
                );
            }
            Msg::ProvisionPep { tenant } => {
                let spec = &ctx.tenants[tenant].spec;
                debug_assert_eq!(tenant, self.peps.len(), "peps provision in tenant order");
                self.peps.push(Pep::new(spec.pep, spec.id, self.bias));
                let probe_id = ProbeId(tenant as u32 + 1);
                self.probes.push(Probe::new(
                    probe_id,
                    self.key.clone(),
                    probe_mac_key(probe_id),
                ));
            }
            _ => unreachable!("misrouted event"),
        }
    }
}

/// One PDP instance (central, or one per member cloud) with its probe.
struct PdpSlot {
    pdp: drams_policy::pdp::Pdp,
    probe: Probe,
    probe_id: ProbeId,
    silenced_until: SimTime,
    /// As-sent responses by correlation: a retransmitted or duplicated
    /// request is answered byte-identically (re-deciding would stamp a
    /// new `decided_at`, change the response digest and trip the
    /// Analyser's conflicting-observation check), without re-observing
    /// or re-running adversary hooks.
    decided: HashMap<CorrelationId, ResponseEnvelope>,
    /// Decisions in `decided_at` order, for retention-window eviction
    /// (kept in lockstep with `decided`).
    decided_order: VecDeque<(SimTime, CorrelationId)>,
    /// Retention window of the idempotency cache: entries older than
    /// this are evicted — provably safe past [`MIN_RETENTION`], since no
    /// retransmission can arrive after the retry budget. 0 = keep all.
    retention: SimTime,
    /// Evictions since the journal was last compacted.
    evictions_since_compact: u64,
    /// Write-ahead journal of the decision cache and any standing
    /// silence window, so a crashed PDP restarts idempotent. Under a
    /// retention window it is periodically compacted: a snapshot of the
    /// live entries replaces the evicted prefix.
    journal: Wal,
}

/// PDP journal record: a cached as-sent decision.
const PDP_JOURNAL_DECIDED: u8 = 1;
/// PDP journal record: a standing silence window.
const PDP_JOURNAL_SILENCE: u8 = 2;

impl PdpSlot {
    fn new(
        probe_id: ProbeId,
        key: &SymmetricKey,
        pdp: drams_policy::pdp::Pdp,
        retention: SimTime,
    ) -> Self {
        let journal = Wal::open(
            Box::new(MemBackend::new()),
            WalConfig {
                segment_records: 64,
                durability: Durability::Flushed,
            },
        )
        .expect("fresh in-memory wal");
        PdpSlot {
            pdp,
            probe: Probe::new(probe_id, key.clone(), probe_mac_key(probe_id)),
            probe_id,
            silenced_until: 0,
            decided: HashMap::new(),
            decided_order: VecDeque::new(),
            retention,
            evictions_since_compact: 0,
            journal,
        }
    }

    /// Ages out idempotency entries whose retention window has closed
    /// and compacts the journal once enough have gone. Returns how many
    /// were evicted.
    fn evict_expired(&mut self, now: SimTime) -> u64 {
        if self.retention == 0 {
            return 0;
        }
        let mut evicted = 0;
        while let Some(&(decided_at, corr)) = self.decided_order.front() {
            if decided_at.saturating_add(self.retention) > now {
                break;
            }
            self.decided_order.pop_front();
            self.decided.remove(&corr);
            evicted += 1;
        }
        self.evictions_since_compact += evicted;
        if self.evictions_since_compact >= PDP_COMPACT_EVICTIONS {
            self.compact_journal();
        }
        evicted
    }

    /// Rewrites the journal as one snapshot of the live window plus an
    /// empty tail: recovery replays exactly the un-evicted entries, so a
    /// crashed PDP is byte-equivalent to an uncrashed one.
    fn compact_journal(&mut self) {
        let mut payload = Vec::new();
        payload.extend_from_slice(&self.silenced_until.to_be_bytes());
        payload.extend_from_slice(&(self.decided_order.len() as u64).to_be_bytes());
        for &(_, corr) in &self.decided_order {
            let env = &self.decided[&corr];
            let bytes = env.to_canonical_bytes();
            payload.extend_from_slice(
                &u32::try_from(bytes.len())
                    .expect("envelope fits u32")
                    .to_be_bytes(),
            );
            payload.extend_from_slice(&bytes);
        }
        let upto = self.journal.next_seq();
        self.journal
            .write_snapshot(upto, &payload)
            .expect("pdp journal snapshot");
        self.journal.prune_through(upto).expect("pdp journal prune");
        self.evictions_since_compact = 0;
    }

    /// Restores the decision cache from a compaction snapshot payload.
    fn restore_snapshot(&mut self, payload: &[u8]) {
        let mut buf = [0u8; 8];
        buf.copy_from_slice(&payload[..8]);
        self.silenced_until = SimTime::from_be_bytes(buf);
        buf.copy_from_slice(&payload[8..16]);
        let n = u64::from_be_bytes(buf);
        let mut at = 16;
        for _ in 0..n {
            let mut len4 = [0u8; 4];
            len4.copy_from_slice(&payload[at..at + 4]);
            let len = u32::from_be_bytes(len4) as usize;
            at += 4;
            let env = ResponseEnvelope::from_canonical_bytes(&payload[at..at + len])
                .expect("snapshotted response decodes");
            at += len;
            self.decided_order
                .push_back((env.decided_at, env.correlation));
            self.decided.insert(env.correlation, env);
        }
    }

    fn journal_decision(&mut self, env: &ResponseEnvelope) {
        let mut rec = vec![PDP_JOURNAL_DECIDED];
        rec.extend_from_slice(&env.correlation.0.to_be_bytes());
        rec.extend_from_slice(&env.to_canonical_bytes());
        self.journal.append(&rec).expect("pdp journal append");
    }

    fn journal_silence(&mut self, until: SimTime) {
        let mut rec = vec![PDP_JOURNAL_SILENCE];
        rec.extend_from_slice(&until.to_be_bytes());
        self.journal.append(&rec).expect("pdp journal append");
    }

    /// Kills the slot's process state and rebuilds it: the engine from
    /// the PRP's durable active policy, the decision cache and silence
    /// window from the journal, the probe from its TPM-provisioned key.
    fn crash_restart(&mut self, key: &SymmetricKey, active: drams_policy::pdp::Pdp) {
        self.journal.simulate_crash().expect("pdp journal recovery");
        self.pdp = active;
        self.probe = Probe::new(self.probe_id, key.clone(), probe_mac_key(self.probe_id));
        self.silenced_until = 0;
        self.decided.clear();
        self.decided_order.clear();
        let base = match self.journal.read_snapshot().expect("pdp snapshot read") {
            Some((seq, payload)) => {
                self.restore_snapshot(&payload);
                seq
            }
            None => 0,
        };
        for (_, rec) in self.journal.replay_from(base).expect("pdp journal replay") {
            match rec.split_first() {
                Some((&PDP_JOURNAL_DECIDED, rest)) if rest.len() > 8 => {
                    let mut corr = [0u8; 8];
                    corr.copy_from_slice(&rest[..8]);
                    let env = ResponseEnvelope::from_canonical_bytes(&rest[8..])
                        .expect("journaled response decodes");
                    self.decided_order
                        .push_back((env.decided_at, env.correlation));
                    self.decided
                        .insert(CorrelationId(u64::from_be_bytes(corr)), env);
                }
                Some((&PDP_JOURNAL_SILENCE, rest)) if rest.len() == 8 => {
                    let mut until = [0u8; 8];
                    until.copy_from_slice(rest);
                    self.silenced_until = SimTime::from_be_bytes(until);
                }
                _ => unreachable!("unknown pdp journal record"),
            }
        }
    }
}

/// The decision plane: the PRP (version store) plus the deployed PDPs.
struct PdpService {
    prp: Prp,
    slots: Vec<PdpSlot>,
    infra_li: usize,
    key: SymmetricKey,
    /// Decisions computed by [`SimService::prepare_batch`] ahead of the
    /// serial handler pass, keyed by (slot, correlation). The handler
    /// consumes its entry (or evaluates inline when the message was not
    /// part of a prepared batch).
    prepared: HashMap<(usize, CorrelationId), drams_policy::decision::Response>,
}

impl<'a> SimService<Msg, Ctx<'a>> for PdpService {
    fn lane_of(&self, msg: &Msg) -> Option<u64> {
        // Per-cloud compute lanes: same-timestamp deliveries to distinct
        // PDP slots are independent (each slot owns its policy engine,
        // cache and probe), so the runtime may batch them for
        // `prepare_batch`. Everything else stays strictly serial.
        match msg {
            Msg::PdpReceive { slot, .. } => Some(*slot as u64),
            _ => None,
        }
    }

    fn prepare_batch(&mut self, now: SimTime, msgs: &[&Msg], _ctx: &mut Ctx<'a>) {
        // Evaluate the batch's policy decisions in parallel, one job per
        // distinct slot. Eligibility mirrors the handler exactly: a
        // silenced PDP never evaluates, and a cached correlation is
        // answered from the idempotency cache. Slots are pairwise
        // distinct within a batch (lane contract), so no two jobs touch
        // the same engine and the per-slot cache trajectory is identical
        // to the serial order. Decisions are pure in `now` and the
        // request, so precomputing here is handler-order invisible.
        let jobs: Vec<(
            usize,
            CorrelationId,
            &drams_policy::pdp::Pdp,
            &RequestEnvelope,
        )> = msgs
            .iter()
            .filter_map(|m| match m {
                Msg::PdpReceive { slot, env }
                    if now >= self.slots[*slot].silenced_until
                        && !self.slots[*slot].decided.contains_key(&env.correlation) =>
                {
                    Some((*slot, env.correlation, &self.slots[*slot].pdp, env))
                }
                _ => None,
            })
            .collect();
        let responses =
            drams_faas::par::map(&jobs, 2, |&(_, _, pdp, env)| pdp.evaluate(&env.request));
        for ((slot, corr, _, _), response) in jobs.into_iter().zip(responses) {
            self.prepared.insert((slot, corr), response);
        }
    }

    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'a>, out: &mut Outbox<Msg>) {
        match msg {
            Msg::PdpReceive { slot, env } => {
                let prepared = self.prepared.remove(&(slot, env.correlation));
                let s = &mut self.slots[slot];
                if now < s.silenced_until {
                    // Fault window: a silent PDP neither observes nor
                    // answers — the PEP's retry budget decides whether
                    // the request survives the outage.
                    return;
                }
                if let Some(cached) = s.decided.get(&env.correlation) {
                    // Retransmission (or fault-plane duplicate) of an
                    // answered request: resend the as-sent response
                    // byte-identically. No re-observation, no adversary
                    // hooks — the originals already ran.
                    let resp_env = cached.clone();
                    let latency = ctx.pep_pdp.sample(&mut ctx.rngs.net);
                    out.emit(
                        latency,
                        Msg::PepReceive {
                            slot,
                            env: resp_env,
                        },
                    );
                    return;
                }
                if ctx.monitoring {
                    let entry = s
                        .probe
                        .observe_request(ObservationPoint::PdpRequest, &env, now);
                    ctx.deliver_to_li(out, self.infra_li, entry, now);
                }
                let response = prepared.unwrap_or_else(|| s.pdp.evaluate(&env.request));
                let mut resp_env = ResponseEnvelope {
                    correlation: env.correlation,
                    pep: env.pep,
                    response,
                    policy_version: s.pdp.policy_version(),
                    decided_at: now,
                };
                if ctx.adversary.corrupt_pdp_decision(&mut resp_env, now) {
                    ctx.truth.corrupted_decisions.push(resp_env.correlation);
                }
                if ctx.monitoring {
                    let entry = s.probe.observe_pdp_response(&resp_env, now);
                    ctx.deliver_to_li(out, self.infra_li, entry, now);
                }
                if ctx.adversary.tamper_response_in_transit(&mut resp_env, now) {
                    ctx.truth.tampered_responses.push(resp_env.correlation);
                }
                s.decided_order.push_back((now, env.correlation));
                s.decided.insert(env.correlation, resp_env.clone());
                s.journal_decision(&resp_env);
                ctx.report.idempotency_evictions += s.evict_expired(now);
                ctx.report.peak.pdp_idempotency =
                    ctx.report.peak.pdp_idempotency.max(s.decided.len() as u64);
                ctx.report.peak.pdp_decision_cache = ctx
                    .report
                    .peak
                    .pdp_decision_cache
                    .max(s.pdp.cache_len() as u64);
                let latency = ctx.pep_pdp.sample(&mut ctx.rngs.net);
                out.emit(
                    latency,
                    Msg::PepReceive {
                        slot,
                        env: resp_env,
                    },
                );
                ctx.report.decision_cache_evictions =
                    self.slots.iter().map(|sl| sl.pdp.cache_evictions()).sum();
            }
            Msg::PolicyAdmin(action) => {
                match action {
                    PolicyAdmin::Publish(policy) => {
                        self.prp.publish(policy);
                    }
                    PolicyAdmin::Rollback(version) => {
                        // Rollback is modelled as re-publishing the old
                        // content: the digest (and thus the version the
                        // probes log) is the old one again.
                        let old = self
                            .prp
                            .version(version)
                            .expect("script rolls back to a published version")
                            .policy
                            .clone();
                        self.prp.publish(old);
                    }
                }
                let active = self.prp.active();
                for slot in &mut self.slots {
                    slot.pdp = active.pdp();
                }
                ctx.report.policy_activations += 1;
                out.emit(0, Msg::AnalyserPolicy(active.policy.clone()));
            }
            Msg::SilencePdp { slot, until } => {
                self.slots[slot].silenced_until = until;
                self.slots[slot].journal_silence(until);
            }
            Msg::CrashPdp { slot } => {
                let active = self.prp.active().pdp();
                self.slots[slot].crash_restart(&self.key, active);
                // A wire backend tears down this slot's endpoint; the
                // next framed request reconnects to the restarted one.
                ctx.transport
                    .restart(WireRole::Pdp { slot: slot as u32 })
                    .expect("transport restart");
                ctx.report.crash_restarts += 1;
            }
            _ => unreachable!("misrouted event"),
        }
    }
}

/// The per-tenant Logging Interfaces (plus the infrastructure LI).
struct LiService {
    lis: Vec<LoggingInterface>,
    pending: Vec<Vec<SimTime>>,
    backlog: Vec<Vec<LogEntry>>,
    stalled_until: Vec<SimTime>,
    /// When the LI last lost its chain link (for recovery latency).
    offline_since: Vec<SimTime>,
    flush_interval: SimTime,
    batch_size: usize,
    /// High-water mark for LI in-memory buffers (0 = unbounded); past it
    /// entries live in the backlog WAL only until the next flush.
    resident_cap: usize,
    key: SymmetricKey,
}

impl LiService {
    /// The durable-backlog WAL every LI writes ahead to (in-memory
    /// medium inside the simulation, flushed record-by-record so a crash
    /// loses nothing the LI acknowledged).
    fn backlog_wal() -> Wal {
        Wal::open(
            Box::new(MemBackend::new()),
            WalConfig {
                segment_records: 64,
                durability: Durability::Flushed,
            },
        )
        .expect("fresh in-memory wal")
    }

    fn push_li(&mut self, name: &str) {
        let mut li = LoggingInterface::new(
            name.to_string(),
            self.key.clone(),
            Keypair::from_seed(name.as_bytes()),
            self.batch_size,
        );
        li.attach_backlog(Self::backlog_wal());
        if self.resident_cap > 0 {
            li.set_resident_cap(self.resident_cap);
        }
        self.lis.push(li);
        self.pending.push(Vec::new());
        self.backlog.push(Vec::new());
        self.stalled_until.push(0);
        self.offline_since.push(0);
    }

    /// Reconciles the LI's offline flag with the fault plane's current
    /// partition state of its chain link. Going offline starts the spill
    /// clock; coming back counts the spilled backlog as replayed and
    /// records the outage length (the next flush tick drains it).
    fn sync_chain_link(&mut self, li: usize, now: SimTime, ctx: &mut Ctx<'_>) {
        let site = ctx.li_site[li];
        let cut = site != Site::Infra && ctx.fault_plane.partitioned(now, site, Site::Infra);
        let was = self.lis[li].is_offline();
        if cut && !was {
            self.lis[li].set_offline(true);
            self.offline_since[li] = now;
        } else if !cut && was {
            self.lis[li].set_offline(false);
            let backlog = self.lis[li].buffered() as u64;
            ctx.report.li_replayed += backlog;
            ctx.report
                .spill_recovery
                .record(now - self.offline_since[li]);
        }
    }

    fn store(&mut self, li: usize, entry: LogEntry, ctx: &mut Ctx<'_>) {
        self.pending[li].push(entry.observed_at);
        let ids = self.lis[li]
            .store(entry, &mut ctx.node)
            .expect("li submission");
        if self.lis[li].is_offline() {
            ctx.report.li_spilled += 1;
        }
        assign_tx_times(&mut self.pending[li], &ids, &mut ctx.tx_entry_times);
        ctx.report.max_mempool = ctx.report.max_mempool.max(ctx.node.mempool_len());
        ctx.report.peak.li_resident = ctx
            .report
            .peak
            .li_resident
            .max(self.lis[li].buffered_entries().len() as u64);
    }

    fn drain_backlog(&mut self, li: usize, ctx: &mut Ctx<'_>) {
        let backlog = std::mem::take(&mut self.backlog[li]);
        for entry in backlog {
            self.store(li, entry, ctx);
        }
    }
}

impl<'a> SimService<Msg, Ctx<'a>> for LiService {
    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'a>, out: &mut Outbox<Msg>) {
        match msg {
            Msg::LiDeliver { li, entry } => {
                if now < self.stalled_until[li] {
                    self.backlog[li].push(entry);
                    return;
                }
                self.sync_chain_link(li, now, ctx);
                self.drain_backlog(li, ctx);
                self.store(li, entry, ctx);
            }
            Msg::LiFlushTick { li } => {
                self.sync_chain_link(li, now, ctx);
                if now >= self.stalled_until[li] {
                    self.drain_backlog(li, ctx);
                    let ids = self.lis[li].flush(&mut ctx.node).expect("li flush");
                    assign_tx_times(&mut self.pending[li], &ids, &mut ctx.tx_entry_times);
                }
                ctx.report.max_mempool = ctx.report.max_mempool.max(ctx.node.mempool_len());
                if out.within_deadline(now) {
                    out.emit(self.flush_interval, Msg::LiFlushTick { li });
                }
            }
            Msg::StallLi { li, until } => {
                self.stalled_until[li] = until;
            }
            Msg::ProvisionLi { li } => {
                debug_assert_eq!(li, self.lis.len(), "lis provision in index order");
                self.push_li(&format!("li-{li}"));
                out.emit(self.flush_interval, Msg::LiFlushTick { li });
            }
            Msg::CrashLi { li } => {
                ctx.transport
                    .restart(WireRole::Li { index: li as u32 })
                    .expect("transport restart");
                // The LI process dies: its buffer is gone, its WAL — on
                // durable storage — survives (with whatever a power cut
                // preserves under the configured durability). Entries
                // queued at a *stalled* LI live only in the process and
                // were never acknowledged into the WAL, so a crash
                // during a stall window honestly loses them — the
                // monitor then surfaces the loss as MissingLog alerts.
                self.backlog[li].clear();
                let mut wal = self.lis[li].detach_backlog().expect("li backlog attached");
                wal.simulate_crash().expect("li wal recovery");
                let name = format!("li-{li}");
                self.lis[li] = LoggingInterface::recover(
                    name.clone(),
                    self.key.clone(),
                    Keypair::from_seed(name.as_bytes()),
                    self.batch_size,
                    wal,
                )
                .expect("li recovery");
                // Measurement bookkeeping: the pending observation times
                // are a pure function of the recovered buffer.
                self.pending[li] = self.lis[li]
                    .buffered_entries()
                    .iter()
                    .map(|e| e.observed_at)
                    .collect();
                ctx.report.crash_restarts += 1;
            }
            _ => unreachable!("misrouted event"),
        }
    }
}

/// The chain node: mines on a cadence, submits the epoch sweep, and
/// harvests committed contract events into the report.
struct ChainService {
    admin: Keypair,
    epoch_blocks: u64,
    block_interval: SimTime,
    event_cursor: usize,
    /// The chain configuration of the deployment — a crashed node is
    /// rebuilt with the same parameters before the journal replays.
    chain_config: ChainConfig,
    /// Compact the write-ahead journal every this many blocks (0 = off).
    compact_interval: u64,
    /// Journal sequence the last compaction snapshot covers; the live
    /// record count is `next_seq - journal_base`.
    journal_base: u64,
}

impl<'a> SimService<Msg, Ctx<'a>> for ChainService {
    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'a>, out: &mut Outbox<Msg>) {
        if let Msg::SetTimeout { timeout } = msg {
            // Degraded mode: retune the epoch sweep's group timeout
            // on-chain (widened across a disruption window so transient
            // faults don't masquerade as withheld logs, restored after
            // the settle). Commits with the next mined block.
            ctx.node
                .submit_call(
                    &self.admin,
                    MONITOR_CONTRACT,
                    "set_timeout",
                    MonitorContract::set_timeout_payload(timeout),
                )
                .expect("set_timeout submission");
            ctx.report.timeout_retunes += 1;
            return;
        }
        if matches!(msg, Msg::CrashChain) {
            ctx.transport
                .restart(WireRole::Chain)
                .expect("transport restart");
            // The node process dies: chain, contract state and mempool
            // are gone; the write-ahead journal survives. Replaying it
            // reconstructs all three exactly, and the recovered node
            // resumes journaling on the same log.
            ctx.node_wal
                .borrow_mut()
                .simulate_crash()
                .expect("node wal recovery");
            let mut node = recover_node(
                &ctx.node_wal.borrow(),
                self.chain_config.clone(),
                vec![Box::new(MonitorContract)],
            )
            .expect("chain node recovery");
            node.set_journal(Box::new(WalJournal::new(ctx.node_wal.clone())));
            ctx.node = node;
            ctx.report.crash_restarts += 1;
            return;
        }
        debug_assert!(matches!(msg, Msg::MineTick));
        let next_height = ctx.node.chain().tip_header().height + 1;
        if self.epoch_blocks > 0 && next_height % self.epoch_blocks == 0 {
            ctx.node
                .submit_call(&self.admin, MONITOR_CONTRACT, "advance_epoch", vec![])
                .expect("epoch submission");
        }
        ctx.report.max_mempool = ctx.report.max_mempool.max(ctx.node.mempool_len());
        let block = ctx.node.mine_block(now).expect("mining");
        ctx.report.blocks_mined += 1;
        ctx.report.txs_committed += block.transactions.len() as u64;
        for tx in &block.transactions {
            if let Some(times) = ctx.tx_entry_times.remove(&tx.id()) {
                for t in times {
                    ctx.report.log_commit_latency.record(now.saturating_sub(t));
                    ctx.report.entries_logged += 1;
                }
            }
        }
        // Harvest newly committed contract events.
        let (events, cursor) = ctx.node.events_since(self.event_cursor);
        let new_alerts: Vec<Alert> = events
            .iter()
            .filter(|e| e.name.starts_with("alert."))
            .filter_map(|e| Alert::from_canonical_bytes(&e.data).ok())
            .collect();
        ctx.report.groups_completed += events
            .iter()
            .filter(|e| e.name == GROUP_COMPLETE_EVENT)
            .count() as u64;
        self.event_cursor = cursor;
        for mut alert in new_alerts {
            if let Some(issued) = ctx.issued_at_by_corr.get(&alert.correlation) {
                ctx.report
                    .detection_latency
                    .record(now.saturating_sub(*issued));
            }
            // Detection time on the wall: when the block carrying the
            // alert was committed.
            alert.detected_at = now;
            ctx.report.alerts.push(alert);
        }
        // Capacity gauges: live journal records and contract-storage
        // keys, sampled once per block (pure reads — no RNG, no state).
        let live_records = ctx
            .node_wal
            .borrow()
            .next_seq()
            .saturating_sub(self.journal_base);
        ctx.report.peak.chain_journal_records =
            ctx.report.peak.chain_journal_records.max(live_records);
        if let Some(storage) = ctx.node.host().storage_of(MONITOR_CONTRACT) {
            ctx.report.peak.contract_storage =
                ctx.report.peak.contract_storage.max(storage.len() as u64);
        }
        if self.compact_interval > 0 && next_height % self.compact_interval == 0 {
            // Bounded-journal mode: fold everything mined so far into a
            // snapshot and drop the sealed segments. Recovery replays
            // snapshot-then-tail and reconstructs the same node.
            compact_node_journal(&mut ctx.node_wal.borrow_mut()).expect("chain journal compaction");
            self.journal_base = ctx.node_wal.borrow().next_seq();
            ctx.report.journal_compactions += 1;
        }
        if out.within_deadline(now) {
            out.emit(self.block_interval, Msg::MineTick);
        }
    }
}

/// The Analyser as a service: periodic chain polls, plus provisioning
/// and policy-administration notifications.
struct AnalyserService {
    analyser: Analyser,
    poll_interval: SimTime,
    /// The federation key, re-provisioned to a restarted Analyser (in a
    /// real deployment it would come back from the tenant TPMs).
    key: SymmetricKey,
}

impl<'a> SimService<Msg, Ctx<'a>> for AnalyserService {
    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'a>, out: &mut Outbox<Msg>) {
        match msg {
            Msg::AnalyserTick => {
                let _ = self.analyser.poll(&mut ctx.node, now);
                // The poll's progress becomes durable before anything
                // else observes it: a crash after this point resumes
                // here, never re-checks, never re-alerts.
                self.analyser.checkpoint().expect("analyser checkpoint");
                ctx.report.groups_retired = self.analyser.groups_retired();
                ctx.report.policy_history_retired = self.analyser.policy_history_retired();
                ctx.report.peak.analyser_pending_retire = ctx
                    .report
                    .peak
                    .analyser_pending_retire
                    .max(self.analyser.pending_retirements() as u64);
                ctx.report.peak.policy_history = ctx
                    .report
                    .peak
                    .policy_history
                    .max(self.analyser.policy_history_len() as u64);
                if out.within_deadline(now) {
                    out.emit(self.poll_interval, Msg::AnalyserTick);
                }
            }
            Msg::AnalyserPolicy(policy) => {
                self.analyser.publish_authorised_policy(policy, now);
                // Authorisation state must be durable before the crash
                // window, not just at the next poll.
                self.analyser.checkpoint().expect("analyser checkpoint");
            }
            Msg::ProvisionProbeKey { probe } => {
                self.analyser
                    .register_probe_key(probe, probe_mac_key(probe));
                self.analyser.checkpoint().expect("analyser checkpoint");
            }
            Msg::CrashAnalyser => {
                ctx.transport
                    .restart(WireRole::Analyser)
                    .expect("transport restart");
                // The Analyser process dies; its checkpoint store
                // survives. Recovery resumes the cursors and the
                // authorised-policy history — no re-scan, no re-alert.
                let store = self
                    .analyser
                    .detach_checkpoint()
                    .expect("analyser checkpoint attached");
                self.analyser = Analyser::recover(
                    self.key.clone(),
                    Keypair::from_seed(b"drams-analyser"),
                    store,
                )
                .expect("analyser recovery");
                ctx.report.crash_restarts += 1;
            }
            _ => unreachable!("misrouted event"),
        }
    }
}

/// Executes the scenario script: policy administration, tenant churn and
/// fault windows, decomposed into the provisioning events above.
struct Controller {
    script: Vec<ScriptedAction>,
    placement: PdpPlacement,
    infra_li: usize,
}

impl Controller {
    fn pdp_slot_for(&self, ctx: &Ctx<'_>, cloud: CloudId) -> usize {
        match self.placement {
            PdpPlacement::Central => 0,
            PdpPlacement::PerCloud => *ctx
                .pdp_slot_of_cloud
                .get(&cloud.0)
                .expect("script addresses an existing cloud"),
        }
    }
}

impl<'a> SimService<Msg, Ctx<'a>> for Controller {
    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'a>, out: &mut Outbox<Msg>) {
        match msg {
            Msg::Script(i) => match self.script[i].clone() {
                ScriptedAction::PublishPolicy { policy, .. } => {
                    out.emit(0, Msg::PolicyAdmin(PolicyAdmin::Publish(policy)));
                }
                ScriptedAction::RollbackPolicy { version, .. } => {
                    out.emit(0, Msg::PolicyAdmin(PolicyAdmin::Rollback(version)));
                }
                ScriptedAction::TenantJoin {
                    cloud, services, ..
                } => {
                    let id = ctx.tenants.iter().map(|t| t.spec.id.0).max().unwrap_or(0) + 1;
                    let tenant = ctx.tenants.len();
                    ctx.tenants.push(TenantRuntime {
                        spec: TenantSpec {
                            id: TenantId(id),
                            cloud,
                            pep: drams_faas::model::PepId(id),
                            services: (0..services.max(1))
                                .map(|s| format!("svc-{id}-{s}"))
                                .collect(),
                        },
                        active: false,
                        departed: false,
                    });
                    // LIs sit at [members 0..n, infra at n, joined at
                    // n+1…], so a joined tenant's LI index is tenant+1.
                    let li = tenant + 1;
                    debug_assert!(li > self.infra_li);
                    ctx.li_of_tenant.push(li);
                    debug_assert_eq!(ctx.li_site.len(), li);
                    ctx.li_site.push(Site::Cloud(cloud));
                    let slot = self.pdp_slot_for(ctx, cloud);
                    ctx.pdp_slot_of_tenant.push(slot);
                    out.emit(0, Msg::ProvisionPep { tenant });
                    out.emit(0, Msg::ProvisionLi { li });
                    out.emit(
                        0,
                        Msg::ProvisionProbeKey {
                            probe: ProbeId(tenant as u32 + 1),
                        },
                    );
                    // The tenant takes a short, churn-stream-jittered
                    // settle time before the workload targets it.
                    let settle = ctx.rngs.churn.gen_range(0..=drams_faas::des::MILLIS);
                    out.emit(settle, Msg::ActivateTenant { tenant });
                }
                ScriptedAction::TenantLeave { tenant, .. } => {
                    if let Some(idx) = ctx.tenants.iter().position(|t| t.spec.id == tenant) {
                        ctx.tenants[idx].active = false;
                        ctx.tenants[idx].departed = true;
                        ctx.active_tenants.retain(|&t| t != idx);
                    }
                }
                ScriptedAction::StallLi { until, tenant, .. } => {
                    let li = if tenant.is_infrastructure() {
                        self.infra_li
                    } else {
                        let idx = ctx
                            .tenants
                            .iter()
                            .position(|t| t.spec.id == tenant)
                            .expect("script stalls an existing tenant's LI");
                        ctx.li_of_tenant[idx]
                    };
                    out.emit(0, Msg::StallLi { li, until });
                }
                ScriptedAction::SilencePdp { until, cloud, .. } => {
                    let slot = self.pdp_slot_for(ctx, cloud);
                    out.emit(0, Msg::SilencePdp { slot, until });
                }
                ScriptedAction::CrashRestart { target, .. } => match target {
                    CrashTarget::ChainNode => out.emit(0, Msg::CrashChain),
                    CrashTarget::Analyser => out.emit(0, Msg::CrashAnalyser),
                    CrashTarget::Li(tenant) => {
                        let li = if tenant.is_infrastructure() {
                            self.infra_li
                        } else {
                            let idx = ctx
                                .tenants
                                .iter()
                                .position(|t| t.spec.id == tenant)
                                .expect("script crashes an existing tenant's LI");
                            ctx.li_of_tenant[idx]
                        };
                        out.emit(0, Msg::CrashLi { li });
                    }
                    CrashTarget::Pdp(cloud) => {
                        let slot = self.pdp_slot_for(ctx, cloud);
                        out.emit(0, Msg::CrashPdp { slot });
                    }
                },
                ScriptedAction::ForkChain { depth, .. } => {
                    let tip_height = ctx.node.chain().tip_header().height;
                    let depth = depth.min(tip_height);
                    if depth == 0 {
                        return; // nothing above genesis to rewrite — no attack mounted
                    }
                    let start = tip_height - depth + 1;
                    let originals: Vec<Block> = (start..=tip_height)
                        .map(|h| {
                            ctx.node
                                .chain()
                                .block_at_height(h)
                                .expect("main-chain height")
                                .clone()
                        })
                        .collect();
                    // Re-mine the suffix on a side branch: same transactions
                    // and timestamps (so the contract re-executes to
                    // byte-identical events after the reorg), different nonce
                    // (so the rewritten blocks hash differently).
                    let mut parent = originals[0].header.parent;
                    let mut last_ts = 0;
                    for orig in originals {
                        let mut block = orig;
                        block.header.parent = parent;
                        block.header.nonce = block.header.nonce.wrapping_add(1);
                        while !block.header.meets_difficulty() {
                            block.header.nonce = block.header.nonce.wrapping_add(1);
                        }
                        parent = block.hash();
                        last_ts = block.header.timestamp_ms;
                        ctx.node.receive_block(block).expect("side-branch import");
                    }
                    // One extra empty block out-works the honest chain and
                    // forces the reorg.
                    let bits = ctx
                        .node
                        .chain()
                        .required_difficulty(&parent)
                        .expect("side-branch difficulty");
                    let extra = Block::mine(parent, tip_height + 1, Vec::new(), last_ts + 1, bits);
                    ctx.node.receive_block(extra).expect("fork reorg import");
                    ctx.truth.chain_forks += 1;
                }
                ScriptedAction::EquivocateBlock { .. } => {
                    let parent = ctx.node.chain().tip_hash();
                    let height = ctx.node.chain().tip_header().height + 1;
                    let bits = ctx
                        .node
                        .chain()
                        .required_difficulty(&parent)
                        .expect("tip difficulty");
                    let first = Block::mine(parent, height, Vec::new(), now, bits);
                    let second = Block::mine(parent, height, Vec::new(), now + 1, bits);
                    ctx.node.receive_block(first).expect("equivocation import");
                    ctx.node
                        .receive_block(second)
                        .expect("equivocation sibling import");
                    ctx.truth.equivocations += 1;
                }
                ScriptedAction::InvalidSignatureBlock { .. } => {
                    // A correctly signed transaction whose payload is altered
                    // after signing: structurally valid, id consistent, but
                    // the signature no longer verifies. The simulated node
                    // skips import-time signature checks (the Byzantine
                    // premise); the Analyser's independent audit must not.
                    let forger = Keypair::from_seed(b"drams-byzantine-miner");
                    let mut tx = Transaction::new_signed(&forger, 0, "bogus", "noop", Vec::new());
                    tx.payload = b"forged".to_vec();
                    let parent = ctx.node.chain().tip_hash();
                    let height = ctx.node.chain().tip_header().height + 1;
                    let bits = ctx
                        .node
                        .chain()
                        .required_difficulty(&parent)
                        .expect("tip difficulty");
                    let block = Block::mine(parent, height, vec![tx], now, bits);
                    ctx.node
                        .receive_block(block)
                        .expect("byzantine block import");
                    ctx.truth.invalid_sig_blocks += 1;
                }
                ScriptedAction::WithholdTx { .. } => {
                    // Withhold the *youngest* (highest-nonce) pending log
                    // transaction of the first LI with commits in flight.
                    // Its nonce slot is the sender's next to be reused, so
                    // the withhold suppresses exactly the entries the
                    // transaction carries. Withholding an older-nonce
                    // transaction would additionally wedge every
                    // later-nonce commit of that account (LIs are
                    // fire-and-forget and never repair a nonce gap) — a
                    // consequential cascade the ground truth could not
                    // label entry-by-entry.
                    let is_log_tx = |tx: &&drams_chain::tx::Transaction| {
                        tx.contract == MONITOR_CONTRACT
                            && (tx.method == "store_log" || tx.method == "store_log_batch")
                    };
                    let sender = ctx
                        .node
                        .pending_transactions()
                        .find(is_log_tx)
                        .map(drams_chain::tx::Transaction::sender_address);
                    let target = sender.and_then(|address| {
                        ctx.node
                            .pending_transactions()
                            .filter(is_log_tx)
                            .filter(|tx| tx.sender_address() == address)
                            .max_by_key(|tx| tx.nonce)
                            .map(drams_chain::tx::Transaction::id)
                    });
                    if let Some(id) = target {
                        if let Some(tx) = ctx.node.withhold_transaction(&id) {
                            ctx.truth.withheld_logs.extend(logged_entry_keys(&tx));
                        }
                    }
                }
            },
            Msg::ActivateTenant { tenant } => {
                if !ctx.tenants[tenant].departed {
                    ctx.tenants[tenant].active = true;
                    ctx.active_tenants.push(tenant);
                }
            }
            _ => unreachable!("misrouted event"),
        }
    }
}

// ---------------------------------------------------------------------------
// Assembly
// ---------------------------------------------------------------------------

/// The degraded-mode schedule for a fault plan: one
/// `(widen_at, restore_at, widened_timeout)` triple per merged
/// disruption window. Widening starts a full base timeout plus settle
/// *before* the window so no group already in flight can be swept under
/// the old timeout while its evidence is stuck behind the fault, and the
/// widened value keeps every such group alive until a settle past the
/// heal. Windows are merged with a `base + 2·settle` bridge so
/// consecutive widen/restore pairs never interleave.
fn degraded_windows(plan: &FaultPlan, base_timeout: SimTime) -> Vec<(SimTime, SimTime, SimTime)> {
    plan.disruption_windows(base_timeout + 2 * FAULT_SETTLE)
        .into_iter()
        .map(|(from, until)| {
            let widen_at = from.saturating_sub(base_timeout + FAULT_SETTLE);
            let restore_at = until + FAULT_SETTLE;
            (widen_at, restore_at, (restore_at - widen_at) + base_timeout)
        })
        .collect()
}

/// Runs one scenario end to end.
///
/// # Panics
///
/// Panics on internal invariant violations (the chain rejecting its own
/// miner's block, the script addressing a tenant/cloud/version that does
/// not exist), which indicate bugs rather than recoverable errors.
pub fn run_scenario<A: Adversary>(
    spec: &ScenarioSpec,
    adversary: &mut A,
) -> (MonitorReport, GroundTruth) {
    run_scenario_with_transport(spec, adversary, &mut DesTransport)
}

/// Runs one scenario over an explicit transport backend.
///
/// Under [`DesTransport`] this is exactly [`run_scenario`]. Under a
/// wire backend (`drams_net::TcpTransport`) every federation-crossing
/// message is framed, carried through the destination service's socket
/// endpoint with a synchronous round-trip, and scheduled from the bytes
/// that came back — while the DES remains the single logical clock, so
/// the two backends are comparable event for event. Invariant 9: the
/// transport choice is observationally invisible — same spec, same
/// alerts, same ground truth, byte for byte.
///
/// # Panics
///
/// Panics on internal invariant violations (see [`run_scenario`]) and
/// on wire-transport failures that survive the transport's own
/// reconnect policy: a transport that cannot deliver is a harness
/// failure, not a scenario outcome.
pub fn run_scenario_with_transport<A: Adversary>(
    spec: &ScenarioSpec,
    adversary: &mut A,
    transport: &mut dyn Transport,
) -> (MonitorReport, GroundTruth) {
    let config = &spec.config;
    // Pathological overload knobs are clamped once, up front; the
    // default profile passes through unchanged.
    let load = spec.load.clamped();
    let mut report = MonitorReport::default();
    let mut truth = GroundTruth::default();
    report.policy_activations = 1;

    // --- access control plane -------------------------------------------
    let tenant_count = config.federation.tenant_count().max(1);
    let peps: Vec<Pep> = config
        .federation
        .tenants
        .iter()
        .map(|t| Pep::new(t.pep, t.id, config.bias))
        .collect();
    let authorised = config.policy.clone();
    let active_policy = match adversary.swap_policy(&authorised) {
        Some(swapped) => {
            truth.policy_swapped = true;
            swapped
        }
        None => authorised.clone(),
    };
    // The PRP stores (and pre-compiles) the policy the PDPs actually
    // serve — deliberately the *active* policy, not the authorised one:
    // the paper's swap-policy threat is an unauthorised substitution at
    // the PRP, and the Analyser detects it from its own independent
    // authorised copy.
    let prp = Prp::new(active_policy);

    // PDP slots: one central instance, or one per member cloud.
    let key = SymmetricKey::from_bytes([42; 32]);
    let mut probe_mac_keys: BTreeMap<ProbeId, [u8; 32]> = BTreeMap::new();
    let mut pdp_slot_of_cloud: BTreeMap<u32, usize> = BTreeMap::new();
    let mut slots: Vec<PdpSlot> = Vec::new();
    let mut slot_site: Vec<Site> = Vec::new();
    match spec.placement {
        PdpPlacement::Central => {
            let probe_id = ProbeId(0);
            probe_mac_keys.insert(probe_id, probe_mac_key(probe_id));
            slots.push(PdpSlot::new(
                probe_id,
                &key,
                prp.active().pdp(),
                load.idempotency_retention,
            ));
            slot_site.push(Site::Infra);
            for t in &config.federation.tenants {
                pdp_slot_of_cloud.entry(t.cloud.0).or_insert(0);
            }
        }
        PdpPlacement::PerCloud => {
            let clouds: BTreeSet<u32> = config
                .federation
                .tenants
                .iter()
                .map(|t| t.cloud.0)
                .collect();
            for cloud in clouds {
                let probe_id = ProbeId(PDP_PROBE_BASE + cloud);
                probe_mac_keys.insert(probe_id, probe_mac_key(probe_id));
                pdp_slot_of_cloud.insert(cloud, slots.len());
                slots.push(PdpSlot::new(
                    probe_id,
                    &key,
                    prp.active().pdp(),
                    load.idempotency_retention,
                ));
                slot_site.push(Site::Cloud(CloudId(cloud)));
            }
        }
    }
    let slot_count = slots.len();

    // --- monitoring plane -------------------------------------------------
    let pep_probes: Vec<Probe> = (0..tenant_count)
        .map(|i| {
            let id = ProbeId(i as u32 + 1);
            probe_mac_keys.insert(id, probe_mac_key(id));
            Probe::new(id, key.clone(), probe_mac_key(id))
        })
        .collect();

    // One LI per member tenant + one in the infrastructure tenant.
    let infra_li = tenant_count;
    let mut li_service = LiService {
        lis: Vec::new(),
        pending: Vec::new(),
        backlog: Vec::new(),
        stalled_until: Vec::new(),
        offline_since: Vec::new(),
        flush_interval: config.li_flush_interval,
        batch_size: config.li_batch_size,
        resident_cap: load.li_resident_cap as usize,
        key: key.clone(),
    };
    for i in 0..=tenant_count {
        li_service.push_li(&format!("li-{i}"));
    }

    // --- chain -------------------------------------------------------------
    let admin = Keypair::from_seed(b"drams-admin");
    let analyser_kp = Keypair::from_seed(b"drams-analyser");
    let chain_config = ChainConfig {
        initial_difficulty_bits: 0,
        retarget_interval: 0,
        max_block_txs: 4096,
        // The threat model includes a Byzantine chain node that accepts
        // blocks carrying forged transaction signatures, so the simulated
        // node's import path does not verify them — log non-repudiation
        // rests on the Analyser's independent signature audit, which is
        // the paper's trust assumption anyway.
        verify_signatures: false,
        ..ChainConfig::default()
    };
    // The node journals write-ahead into a shared WAL (in-memory medium,
    // synced per record) from the very first transaction, so a scripted
    // `CrashRestart` of the chain service can rebuild chain, contract
    // state and mempool at any point of the run.
    let node_wal = Rc::new(RefCell::new(
        Wal::open(
            Box::new(MemBackend::new()),
            WalConfig {
                segment_records: 256,
                durability: Durability::Flushed,
            },
        )
        .expect("fresh in-memory wal"),
    ));
    let mut node = Node::new(chain_config.clone());
    node.register_contract(Box::new(MonitorContract));
    node.set_journal(Box::new(WalJournal::new(node_wal.clone())));
    if config.monitoring_enabled {
        node.submit_call(
            &admin,
            MONITOR_CONTRACT,
            "init",
            MonitorContract::init_payload(config.group_timeout, analyser_kp.public().fingerprint()),
        )
        .expect("init submission");
        node.mine_block(0).expect("genesis follow-up");
    }
    let event_cursor = node.events().len();
    let mut analyser = Analyser::new(authorised, key.clone(), analyser_kp, probe_mac_keys);
    // The scenario runtime's chain is mined by a single honest node, so
    // any sibling block means a rewritten history or an equivocating
    // miner — turn the sweep on (the flag and the alerted-fork set ride
    // in the checkpoint, so a recovered Analyser keeps it without
    // re-alerting known forks). Enabled before the first checkpoint.
    analyser.enable_fork_detection();
    if load.analyser_retire_lag > 0 {
        // Windowed group retirement: evidence of verified groups is
        // pruned from contract storage once the replay window closes.
        // Enabled before the first checkpoint so the lag (and the
        // pending window) ride in every recovery.
        analyser.enable_group_retirement(load.analyser_retire_lag);
    }
    if load.policy_history_retention > 0 {
        // Bounded authorised-policy history: superseded versions older
        // than the horizon (referenced to the oldest unretired group)
        // are dropped. Enabled before the first checkpoint so the
        // horizon rides in every recovery.
        analyser.enable_history_retention(load.policy_history_retention);
    }
    analyser
        .attach_checkpoint(SnapshotStore::new(Box::new(MemBackend::new())))
        .expect("analyser checkpoint");

    // --- context -----------------------------------------------------------
    let pep_pdp = match spec.placement {
        PdpPlacement::Central => config.federation.tenant_to_infra,
        // Per-cloud PDPs sit one local hop away from their PEPs.
        PdpPlacement::PerCloud => config.federation.intra_tenant,
    };
    let mut ctx = Ctx {
        node,
        node_wal,
        report,
        truth,
        adversary,
        rngs: RngStreams::new(config.seed),
        monitoring: config.monitoring_enabled,
        to_li: config.federation.to_logging_interface,
        pep_pdp,
        tenants: config
            .federation
            .tenants
            .iter()
            .map(|t| TenantRuntime {
                spec: t.clone(),
                active: true,
                departed: false,
            })
            .collect(),
        active_tenants: (0..tenant_count).collect(),
        li_of_tenant: (0..tenant_count).collect(),
        pdp_slot_of_tenant: config
            .federation
            .tenants
            .iter()
            .map(|t| pdp_slot_of_cloud[&t.cloud.0])
            .collect(),
        pdp_slot_of_cloud,
        issued_at_by_corr: HashMap::new(),
        tx_entry_times: HashMap::new(),
        fault_plane: FaultPlane::new(spec.faults.clone(), stream_rng(config.seed, "faults")),
        slot_site,
        // LIs sit at [tenants 0..n, infra at n]; a tenant-less config
        // still provisions LI 0, which then shares the infra site.
        li_site: (0..tenant_count)
            .map(|i| {
                config
                    .federation
                    .tenants
                    .get(i)
                    .map_or(Site::Infra, |t| Site::Cloud(t.cloud))
            })
            .chain(std::iter::once(Site::Infra))
            .collect(),
        transport,
        wire_seq: 0,
    };

    // --- services ----------------------------------------------------------
    // Degraded-mode schedule: while a disruption window is near, the
    // epoch sweep runs with a widened group timeout (monitoring off =
    // nothing to retune).
    let degraded = if config.monitoring_enabled {
        degraded_windows(&spec.faults, config.group_timeout)
    } else {
        Vec::new()
    };
    let mut rt: ServiceRuntime<Msg, Ctx<'_>> = ServiceRuntime::new(route);
    let registered = rt.register(Box::new(WorkloadSource {
        total_requests: config.total_requests,
        base_rate: config.request_rate_per_sec,
        phases: spec.phases.clone(),
        zipf: (load.population > 0)
            .then(|| Zipf::new(load.population as usize, load.zipf_exponent)),
        load: load.clone(),
        generator: RequestGenerator::new(Vocabulary::default(), 1.1, config.seed ^ 0x9e37),
        last_join_at: spec
            .script
            .iter()
            .filter_map(|a| match a {
                ScriptedAction::TenantJoin { at, .. } => Some(*at),
                _ => None,
            })
            .max(),
        group_timeout: config.group_timeout,
        block_interval: config.block_interval,
        analyser_poll_interval: config.analyser_poll_interval,
        fault_floor: degraded
            .iter()
            .map(|&(_, restore_at, _)| restore_at)
            .max()
            .unwrap_or(0),
    }));
    debug_assert_eq!(registered, SVC_WORKLOAD);
    rt.register(Box::new(PepService {
        peps,
        probes: pep_probes,
        bias: config.bias,
        key: key.clone(),
        inflight: HashMap::new(),
        breakers: vec![Breaker::Closed { failures: 0 }; slot_count],
        inflight_cap: if load.pep_inflight_cap > 0 {
            load.pep_inflight_cap as usize
        } else {
            usize::MAX
        },
    }));
    rt.register(Box::new(PdpService {
        prp,
        slots,
        infra_li,
        key: key.clone(),
        prepared: HashMap::new(),
    }));
    rt.register(Box::new(li_service));
    rt.register(Box::new(ChainService {
        admin,
        epoch_blocks: config.epoch_blocks,
        block_interval: config.block_interval,
        event_cursor,
        chain_config,
        compact_interval: load.chain_compact_interval,
        journal_base: 0,
    }));
    rt.register(Box::new(AnalyserService {
        analyser,
        poll_interval: config.analyser_poll_interval,
        key: key.clone(),
    }));
    rt.register(Box::new(Controller {
        script: spec.script.clone(),
        placement: spec.placement,
        infra_li,
    }));

    // --- fault plane and wire transport ------------------------------------
    // With a declared plan, every wire message (request, response, log
    // delivery) crosses the fault plane on its way into the event queue;
    // with a wire transport attached, every surviving delivery then
    // crosses the real socket to its destination endpoint. Initial
    // schedules below bypass both by design — they are bootstrap
    // bookkeeping, not link traffic. An empty plan under the DES backend
    // installs no shim, so canonical runs take the exact
    // pre-fault-plane path.
    if !spec.faults.is_empty() || ctx.transport.is_wire() {
        rt.set_net_shim(Box::new(|ctx: &mut Ctx<'_>, now, delay, msg, buf| {
            let class = match &msg {
                Msg::PdpReceive { slot, env } => {
                    Some((ctx.site_of_tenant(env.tenant), ctx.slot_site[*slot], true))
                }
                Msg::PepReceive { slot, env } => {
                    Some((ctx.slot_site[*slot], ctx.site_of_pep(env.pep), true))
                }
                // Probe→LI links are intra-site and carry evidence: the
                // fault plane may delay, duplicate or reorder them but
                // never silently destroy them — evidence loss must stay
                // an adversary capability, not a network artefact.
                Msg::LiDeliver { li, .. } => Some((ctx.li_site[*li], ctx.li_site[*li], false)),
                _ => None,
            };
            let Some((from, to, allow_drop)) = class else {
                // Not a fault-plane link; non-wire messages pass
                // straight through, wire-encodable ones (probe-key
                // provisioning) still cross the transport.
                deliver(ctx, delay, msg, buf);
                return;
            };
            // The fault plane draws from its RNG stream only when a
            // plan is declared, so attaching a wire transport to a
            // fault-free spec perturbs nothing.
            let fates = if ctx.fault_plane.plan().is_empty() {
                vec![0]
            } else {
                ctx.fault_plane.deliveries(now, from, to, allow_drop)
            };
            let Some((last, rest)) = fates.split_last() else {
                return; // dropped (or partitioned away)
            };
            for extra in rest {
                let dup = clone_faulted(&msg);
                deliver(ctx, delay + extra, dup, buf);
            }
            deliver(ctx, delay + last, msg, buf);
        }));
    }

    // --- initial events ----------------------------------------------------
    let arrivals = PoissonArrivals::with_rate_per_sec(
        load.effective_rate(
            spec.phases
                .first()
                .filter(|p| p.start == 0)
                .map_or(config.request_rate_per_sec, |p| p.rate_per_sec),
            0,
        ),
    );
    rt.schedule(arrivals.next_gap(&mut ctx.rngs.workload), Msg::Arrival);
    if config.monitoring_enabled {
        rt.schedule(config.block_interval, Msg::MineTick);
        for li in 0..=tenant_count {
            rt.schedule(config.li_flush_interval, Msg::LiFlushTick { li });
        }
        if config.analyser_enabled {
            rt.schedule(config.analyser_poll_interval, Msg::AnalyserTick);
        }
    }
    for (i, action) in spec.script.iter().enumerate() {
        rt.schedule_at(action.at(), Msg::Script(i));
    }
    for &(widen_at, restore_at, widened) in &degraded {
        rt.schedule_at(widen_at, Msg::SetTimeout { timeout: widened });
        rt.schedule_at(
            restore_at,
            Msg::SetTimeout {
                timeout: config.group_timeout,
            },
        );
    }

    // --- run ---------------------------------------------------------------
    let finished_at = rt.run(&mut ctx, config.horizon);
    ctx.report.finished_at = finished_at;
    ctx.report.faults = ctx.fault_plane.stats();
    (ctx.report, ctx.truth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoAdversary;
    use drams_faas::des::MILLIS;
    use drams_faas::model::FederationSpec;
    use rand::RngCore;

    fn base_config() -> MonitorConfig {
        MonitorConfig {
            total_requests: 40,
            request_rate_per_sec: 100.0,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn named_streams_are_deterministic_and_distinct() {
        let mut a = stream_rng(7, "workload");
        let mut b = stream_rng(7, "workload");
        let mut c = stream_rng(7, "churn");
        let mut d = stream_rng(8, "workload");
        let a_seq: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let b_seq: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_eq!(a_seq, b_seq, "same seed + name = same stream");
        assert_ne!(a_seq[0], c.next_u64(), "names separate streams");
        assert_ne!(a_seq[0], d.next_u64(), "seeds separate streams");
    }

    #[test]
    fn cross_stream_draws_do_not_perturb_each_other() {
        // Interleaving draws from one stream must not change another's
        // sequence — the property the per-component split buys.
        let mut workload = stream_rng(7, "workload");
        let mut churn = stream_rng(7, "churn");
        let mut interleaved = Vec::new();
        for _ in 0..8 {
            interleaved.push(workload.next_u64());
            let _ = churn.next_u64(); // extra churn draws
            let _ = churn.next_u64();
        }
        let mut isolated_stream = stream_rng(7, "workload");
        let isolated: Vec<u64> = (0..8).map(|_| isolated_stream.next_u64()).collect();
        assert_eq!(interleaved, isolated);
    }

    #[test]
    fn canonical_scenario_matches_run_monitor() {
        let config = base_config();
        let (a, ta) = crate::monitor::run_monitor(&config, &mut NoAdversary);
        let (b, tb) = run_scenario(&ScenarioSpec::canonical(&config), &mut NoAdversary);
        assert_eq!(a.requests_completed, b.requests_completed);
        assert_eq!(a.entries_logged, b.entries_logged);
        assert_eq!(a.groups_completed, b.groups_completed);
        assert_eq!(a.alerts.len(), b.alerts.len());
        assert_eq!(a.e2e_latency.mean(), b.e2e_latency.mean());
        assert_eq!(ta, tb);
    }

    #[test]
    fn per_cloud_placement_serves_all_requests_clean() {
        let spec = ScenarioSpec {
            placement: PdpPlacement::PerCloud,
            ..ScenarioSpec::canonical(&base_config())
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(report.requests_completed, 40);
        assert_eq!(report.groups_completed, 40);
        assert_eq!(report.entries_logged, 160);
        assert_eq!(truth.total_attacks(), 0);
        assert!(report.alerts.is_empty(), "alerts: {:?}", report.alerts);
    }

    #[test]
    fn per_cloud_pdps_cut_decision_latency() {
        let config = base_config();
        let (central, _) = run_scenario(&ScenarioSpec::canonical(&config), &mut NoAdversary);
        let spec = ScenarioSpec {
            placement: PdpPlacement::PerCloud,
            ..ScenarioSpec::canonical(&config)
        };
        let (local, _) = run_scenario(&spec, &mut NoAdversary);
        assert!(
            local.e2e_latency.mean() < central.e2e_latency.mean(),
            "local {} vs central {}",
            local.e2e_latency.mean(),
            central.e2e_latency.mean()
        );
    }

    #[test]
    fn policy_churn_is_not_flagged_as_attack() {
        let mut config = base_config();
        config.total_requests = 80;
        let stricter = PolicySet::builder(
            "strict-root",
            drams_policy::combining::CombiningAlg::DenyUnlessPermit,
        )
        .policy(
            drams_policy::policy::Policy::builder(
                "doctors-only",
                drams_policy::combining::CombiningAlg::PermitOverrides,
            )
            .rule(
                drams_policy::rule::Rule::builder(
                    "doctors",
                    drams_policy::decision::Effect::Permit,
                )
                .target(drams_policy::target::Target::expr(
                    drams_policy::expr::Expr::equal(
                        drams_policy::expr::Expr::attr(drams_policy::attr::AttributeId::new(
                            drams_policy::attr::Category::Subject,
                            "role",
                        )),
                        drams_policy::expr::Expr::lit("doctor"),
                    ),
                ))
                .build(),
            )
            .build(),
        )
        .build();
        let spec = ScenarioSpec {
            script: vec![
                ScriptedAction::PublishPolicy {
                    at: 200 * MILLIS,
                    policy: stricter,
                },
                ScriptedAction::RollbackPolicy {
                    at: 500 * MILLIS,
                    version: 0,
                },
            ],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(report.requests_completed, 80);
        assert_eq!(report.groups_completed, 80);
        assert_eq!(report.policy_activations, 3, "initial + publish + rollback");
        assert_eq!(truth.total_attacks(), 0);
        assert!(
            report.alerts.is_empty(),
            "legitimate churn must not alert: {:?}",
            report.alerts
        );
    }

    #[test]
    fn tenant_churn_keeps_the_run_clean() {
        let mut config = base_config();
        config.total_requests = 80;
        let spec = ScenarioSpec {
            script: vec![
                ScriptedAction::TenantJoin {
                    at: 150 * MILLIS,
                    cloud: CloudId(0),
                    services: 2,
                },
                ScriptedAction::TenantLeave {
                    at: 450 * MILLIS,
                    tenant: TenantId(2),
                },
            ],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(report.requests_completed, 80);
        assert_eq!(report.groups_completed, 80);
        assert_eq!(truth.total_attacks(), 0);
        assert!(report.alerts.is_empty(), "alerts: {:?}", report.alerts);
    }

    #[test]
    fn stalled_li_raises_missing_log_alerts() {
        let mut config = base_config();
        config.total_requests = 60;
        let spec = ScenarioSpec {
            script: vec![ScriptedAction::StallLi {
                at: 0,
                until: 30 * SECONDS, // far beyond the drain deadline
                tenant: TenantId(1),
            }],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(truth.total_attacks(), 0, "a fault is not an attack");
        assert!(
            report
                .alerts
                .iter()
                .any(|a| matches!(a.kind, crate::alert::AlertKind::MissingLog { .. })),
            "a stalled LI must surface as missing observations: {:?}",
            report.alerts
        );
        assert!(report.groups_completed < 60);
    }

    #[test]
    fn short_pdp_silence_is_masked_by_retries() {
        // A sub-second outage sits well inside the PEP's retry budget:
        // every request completes on a retransmission and nothing alerts.
        let mut config = base_config();
        config.total_requests = 60;
        let spec = ScenarioSpec {
            script: vec![ScriptedAction::SilencePdp {
                at: 0,
                until: 150 * MILLIS,
                cloud: CloudId(0),
            }],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(truth.total_attacks(), 0);
        assert_eq!(report.requests_completed, 60);
        assert_eq!(report.requests_dropped, 0);
        assert!(report.retries_total > 0, "the outage must cost retries");
        assert_eq!(report.e2e_latency.report().retries, report.retries_total);
        assert!(
            report.e2e_latency.report().attempts[1] > 0,
            "some requests must have completed on their second attempt"
        );
        assert!(
            report.alerts.is_empty(),
            "a retried-through fault must not alert: {:?}",
            report.alerts
        );
    }

    #[test]
    fn persistent_pdp_silence_abandons_requests_and_times_out() {
        // An outage longer than the whole retry budget: the PEP gives up
        // after MAX_ATTEMPTS and the on-chain sweep surfaces the stuck
        // groups as MissingLog.
        let mut config = base_config();
        config.total_requests = 60;
        let spec = ScenarioSpec {
            script: vec![ScriptedAction::SilencePdp {
                at: 0,
                until: 60 * SECONDS,
                cloud: CloudId(0),
            }],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, _) = run_scenario(&spec, &mut NoAdversary);
        assert!(report.requests_dropped > 0);
        assert_eq!(
            report.requests_completed + report.requests_dropped,
            60,
            "every request either completes or is abandoned after its budget"
        );
        assert!(report.retries_total > 0);
        assert!(!report.alerts.is_empty());
        assert!(report
            .alerts
            .iter()
            .all(|a| matches!(a.kind, crate::alert::AlertKind::MissingLog { .. })));
    }

    #[test]
    fn phased_load_changes_arrival_density() {
        let mut config = base_config();
        config.total_requests = 200;
        config.request_rate_per_sec = 50.0;
        let burst = ScenarioSpec {
            phases: vec![
                Phase {
                    start: 0,
                    rate_per_sec: 50.0,
                },
                Phase {
                    start: 500 * MILLIS,
                    rate_per_sec: 1000.0,
                },
            ],
            ..ScenarioSpec::canonical(&config)
        };
        let (bursty, _) = run_scenario(&burst, &mut NoAdversary);
        let (flat, _) = run_scenario(&ScenarioSpec::canonical(&config), &mut NoAdversary);
        assert_eq!(bursty.requests_completed, 200);
        assert!(
            bursty.finished_at < flat.finished_at,
            "the burst phase must finish the budget sooner: {} vs {}",
            bursty.finished_at,
            flat.finished_at
        );
    }

    #[test]
    fn scheduling_an_out_of_window_action_does_not_perturb_the_run() {
        // Cross-component determinism at scenario level: a scripted
        // action that never fires (far beyond the horizon) must leave
        // every draw of every other component untouched.
        let mut config = base_config();
        config.horizon = 30 * SECONDS;
        let canonical = ScenarioSpec::canonical(&config);
        let spec = ScenarioSpec {
            script: vec![ScriptedAction::TenantJoin {
                at: config.horizon + SECONDS,
                cloud: CloudId(0),
                services: 1,
            }],
            ..canonical.clone()
        };
        let (a, ta) = run_scenario(&canonical, &mut NoAdversary);
        let (b, tb) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(a.requests_completed, b.requests_completed);
        assert_eq!(a.e2e_latency.mean(), b.e2e_latency.mean());
        assert_eq!(a.log_commit_latency.mean(), b.log_commit_latency.mean());
        assert_eq!(a.txs_committed, b.txs_committed);
        assert_eq!(ta, tb);
    }

    #[test]
    fn leave_during_join_settle_does_not_resurrect_the_tenant() {
        // A tenant that departs between its join and the end of the join
        // settle window must not re-enter the workload rotation when the
        // pending activation fires.
        let mut config = base_config();
        config.total_requests = 60;
        let spec = ScenarioSpec {
            script: vec![
                ScriptedAction::TenantJoin {
                    at: 100 * MILLIS,
                    cloud: CloudId(0),
                    services: 1,
                },
                // Default federation has tenants 1..=4, so the joiner is
                // TenantId(5); it leaves at the same instant it joins —
                // before the churn-jittered activation can land.
                ScriptedAction::TenantLeave {
                    at: 100 * MILLIS,
                    tenant: TenantId(5),
                },
            ],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(report.requests_completed, 60);
        assert_eq!(truth.total_attacks(), 0);
        assert!(report.alerts.is_empty(), "alerts: {:?}", report.alerts);
    }

    #[test]
    fn run_winds_down_when_every_tenant_departs_for_good() {
        let mut config = base_config();
        config.total_requests = 1_000_000; // never exhausted
        let leave_all: Vec<ScriptedAction> = config
            .federation
            .tenants
            .iter()
            .map(|t| ScriptedAction::TenantLeave {
                at: 300 * MILLIS,
                tenant: t.id,
            })
            .collect();
        let spec = ScenarioSpec {
            script: leave_all,
            ..ScenarioSpec::canonical(&config)
        };
        let (report, _) = run_scenario(&spec, &mut NoAdversary);
        assert!(report.requests_issued > 0);
        assert!(
            report.finished_at < 30 * SECONDS,
            "an emptied federation must drain, not grind to the {}s horizon              (finished at {})",
            config.horizon / SECONDS,
            report.finished_at
        );
    }

    #[test]
    fn crash_restarts_are_byte_identical_to_the_uninterrupted_run() {
        use drams_crypto::codec::Encode;
        let mut config = base_config();
        config.total_requests = 60;
        let (clean, clean_truth) =
            run_scenario(&ScenarioSpec::canonical(&config), &mut NoAdversary);
        for target in [
            CrashTarget::ChainNode,
            CrashTarget::Li(TenantId(1)),
            CrashTarget::Li(TenantId::INFRASTRUCTURE),
            CrashTarget::Analyser,
            CrashTarget::Pdp(CloudId(0)),
        ] {
            let spec = ScenarioSpec {
                script: vec![ScriptedAction::CrashRestart {
                    at: 250 * MILLIS,
                    target,
                }],
                ..ScenarioSpec::canonical(&config)
            };
            let (crashed, crashed_truth) = run_scenario(&spec, &mut NoAdversary);
            assert_eq!(crashed.crash_restarts, 1, "{target:?}");
            assert_eq!(clean_truth, crashed_truth, "{target:?}");
            assert_eq!(
                clean.requests_completed, crashed.requests_completed,
                "{target:?}"
            );
            assert_eq!(clean.entries_logged, crashed.entries_logged, "{target:?}");
            assert_eq!(
                clean.groups_completed, crashed.groups_completed,
                "{target:?}"
            );
            assert_eq!(clean.txs_committed, crashed.txs_committed, "{target:?}");
            assert_eq!(clean.finished_at, crashed.finished_at, "{target:?}");
            let a: Vec<Vec<u8>> = clean
                .alerts
                .iter()
                .map(Encode::to_canonical_bytes)
                .collect();
            let b: Vec<Vec<u8>> = crashed
                .alerts
                .iter()
                .map(Encode::to_canonical_bytes)
                .collect();
            assert_eq!(a, b, "{target:?}: recovery must lose and repeat nothing");
        }
    }

    #[test]
    fn li_crash_during_a_stall_loses_queued_entries_and_alerts() {
        // Entries delivered to a *stalled* LI queue in process memory
        // and are never WAL-acknowledged; a crash during the stall
        // loses them, and the monitor must surface that as MissingLog
        // alerts rather than silently resurrecting the data.
        let mut config = base_config();
        config.total_requests = 60;
        config.group_timeout = 2 * SECONDS;
        let spec = ScenarioSpec {
            script: vec![
                ScriptedAction::StallLi {
                    at: 0,
                    until: 600 * MILLIS,
                    tenant: TenantId(1),
                },
                ScriptedAction::CrashRestart {
                    at: 300 * MILLIS, // mid-stall, with entries queued
                    target: CrashTarget::Li(TenantId(1)),
                },
            ],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(truth.total_attacks(), 0, "a fault is not an attack");
        assert_eq!(report.crash_restarts, 1);
        assert!(
            report
                .alerts
                .iter()
                .any(|a| matches!(a.kind, crate::alert::AlertKind::MissingLog { .. })),
            "lost stalled entries must surface as MissingLog: {:?}",
            report.alerts
        );
        assert!(report.groups_completed < report.requests_completed);
    }

    #[test]
    fn chain_crash_with_pending_mempool_recovers_the_backlog() {
        // Crash the node right before a mine tick: whatever the LIs
        // submitted since the last block sits in the mempool and must
        // come back from the journal, or groups would be lost for good.
        let mut config = base_config();
        config.total_requests = 80;
        config.request_rate_per_sec = 400.0; // dense traffic between blocks
        let spec = ScenarioSpec {
            script: vec![ScriptedAction::CrashRestart {
                at: 499 * MILLIS, // one tick before the 500 ms block
                target: CrashTarget::ChainNode,
            }],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(truth.total_attacks(), 0);
        assert_eq!(report.requests_completed, 80);
        assert_eq!(report.groups_completed, 80, "no group may be lost");
        assert_eq!(report.entries_logged, 320);
        assert!(report.alerts.is_empty(), "alerts: {:?}", report.alerts);
    }

    #[test]
    fn lossy_link_is_masked_by_retries_without_false_alerts() {
        // A 20%-drop window across every link: retransmissions push all
        // requests through, the sweep runs widened across the window,
        // and an honest run stays alert-free.
        use drams_faas::fault::LinkFault;
        let mut config = base_config();
        config.total_requests = 60;
        let spec = ScenarioSpec {
            faults: FaultPlan {
                links: vec![LinkFault {
                    drop_permille: 200,
                    active_from: 0,
                    active_until: 2 * SECONDS,
                    ..LinkFault::default()
                }],
                partitions: Vec::new(),
            },
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(truth.total_attacks(), 0);
        assert_eq!(report.requests_completed, 60, "retries mask the loss");
        assert_eq!(report.requests_dropped, 0);
        assert!(report.faults.dropped > 0, "the plan must actually bite");
        assert!(report.retries_total > 0);
        assert_eq!(report.timeout_retunes, 2, "one widen + one restore");
        assert_eq!(report.groups_completed, 60);
        assert!(
            report.alerts.is_empty(),
            "faults are not attacks: {:?}",
            report.alerts
        );
    }

    #[test]
    fn partition_spills_li_backlog_and_replays_on_heal() {
        // Cloud 0 loses the infrastructure for a second: its PEPs retry
        // their way through, its LIs spill to the WAL and replay on
        // heal; nothing is lost, nothing alerts.
        use drams_faas::fault::PartitionWindow;
        let mut config = base_config();
        config.total_requests = 60;
        let spec = ScenarioSpec {
            faults: FaultPlan {
                links: Vec::new(),
                partitions: vec![PartitionWindow {
                    a: Site::Cloud(CloudId(0)),
                    b: Site::Infra,
                    from: 200 * MILLIS,
                    until: 1200 * MILLIS,
                }],
            },
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(truth.total_attacks(), 0);
        assert_eq!(report.requests_completed, 60);
        assert!(report.faults.partition_blocked > 0);
        assert!(report.li_spilled > 0, "cloud-0 LIs must have spilled");
        assert!(report.li_replayed > 0, "the spill must replay on heal");
        assert!(report.spill_recovery.report().count > 0);
        assert_eq!(report.groups_completed, 60, "no observation may be lost");
        assert!(
            report.alerts.is_empty(),
            "a healed partition must not alert: {:?}",
            report.alerts
        );
    }

    #[test]
    fn pdp_outage_fails_over_to_a_healthy_cloud() {
        // Per-cloud placement: cloud 0's PDP goes dark, the breaker
        // trips after three timeouts and *new* interceptions complete on
        // cloud 1's PDP instead; the few in-flight stragglers retry
        // slot-sticky and land once the outage (shorter than the group
        // timeout) ends, so nothing alerts.
        let mut config = base_config();
        config.total_requests = 60;
        let spec = ScenarioSpec {
            placement: PdpPlacement::PerCloud,
            script: vec![ScriptedAction::SilencePdp {
                at: 0,
                until: 1500 * MILLIS,
                cloud: CloudId(0),
            }],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(truth.total_attacks(), 0);
        assert_eq!(report.requests_completed, 60, "failover serves them all");
        assert_eq!(report.requests_dropped, 0);
        assert!(report.breaker_trips > 0, "the breaker must have tripped");
        assert!(report.failovers > 0, "requests must have failed over");
        assert!(report.failover_e2e.report().count > 0);
        assert_eq!(report.failover_e2e.report().count as u64, report.failovers);
        assert!(
            report.alerts.is_empty(),
            "failover keeps the pipeline observable: {:?}",
            report.alerts
        );
    }

    #[test]
    fn pdp_crash_under_duplicating_faults_stays_twin_identical() {
        // The journaled decision cache is what makes a crashed PDP
        // idempotent: under a duplicating/reordering fault plan, the
        // crashed run must match the uninterrupted one byte for byte
        // (a lost cache would re-decide a retransmission, stamp a new
        // `decided_at` and trip the digest cross-check).
        use drams_crypto::codec::Encode;
        use drams_faas::fault::LinkFault;
        let mut config = base_config();
        config.total_requests = 60;
        let faults = FaultPlan {
            links: vec![LinkFault {
                duplicate_permille: 300,
                reorder_permille: 200,
                reorder_spread: 5 * MILLIS,
                active_from: 0,
                active_until: 1500 * MILLIS,
                ..LinkFault::default()
            }],
            partitions: Vec::new(),
        };
        let clean_spec = ScenarioSpec {
            faults: faults.clone(),
            ..ScenarioSpec::canonical(&config)
        };
        let crashed_spec = ScenarioSpec {
            script: vec![ScriptedAction::CrashRestart {
                at: 250 * MILLIS,
                target: CrashTarget::Pdp(CloudId(0)),
            }],
            ..clean_spec.clone()
        };
        let (clean, clean_truth) = run_scenario(&clean_spec, &mut NoAdversary);
        let (crashed, crashed_truth) = run_scenario(&crashed_spec, &mut NoAdversary);
        assert!(clean.faults.duplicated > 0, "the plan must actually bite");
        assert_eq!(crashed.crash_restarts, 1);
        assert_eq!(clean_truth, crashed_truth);
        assert_eq!(clean.requests_completed, crashed.requests_completed);
        assert_eq!(clean.entries_logged, crashed.entries_logged);
        assert_eq!(clean.groups_completed, crashed.groups_completed);
        assert_eq!(clean.txs_committed, crashed.txs_committed);
        assert_eq!(clean.finished_at, crashed.finished_at);
        let a: Vec<Vec<u8>> = clean
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let b: Vec<Vec<u8>> = crashed
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        assert_eq!(a, b, "recovery must lose and repeat nothing");
    }

    #[test]
    fn attacks_are_still_detected_under_faults() {
        // The robustness bar from the threat matrix: a log-dropping
        // adversary mounted *during* a lossy window must still be
        // detected once the degraded-mode timeout restores.
        use drams_faas::fault::LinkFault;
        let mut config = base_config();
        config.total_requests = 60;
        let spec = ScenarioSpec {
            faults: FaultPlan {
                links: vec![LinkFault {
                    drop_permille: 150,
                    active_from: 0,
                    active_until: 1500 * MILLIS,
                    ..LinkFault::default()
                }],
                partitions: Vec::new(),
            },
            ..ScenarioSpec::canonical(&config)
        };
        struct EveryNthLogDropper {
            seen: u64,
        }
        impl crate::adversary::Adversary for EveryNthLogDropper {
            fn drop_log(&mut self, _entry: &crate::logent::LogEntry, now: SimTime) -> bool {
                if now >= 1500 * MILLIS {
                    return false; // attack only inside the fault window
                }
                self.seen += 1;
                self.seen % 9 == 0
            }
        }
        let mut adversary = EveryNthLogDropper { seen: 0 };
        let (report, truth) = run_scenario(&spec, &mut adversary);
        assert!(!truth.dropped_logs.is_empty(), "the attack must have fired");
        for (corr, point) in &truth.dropped_logs {
            assert!(
                report.alerts.iter().any(|a| {
                    a.correlation == *corr
                        && matches!(&a.kind,
                            crate::alert::AlertKind::MissingLog { point: p } if p == point)
                }),
                "dropped ({corr:?}, {point:?}) must alert even under faults"
            );
        }
        let truly_attacked: std::collections::HashSet<_> =
            truth.dropped_logs.iter().map(|(c, _)| *c).collect();
        for a in &report.alerts {
            assert!(
                truly_attacked.contains(&a.correlation),
                "no fault-induced false positive allowed: {a:?}"
            );
        }
    }

    #[test]
    fn federation_scales_with_per_cloud_pdps() {
        let config = MonitorConfig {
            federation: FederationSpec::symmetric(4, 1, 2),
            total_requests: 60,
            request_rate_per_sec: 150.0,
            ..MonitorConfig::default()
        };
        let spec = ScenarioSpec {
            placement: PdpPlacement::PerCloud,
            ..ScenarioSpec::canonical(&config)
        };
        let (report, _) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(report.requests_completed, 60);
        assert_eq!(report.groups_completed, 60);
        assert!(report.alerts.is_empty());
    }

    #[test]
    fn clamp_rate_bounds_pathological_rates() {
        assert_eq!(clamp_rate(f64::INFINITY), MIN_REQUEST_RATE);
        assert_eq!(clamp_rate(f64::NAN), MIN_REQUEST_RATE);
        assert_eq!(clamp_rate(f64::NEG_INFINITY), MIN_REQUEST_RATE);
        assert_eq!(clamp_rate(-3.0), MIN_REQUEST_RATE);
        assert_eq!(clamp_rate(0.0), MIN_REQUEST_RATE);
        assert_eq!(clamp_rate(1e18), MAX_REQUEST_RATE);
        assert_eq!(clamp_rate(0.001), MIN_REQUEST_RATE);
        assert_eq!(clamp_rate(100.0), 100.0, "sane rates pass untouched");
    }

    #[test]
    fn load_profile_clamping_floors_retention_and_caps_population() {
        let wild = LoadProfile {
            population: 50_000_000,
            zipf_exponent: f64::NAN,
            diurnal: vec![DiurnalBand {
                start: 0,
                multiplier_permille: 0,
            }],
            spikes: vec![FlashCrowd {
                from: 5 * SECONDS,
                until: SECONDS, // inverted window
                multiplier_permille: 9_999_999,
            }],
            pep_inflight_cap: 4,
            li_resident_cap: 4,
            idempotency_retention: 1,    // below the safety floor
            analyser_retire_lag: 1,      // below the safety floor
            policy_history_retention: 1, // below the safety floor
            chain_compact_interval: 8,
        };
        let sane = wild.clamped();
        assert_eq!(sane.population, MAX_POPULATION);
        assert!(sane.zipf_exponent.is_finite());
        assert!(sane.diurnal[0].multiplier_permille >= 1);
        assert!(sane.spikes[0].until >= sane.spikes[0].from);
        assert!(sane.spikes[0].multiplier_permille <= MAX_LOAD_MULTIPLIER_PERMILLE);
        assert_eq!(
            sane.idempotency_retention, MIN_RETENTION,
            "retention below the retry budget would break idempotency"
        );
        assert_eq!(sane.analyser_retire_lag, MIN_RETENTION);
        assert_eq!(sane.policy_history_retention, MIN_RETENTION);
        // Zero stays zero: the feature stays off rather than being
        // silently enabled at the floor.
        let off = LoadProfile::default().clamped();
        assert_eq!(off.idempotency_retention, 0);
        assert_eq!(off.analyser_retire_lag, 0);
        assert_eq!(off.policy_history_retention, 0);
    }

    #[test]
    fn diurnal_bands_and_flash_crowds_multiply_the_rate() {
        let load = LoadProfile {
            diurnal: vec![
                DiurnalBand {
                    start: 0,
                    multiplier_permille: 500,
                },
                DiurnalBand {
                    start: 2 * SECONDS,
                    multiplier_permille: 2000,
                },
            ],
            spikes: vec![FlashCrowd {
                from: 3 * SECONDS,
                until: 4 * SECONDS,
                multiplier_permille: 3000,
            }],
            ..LoadProfile::default()
        };
        assert_eq!(load.multiplier_at(0), (500, 1000));
        assert_eq!(load.multiplier_at(SECONDS), (500, 1000));
        assert_eq!(load.multiplier_at(2 * SECONDS), (2000, 1000));
        assert_eq!(load.multiplier_at(3 * SECONDS + MILLIS), (2000, 3000));
        assert_eq!(load.multiplier_at(5 * SECONDS), (2000, 1000));
        assert_eq!(load.effective_rate(100.0, 0), 50.0);
        assert_eq!(load.effective_rate(100.0, 3 * SECONDS + MILLIS), 600.0);
        // A default profile is the identity on any sane rate.
        let unit = LoadProfile::default();
        assert_eq!(unit.multiplier_at(7 * SECONDS), (1000, 1000));
        assert_eq!(unit.effective_rate(250.0, 7 * SECONDS), 250.0);
    }

    #[test]
    fn pathological_rates_still_terminate() {
        // An infinite base rate and a NaN phase must clamp rather than
        // hang the Poisson sampler or divide the gap to zero forever.
        let mut config = base_config();
        config.total_requests = 8;
        config.request_rate_per_sec = f64::INFINITY;
        let spec = ScenarioSpec {
            phases: vec![Phase {
                start: 50 * MILLIS,
                rate_per_sec: f64::NAN,
            }],
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(report.requests_issued, 8);
        assert_eq!(report.requests_completed, 8);
        assert_eq!(truth.total_attacks(), 0);
        assert!(report.alerts.is_empty(), "alerts: {:?}", report.alerts);
        assert!(report.finished_at < config.horizon);
    }

    #[test]
    fn honest_overload_sheds_without_false_alerts() {
        // A Zipf-skewed flash crowd slams a PEP capped at 8 in-flight
        // requests: the overflow is shed *before* interception, so no
        // group ever opens for a shed request and an honest run stays
        // alert-free; every bounded buffer must respect its cap.
        let mut config = base_config();
        config.total_requests = 300;
        config.request_rate_per_sec = 3000.0;
        let spec = ScenarioSpec {
            load: LoadProfile {
                population: 800,
                zipf_exponent: 1.1,
                spikes: vec![FlashCrowd {
                    from: 0,
                    until: SECONDS,
                    multiplier_permille: 3000,
                }],
                pep_inflight_cap: 8,
                li_resident_cap: 4,
                ..LoadProfile::default()
            },
            ..ScenarioSpec::canonical(&config)
        };
        let (report, truth) = run_scenario(&spec, &mut NoAdversary);
        assert_eq!(truth.total_attacks(), 0);
        assert!(report.requests_shed > 0, "the cap must have bitten");
        assert!(report.degraded_admissions > 0, "watermark must trip first");
        assert_eq!(
            report.requests_completed,
            report.requests_issued - report.requests_shed,
            "every admitted request completes, every shed one vanishes"
        );
        assert!(report.peak.pep_inflight <= 8, "{:?}", report.peak);
        assert!(report.peak.li_resident <= 4, "{:?}", report.peak);
        assert!(
            report.alerts.is_empty(),
            "shedding is not an attack: {:?}",
            report.alerts
        );
    }

    #[test]
    fn idempotency_eviction_is_invisible_under_retransmission() {
        // Satellite property: evicting journaled decisions older than
        // the retention floor must never change an idempotent
        // retransmission answer — a duplicating/reordering fault plan
        // exercises the cache all run long, and the capped run must be
        // byte-identical to its unbounded twin while actually evicting.
        use drams_crypto::codec::Encode;
        use drams_faas::fault::LinkFault;
        let mut config = base_config();
        config.total_requests = 110;
        config.request_rate_per_sec = 5.0; // ~22 s of arrivals, past the floor
        let faults = FaultPlan {
            links: vec![LinkFault {
                duplicate_permille: 300,
                reorder_permille: 200,
                reorder_spread: 5 * MILLIS,
                active_from: 0,
                active_until: 25 * SECONDS,
                ..LinkFault::default()
            }],
            partitions: Vec::new(),
        };
        let unbounded_spec = ScenarioSpec {
            faults: faults.clone(),
            ..ScenarioSpec::canonical(&config)
        };
        let capped_spec = ScenarioSpec {
            load: LoadProfile {
                idempotency_retention: MIN_RETENTION,
                ..LoadProfile::default()
            },
            ..unbounded_spec.clone()
        };
        let (unbounded, unbounded_truth) = run_scenario(&unbounded_spec, &mut NoAdversary);
        let (capped, capped_truth) = run_scenario(&capped_spec, &mut NoAdversary);
        assert!(unbounded.faults.duplicated > 0, "the plan must bite");
        assert!(capped.idempotency_evictions > 0, "eviction must happen");
        assert!(
            capped.peak.pdp_idempotency < unbounded.peak.pdp_idempotency,
            "capped {} vs unbounded {}",
            capped.peak.pdp_idempotency,
            unbounded.peak.pdp_idempotency
        );
        assert_eq!(unbounded_truth, capped_truth);
        assert_eq!(unbounded.requests_completed, capped.requests_completed);
        assert_eq!(unbounded.entries_logged, capped.entries_logged);
        assert_eq!(unbounded.groups_completed, capped.groups_completed);
        assert_eq!(unbounded.txs_committed, capped.txs_committed);
        assert_eq!(unbounded.finished_at, capped.finished_at);
        let a: Vec<Vec<u8>> = unbounded
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let b: Vec<Vec<u8>> = capped
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        assert_eq!(a, b, "eviction may never change an answered decision");
    }

    #[test]
    fn analyser_retirement_never_drops_or_repeats_an_alert() {
        // Satellite property: pruning closed decision groups from
        // contract storage (after the retirement lag) must not lose or
        // duplicate any alert. A stalled LI plants genuine MissingLog
        // alerts; the retired run must report the same alert bytes as
        // its unpruned twin while measurably shrinking storage.
        use drams_crypto::codec::Encode;
        let mut config = base_config();
        config.total_requests = 140;
        config.request_rate_per_sec = 6.0; // ~23 s: traffic outlives the lag
        let base_spec = ScenarioSpec {
            script: vec![ScriptedAction::StallLi {
                at: 200 * MILLIS,
                until: 6 * SECONDS, // outlives the sweep of early groups
                tenant: TenantId(1),
            }],
            ..ScenarioSpec::canonical(&config)
        };
        let retired_spec = ScenarioSpec {
            load: LoadProfile {
                analyser_retire_lag: MIN_RETENTION,
                ..LoadProfile::default()
            },
            ..base_spec.clone()
        };
        let (unpruned, unpruned_truth) = run_scenario(&base_spec, &mut NoAdversary);
        let (retired, retired_truth) = run_scenario(&retired_spec, &mut NoAdversary);
        assert!(
            !unpruned.alerts.is_empty(),
            "the stall must raise real alerts"
        );
        assert!(retired.groups_retired > 0, "retirement must happen");
        assert_eq!(unpruned_truth, retired_truth);
        assert_eq!(unpruned.requests_completed, retired.requests_completed);
        assert_eq!(unpruned.entries_logged, retired.entries_logged);
        assert_eq!(unpruned.groups_completed, retired.groups_completed);
        let a: Vec<Vec<u8>> = unpruned
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        let b: Vec<Vec<u8>> = retired
            .alerts
            .iter()
            .map(Encode::to_canonical_bytes)
            .collect();
        assert_eq!(a, b, "pruning may never drop or repeat an alert");
        assert!(
            retired.peak.contract_storage < unpruned.peak.contract_storage,
            "retired {} vs unpruned {}",
            retired.peak.contract_storage,
            unpruned.peak.contract_storage
        );
    }

    #[test]
    fn chain_compaction_bounds_journal_growth_without_changing_the_run() {
        // Snapshot-and-prune of the chain node's journal every N blocks
        // must leave the run's observable behaviour untouched while
        // keeping the live journal window bounded.
        let mut config = base_config();
        config.total_requests = 80;
        let plain_spec = ScenarioSpec::canonical(&config);
        let compacted_spec = ScenarioSpec {
            load: LoadProfile {
                chain_compact_interval: 4,
                ..LoadProfile::default()
            },
            ..plain_spec.clone()
        };
        let (plain, plain_truth) = run_scenario(&plain_spec, &mut NoAdversary);
        let (compacted, compacted_truth) = run_scenario(&compacted_spec, &mut NoAdversary);
        assert!(compacted.journal_compactions > 0);
        assert_eq!(plain_truth, compacted_truth);
        assert_eq!(plain.requests_completed, compacted.requests_completed);
        assert_eq!(plain.groups_completed, compacted.groups_completed);
        assert_eq!(plain.txs_committed, compacted.txs_committed);
        assert_eq!(plain.finished_at, compacted.finished_at);
        assert!(
            compacted.peak.chain_journal_records < plain.peak.chain_journal_records,
            "compacted {} vs plain {}",
            compacted.peak.chain_journal_records,
            plain.peak.chain_journal_records
        );
    }
}
