//! Software simulation of a Trusted Platform Module.
//!
//! Paper §III (System Integrity): "we can introduce a trusted hardware
//! platform (e.g., Trusted Platform Module) within the system. On the one
//! hand, it can be leveraged to store the symmetric keys … On the other
//! hand, this platform can be utilised to guarantee the integrity of the
//! off-chain components." This module simulates exactly those two
//! capabilities: sealed key storage bound to PCR state, and signed
//! attestation quotes over the PCRs.

use drams_crypto::aead::{open, seal, SealedBox, SymmetricKey};
use drams_crypto::schnorr::{Keypair, PublicKey, Signature};
use drams_crypto::sha256::{Digest, Sha256};
use drams_crypto::CryptoError;
use std::collections::BTreeMap;
use std::fmt;

/// Number of simulated platform configuration registers.
pub const PCR_COUNT: usize = 8;

/// Errors from TPM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TpmError {
    /// Unsealing failed: PCR state differs from seal time, or ciphertext
    /// was tampered with.
    UnsealDenied,
    /// No such sealed object.
    UnknownHandle(String),
    /// PCR index out of range.
    BadPcrIndex(usize),
}

impl fmt::Display for TpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpmError::UnsealDenied => write!(f, "unseal denied: pcr state or blob mismatch"),
            TpmError::UnknownHandle(h) => write!(f, "unknown sealed object `{h}`"),
            TpmError::BadPcrIndex(i) => write!(f, "pcr index {i} out of range"),
        }
    }
}

impl std::error::Error for TpmError {}

/// A signed attestation of the platform's PCR state.
#[derive(Debug, Clone, PartialEq)]
pub struct Quote {
    /// PCR values at quote time.
    pub pcrs: [Digest; PCR_COUNT],
    /// Caller-chosen anti-replay nonce.
    pub nonce: [u8; 16],
    /// Signature by the TPM's attestation key.
    pub signature: Signature,
}

impl Quote {
    fn message(pcrs: &[Digest; PCR_COUNT], nonce: &[u8; 16]) -> Vec<u8> {
        let mut m = Vec::with_capacity(32 * PCR_COUNT + 16 + 16);
        m.extend_from_slice(b"drams.tpm.quote");
        for p in pcrs {
            m.extend_from_slice(p.as_bytes());
        }
        m.extend_from_slice(nonce);
        m
    }

    /// Verifies the quote against the TPM's attestation public key.
    #[must_use]
    pub fn verify(&self, attestation_key: &PublicKey) -> bool {
        attestation_key
            .verify(&Self::message(&self.pcrs, &self.nonce), &self.signature)
            .is_ok()
    }
}

/// A simulated TPM: PCR bank, sealed storage and attestation identity.
pub struct Tpm {
    pcrs: [Digest; PCR_COUNT],
    storage_root: SymmetricKey,
    attestation: Keypair,
    sealed: BTreeMap<String, SealedBox>,
}

impl fmt::Debug for Tpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tpm")
            .field("sealed_objects", &self.sealed.len())
            .field("attestation_key", &self.attestation.public())
            .finish_non_exhaustive()
    }
}

impl Tpm {
    /// Manufactures a TPM with a deterministic identity derived from a
    /// seed (simulation needs reproducibility; a real TPM fuses these at
    /// the factory).
    #[must_use]
    pub fn with_seed(seed: &[u8]) -> Self {
        let mut root = [0u8; 32];
        root.copy_from_slice(Digest::of_parts(&[b"drams.tpm.root", seed]).as_bytes());
        Tpm {
            pcrs: [Digest::ZERO; PCR_COUNT],
            storage_root: SymmetricKey::from_bytes(root),
            attestation: Keypair::from_seed(&[b"drams.tpm.ak".as_slice(), seed].concat()),
            sealed: BTreeMap::new(),
        }
    }

    /// The attestation public key (distributed to verifiers out of band).
    #[must_use]
    pub fn attestation_key(&self) -> PublicKey {
        self.attestation.public()
    }

    /// Reads a PCR.
    ///
    /// # Errors
    ///
    /// [`TpmError::BadPcrIndex`] when out of range.
    pub fn pcr(&self, index: usize) -> Result<Digest, TpmError> {
        self.pcrs
            .get(index)
            .copied()
            .ok_or(TpmError::BadPcrIndex(index))
    }

    /// Extends a PCR: `pcr = H(pcr || measurement)` — the TPM's
    /// append-only measurement ledger.
    ///
    /// # Errors
    ///
    /// [`TpmError::BadPcrIndex`] when out of range.
    pub fn extend_pcr(&mut self, index: usize, measurement: &[u8]) -> Result<(), TpmError> {
        let current = self
            .pcrs
            .get(index)
            .copied()
            .ok_or(TpmError::BadPcrIndex(index))?;
        let mut h = Sha256::new();
        h.update(current.as_bytes());
        h.update(measurement);
        self.pcrs[index] = h.finalize();
        Ok(())
    }

    fn pcr_digest(&self) -> Digest {
        let mut h = Sha256::new();
        for p in &self.pcrs {
            h.update(p.as_bytes());
        }
        h.finalize()
    }

    /// Seals `secret` under `handle`, bound to the *current* PCR state:
    /// unsealing succeeds only while the platform measurements match.
    pub fn seal_key(&mut self, handle: impl Into<String>, secret: &[u8]) {
        let handle = handle.into();
        let binding = self.pcr_digest();
        // Nonce derived from handle so sealing is deterministic per handle.
        let mut nonce = [0u8; 12];
        nonce.copy_from_slice(&Digest::of_parts(&[b"seal", handle.as_bytes()]).as_bytes()[..12]);
        let sealed = seal(&self.storage_root, nonce, binding.as_bytes(), secret);
        self.sealed.insert(handle, sealed);
    }

    /// Unseals a previously sealed secret, enforcing the PCR binding.
    ///
    /// # Errors
    ///
    /// [`TpmError::UnknownHandle`] or [`TpmError::UnsealDenied`] when the
    /// PCR state no longer matches the state at seal time.
    pub fn unseal_key(&self, handle: &str) -> Result<Vec<u8>, TpmError> {
        let sealed = self
            .sealed
            .get(handle)
            .ok_or_else(|| TpmError::UnknownHandle(handle.to_string()))?;
        let binding = self.pcr_digest();
        open(&self.storage_root, binding.as_bytes(), sealed).map_err(|e: CryptoError| {
            let _ = e;
            TpmError::UnsealDenied
        })
    }

    /// Produces a signed quote over the current PCR state.
    #[must_use]
    pub fn quote(&self, nonce: [u8; 16]) -> Quote {
        let message = Quote::message(&self.pcrs, &nonce);
        Quote {
            pcrs: self.pcrs,
            nonce,
            signature: self.attestation.sign(&message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_round_trip() {
        let mut tpm = Tpm::with_seed(b"tenant-1");
        tpm.seal_key("probe-mac-key", b"super secret");
        assert_eq!(tpm.unseal_key("probe-mac-key").unwrap(), b"super secret");
    }

    #[test]
    fn unseal_denied_after_pcr_change() {
        let mut tpm = Tpm::with_seed(b"tenant-1");
        tpm.seal_key("k", b"secret");
        tpm.extend_pcr(0, b"malicious firmware").unwrap();
        assert_eq!(tpm.unseal_key("k"), Err(TpmError::UnsealDenied));
    }

    #[test]
    fn unknown_handle() {
        let tpm = Tpm::with_seed(b"t");
        assert!(matches!(
            tpm.unseal_key("nope"),
            Err(TpmError::UnknownHandle(_))
        ));
    }

    #[test]
    fn pcr_extension_is_order_sensitive() {
        let mut a = Tpm::with_seed(b"x");
        let mut b = Tpm::with_seed(b"x");
        a.extend_pcr(1, b"m1").unwrap();
        a.extend_pcr(1, b"m2").unwrap();
        b.extend_pcr(1, b"m2").unwrap();
        b.extend_pcr(1, b"m1").unwrap();
        assert_ne!(a.pcr(1).unwrap(), b.pcr(1).unwrap());
    }

    #[test]
    fn quote_verifies_and_detects_tamper() {
        let mut tpm = Tpm::with_seed(b"t");
        tpm.extend_pcr(0, b"bootloader").unwrap();
        let quote = tpm.quote([7; 16]);
        assert!(quote.verify(&tpm.attestation_key()));
        // Tampered PCR in the quote fails verification.
        let mut forged = quote.clone();
        forged.pcrs[0] = Digest::of(b"clean-looking");
        assert!(!forged.verify(&tpm.attestation_key()));
        // Another TPM's key does not verify it.
        let other = Tpm::with_seed(b"other");
        assert!(!quote.verify(&other.attestation_key()));
    }

    #[test]
    fn quote_nonce_prevents_replay() {
        let tpm = Tpm::with_seed(b"t");
        let quote = tpm.quote([1; 16]);
        let mut replayed = quote.clone();
        replayed.nonce = [2; 16];
        assert!(!replayed.verify(&tpm.attestation_key()));
    }

    #[test]
    fn bad_pcr_index() {
        let mut tpm = Tpm::with_seed(b"t");
        assert!(matches!(tpm.pcr(99), Err(TpmError::BadPcrIndex(99))));
        assert!(tpm.extend_pcr(99, b"x").is_err());
    }

    #[test]
    fn identical_seeds_identical_identity() {
        let a = Tpm::with_seed(b"same");
        let b = Tpm::with_seed(b"same");
        assert_eq!(a.attestation_key(), b.attestation_key());
    }
}
