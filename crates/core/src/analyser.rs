//! The Analyser service.
//!
//! Paper §II: "The Analyser is a standalone entity logically placed within
//! the Infrastructural Tenant, but deployed within a different cloud
//! section with respect to the access control components. It dynamically
//! consumes and evaluates the gathered logs to ensure the correct
//! enforcement of access decisions."
//!
//! The service watches the monitor contract for `group.complete` events,
//! pulls the four log entries of each completed group from contract
//! storage, verifies the per-probe MACs (compromised-LI detection),
//! decrypts the payloads with the federation key, re-evaluates the request
//! against its own authorised policy copy (the formally-grounded check of
//! ref \[8\]), cross-checks the enforced outcome, and records every finding
//! on-chain via `report_violation`.

use crate::alert::{Alert, AlertKind};
use crate::contract::{GROUP_COMPLETE_EVENT, MONITOR_CONTRACT};
use crate::li::decrypt_entry_payload;
use crate::logent::{LogEntry, ObservationPoint, ProbeId};
use drams_analysis::verify::{DecisionVerifier, Verdict, Violation};
use drams_chain::node::Node;
use drams_crypto::aead::SymmetricKey;
use drams_crypto::codec::{Decode, Reader, Writer};
use drams_crypto::schnorr::Keypair;
use drams_faas::des::SimTime;
use drams_faas::msg::{CorrelationId, RequestEnvelope, ResponseEnvelope};
use drams_policy::decision::Decision;
use drams_policy::parser::{parse_policy_set, to_source};
use drams_policy::policy::PolicySet;
use drams_store::{SnapshotStore, StoreError};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Most correlations retired per poll — bounds the `retire_groups`
/// transaction payload regardless of how deep the retirement backlog
/// gets during a flash crowd.
const RETIRE_BATCH_MAX: usize = 512;

/// Minimum completed groups in one poll before group judging fans out
/// across [`drams_faas::par`] workers (each judge job is MAC checks +
/// two AEAD decrypts + a policy re-evaluation, ~tens of microseconds).
const PAR_MIN_GROUPS: usize = 8;

/// Minimum freshly committed blocks before the audit fans out one block
/// per worker job; below this the inner chunked
/// [`drams_chain::block::Block::verify_signatures`] parallelism is the
/// better split.
const PAR_MIN_BLOCKS: usize = 2;

/// One recorded policy-administration action, kept so a verification
/// checkpoint can replay the authorised-version history exactly.
#[derive(Debug, Clone)]
enum PolicyLogEntry {
    /// [`Analyser::publish_authorised_policy`] at a virtual time.
    /// ([`Analyser::set_authorised_policy`] needs no variant: it resets
    /// `initial_policy` and clears the log instead.)
    Publish(String, SimTime),
}

/// Version byte of the checkpoint encoding. Version 2 added the fork
/// sweep: its enable flag and the set of already-alerted fork points.
/// Version 3 added windowed group retirement: the lag, the retired
/// counter and the pending-retirement queue. Version 4 added
/// authorised-policy history retention: the retention horizon and the
/// retired-version counter.
const CHECKPOINT_VERSION: u8 = 4;

/// The DRAMS Analyser.
pub struct Analyser {
    verifier: DecisionVerifier,
    key: SymmetricKey,
    keypair: Keypair,
    probe_mac_keys: BTreeMap<ProbeId, [u8; 32]>,
    event_cursor: usize,
    checked_groups: u64,
    /// Hash of the last main-chain block whose signatures were audited.
    /// A hash (not a height) so a reorg that swaps in blocks below the
    /// old tip forces a re-audit from the fork point.
    audited_tip: drams_chain::block::BlockHash,
    audited_txs: u64,
    /// The initial authorised policy and every later administration
    /// action, as parser source text — the durable form of the
    /// verifier's authorised-version history.
    initial_policy: String,
    policy_log: Vec<PolicyLogEntry>,
    /// Opt-in sibling-block sweep (see [`Analyser::enable_fork_detection`]).
    /// Off by default: a library caller importing historical forks for
    /// analysis must not be flooded with alerts.
    fork_detection: bool,
    /// Parent hashes whose sibling groups were already reported, so a
    /// persisting fork is alerted exactly once across polls (and across
    /// Analyser restarts — the set is checkpointed).
    alerted_fork_parents: BTreeSet<[u8; 32]>,
    /// Optional durable checkpoint. When attached, [`Analyser::checkpoint`]
    /// persists cursors, probe keys and policy history, and
    /// [`Analyser::recover`] resumes a restarted Analyser without
    /// re-scanning the chain or re-raising alerts.
    checkpoint_store: Option<SnapshotStore>,
    /// Windowed decision-group retirement (see
    /// [`Analyser::enable_group_retirement`]). `0` = off.
    retire_lag: SimTime,
    /// Groups checked but not yet old enough to retire, oldest first
    /// (check times are monotone, so this stays sorted by construction).
    pending_retire: VecDeque<(SimTime, CorrelationId)>,
    /// Correlations whose evidence retirement has been submitted on-chain.
    groups_retired: u64,
    /// Authorised-policy history retention (see
    /// [`Analyser::enable_history_retention`]). `0` = keep forever.
    history_retention: SimTime,
    /// Superseded policy versions dropped by the retention horizon.
    policy_history_retired: u64,
}

impl std::fmt::Debug for Analyser {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyser")
            .field("checked_groups", &self.checked_groups)
            .field("authorised_version", &self.verifier.authorised_version())
            .finish_non_exhaustive()
    }
}

impl Analyser {
    /// Creates an analyser pinned to the authorised policy.
    ///
    /// `probe_mac_keys` are obtained from the tenant TPMs at provisioning
    /// time; `keypair` must match the address registered with the monitor
    /// contract's `init`.
    #[must_use]
    pub fn new(
        authorised_policy: PolicySet,
        key: SymmetricKey,
        keypair: Keypair,
        probe_mac_keys: BTreeMap<ProbeId, [u8; 32]>,
    ) -> Self {
        let initial_policy = to_source(&authorised_policy);
        Analyser {
            verifier: DecisionVerifier::new(authorised_policy),
            key,
            keypair,
            probe_mac_keys,
            event_cursor: 0,
            checked_groups: 0,
            audited_tip: drams_chain::block::BlockHash::ZERO,
            audited_txs: 0,
            initial_policy,
            policy_log: Vec::new(),
            fork_detection: false,
            alerted_fork_parents: BTreeSet::new(),
            checkpoint_store: None,
            retire_lag: 0,
            pending_retire: VecDeque::new(),
            groups_retired: 0,
            history_retention: 0,
            policy_history_retired: 0,
        }
    }

    /// Turns on authorised-policy history retention: after each poll,
    /// versions retired more than `retention` before the oldest unretired
    /// observation epoch (or `now` when nothing is pending) are dropped
    /// from the verifier's history and from the durable policy log —
    /// the last unbounded structure under sustained policy churn.
    /// `retention` must cover the longest a legitimately in-flight
    /// decision can take to reach a completed group (the PEP retry
    /// budget plus fault-settle slack); late decisions citing a pruned
    /// version alert as policy swaps, which is the desired behaviour for
    /// a PDP stuck that far in the past. Off by default.
    pub fn enable_history_retention(&mut self, retention: SimTime) {
        self.history_retention = retention;
    }

    /// Distinct authorised policy versions currently held (the bounded
    /// gauge BENCH_LOAD tracks as `peak_policy_history`).
    #[must_use]
    pub fn policy_history_len(&self) -> usize {
        self.verifier.authorised_version_count()
    }

    /// Superseded policy versions dropped by the retention horizon.
    #[must_use]
    pub fn policy_history_retired(&self) -> u64 {
        self.policy_history_retired
    }

    /// Turns on windowed decision-group tracking: a group stays in
    /// contract storage for `lag` after the Analyser finished checking
    /// it (covering late duplicates and retransmissions still inside the
    /// PEP retry budget), then its evidence is pruned on-chain via the
    /// contract's `retire_groups`. Off by default — retirement submits
    /// extra transactions, so deployments opt in when running under
    /// sustained load.
    pub fn enable_group_retirement(&mut self, lag: SimTime) {
        self.retire_lag = lag;
    }

    /// Groups checked but still inside the retirement window.
    #[must_use]
    pub fn pending_retirements(&self) -> usize {
        self.pending_retire.len()
    }

    /// Groups whose evidence retirement has been submitted on-chain.
    #[must_use]
    pub fn groups_retired(&self) -> u64 {
        self.groups_retired
    }

    /// Turns on the sibling-block sweep: every poll scans the block store
    /// for parents with more than one child — the signature of a hostile
    /// history rewrite or an equivocating (Byzantine) miner — and raises
    /// one [`AlertKind::MonitorCompromise`] per fork point. Off by
    /// default so importing historical side chains stays alert-free; the
    /// scenario runtime enables it.
    pub fn enable_fork_detection(&mut self) {
        self.fork_detection = true;
    }

    /// The signing identity (register its fingerprint with the contract).
    #[must_use]
    pub fn keypair(&self) -> &Keypair {
        &self.keypair
    }

    /// Groups fully checked so far.
    #[must_use]
    pub fn checked_groups(&self) -> u64 {
        self.checked_groups
    }

    /// Transaction signatures independently re-verified by the chain
    /// audit (see [`Analyser::poll`]).
    #[must_use]
    pub fn audited_txs(&self) -> u64 {
        self.audited_txs
    }

    /// Updates the authorised policy (legitimate policy administration),
    /// forgetting all previously authorised versions.
    pub fn set_authorised_policy(&mut self, policy: PolicySet) {
        // `set` forgets all history, so the durable form restarts from
        // this policy too — the checkpoint stays O(live versions).
        self.initial_policy = to_source(&policy);
        self.policy_log.clear();
        self.verifier.set_policy(policy);
    }

    /// Authorises a newly published (or rolled-back) policy version
    /// activated at `now`, while keeping earlier versions authorised for
    /// decisions taken before they were superseded — in-flight decisions
    /// during legitimate policy churn do not raise false alerts, but a
    /// PDP stuck on a retired version after `now` does.
    pub fn publish_authorised_policy(&mut self, policy: PolicySet, now: SimTime) {
        self.policy_log
            .push(PolicyLogEntry::Publish(to_source(&policy), now));
        self.verifier.publish_policy(policy, now);
    }

    /// Registers the MAC key of a newly provisioned probe (tenant-join
    /// churn: the key is obtained from the joining tenant's TPM).
    pub fn register_probe_key(&mut self, probe: ProbeId, key: [u8; 32]) {
        self.probe_mac_keys.insert(probe, key);
    }

    /// Attaches a durable checkpoint store and immediately writes a
    /// first checkpoint, so a crash at any later point finds a valid
    /// baseline to resume from.
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures.
    pub fn attach_checkpoint(&mut self, store: SnapshotStore) -> Result<(), StoreError> {
        self.checkpoint_store = Some(store);
        self.checkpoint()
    }

    /// Detaches and returns the checkpoint store (crash-recovery hook).
    pub fn detach_checkpoint(&mut self) -> Option<SnapshotStore> {
        self.checkpoint_store.take()
    }

    /// Persists the verification checkpoint — event cursor, checked-group
    /// and audit counters, the audited tip hash, probe MAC keys and the
    /// authorised-policy history — if a store is attached (no-op
    /// otherwise). Deployments decide the cadence and the failure
    /// policy: the scenario runtime checkpoints after every poll,
    /// provisioning event and policy publication, and treats a write
    /// failure as fatal there; a library caller may instead retry or
    /// degrade (the only cost of a stale checkpoint is re-checking —
    /// and thus re-reporting — groups completed since it was written).
    ///
    /// # Errors
    ///
    /// Propagates snapshot write failures.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        let Some(store) = &mut self.checkpoint_store else {
            return Ok(());
        };
        let mut w = Writer::new();
        w.put_u8(CHECKPOINT_VERSION);
        w.put_u64(self.event_cursor as u64);
        w.put_u64(self.checked_groups);
        w.put_raw(self.audited_tip.as_bytes());
        w.put_u64(self.audited_txs);
        w.put_varint(self.probe_mac_keys.len() as u64);
        for (probe, key) in &self.probe_mac_keys {
            w.put_u32(probe.0);
            w.put_raw(key);
        }
        w.put_str(&self.initial_policy);
        w.put_varint(self.policy_log.len() as u64);
        for entry in &self.policy_log {
            let PolicyLogEntry::Publish(text, at) = entry;
            w.put_u8(1);
            w.put_str(text);
            w.put_u64(*at);
        }
        w.put_u8(u8::from(self.fork_detection));
        w.put_varint(self.alerted_fork_parents.len() as u64);
        for parent in &self.alerted_fork_parents {
            w.put_raw(parent);
        }
        w.put_u64(self.retire_lag);
        w.put_u64(self.groups_retired);
        w.put_varint(self.pending_retire.len() as u64);
        for (checked_at, corr) in &self.pending_retire {
            w.put_u64(*checked_at);
            w.put_u64(corr.0);
        }
        w.put_u64(self.history_retention);
        w.put_u64(self.policy_history_retired);
        store.save(self.checked_groups, &w.into_bytes())
    }

    /// Rebuilds an Analyser from its checkpoint: the policy history is
    /// replayed through the verifier (reconstructing every authorised
    /// version with its supersession time) and the chain cursors resume
    /// where the last checkpoint left them — no re-scan, no re-alerting.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when no checkpoint was ever written;
    /// [`StoreError::Corrupt`]/[`StoreError::Codec`] when it does not
    /// decode.
    pub fn recover(
        key: SymmetricKey,
        keypair: Keypair,
        store: SnapshotStore,
    ) -> Result<Self, StoreError> {
        let Some((_, bytes)) = store.load()? else {
            return Err(StoreError::NotFound("analyser checkpoint".into()));
        };
        let codec = |e: drams_crypto::CryptoError| StoreError::Codec(e.to_string());
        let mut r = Reader::new(&bytes);
        let version = r.get_u8().map_err(codec)?;
        if version != CHECKPOINT_VERSION {
            return Err(StoreError::Codec(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let event_cursor = r.get_u64().map_err(codec)? as usize;
        let checked_groups = r.get_u64().map_err(codec)?;
        let audited_tip = drams_chain::block::BlockHash::from(r.get_array::<32>().map_err(codec)?);
        let audited_txs = r.get_u64().map_err(codec)?;
        let probes = r.get_varint().map_err(codec)?;
        let mut probe_mac_keys = BTreeMap::new();
        for _ in 0..probes {
            let id = ProbeId(r.get_u32().map_err(codec)?);
            probe_mac_keys.insert(id, r.get_array::<32>().map_err(codec)?);
        }
        let initial_policy = r.get_str().map_err(codec)?;
        let parse = |text: &str| {
            parse_policy_set(text)
                .map_err(|e| StoreError::Codec(format!("checkpointed policy: {e}")))
        };
        let mut analyser = Analyser::new(parse(&initial_policy)?, key, keypair, probe_mac_keys);
        let entries = r.get_varint().map_err(codec)?;
        for _ in 0..entries {
            let kind = r.get_u8().map_err(codec)?;
            let text = r.get_str().map_err(codec)?;
            let at = r.get_u64().map_err(codec)?;
            match kind {
                1 => analyser.publish_authorised_policy(parse(&text)?, at),
                other => {
                    return Err(StoreError::Codec(format!(
                        "unknown policy-log entry kind {other}"
                    )))
                }
            }
        }
        let fork_detection = r.get_u8().map_err(codec)? != 0;
        let fork_parents = r.get_varint().map_err(codec)?;
        let mut alerted_fork_parents = BTreeSet::new();
        for _ in 0..fork_parents {
            alerted_fork_parents.insert(r.get_array::<32>().map_err(codec)?);
        }
        let retire_lag = r.get_u64().map_err(codec)?;
        let groups_retired = r.get_u64().map_err(codec)?;
        let pending = r.get_varint().map_err(codec)?;
        let mut pending_retire = VecDeque::new();
        for _ in 0..pending {
            let checked_at = r.get_u64().map_err(codec)?;
            let corr = CorrelationId(r.get_u64().map_err(codec)?);
            pending_retire.push_back((checked_at, corr));
        }
        let history_retention = r.get_u64().map_err(codec)?;
        let policy_history_retired = r.get_u64().map_err(codec)?;
        r.finish().map_err(codec)?;
        analyser.event_cursor = event_cursor;
        analyser.checked_groups = checked_groups;
        analyser.audited_tip = audited_tip;
        analyser.audited_txs = audited_txs;
        analyser.fork_detection = fork_detection;
        analyser.alerted_fork_parents = alerted_fork_parents;
        analyser.retire_lag = retire_lag;
        analyser.groups_retired = groups_retired;
        analyser.pending_retire = pending_retire;
        analyser.history_retention = history_retention;
        analyser.policy_history_retired = policy_history_retired;
        analyser.checkpoint_store = Some(store);
        Ok(analyser)
    }

    /// Consumes new `group.complete` events from `node`, verifies each
    /// completed group and submits findings on-chain. Returns the alerts
    /// raised in this poll (they commit with the next block).
    ///
    /// Also audits every newly committed block: the Analyser batch
    /// re-verifies all transaction signatures itself
    /// ([`drams_crypto::schnorr::batch_verify`]) rather than trusting
    /// the node's import path — the monitoring plane is part of the
    /// paper's threat model, so log non-repudiation is checked by an
    /// independent component.
    pub fn poll(&mut self, node: &mut Node, now: SimTime) -> Vec<Alert> {
        let mut audit_alerts = self.audit_new_blocks(node, now);
        audit_alerts.extend(self.sweep_forks(node, now));
        let completed: Vec<CorrelationId> = {
            let (events, cursor) = node.events_since(self.event_cursor);
            self.event_cursor = cursor;
            events
                .iter()
                .filter(|e| e.name == GROUP_COMPLETE_EVENT)
                .filter_map(|e| {
                    let mut r = Reader::new(&e.data);
                    r.get_u64().ok().map(CorrelationId)
                })
                .collect()
        };
        let mut alerts = audit_alerts;
        // Load every completed group's entries serially (contract storage
        // reads), then judge them — MAC verification, payload decryption
        // and policy re-evaluation, all pure per-group work — across the
        // worker pool. Alert vectors merge in submission (= completion
        // event) order, so the poll's output is worker-count invisible.
        let loaded: Vec<(CorrelationId, Option<BTreeMap<ObservationPoint, LogEntry>>)> = completed
            .iter()
            .map(|&corr| (corr, Self::load_group_entries(node, corr)))
            .collect();
        let verifier = &self.verifier;
        let key = &self.key;
        let probe_mac_keys = &self.probe_mac_keys;
        let judged = drams_faas::par::map(&loaded, PAR_MIN_GROUPS, |(corr, entries)| {
            entries.as_ref().map_or_else(Vec::new, |entries| {
                Self::judge_group(verifier, key, probe_mac_keys, *corr, entries, now)
            })
        });
        for ((corr, _), group_alerts) in loaded.iter().zip(judged) {
            alerts.extend(group_alerts);
            self.checked_groups += 1;
            if self.retire_lag > 0 {
                self.pending_retire.push_back((now, *corr));
            }
        }
        for alert in &alerts {
            // Failures here would mean our own signing identity broke; the
            // alert is still returned locally.
            let _ = node.submit_call(
                &self.keypair,
                MONITOR_CONTRACT,
                "report_violation",
                drams_crypto::codec::Encode::to_canonical_bytes(alert),
            );
        }
        self.retire_due_groups(node, now);
        self.prune_policy_history(now);
        alerts
    }

    /// Drops policy versions (and their durable log prefix) retired
    /// before the retention horizon; see
    /// [`Analyser::enable_history_retention`].
    fn prune_policy_history(&mut self, now: SimTime) {
        if self.history_retention == 0 {
            return;
        }
        // Any decision still able to reach a completed group was taken at
        // or after the oldest unretired epoch minus the retention floor;
        // versions retired before that can no longer be legitimately
        // cited.
        let reference = self.pending_retire.front().map_or(now, |&(t, _)| t);
        let horizon = reference.saturating_sub(self.history_retention);
        let removed = self.verifier.prune_history(horizon);
        self.policy_history_retired += removed as u64;
        // Keep the durable form in step: a log entry activated before the
        // horizon retired its predecessor version before the horizon, so
        // the prefix of such entries collapses into a new baseline policy
        // (activation times are monotone — the prefix is well-defined).
        let cut = self
            .policy_log
            .iter()
            .position(|PolicyLogEntry::Publish(_, at)| *at >= horizon)
            .unwrap_or(self.policy_log.len());
        if cut > 0 {
            let PolicyLogEntry::Publish(text, _) = &self.policy_log[cut - 1];
            self.initial_policy = text.clone();
            self.policy_log.drain(..cut);
        }
    }

    /// Submits one `retire_groups` transaction for every checked group
    /// whose retirement window elapsed (no-op when retirement is off or
    /// nothing is due). The batch is size-capped; the remainder retires
    /// on later polls.
    fn retire_due_groups(&mut self, node: &mut Node, now: SimTime) {
        if self.retire_lag == 0 {
            return;
        }
        let mut due = Vec::new();
        while due.len() < RETIRE_BATCH_MAX {
            match self.pending_retire.front() {
                Some((checked_at, _)) if checked_at.saturating_add(self.retire_lag) <= now => {
                    let (_, corr) = self.pending_retire.pop_front().expect("front exists");
                    due.push(corr);
                }
                _ => break,
            }
        }
        if due.is_empty() {
            return;
        }
        self.groups_retired += due.len() as u64;
        let _ = node.submit_call(
            &self.keypair,
            MONITOR_CONTRACT,
            "retire_groups",
            crate::contract::MonitorContract::retire_groups_payload(&due),
        );
    }

    /// Batch-audits transaction signatures of main-chain blocks not yet
    /// seen, advancing the audit cursor to the tip.
    ///
    /// Walks parent links from the tip down to the last audited block
    /// hash — one hop per new block (O(new blocks), not per-height tip
    /// walks) — so a reorg that abandons the previously audited tip is
    /// re-audited from the fork point rather than silently skipped.
    fn audit_new_blocks(&mut self, node: &Node, now: SimTime) -> Vec<Alert> {
        let chain = node.chain();
        let tip = chain.tip_hash();
        if tip == self.audited_tip {
            return Vec::new();
        }
        let mut pending = Vec::new();
        let mut cursor = tip;
        while cursor != self.audited_tip {
            let Some(block) = chain.block(&cursor) else {
                break;
            };
            pending.push(cursor);
            if block.header.height == 0 {
                break; // reached genesis: the old audited tip was reorged away
            }
            cursor = block.header.parent;
        }
        // Verify blocks across the worker pool, one job per block, oldest
        // first (submission-order merge keeps alert order canonical).
        // Single-block audits instead parallelise *inside*
        // `verify_signatures` (chunked batch verification), so both the
        // many-small-blocks and one-wide-block shapes use all workers.
        let blocks: Vec<&drams_chain::block::Block> = pending
            .iter()
            .rev()
            .map(|hash| chain.block(hash).expect("collected from the chain above"))
            .collect();
        let verdicts = drams_faas::par::map(&blocks, PAR_MIN_BLOCKS, |b| b.verify_signatures());
        let mut alerts = Vec::new();
        for (block, verdict) in blocks.iter().zip(verdicts) {
            self.audited_txs += block.transactions.len() as u64;
            if let Err(e) = verdict {
                alerts.push(Alert::new(
                    AlertKind::MonitorCompromise,
                    CorrelationId(0),
                    now,
                    format!(
                        "block {} at height {} carries an invalid transaction signature: {e}",
                        block.hash(),
                        block.header.height
                    ),
                ));
            }
        }
        self.audited_tip = tip;
        alerts
    }

    /// The opt-in sibling-block sweep: a private monitoring chain mined by
    /// one honest node is a pure line, so any parent with two or more
    /// children means the history was rewritten under the monitor (a
    /// hostile reorg) or a Byzantine miner equivocated. Each fork point is
    /// reported once; the alerted set persists across polls and restarts.
    fn sweep_forks(&mut self, node: &Node, now: SimTime) -> Vec<Alert> {
        if !self.fork_detection {
            return Vec::new();
        }
        let mut children: BTreeMap<[u8; 32], Vec<&drams_chain::block::BlockHeader>> =
            BTreeMap::new();
        let headers = node.chain().all_headers();
        for header in &headers {
            children
                .entry(*header.parent.as_bytes())
                .or_default()
                .push(header);
        }
        let mut alerts = Vec::new();
        for (parent, siblings) in &children {
            if siblings.len() < 2 || !self.alerted_fork_parents.insert(*parent) {
                continue;
            }
            let height = siblings[0].height;
            alerts.push(Alert::new(
                AlertKind::MonitorCompromise,
                CorrelationId(0),
                now,
                format!(
                    "chain fork: {} sibling blocks at height {height} share parent {}",
                    siblings.len(),
                    drams_chain::block::BlockHash::from(*parent),
                ),
            ));
        }
        alerts
    }

    fn load_entry(node: &Node, corr: CorrelationId, point: ObservationPoint) -> Option<LogEntry> {
        let storage = node.host().storage_of(MONITOR_CONTRACT)?;
        let mut key = Vec::with_capacity(16);
        key.extend_from_slice(b"ent/");
        key.extend_from_slice(&corr.0.to_be_bytes());
        key.push(point.code());
        let bytes = storage.get(&key)?;
        LogEntry::from_canonical_bytes(bytes).ok()
    }

    /// Loads the four observation-point entries of a completed group from
    /// contract storage; `None` when any is missing (group vanished —
    /// cannot happen on an honest chain).
    fn load_group_entries(
        node: &Node,
        corr: CorrelationId,
    ) -> Option<BTreeMap<ObservationPoint, LogEntry>> {
        let mut entries = BTreeMap::new();
        for point in ObservationPoint::ALL {
            entries.insert(point, Self::load_entry(node, corr, point)?);
        }
        Some(entries)
    }

    /// Judges one loaded group: MAC verification, payload decryption, the
    /// formally-grounded re-evaluation and the enforcement cross-check.
    /// Pure with respect to its borrowed state, so [`Analyser::poll`]
    /// fans completed groups out across the worker pool.
    fn judge_group(
        verifier: &DecisionVerifier,
        key: &SymmetricKey,
        probe_mac_keys: &BTreeMap<ProbeId, [u8; 32]>,
        corr: CorrelationId,
        entries: &BTreeMap<ObservationPoint, LogEntry>,
        now: SimTime,
    ) -> Vec<Alert> {
        let mut alerts = Vec::new();

        // MAC verification: a compromised LI cannot alter entries without
        // breaking the probe MAC.
        for entry in entries.values() {
            let valid = probe_mac_keys
                .get(&entry.probe)
                .map(|k| entry.verify_mac(k))
                .unwrap_or(false);
            if !valid {
                alerts.push(Alert::new(
                    AlertKind::MonitorCompromise,
                    corr,
                    now,
                    format!("probe mac invalid on {} from {}", entry.point, entry.probe),
                ));
            }
        }

        // Decrypt the PDP-side view: what the PDP decided about what it saw.
        let request_entry = &entries[&ObservationPoint::PdpRequest];
        let response_entry = &entries[&ObservationPoint::PdpResponse];
        let pep_response_entry = &entries[&ObservationPoint::PepResponse];

        let Ok(request_plain) = decrypt_entry_payload(key, request_entry) else {
            alerts.push(Alert::new(
                AlertKind::MonitorCompromise,
                corr,
                now,
                "pdp-request payload does not decrypt".to_string(),
            ));
            return alerts;
        };
        let Ok(response_plain) = decrypt_entry_payload(key, response_entry) else {
            alerts.push(Alert::new(
                AlertKind::MonitorCompromise,
                corr,
                now,
                "pdp-response payload does not decrypt".to_string(),
            ));
            return alerts;
        };
        let Ok(request_env) = RequestEnvelope::from_canonical_bytes(&request_plain) else {
            return alerts;
        };
        let Ok(response_env) = ResponseEnvelope::from_canonical_bytes(&response_plain) else {
            return alerts;
        };

        // The formally-grounded check: re-evaluate and compare, against
        // the version that was authorised *when the decision was taken*.
        match verifier.verify_versioned_at(
            &request_env.request,
            &response_env.response,
            response_env.policy_version,
            response_env.decided_at,
        ) {
            Verdict::Consistent => {}
            Verdict::Violation(Violation::WrongPolicyVersion { claimed, expected }) => {
                alerts.push(Alert::new(
                    AlertKind::WrongPolicyVersion,
                    corr,
                    now,
                    format!("pdp used policy {claimed}, authorised is {expected}"),
                ));
            }
            Verdict::Violation(v) => {
                alerts.push(Alert::new(
                    AlertKind::PolicyViolation,
                    corr,
                    now,
                    v.to_string(),
                ));
            }
        }

        // Enforcement cross-check: the PEP-side payload carries what the
        // PEP actually did.
        if let Ok(pep_plain) = decrypt_entry_payload(key, pep_response_entry) {
            if let Some((&granted_byte, env_bytes)) = pep_plain.split_last() {
                if let Ok(enforced_env) = ResponseEnvelope::from_canonical_bytes(env_bytes) {
                    let granted = granted_byte == 1;
                    // Deny-biased reference: only an explicit Permit grants.
                    let should_grant = enforced_env.response.decision == Decision::Permit;
                    if granted != should_grant {
                        alerts.push(Alert::new(
                            AlertKind::EnforcementMismatch,
                            corr,
                            now,
                            format!(
                                "decision {} but access {}",
                                enforced_env.response.decision,
                                if granted { "granted" } else { "refused" }
                            ),
                        ));
                    }
                }
            }
        }

        alerts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::MonitorContract;
    use crate::probe::Probe;
    use drams_chain::chain::ChainConfig;
    use drams_faas::model::{PepId, TenantId};
    use drams_policy::attr::Request;
    use drams_policy::attr::{AttributeId, Category};
    use drams_policy::combining::CombiningAlg;
    use drams_policy::decision::{Effect, Response};
    use drams_policy::expr::Expr;
    use drams_policy::policy::Policy;
    use drams_policy::rule::Rule;
    use drams_policy::target::Target;

    fn policy() -> PolicySet {
        PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .rule(
                        Rule::builder("allow-doctors", Effect::Permit)
                            .target(Target::expr(Expr::equal(
                                Expr::attr(AttributeId::new(Category::Subject, "role")),
                                Expr::lit("doctor"),
                            )))
                            .build(),
                    )
                    .build(),
            )
            .build()
    }

    struct Rig {
        node: Node,
        analyser: Analyser,
        pep_probe: Probe,
        pdp_probe: Probe,
        key: SymmetricKey,
    }

    fn rig() -> Rig {
        let key = SymmetricKey::from_bytes([3; 32]);
        let analyser_kp = Keypair::from_seed(b"analyser");
        let mut node = Node::new(ChainConfig {
            initial_difficulty_bits: 0,
            retarget_interval: 0,
            ..ChainConfig::default()
        });
        node.register_contract(Box::new(MonitorContract));
        let admin = Keypair::from_seed(b"admin");
        node.submit_call(
            &admin,
            MONITOR_CONTRACT,
            "init",
            MonitorContract::init_payload(1_000_000, analyser_kp.public().fingerprint()),
        )
        .unwrap();
        node.mine_block(0).unwrap();

        let mut mac_keys = BTreeMap::new();
        mac_keys.insert(ProbeId(1), [11u8; 32]);
        mac_keys.insert(ProbeId(2), [22u8; 32]);
        Rig {
            node,
            analyser: Analyser::new(policy(), key.clone(), analyser_kp, mac_keys),
            pep_probe: Probe::new(ProbeId(1), key.clone(), [11; 32]),
            pdp_probe: Probe::new(ProbeId(2), key.clone(), [22; 32]),
            key,
        }
    }

    /// Drives one full transaction through probes and the contract.
    /// `claimed` is the response the PDP reports; `granted` what the PEP
    /// does.
    fn run_group(rig: &mut Rig, corr: u64, role: &str, claimed: Response, granted: bool) {
        let req_env = RequestEnvelope {
            correlation: CorrelationId(corr),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc".into(),
            request: Request::builder().subject("role", role).build(),
            issued_at: 100,
        };
        let resp_env = ResponseEnvelope {
            correlation: CorrelationId(corr),
            pep: PepId(1),
            response: claimed,
            policy_version: policy().version_digest(),
            decided_at: 200,
        };
        let li = Keypair::from_seed(b"li");
        let entries = vec![
            rig.pep_probe
                .observe_request(ObservationPoint::PepRequest, &req_env, 100),
            rig.pdp_probe
                .observe_request(ObservationPoint::PdpRequest, &req_env, 150),
            rig.pdp_probe.observe_pdp_response(&resp_env, 200),
            rig.pep_probe.observe_pep_response(&resp_env, granted, 250),
        ];
        for e in entries {
            rig.node
                .submit_call(
                    &li,
                    MONITOR_CONTRACT,
                    "store_log",
                    drams_crypto::codec::Encode::to_canonical_bytes(&e),
                )
                .unwrap();
        }
        rig.node.mine_block(1_000).unwrap();
    }

    fn honest_response(role: &str) -> Response {
        let verifier = DecisionVerifier::new(policy());
        verifier.expected_response(&Request::builder().subject("role", role).build())
    }

    #[test]
    fn honest_group_passes() {
        let mut r = rig();
        let resp = honest_response("doctor");
        run_group(&mut r, 1, "doctor", resp, true);
        let alerts = r.analyser.poll(&mut r.node, 2_000);
        assert!(alerts.is_empty(), "alerts: {alerts:?}");
        assert_eq!(r.analyser.checked_groups(), 1);
    }

    #[test]
    fn lying_pdp_is_caught_as_policy_violation() {
        let mut r = rig();
        // Nurse should be denied; the PDP claims Permit and the PEP grants.
        let lie = Response::new(drams_policy::decision::ExtDecision::Permit, vec![]);
        run_group(&mut r, 2, "nurse", lie, true);
        let alerts = r.analyser.poll(&mut r.node, 2_000);
        assert!(
            alerts.iter().any(|a| a.kind == AlertKind::PolicyViolation),
            "alerts: {alerts:?}"
        );
        // The finding is also committed on-chain.
        r.node.mine_block(3_000).unwrap();
        assert!(r
            .node
            .events()
            .iter()
            .any(|e| e.name == AlertKind::PolicyViolation.event_name()));
    }

    #[test]
    fn wrong_policy_version_is_caught() {
        let mut r = rig();
        let resp = honest_response("doctor");
        // Same decision, but evaluated under a swapped policy version.
        let req_env = RequestEnvelope {
            correlation: CorrelationId(3),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc".into(),
            request: Request::builder().subject("role", "doctor").build(),
            issued_at: 100,
        };
        let resp_env = ResponseEnvelope {
            correlation: CorrelationId(3),
            pep: PepId(1),
            response: resp,
            policy_version: drams_crypto::sha256::Digest::of(b"attacker-policy"),
            decided_at: 200,
        };
        let li = Keypair::from_seed(b"li");
        let entries = vec![
            r.pep_probe
                .observe_request(ObservationPoint::PepRequest, &req_env, 100),
            r.pdp_probe
                .observe_request(ObservationPoint::PdpRequest, &req_env, 150),
            r.pdp_probe.observe_pdp_response(&resp_env, 200),
            r.pep_probe.observe_pep_response(&resp_env, true, 250),
        ];
        for e in entries {
            r.node
                .submit_call(
                    &li,
                    MONITOR_CONTRACT,
                    "store_log",
                    drams_crypto::codec::Encode::to_canonical_bytes(&e),
                )
                .unwrap();
        }
        r.node.mine_block(1_000).unwrap();
        let alerts = r.analyser.poll(&mut r.node, 2_000);
        assert!(alerts
            .iter()
            .any(|a| a.kind == AlertKind::WrongPolicyVersion));
    }

    #[test]
    fn enforcement_mismatch_is_caught() {
        let mut r = rig();
        // Doctor is permitted, but the PEP refuses anyway.
        let resp = honest_response("doctor");
        run_group(&mut r, 4, "doctor", resp, false);
        let alerts = r.analyser.poll(&mut r.node, 2_000);
        assert!(alerts
            .iter()
            .any(|a| a.kind == AlertKind::EnforcementMismatch));
    }

    #[test]
    fn tampered_entry_mac_is_monitor_compromise() {
        let mut r = rig();
        let resp = honest_response("doctor");
        // Build an honest group, then tamper one entry's observed_at (a
        // compromised LI rewriting history) without fixing the MAC.
        let req_env = RequestEnvelope {
            correlation: CorrelationId(5),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc".into(),
            request: Request::builder().subject("role", "doctor").build(),
            issued_at: 100,
        };
        let resp_env = ResponseEnvelope {
            correlation: CorrelationId(5),
            pep: PepId(1),
            response: resp,
            policy_version: policy().version_digest(),
            decided_at: 200,
        };
        let li = Keypair::from_seed(b"li");
        let mut entries = vec![
            r.pep_probe
                .observe_request(ObservationPoint::PepRequest, &req_env, 100),
            r.pdp_probe
                .observe_request(ObservationPoint::PdpRequest, &req_env, 150),
            r.pdp_probe.observe_pdp_response(&resp_env, 200),
            r.pep_probe.observe_pep_response(&resp_env, true, 250),
        ];
        entries[1].observed_at = 999_999; // LI rewrites the timestamp
        for e in entries {
            r.node
                .submit_call(
                    &li,
                    MONITOR_CONTRACT,
                    "store_log",
                    drams_crypto::codec::Encode::to_canonical_bytes(&e),
                )
                .unwrap();
        }
        r.node.mine_block(1_000).unwrap();
        let alerts = r.analyser.poll(&mut r.node, 2_000);
        assert!(alerts
            .iter()
            .any(|a| a.kind == AlertKind::MonitorCompromise));
    }

    #[test]
    fn poll_audits_committed_transaction_signatures() {
        let mut r = rig();
        let resp = honest_response("doctor");
        run_group(&mut r, 10, "doctor", resp, true);
        let alerts = r.analyser.poll(&mut r.node, 2_000);
        assert!(
            alerts.is_empty(),
            "honest chain must audit clean: {alerts:?}"
        );
        // init tx + 4 store_log txs were independently re-verified.
        assert!(
            r.analyser.audited_txs() >= 5,
            "{}",
            r.analyser.audited_txs()
        );
        // Re-polling does not re-audit the same blocks.
        let audited = r.analyser.audited_txs();
        r.analyser.poll(&mut r.node, 2_100);
        assert_eq!(r.analyser.audited_txs(), audited);
    }

    #[test]
    fn audit_survives_a_reorg() {
        use drams_chain::block::Block;
        use drams_chain::chain::ImportOutcome;

        let mut r = rig();
        let resp = honest_response("doctor");
        run_group(&mut r, 11, "doctor", resp, true);
        assert!(r.analyser.poll(&mut r.node, 2_000).is_empty());
        let audited_before = r.analyser.audited_txs();

        // Build a heavier fork from genesis (empty blocks at difficulty
        // 0) that replaces the audited chain entirely.
        let genesis = r.node.chain().genesis_hash();
        let tip_height = r.node.chain().tip_header().height;
        let mut parent = genesis;
        for h in 1..=tip_height + 1 {
            let block = Block::mine(parent, h, vec![], 10_000 + h, 0);
            parent = block.hash();
            let outcome = r.node.receive_block(block).unwrap();
            assert!(!matches!(outcome, ImportOutcome::AlreadyKnown));
        }
        // The audit cursor's old tip is no longer on the main chain; the
        // hash-based walk re-audits from genesis without panicking or
        // raising alerts (the fork's blocks are empty but validly mined).
        let alerts = r.analyser.poll(&mut r.node, 3_000);
        assert!(alerts.is_empty(), "reorg audit alerts: {alerts:?}");
        // Empty fork blocks add no transactions to the audit counter.
        assert_eq!(r.analyser.audited_txs(), audited_before);
        // Subsequent polls resume incrementally from the new tip.
        let tip = r.node.chain().tip_hash();
        r.analyser.poll(&mut r.node, 3_100);
        assert_eq!(r.node.chain().tip_hash(), tip);
    }

    #[test]
    fn poll_is_incremental() {
        let mut r = rig();
        let resp = honest_response("doctor");
        run_group(&mut r, 6, "doctor", resp.clone(), true);
        assert!(r.analyser.poll(&mut r.node, 1_000).is_empty());
        // Re-polling without new groups does nothing.
        assert!(r.analyser.poll(&mut r.node, 1_100).is_empty());
        assert_eq!(r.analyser.checked_groups(), 1);
        run_group(&mut r, 7, "doctor", resp, true);
        r.analyser.poll(&mut r.node, 2_000);
        assert_eq!(r.analyser.checked_groups(), 2);
    }

    #[test]
    fn recovered_analyser_resumes_without_rescanning_or_realerts() {
        use drams_store::{MemBackend, SnapshotStore};

        let mut r = rig();
        r.analyser
            .attach_checkpoint(SnapshotStore::new(Box::new(MemBackend::new())))
            .unwrap();
        // One dirty group (would alert) and one clean one, both polled
        // and therefore checkpointed as already-checked.
        let lie = Response::new(drams_policy::decision::ExtDecision::Permit, vec![]);
        run_group(&mut r, 1, "nurse", lie, true);
        let alerts = r.analyser.poll(&mut r.node, 2_000);
        assert_eq!(alerts.len(), 1);
        run_group(&mut r, 2, "doctor", honest_response("doctor"), true);
        assert!(r.analyser.poll(&mut r.node, 3_000).is_empty());
        let checked = r.analyser.checked_groups();
        let audited = r.analyser.audited_txs();
        // Publish a stricter authorised policy, then crash.
        r.analyser
            .publish_authorised_policy(crate::monitor::default_policy(), 3_500);
        r.analyser.checkpoint().unwrap();
        let store = r.analyser.detach_checkpoint().unwrap();

        let mut recovered =
            Analyser::recover(r.key.clone(), Keypair::from_seed(b"analyser"), store).unwrap();
        assert_eq!(recovered.checked_groups(), checked);
        assert_eq!(recovered.audited_txs(), audited);
        // Polling the same chain re-raises nothing: the dirty group was
        // already checked before the crash.
        assert!(
            recovered.poll(&mut r.node, 4_000).is_empty(),
            "a recovered analyser must not re-alert"
        );
        assert_eq!(recovered.checked_groups(), checked);
        // New groups after recovery are still checked (with the policy
        // history intact: the new authorised version applies).
        run_group(&mut r, 3, "doctor", honest_response("doctor"), true);
        assert!(recovered.poll(&mut r.node, 5_000).is_empty());
        assert_eq!(recovered.checked_groups(), checked + 1);
    }

    #[test]
    fn retirement_prunes_checked_groups_after_the_lag() {
        let mut r = rig();
        r.analyser.enable_group_retirement(5_000);
        run_group(&mut r, 1, "doctor", honest_response("doctor"), true);
        assert!(r.analyser.poll(&mut r.node, 2_000).is_empty());
        assert_eq!(r.analyser.pending_retirements(), 1);
        // Inside the lag: nothing retired yet.
        r.analyser.poll(&mut r.node, 4_000);
        assert_eq!(r.analyser.groups_retired(), 0);
        let storage = r.node.host().storage_of(MONITOR_CONTRACT).unwrap();
        assert_eq!(storage.scan_prefix(b"ent/").count(), 4);
        // Past the lag: the retire tx is submitted and commits with the
        // next block.
        r.analyser.poll(&mut r.node, 8_000);
        assert_eq!(r.analyser.groups_retired(), 1);
        assert_eq!(r.analyser.pending_retirements(), 0);
        r.node.mine_block(9_000).unwrap();
        let storage = r.node.host().storage_of(MONITOR_CONTRACT).unwrap();
        assert_eq!(storage.scan_prefix(b"ent/").count(), 0, "evidence pruned");
        // Retirement itself must not raise alerts.
        assert!(r.analyser.poll(&mut r.node, 10_000).is_empty());
    }

    #[test]
    fn retirement_state_survives_checkpoint_recovery() {
        use drams_store::{MemBackend, SnapshotStore};
        let mut r = rig();
        r.analyser.enable_group_retirement(5_000);
        r.analyser
            .attach_checkpoint(SnapshotStore::new(Box::new(MemBackend::new())))
            .unwrap();
        run_group(&mut r, 1, "doctor", honest_response("doctor"), true);
        assert!(r.analyser.poll(&mut r.node, 2_000).is_empty());
        r.analyser.checkpoint().unwrap();
        let store = r.analyser.detach_checkpoint().unwrap();

        let mut recovered =
            Analyser::recover(r.key.clone(), Keypair::from_seed(b"analyser"), store).unwrap();
        assert_eq!(recovered.pending_retirements(), 1);
        assert_eq!(recovered.groups_retired(), 0);
        // The recovered analyser retires the pending group once due.
        recovered.poll(&mut r.node, 8_000);
        assert_eq!(recovered.groups_retired(), 1);
        r.node.mine_block(9_000).unwrap();
        let storage = r.node.host().storage_of(MONITOR_CONTRACT).unwrap();
        assert_eq!(storage.scan_prefix(b"ent/").count(), 0);
    }

    #[test]
    fn history_retention_prunes_churned_policy_versions() {
        let mut r = rig();
        r.analyser.enable_history_retention(10_000);
        // Churn: three successive, genuinely distinct authorised versions.
        r.analyser
            .publish_authorised_policy(crate::monitor::default_policy(), 1_000);
        r.analyser.publish_authorised_policy(
            PolicySet::builder("root3", CombiningAlg::PermitUnlessDeny).build(),
            2_000,
        );
        assert_eq!(r.analyser.policy_history_len(), 3);
        // Horizon (now - 10s) still before both retirements: all kept.
        r.analyser.poll(&mut r.node, 5_000);
        assert_eq!(r.analyser.policy_history_len(), 3);
        assert_eq!(r.analyser.policy_history_retired(), 0);
        // Past the first retirement (1_000) only.
        r.analyser.poll(&mut r.node, 11_500);
        assert_eq!(r.analyser.policy_history_len(), 2);
        assert_eq!(r.analyser.policy_history_retired(), 1);
        // Far past everything: only the active version survives.
        r.analyser.poll(&mut r.node, 1_000_000);
        assert_eq!(r.analyser.policy_history_len(), 1);
        assert_eq!(r.analyser.policy_history_retired(), 2);
        // Churn keeps working after pruning.
        r.analyser
            .publish_authorised_policy(crate::monitor::default_policy(), 2_000_000);
        assert_eq!(r.analyser.policy_history_len(), 2);
    }

    #[test]
    fn history_retention_holds_back_for_unretired_groups() {
        let mut r = rig();
        r.analyser.enable_history_retention(1_000);
        r.analyser.enable_group_retirement(1_000_000);
        r.analyser
            .publish_authorised_policy(crate::monitor::default_policy(), 1_000);
        // A group checked at t=2_000 stays pending (huge retire lag); it
        // anchors the horizon, so the version retired at t=1_000 must
        // survive far past its own retirement + retention.
        run_group(&mut r, 1, "doctor", honest_response("doctor"), true);
        r.analyser.poll(&mut r.node, 2_000);
        assert_eq!(r.analyser.pending_retirements(), 1);
        r.analyser.poll(&mut r.node, 500_000);
        assert_eq!(r.analyser.policy_history_len(), 2);
        assert_eq!(r.analyser.policy_history_retired(), 0);
    }

    #[test]
    fn pruned_history_survives_checkpoint_recovery() {
        use drams_store::{MemBackend, SnapshotStore};
        let mut r = rig();
        r.analyser.enable_history_retention(10_000);
        r.analyser
            .attach_checkpoint(SnapshotStore::new(Box::new(MemBackend::new())))
            .unwrap();
        r.analyser
            .publish_authorised_policy(crate::monitor::default_policy(), 1_000);
        r.analyser.publish_authorised_policy(
            PolicySet::builder("root3", CombiningAlg::PermitUnlessDeny).build(),
            2_000,
        );
        r.analyser.poll(&mut r.node, 11_500); // prunes the initial version
        assert_eq!(r.analyser.policy_history_len(), 2);
        let retired = r.analyser.policy_history_retired();
        assert_eq!(retired, 1);
        r.analyser.checkpoint().unwrap();
        let store = r.analyser.detach_checkpoint().unwrap();

        let recovered =
            Analyser::recover(r.key.clone(), Keypair::from_seed(b"analyser"), store).unwrap();
        // The pruned baseline replays to the same live history: the
        // dropped version is NOT resurrected, counters match.
        assert_eq!(recovered.policy_history_len(), 2);
        assert_eq!(recovered.policy_history_retired(), retired);
        assert_eq!(
            recovered.verifier.authorised_version(),
            r.analyser.verifier.authorised_version()
        );
    }

    #[test]
    fn parallel_group_judging_is_worker_count_invisible() {
        use drams_faas::par;
        // More groups than PAR_MIN_GROUPS, mixed verdicts, compared
        // across worker counts by rebuilding the same chain each time.
        let runs: Vec<Vec<Alert>> = [1usize, 4]
            .iter()
            .map(|&w| {
                let saved = par::workers();
                par::set_workers(w);
                let mut r = rig();
                for corr in 0..(PAR_MIN_GROUPS as u64 + 4) {
                    let (role, resp, granted) = match corr % 3 {
                        0 => ("doctor", honest_response("doctor"), true),
                        1 => (
                            "nurse",
                            Response::new(drams_policy::decision::ExtDecision::Permit, vec![]),
                            true,
                        ),
                        _ => ("doctor", honest_response("doctor"), false),
                    };
                    run_group(&mut r, corr + 1, role, resp, granted);
                }
                let alerts = r.analyser.poll(&mut r.node, 50_000);
                par::set_workers(saved);
                alerts
            })
            .collect();
        assert!(!runs[0].is_empty());
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn recover_without_checkpoint_is_not_found() {
        use drams_store::{MemBackend, SnapshotStore, StoreError};
        let err = Analyser::recover(
            SymmetricKey::from_bytes([3; 32]),
            Keypair::from_seed(b"analyser"),
            SnapshotStore::new(Box::new(MemBackend::new())),
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::NotFound(_)));
    }

    #[test]
    fn key_isolation_from_payload() {
        // sanity: rig key decrypts, foreign key does not
        let mut r = rig();
        let env = RequestEnvelope {
            correlation: CorrelationId(8),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc".into(),
            request: Request::new(),
            issued_at: 0,
        };
        let entry = r
            .pep_probe
            .observe_request(ObservationPoint::PepRequest, &env, 0);
        assert!(decrypt_entry_payload(&r.key, &entry).is_ok());
        assert!(decrypt_entry_payload(&SymmetricKey::from_bytes([99; 32]), &entry).is_err());
    }
}
