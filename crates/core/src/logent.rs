//! The access-log entry schema.
//!
//! Every access transaction is observed at four points (the "4-quadrant"
//! protocol, DESIGN.md §2): the request as the PEP sends it, the request
//! as the PDP receives it, the response as the PDP sends it, and the
//! response as the PEP receives it. Probes turn each observation into a
//! [`LogEntry`]: a plaintext digest for on-chain comparison, a sealed
//! payload for the Analyser, and a per-probe MAC so even a compromised
//! Logging Interface cannot forge or alter entries unnoticed.

use drams_crypto::aead::SealedBox;
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::hmac::hmac_sha256_parts;
use drams_crypto::sha256::Digest;
use drams_crypto::CryptoError;
use drams_faas::des::SimTime;
use drams_faas::msg::CorrelationId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four observation points of one access transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ObservationPoint {
    /// The request as the PEP forwards it.
    PepRequest,
    /// The request as the PDP receives it.
    PdpRequest,
    /// The response as the PDP sends it.
    PdpResponse,
    /// The response as the PEP receives (and enforces) it.
    PepResponse,
}

impl ObservationPoint {
    /// All four points in protocol order.
    pub const ALL: [ObservationPoint; 4] = [
        ObservationPoint::PepRequest,
        ObservationPoint::PdpRequest,
        ObservationPoint::PdpResponse,
        ObservationPoint::PepResponse,
    ];

    /// Bit used in the contract's completeness bitmask.
    #[must_use]
    pub fn bit(&self) -> u8 {
        match self {
            ObservationPoint::PepRequest => 1,
            ObservationPoint::PdpRequest => 2,
            ObservationPoint::PdpResponse => 4,
            ObservationPoint::PepResponse => 8,
        }
    }

    /// Compact code for storage keys.
    #[must_use]
    pub fn code(&self) -> u8 {
        match self {
            ObservationPoint::PepRequest => 0,
            ObservationPoint::PdpRequest => 1,
            ObservationPoint::PdpResponse => 2,
            ObservationPoint::PepResponse => 3,
        }
    }

    /// Inverse of [`ObservationPoint::code`].
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] for unknown codes.
    pub fn from_code(code: u8) -> Result<Self, CryptoError> {
        ObservationPoint::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| CryptoError::Malformed(format!("observation point code {code}")))
    }
}

impl fmt::Display for ObservationPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ObservationPoint::PepRequest => "pep-request",
            ObservationPoint::PdpRequest => "pdp-request",
            ObservationPoint::PdpResponse => "pdp-response",
            ObservationPoint::PepResponse => "pep-response",
        };
        f.write_str(s)
    }
}

/// Identifier of a probing agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProbeId(pub u32);

impl fmt::Display for ProbeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "probe-{}", self.0)
    }
}

/// One observation, as submitted to the monitor contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Correlates the four observations of one transaction.
    pub correlation: CorrelationId,
    /// Which of the four points this is.
    pub point: ObservationPoint,
    /// The observing probe.
    pub probe: ProbeId,
    /// SHA-256 of the observed envelope's canonical encoding — the value
    /// the contract compares across probes.
    pub digest: Digest,
    /// Policy version the PDP reported (response points only).
    pub policy_version: Option<Digest>,
    /// Virtual time of the observation.
    pub observed_at: SimTime,
    /// The observed envelope, encrypted under the federation key *K*
    /// (blockchain data is public — paper §II).
    pub sealed_payload: SealedBox,
    /// HMAC over the comparable fields under the probe's TPM-held key;
    /// verified by the Analyser to detect a compromised Logging Interface.
    pub probe_mac: Digest,
}

impl LogEntry {
    /// The fields bound by [`LogEntry::probe_mac`].
    #[must_use]
    pub fn mac_input(
        correlation: CorrelationId,
        point: ObservationPoint,
        probe: ProbeId,
        digest: &Digest,
        observed_at: SimTime,
        sealed_payload: &SealedBox,
    ) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(correlation.0);
        w.put_u8(point.code());
        w.put_u32(probe.0);
        digest.encode(&mut w);
        w.put_u64(observed_at);
        w.put_raw(&sealed_payload.nonce);
        w.put_bytes(&sealed_payload.ciphertext);
        sealed_payload.tag.encode(&mut w);
        w.into_bytes()
    }

    /// Computes the probe MAC with `mac_key`.
    #[must_use]
    pub fn compute_mac(&self, mac_key: &[u8; 32]) -> Digest {
        hmac_sha256_parts(
            mac_key,
            &[&Self::mac_input(
                self.correlation,
                self.point,
                self.probe,
                &self.digest,
                self.observed_at,
                &self.sealed_payload,
            )],
        )
    }

    /// Verifies the probe MAC with `mac_key`.
    #[must_use]
    pub fn verify_mac(&self, mac_key: &[u8; 32]) -> bool {
        drams_crypto::ct_eq(
            self.compute_mac(mac_key).as_bytes(),
            self.probe_mac.as_bytes(),
        )
    }

    /// Wire size in bytes (drives the log-size experiment E1).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.to_canonical_bytes().len()
    }
}

impl Encode for LogEntry {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.correlation.0);
        w.put_u8(self.point.code());
        w.put_u32(self.probe.0);
        self.digest.encode(w);
        match &self.policy_version {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
        w.put_u64(self.observed_at);
        w.put_raw(&self.sealed_payload.nonce);
        w.put_bytes(&self.sealed_payload.ciphertext);
        self.sealed_payload.tag.encode(w);
        self.probe_mac.encode(w);
    }
}

impl Decode for LogEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let correlation = CorrelationId(r.get_u64()?);
        let point = ObservationPoint::from_code(r.get_u8()?)?;
        let probe = ProbeId(r.get_u32()?);
        let digest = Digest::decode(r)?;
        let policy_version = match r.get_u8()? {
            0 => None,
            1 => Some(Digest::decode(r)?),
            other => return Err(CryptoError::Malformed(format!("version tag {other}"))),
        };
        let observed_at = r.get_u64()?;
        let nonce = r.get_array::<12>()?;
        let ciphertext = r.get_bytes()?;
        let tag = Digest::decode(r)?;
        let probe_mac = Digest::decode(r)?;
        Ok(LogEntry {
            correlation,
            point,
            probe,
            digest,
            policy_version,
            observed_at,
            sealed_payload: SealedBox {
                nonce,
                ciphertext,
                tag,
            },
            probe_mac,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_crypto::aead::{seal, SymmetricKey};

    fn entry() -> LogEntry {
        let k = SymmetricKey::from_bytes([1; 32]);
        let sealed = seal(&k, [2; 12], b"aad", b"the envelope bytes");
        let mut e = LogEntry {
            correlation: CorrelationId(42),
            point: ObservationPoint::PdpResponse,
            probe: ProbeId(3),
            digest: Digest::of(b"envelope"),
            policy_version: Some(Digest::of(b"policy-v1")),
            observed_at: 12_345,
            sealed_payload: sealed,
            probe_mac: Digest::ZERO,
        };
        e.probe_mac = e.compute_mac(&[9; 32]);
        e
    }

    #[test]
    fn codec_round_trip() {
        let e = entry();
        let bytes = e.to_canonical_bytes();
        assert_eq!(LogEntry::from_canonical_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn mac_verifies_and_rejects() {
        let e = entry();
        assert!(e.verify_mac(&[9; 32]));
        assert!(!e.verify_mac(&[8; 32]));
        let mut tampered = e.clone();
        tampered.digest = Digest::of(b"other");
        assert!(!tampered.verify_mac(&[9; 32]));
        let mut tampered = e;
        tampered.sealed_payload.ciphertext[0] ^= 1;
        assert!(!tampered.verify_mac(&[9; 32]));
    }

    #[test]
    fn observation_point_codes_round_trip() {
        for p in ObservationPoint::ALL {
            assert_eq!(ObservationPoint::from_code(p.code()).unwrap(), p);
        }
        assert!(ObservationPoint::from_code(9).is_err());
    }

    #[test]
    fn bits_are_distinct() {
        let mut mask = 0u8;
        for p in ObservationPoint::ALL {
            assert_eq!(mask & p.bit(), 0);
            mask |= p.bit();
        }
        assert_eq!(mask, 0b1111);
    }

    #[test]
    fn request_points_have_no_policy_version() {
        let mut e = entry();
        e.point = ObservationPoint::PepRequest;
        e.policy_version = None;
        let bytes = e.to_canonical_bytes();
        assert_eq!(LogEntry::from_canonical_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn wire_len_tracks_payload() {
        let k = SymmetricKey::from_bytes([1; 32]);
        let mut small = entry();
        small.sealed_payload = seal(&k, [0; 12], b"", &vec![0u8; 64]);
        let mut large = entry();
        large.sealed_payload = seal(&k, [0; 12], b"", &vec![0u8; 4096]);
        assert!(large.wire_len() > small.wire_len() + 4000);
    }
}
