//! Adversary interface — the hooks through which attacks are injected.
//!
//! The monitor simulation calls these hooks at every interception point
//! the paper's threat model names (§I: components may be compromised so
//! that "access requests or responses are modified, or the policies and
//! the evaluation process are altered"). Each hook may mutate the value in
//! flight and returns whether it did, so the simulation can keep exact
//! ground truth for detection scoring. `drams-attack` provides the
//! concrete attack implementations; [`NoAdversary`] is the honest
//! baseline.

use crate::logent::LogEntry;
use drams_faas::des::SimTime;
use drams_faas::msg::{RequestEnvelope, ResponseEnvelope};
use drams_policy::policy::PolicySet;

/// Attack hooks at every interception point of the access-control path
/// and the monitoring pipeline.
pub trait Adversary {
    /// May tamper with a request on the PEP→PDP wire.
    fn tamper_request_in_transit(
        &mut self,
        _envelope: &mut RequestEnvelope,
        _now: SimTime,
    ) -> bool {
        false
    }

    /// May tamper with a response on the PDP→PEP wire.
    fn tamper_response_in_transit(
        &mut self,
        _envelope: &mut ResponseEnvelope,
        _now: SimTime,
    ) -> bool {
        false
    }

    /// May replace the policy the PDP evaluates (unauthorised swap at the
    /// PRP/PDP). Called once per simulation setup.
    fn swap_policy(&mut self, _authorised: &PolicySet) -> Option<PolicySet> {
        None
    }

    /// May corrupt the PDP's decision *before* the PDP-side probe sees it
    /// (a lying PDP — both response digests will match, only the Analyser
    /// can catch this).
    fn corrupt_pdp_decision(&mut self, _envelope: &mut ResponseEnvelope, _now: SimTime) -> bool {
        false
    }

    /// May flip what the PEP actually enforces, independent of the
    /// decision.
    fn flip_enforcement(&mut self, _granted: &mut bool, _now: SimTime) -> bool {
        false
    }

    /// May suppress a probe's log entry on its way to the LI (silenced
    /// component / dropped log).
    fn drop_log(&mut self, _entry: &LogEntry, _now: SimTime) -> bool {
        false
    }

    /// May tamper with a log entry inside a compromised LI (the probe MAC
    /// will no longer verify).
    fn tamper_log(&mut self, _entry: &mut LogEntry, _now: SimTime) -> bool {
        false
    }

    /// May replace a log entry's evidence (digest and sealed payload) with
    /// evidence replayed from an earlier entry, possibly of another
    /// tenant — a compromised LI trying to pass off stale observations as
    /// current ones. The probe MAC covers the digest and sealed payload,
    /// so the splice cannot re-MAC the forgery.
    fn replay_log(&mut self, _entry: &mut LogEntry, _now: SimTime) -> bool {
        false
    }
}

/// The honest baseline: no hook ever fires.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoAdversary;

impl Adversary for NoAdversary {}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_faas::model::{PepId, TenantId};
    use drams_faas::msg::CorrelationId;
    use drams_policy::attr::Request;

    #[test]
    fn no_adversary_never_tampers() {
        let mut adv = NoAdversary;
        let mut env = RequestEnvelope {
            correlation: CorrelationId(1),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc".into(),
            request: Request::new(),
            issued_at: 0,
        };
        let before = env.clone();
        assert!(!adv.tamper_request_in_transit(&mut env, 0));
        assert_eq!(env, before);
        let mut granted = true;
        assert!(!adv.flip_enforcement(&mut granted, 0));
        assert!(granted);
    }
}
