//! Probing agents.
//!
//! Paper §I: DRAMS includes "distributed logging probes which sense access
//! control activities and intercept access requests and decisions." A
//! probe is attached to a PEP or to the PDP; for every envelope it sees it
//! produces a [`LogEntry`]: digest for on-chain comparison, sealed payload
//! for the Analyser, and a MAC under a key the probe obtained from its
//! tenant's TPM (so the Logging Interface never holds it).

use crate::logent::{LogEntry, ObservationPoint, ProbeId};
use drams_crypto::aead::{seal, SymmetricKey};
use drams_crypto::codec::Encode;
use drams_crypto::sha256::Digest;
use drams_faas::des::SimTime;
use drams_faas::msg::{RequestEnvelope, ResponseEnvelope};

/// A probing agent attached to one monitored component.
#[derive(Debug)]
pub struct Probe {
    id: ProbeId,
    /// Federation-wide encryption key *K* (shared with the LIs).
    payload_key: SymmetricKey,
    /// Per-probe MAC key, provisioned from the tenant TPM.
    mac_key: [u8; 32],
    sequence: u64,
}

impl Probe {
    /// Creates a probe with its two keys.
    #[must_use]
    pub fn new(id: ProbeId, payload_key: SymmetricKey, mac_key: [u8; 32]) -> Self {
        Probe {
            id,
            payload_key,
            mac_key,
            sequence: 0,
        }
    }

    /// The probe's id.
    #[must_use]
    pub fn id(&self) -> ProbeId {
        self.id
    }

    /// Number of observations produced so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.sequence
    }

    fn next_nonce(&mut self) -> [u8; 12] {
        // Unique per (probe, sequence): 4 bytes probe id + 8 bytes counter.
        let mut nonce = [0u8; 12];
        nonce[..4].copy_from_slice(&self.id.0.to_be_bytes());
        nonce[4..].copy_from_slice(&self.sequence.to_be_bytes());
        self.sequence += 1;
        nonce
    }

    fn build_entry(
        &mut self,
        correlation: drams_faas::msg::CorrelationId,
        point: ObservationPoint,
        digest: Digest,
        policy_version: Option<Digest>,
        plaintext: &[u8],
        observed_at: SimTime,
    ) -> LogEntry {
        let nonce = self.next_nonce();
        // AAD binds the ciphertext to its header fields.
        let mut aad = Vec::with_capacity(64);
        aad.extend_from_slice(&correlation.0.to_be_bytes());
        aad.push(point.code());
        aad.extend_from_slice(digest.as_bytes());
        let sealed_payload = seal(&self.payload_key, nonce, &aad, plaintext);
        let mut entry = LogEntry {
            correlation,
            point,
            probe: self.id,
            digest,
            policy_version,
            observed_at,
            sealed_payload,
            probe_mac: Digest::ZERO,
        };
        entry.probe_mac = entry.compute_mac(&self.mac_key);
        entry
    }

    /// Observes a request envelope at the given point
    /// ([`ObservationPoint::PepRequest`] or
    /// [`ObservationPoint::PdpRequest`]).
    pub fn observe_request(
        &mut self,
        point: ObservationPoint,
        envelope: &RequestEnvelope,
        observed_at: SimTime,
    ) -> LogEntry {
        debug_assert!(matches!(
            point,
            ObservationPoint::PepRequest | ObservationPoint::PdpRequest
        ));
        let bytes = envelope.to_canonical_bytes();
        let digest = Digest::of(&bytes);
        self.build_entry(
            envelope.correlation,
            point,
            digest,
            None,
            &bytes,
            observed_at,
        )
    }

    /// Observes a response envelope at [`ObservationPoint::PdpResponse`].
    pub fn observe_pdp_response(
        &mut self,
        envelope: &ResponseEnvelope,
        observed_at: SimTime,
    ) -> LogEntry {
        let bytes = envelope.to_canonical_bytes();
        let digest = Digest::of(&bytes);
        self.build_entry(
            envelope.correlation,
            ObservationPoint::PdpResponse,
            digest,
            Some(envelope.policy_version),
            &bytes,
            observed_at,
        )
    }

    /// Observes a response at the PEP, together with what the PEP actually
    /// did ([`ObservationPoint::PepResponse`]). The enforcement flag rides
    /// inside the sealed payload: the digest covers the envelope alone so
    /// transit-tampering comparison stays exact, while the Analyser can
    /// still check enforcement after decrypting.
    pub fn observe_pep_response(
        &mut self,
        envelope: &ResponseEnvelope,
        granted: bool,
        observed_at: SimTime,
    ) -> LogEntry {
        let bytes = envelope.to_canonical_bytes();
        let digest = Digest::of(&bytes);
        let mut plaintext = bytes;
        plaintext.push(u8::from(granted));
        self.build_entry(
            envelope.correlation,
            ObservationPoint::PepResponse,
            digest,
            Some(envelope.policy_version),
            &plaintext,
            observed_at,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_faas::model::{PepId, TenantId};
    use drams_faas::msg::CorrelationId;
    use drams_policy::attr::Request;
    use drams_policy::decision::{ExtDecision, Response};

    fn probe() -> Probe {
        Probe::new(ProbeId(1), SymmetricKey::from_bytes([1; 32]), [2; 32])
    }

    fn request_env() -> RequestEnvelope {
        RequestEnvelope {
            correlation: CorrelationId(5),
            tenant: TenantId(1),
            pep: PepId(1),
            service: "svc".into(),
            request: Request::builder().subject("role", "doctor").build(),
            issued_at: 100,
        }
    }

    fn response_env() -> ResponseEnvelope {
        ResponseEnvelope {
            correlation: CorrelationId(5),
            pep: PepId(1),
            response: Response::new(ExtDecision::Permit, vec![]),
            policy_version: Digest::of(b"v1"),
            decided_at: 200,
        }
    }

    #[test]
    fn same_envelope_same_digest_across_probes() {
        // The core tamper-detection invariant: two honest probes observing
        // the same envelope produce the same digest.
        let mut pep_probe = probe();
        let mut pdp_probe = Probe::new(ProbeId(2), SymmetricKey::from_bytes([1; 32]), [3; 32]);
        let env = request_env();
        let a = pep_probe.observe_request(ObservationPoint::PepRequest, &env, 100);
        let b = pdp_probe.observe_request(ObservationPoint::PdpRequest, &env, 150);
        assert_eq!(a.digest, b.digest);
        assert_ne!(a.probe, b.probe);
    }

    #[test]
    fn tampered_envelope_changes_digest() {
        let mut p1 = probe();
        let mut p2 = Probe::new(ProbeId(2), SymmetricKey::from_bytes([1; 32]), [3; 32]);
        let env = request_env();
        let a = p1.observe_request(ObservationPoint::PepRequest, &env, 100);
        let mut tampered = env;
        tampered.request = Request::builder().subject("role", "admin").build();
        let b = p2.observe_request(ObservationPoint::PdpRequest, &tampered, 150);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn entries_have_valid_macs() {
        let mut p = probe();
        let entry = p.observe_request(ObservationPoint::PepRequest, &request_env(), 100);
        assert!(entry.verify_mac(&[2; 32]));
        assert!(!entry.verify_mac(&[9; 32]));
    }

    #[test]
    fn payload_decrypts_to_envelope() {
        use drams_crypto::aead::open;
        use drams_crypto::codec::Decode;
        let mut p = probe();
        let env = request_env();
        let entry = p.observe_request(ObservationPoint::PepRequest, &env, 100);
        let mut aad = Vec::new();
        aad.extend_from_slice(&entry.correlation.0.to_be_bytes());
        aad.push(entry.point.code());
        aad.extend_from_slice(entry.digest.as_bytes());
        let plain = open(
            &SymmetricKey::from_bytes([1; 32]),
            &aad,
            &entry.sealed_payload,
        )
        .unwrap();
        assert_eq!(RequestEnvelope::from_canonical_bytes(&plain).unwrap(), env);
    }

    #[test]
    fn pep_response_carries_enforcement_flag() {
        use drams_crypto::aead::open;
        let mut p = probe();
        let env = response_env();
        let entry = p.observe_pep_response(&env, true, 300);
        let mut aad = Vec::new();
        aad.extend_from_slice(&entry.correlation.0.to_be_bytes());
        aad.push(entry.point.code());
        aad.extend_from_slice(entry.digest.as_bytes());
        let plain = open(
            &SymmetricKey::from_bytes([1; 32]),
            &aad,
            &entry.sealed_payload,
        )
        .unwrap();
        assert_eq!(*plain.last().unwrap(), 1u8);
        // Digest covers the envelope only, not the flag: a probe seeing
        // the same envelope with different enforcement has equal digest.
        let entry2 = p.observe_pep_response(&env, false, 300);
        assert_eq!(entry.digest, entry2.digest);
    }

    #[test]
    fn nonces_never_repeat() {
        let mut p = probe();
        let env = request_env();
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            let e = p.observe_request(ObservationPoint::PepRequest, &env, i);
            assert!(seen.insert(e.sealed_payload.nonce), "nonce reuse at {i}");
        }
        assert_eq!(p.observations(), 100);
    }

    #[test]
    fn pdp_response_records_policy_version() {
        let mut p = probe();
        let entry = p.observe_pdp_response(&response_env(), 250);
        assert_eq!(entry.policy_version, Some(Digest::of(b"v1")));
    }
}
