//! The DRAMS monitor smart contract.
//!
//! Paper §II: the blockchain stores and compares logs "using expressly
//! devised algorithms, thus to mitigate threat that modifies access
//! control decisions or responses." This contract implements those
//! algorithms:
//!
//! 1. **Pairwise digest matching** — the PEP-side and PDP-side digests of
//!    the same request (and of the same response) must be equal; a
//!    mismatch raises `RequestTampering` / `ResponseTampering` on-chain.
//! 2. **Completeness with epoch timeout** — all four observations must
//!    arrive before the group's deadline; `advance_epoch` sweeps expired
//!    groups and raises `MissingLog` for suppressed observations.
//! 3. **Conflict detection** — re-submission of an observation with
//!    different content raises `ConflictingObservation`.
//! 4. **Violation registry** — the (authorised) Analyser records its
//!    `PolicyViolation` / `EnforcementMismatch` / `MonitorCompromise`
//!    findings on-chain, making them non-repudiable.

use crate::alert::{Alert, AlertKind};
use crate::logent::{LogEntry, ObservationPoint};
use drams_chain::contract::{ExecutionContext, SmartContract};
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::sha256::Digest;
use drams_faas::msg::CorrelationId;

/// The contract's registry name.
pub const MONITOR_CONTRACT: &str = "drams-monitor";

/// Event emitted when a group has all four observations.
pub const GROUP_COMPLETE_EVENT: &str = "group.complete";

/// The monitor contract (stateless logic; state lives in contract
/// storage so reorg re-execution is deterministic).
#[derive(Debug, Default)]
pub struct MonitorContract;

#[derive(Debug, Clone, Copy, PartialEq)]
struct GroupState {
    first_seen: u64,
    mask: u8,
    flags: u8,
}

const FLAG_CLOSED: u8 = 1;
const FLAG_REQ_ALERTED: u8 = 2;
const FLAG_RESP_ALERTED: u8 = 4;
/// The group's four log entries were pruned by `retire_groups` after the
/// Analyser finished with them. The group record itself stays behind as
/// a tombstone so late duplicates of retired evidence are ignored
/// instead of reopening the group (which would raise false MissingLog
/// alerts at the next epoch sweep).
const FLAG_RETIRED: u8 = 8;

impl GroupState {
    fn encode(self) -> Vec<u8> {
        let mut w = Writer::with_capacity(10);
        w.put_u64(self.first_seen);
        w.put_u8(self.mask);
        w.put_u8(self.flags);
        w.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader::new(bytes);
        let state = GroupState {
            first_seen: r.get_u64().map_err(|e| e.to_string())?,
            mask: r.get_u8().map_err(|e| e.to_string())?,
            flags: r.get_u8().map_err(|e| e.to_string())?,
        };
        r.finish().map_err(|e| e.to_string())?;
        Ok(state)
    }

    fn is_complete(self) -> bool {
        self.mask == 0b1111
    }
}

fn entry_key(correlation: CorrelationId, point: ObservationPoint) -> Vec<u8> {
    let mut k = Vec::with_capacity(16);
    k.extend_from_slice(b"ent/");
    k.extend_from_slice(&correlation.0.to_be_bytes());
    k.push(point.code());
    k
}

fn group_key(correlation: CorrelationId) -> Vec<u8> {
    let mut k = Vec::with_capacity(12);
    k.extend_from_slice(b"grp/");
    k.extend_from_slice(&correlation.0.to_be_bytes());
    k
}

fn open_key(correlation: CorrelationId) -> Vec<u8> {
    let mut k = Vec::with_capacity(13);
    k.extend_from_slice(b"open/");
    k.extend_from_slice(&correlation.0.to_be_bytes());
    k
}

impl MonitorContract {
    /// Encodes the `init` payload.
    #[must_use]
    pub fn init_payload(timeout_us: u64, analyser: Digest) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(timeout_us);
        analyser.encode(&mut w);
        w.into_bytes()
    }

    fn handle_init(ctx: &mut ExecutionContext<'_>, payload: &[u8]) -> Result<(), String> {
        if ctx.storage.get(b"cfg/timeout").is_some() {
            return Err("already initialised".into());
        }
        let mut r = Reader::new(payload);
        let timeout = r.get_u64().map_err(|e| e.to_string())?;
        let analyser = Digest::decode(&mut r).map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        ctx.storage
            .insert(b"cfg/timeout".to_vec(), timeout.to_be_bytes().to_vec());
        ctx.storage
            .insert(b"cfg/analyser".to_vec(), analyser.as_bytes().to_vec());
        // The initialising sender becomes the contract admin — the only
        // party allowed to retune the epoch timeout later (degraded-mode
        // widening during declared fault windows).
        ctx.storage.insert(
            b"cfg/admin".to_vec(),
            ctx.sender_address().as_bytes().to_vec(),
        );
        Ok(())
    }

    /// Builds the payload for the `set_timeout` method.
    #[must_use]
    pub fn set_timeout_payload(timeout_us: u64) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(timeout_us);
        w.into_bytes()
    }

    fn handle_set_timeout(ctx: &mut ExecutionContext<'_>, payload: &[u8]) -> Result<(), String> {
        let admin = ctx
            .storage
            .get(b"cfg/admin")
            .cloned()
            .ok_or("not initialised")?;
        if ctx.sender_address().as_bytes().as_slice() != admin.as_slice() {
            return Err("sender is not the contract admin".into());
        }
        let mut r = Reader::new(payload);
        let timeout = r.get_u64().map_err(|e| e.to_string())?;
        r.finish().map_err(|e| e.to_string())?;
        if timeout == 0 {
            return Err("timeout must be positive".into());
        }
        ctx.storage
            .insert(b"cfg/timeout".to_vec(), timeout.to_be_bytes().to_vec());
        Ok(())
    }

    fn emit_alert(ctx: &mut ExecutionContext<'_>, alert: &Alert) {
        ctx.emit(alert.kind.event_name(), alert.to_canonical_bytes());
    }

    fn store_entry(ctx: &mut ExecutionContext<'_>, entry: &LogEntry) -> Result<(), String> {
        let now = ctx.timestamp_ms;
        // A retired group already went through every check and had its
        // evidence pruned; late duplicates are idempotent no-ops.
        if let Some(bytes) = ctx.storage.get(&group_key(entry.correlation)) {
            if GroupState::decode(bytes)?.flags & FLAG_RETIRED != 0 {
                return Ok(());
            }
        }
        let ekey = entry_key(entry.correlation, entry.point);
        if let Some(existing_bytes) = ctx.storage.get(&ekey).cloned() {
            let existing =
                LogEntry::from_canonical_bytes(&existing_bytes).map_err(|e| e.to_string())?;
            if existing.digest != entry.digest {
                Self::emit_alert(
                    ctx,
                    &Alert::new(
                        AlertKind::ConflictingObservation { point: entry.point },
                        entry.correlation,
                        now,
                        format!(
                            "point {} resubmitted with digest {} (stored {})",
                            entry.point, entry.digest, existing.digest
                        ),
                    ),
                );
            }
            // First write wins either way: the chain's history is
            // append-only evidence.
            return Ok(());
        }
        ctx.storage.insert(ekey, entry.to_canonical_bytes());

        let gkey = group_key(entry.correlation);
        let mut group = match ctx.storage.get(&gkey) {
            Some(bytes) => GroupState::decode(bytes)?,
            None => {
                ctx.storage.insert(open_key(entry.correlation), Vec::new());
                GroupState {
                    first_seen: now,
                    mask: 0,
                    flags: 0,
                }
            }
        };
        group.mask |= entry.point.bit();

        // Check 1: request digests must match across PEP and PDP.
        if group.flags & FLAG_REQ_ALERTED == 0
            && group.mask
                & (ObservationPoint::PepRequest.bit() | ObservationPoint::PdpRequest.bit())
                == ObservationPoint::PepRequest.bit() | ObservationPoint::PdpRequest.bit()
        {
            let pep = Self::load_entry(ctx, entry.correlation, ObservationPoint::PepRequest)?;
            let pdp = Self::load_entry(ctx, entry.correlation, ObservationPoint::PdpRequest)?;
            if pep.digest != pdp.digest {
                group.flags |= FLAG_REQ_ALERTED;
                Self::emit_alert(
                    ctx,
                    &Alert::new(
                        AlertKind::RequestTampering,
                        entry.correlation,
                        now,
                        format!("pep sent {} but pdp received {}", pep.digest, pdp.digest),
                    ),
                );
            }
        }

        // Check 2: response digests must match across PDP and PEP.
        if group.flags & FLAG_RESP_ALERTED == 0
            && group.mask
                & (ObservationPoint::PdpResponse.bit() | ObservationPoint::PepResponse.bit())
                == ObservationPoint::PdpResponse.bit() | ObservationPoint::PepResponse.bit()
        {
            let pdp = Self::load_entry(ctx, entry.correlation, ObservationPoint::PdpResponse)?;
            let pep = Self::load_entry(ctx, entry.correlation, ObservationPoint::PepResponse)?;
            if pdp.digest != pep.digest {
                group.flags |= FLAG_RESP_ALERTED;
                Self::emit_alert(
                    ctx,
                    &Alert::new(
                        AlertKind::ResponseTampering,
                        entry.correlation,
                        now,
                        format!("pdp sent {} but pep received {}", pdp.digest, pep.digest),
                    ),
                );
            }
        }

        // Check 3: completeness.
        if group.is_complete() && group.flags & FLAG_CLOSED == 0 {
            group.flags |= FLAG_CLOSED;
            ctx.storage.remove(&open_key(entry.correlation));
            let mut w = Writer::new();
            w.put_u64(entry.correlation.0);
            ctx.emit(GROUP_COMPLETE_EVENT, w.into_bytes());
        }
        ctx.storage.insert(gkey, group.encode());
        Ok(())
    }

    fn load_entry(
        ctx: &ExecutionContext<'_>,
        correlation: CorrelationId,
        point: ObservationPoint,
    ) -> Result<LogEntry, String> {
        let bytes = ctx
            .storage
            .get(&entry_key(correlation, point))
            .ok_or_else(|| format!("entry {correlation}/{point} missing"))?;
        LogEntry::from_canonical_bytes(bytes).map_err(|e| e.to_string())
    }

    fn handle_advance_epoch(ctx: &mut ExecutionContext<'_>) -> Result<(), String> {
        let timeout = match ctx.storage.get(b"cfg/timeout") {
            Some(bytes) if bytes.len() == 8 => {
                u64::from_be_bytes(bytes.as_slice().try_into().expect("length checked"))
            }
            _ => return Err("not initialised".into()),
        };
        let now = ctx.timestamp_ms;
        // Collect expired open groups first (cannot mutate while scanning).
        let expired: Vec<CorrelationId> = ctx
            .storage
            .scan_prefix(b"open/")
            .filter_map(|(key, _)| {
                let raw: [u8; 8] = key[5..13].try_into().ok()?;
                Some(CorrelationId(u64::from_be_bytes(raw)))
            })
            .filter(|corr| {
                ctx.storage
                    .get(&group_key(*corr))
                    .and_then(|b| GroupState::decode(b).ok())
                    .map(|g| g.first_seen.saturating_add(timeout) <= now)
                    .unwrap_or(false)
            })
            .collect();
        for corr in expired {
            let gkey = group_key(corr);
            let mut group =
                GroupState::decode(ctx.storage.get(&gkey).expect("scanned group exists"))?;
            for point in ObservationPoint::ALL {
                if group.mask & point.bit() == 0 {
                    Self::emit_alert(
                        ctx,
                        &Alert::new(
                            AlertKind::MissingLog { point },
                            corr,
                            now,
                            format!("observation {point} absent after {timeout}µs"),
                        ),
                    );
                }
            }
            group.flags |= FLAG_CLOSED;
            ctx.storage.remove(&open_key(corr));
            ctx.storage.insert(gkey, group.encode());
        }
        Ok(())
    }

    /// Builds the payload for the `retire_groups` method.
    #[must_use]
    pub fn retire_groups_payload(correlations: &[CorrelationId]) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_varint(correlations.len() as u64);
        for corr in correlations {
            w.put_u64(corr.0);
        }
        w.into_bytes()
    }

    /// Prunes the bulk evidence (`ent/` entries) of closed groups the
    /// Analyser has finished verifying, leaving a tombstoned group record
    /// behind. Analyser-gated: only the party that consumes the evidence
    /// may declare it consumed. Groups that are missing, still open or
    /// already retired are skipped — retirement must be idempotent under
    /// reorg re-execution.
    fn handle_retire_groups(ctx: &mut ExecutionContext<'_>, payload: &[u8]) -> Result<(), String> {
        let authorised = ctx
            .storage
            .get(b"cfg/analyser")
            .cloned()
            .ok_or("not initialised")?;
        if ctx.sender_address().as_bytes().as_slice() != authorised.as_slice() {
            return Err("sender is not the authorised analyser".into());
        }
        let mut r = Reader::new(payload);
        let n = r.get_varint().map_err(|e| e.to_string())?;
        for _ in 0..n {
            let corr = CorrelationId(r.get_u64().map_err(|e| e.to_string())?);
            let gkey = group_key(corr);
            let Some(bytes) = ctx.storage.get(&gkey) else {
                continue;
            };
            let mut group = GroupState::decode(bytes)?;
            if group.flags & FLAG_CLOSED == 0 || group.flags & FLAG_RETIRED != 0 {
                continue;
            }
            for point in ObservationPoint::ALL {
                ctx.storage.remove(&entry_key(corr, point));
            }
            group.flags |= FLAG_RETIRED;
            ctx.storage.insert(gkey, group.encode());
        }
        r.finish().map_err(|e| e.to_string())?;
        Ok(())
    }

    fn handle_report_violation(
        ctx: &mut ExecutionContext<'_>,
        payload: &[u8],
    ) -> Result<(), String> {
        let authorised = ctx
            .storage
            .get(b"cfg/analyser")
            .cloned()
            .ok_or("not initialised")?;
        if ctx.sender_address().as_bytes().as_slice() != authorised.as_slice() {
            return Err("sender is not the authorised analyser".into());
        }
        let alert = Alert::from_canonical_bytes(payload).map_err(|e| e.to_string())?;
        // Persist under a sequence number for auditability.
        let seq = ctx.storage.scan_prefix(b"alert/").count() as u64;
        let mut key = b"alert/".to_vec();
        key.extend_from_slice(&seq.to_be_bytes());
        ctx.storage.insert(key, payload.to_vec());
        Self::emit_alert(ctx, &alert);
        Ok(())
    }
}

impl SmartContract for MonitorContract {
    fn name(&self) -> &str {
        MONITOR_CONTRACT
    }

    fn execute(
        &self,
        ctx: &mut ExecutionContext<'_>,
        method: &str,
        payload: &[u8],
    ) -> Result<(), String> {
        match method {
            "init" => Self::handle_init(ctx, payload),
            "store_log" => {
                let entry = LogEntry::from_canonical_bytes(payload).map_err(|e| e.to_string())?;
                Self::store_entry(ctx, &entry)
            }
            "store_log_batch" => {
                let mut r = Reader::new(payload);
                let n = r.get_varint().map_err(|e| e.to_string())? as usize;
                for _ in 0..n {
                    let entry = LogEntry::decode(&mut r).map_err(|e| e.to_string())?;
                    Self::store_entry(ctx, &entry)?;
                }
                r.finish().map_err(|e| e.to_string())?;
                Ok(())
            }
            "advance_epoch" => Self::handle_advance_epoch(ctx),
            "set_timeout" => Self::handle_set_timeout(ctx, payload),
            "report_violation" => Self::handle_report_violation(ctx, payload),
            "retire_groups" => Self::handle_retire_groups(ctx, payload),
            other => Err(format!("unknown method `{other}`")),
        }
    }
}

/// Encodes a batch of entries for `store_log_batch` into `w`, so callers
/// with a size estimate can pre-allocate (see
/// [`crate::li::LoggingInterface::flush`]).
pub fn encode_batch_into(entries: &[LogEntry], w: &mut Writer) {
    w.put_varint(entries.len() as u64);
    for e in entries {
        e.encode(w);
    }
}

/// Encodes a batch of entries for `store_log_batch`.
#[must_use]
pub fn encode_batch(entries: &[LogEntry]) -> Vec<u8> {
    let mut w = Writer::new();
    encode_batch_into(entries, &mut w);
    w.into_bytes()
}

/// Minimum batch size before [`encode_batch_par`] fans the per-entry
/// encoding out across [`drams_faas::par`] workers; smaller flushes are
/// cheaper to encode inline than to spawn threads for.
const PAR_MIN_BATCH_ENTRIES: usize = 64;

/// Encodes a batch for `store_log_batch`, fanning per-entry encoding
/// out across [`drams_faas::par`] workers for large flushes.
///
/// Each entry's encoding depends only on that entry, so writing the
/// varint count prefix followed by per-chunk encodings concatenated in
/// submission order yields bytes identical to [`encode_batch_into`] at
/// any worker count. `capacity` pre-sizes the output (callers keep a
/// high-water hint from the previous flush).
#[must_use]
pub fn encode_batch_par(entries: &[LogEntry], capacity: usize) -> Vec<u8> {
    let mut w = Writer::with_capacity(capacity);
    if entries.len() < PAR_MIN_BATCH_ENTRIES {
        encode_batch_into(entries, &mut w);
        return w.into_bytes();
    }
    let ranges = drams_faas::par::chunk_ranges(entries.len(), drams_faas::par::workers());
    let chunks: Vec<&[LogEntry]> = ranges.iter().map(|r| &entries[r.start..r.end]).collect();
    let encoded = drams_faas::par::map(&chunks, 2, |c| {
        let mut cw = Writer::new();
        for e in *c {
            e.encode(&mut cw);
        }
        cw.into_bytes()
    });
    w.put_varint(entries.len() as u64);
    for part in &encoded {
        w.put_raw(part);
    }
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logent::ProbeId;
    use drams_chain::chain::ChainConfig;
    use drams_chain::node::Node;
    use drams_crypto::aead::{seal, SymmetricKey};
    use drams_crypto::schnorr::Keypair;

    fn test_node() -> (Node, Keypair, Keypair) {
        let mut node = Node::new(ChainConfig {
            initial_difficulty_bits: 0,
            retarget_interval: 0,
            ..ChainConfig::default()
        });
        node.register_contract(Box::new(MonitorContract));
        let li = Keypair::from_seed(b"li");
        let analyser = Keypair::from_seed(b"analyser");
        let payload = MonitorContract::init_payload(10_000, analyser.public().fingerprint());
        node.submit_call(&li, MONITOR_CONTRACT, "init", payload)
            .unwrap();
        node.mine_block(0).unwrap();
        (node, li, analyser)
    }

    fn entry(corr: u64, point: ObservationPoint, digest: &[u8], at: u64) -> LogEntry {
        let key = SymmetricKey::from_bytes([1; 32]);
        let sealed = seal(&key, [0; 12], b"", b"payload");
        let mut e = LogEntry {
            correlation: CorrelationId(corr),
            point,
            probe: ProbeId(1),
            digest: Digest::of(digest),
            policy_version: None,
            observed_at: at,
            sealed_payload: sealed,
            probe_mac: Digest::ZERO,
        };
        e.probe_mac = e.compute_mac(&[7; 32]);
        e
    }

    fn submit_entry(node: &mut Node, li: &Keypair, e: &LogEntry) {
        node.submit_call(li, MONITOR_CONTRACT, "store_log", e.to_canonical_bytes())
            .unwrap();
    }

    fn alert_events(node: &Node) -> Vec<Alert> {
        node.events()
            .iter()
            .filter(|ev| ev.name.starts_with("alert."))
            .map(|ev| Alert::from_canonical_bytes(&ev.data).unwrap())
            .collect()
    }

    #[test]
    fn matching_group_completes_without_alerts() {
        let (mut node, li, _) = test_node();
        for point in ObservationPoint::ALL {
            let d: &[u8] = if point.code() < 2 { b"req" } else { b"resp" };
            submit_entry(&mut node, &li, &entry(1, point, d, 100));
        }
        node.mine_block(1_000).unwrap();
        assert!(alert_events(&node).is_empty());
        assert!(node.events().iter().any(|e| e.name == GROUP_COMPLETE_EVENT));
    }

    #[test]
    fn request_mismatch_raises_alert() {
        let (mut node, li, _) = test_node();
        submit_entry(
            &mut node,
            &li,
            &entry(2, ObservationPoint::PepRequest, b"original", 100),
        );
        submit_entry(
            &mut node,
            &li,
            &entry(2, ObservationPoint::PdpRequest, b"tampered", 120),
        );
        node.mine_block(1_000).unwrap();
        let alerts = alert_events(&node);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::RequestTampering);
        assert_eq!(alerts[0].correlation, CorrelationId(2));
    }

    #[test]
    fn response_mismatch_raises_alert() {
        let (mut node, li, _) = test_node();
        submit_entry(
            &mut node,
            &li,
            &entry(3, ObservationPoint::PdpResponse, b"permit", 100),
        );
        submit_entry(
            &mut node,
            &li,
            &entry(3, ObservationPoint::PepResponse, b"deny!", 110),
        );
        node.mine_block(1_000).unwrap();
        let alerts = alert_events(&node);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::ResponseTampering);
    }

    #[test]
    fn missing_log_detected_after_timeout() {
        let (mut node, li, _) = test_node();
        // Only 3 of 4 observations arrive.
        for point in [
            ObservationPoint::PepRequest,
            ObservationPoint::PdpRequest,
            ObservationPoint::PdpResponse,
        ] {
            submit_entry(&mut node, &li, &entry(4, point, b"x", 100));
        }
        node.mine_block(1_000).unwrap();
        // Epoch before the timeout: no alert yet.
        node.submit_call(&li, MONITOR_CONTRACT, "advance_epoch", vec![])
            .unwrap();
        node.mine_block(5_000).unwrap();
        assert!(alert_events(&node).is_empty());
        // Epoch after the timeout: MissingLog for the PEP response.
        node.submit_call(&li, MONITOR_CONTRACT, "advance_epoch", vec![])
            .unwrap();
        node.mine_block(20_000).unwrap();
        let alerts = alert_events(&node);
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].kind,
            AlertKind::MissingLog {
                point: ObservationPoint::PepResponse
            }
        );
    }

    #[test]
    fn conflicting_resubmission_raises_alert() {
        let (mut node, li, _) = test_node();
        submit_entry(
            &mut node,
            &li,
            &entry(5, ObservationPoint::PepRequest, b"v1", 100),
        );
        node.mine_block(1_000).unwrap();
        // identical resubmission: idempotent, no alert
        submit_entry(
            &mut node,
            &li,
            &entry(5, ObservationPoint::PepRequest, b"v1", 100),
        );
        // different digest: conflict
        submit_entry(
            &mut node,
            &li,
            &entry(5, ObservationPoint::PepRequest, b"v2", 130),
        );
        node.mine_block(2_000).unwrap();
        let alerts = alert_events(&node);
        assert_eq!(alerts.len(), 1);
        assert_eq!(
            alerts[0].kind,
            AlertKind::ConflictingObservation {
                point: ObservationPoint::PepRequest
            }
        );
    }

    #[test]
    fn batch_submission_equals_singles() {
        let (mut node, li, _) = test_node();
        let entries: Vec<LogEntry> = ObservationPoint::ALL
            .iter()
            .map(|p| {
                let d: &[u8] = if p.code() < 2 { b"req" } else { b"resp" };
                entry(6, *p, d, 100)
            })
            .collect();
        node.submit_call(
            &li,
            MONITOR_CONTRACT,
            "store_log_batch",
            encode_batch(&entries),
        )
        .unwrap();
        node.mine_block(1_000).unwrap();
        assert!(node.events().iter().any(|e| e.name == GROUP_COMPLETE_EVENT));
        assert!(alert_events(&node).is_empty());
    }

    #[test]
    fn report_violation_requires_authorised_sender() {
        let (mut node, li, analyser) = test_node();
        let alert = Alert::new(
            AlertKind::PolicyViolation,
            CorrelationId(7),
            500,
            "lying pdp",
        );
        // Unauthorised sender (the LI) is rejected at execution.
        let id = node
            .submit_call(
                &li,
                MONITOR_CONTRACT,
                "report_violation",
                alert.to_canonical_bytes(),
            )
            .unwrap();
        node.mine_block(1_000).unwrap();
        assert!(matches!(
            node.receipt(&id).unwrap().1,
            drams_chain::contract::TxStatus::Failed(_)
        ));
        assert!(alert_events(&node).is_empty());
        // The analyser succeeds.
        node.submit_call(
            &analyser,
            MONITOR_CONTRACT,
            "report_violation",
            alert.to_canonical_bytes(),
        )
        .unwrap();
        node.mine_block(2_000).unwrap();
        let alerts = alert_events(&node);
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].kind, AlertKind::PolicyViolation);
    }

    #[test]
    fn set_timeout_widens_the_sweep_and_is_admin_gated() {
        let (mut node, li, analyser) = test_node(); // li initialised → li is admin
                                                    // Open a group with one entry at t=100; base timeout is 10_000.
        submit_entry(
            &mut node,
            &li,
            &entry(9, ObservationPoint::PepRequest, b"x", 100),
        );
        node.mine_block(1_000).unwrap();
        // A non-admin (the analyser) may not retune the timeout.
        let id = node
            .submit_call(
                &analyser,
                MONITOR_CONTRACT,
                "set_timeout",
                MonitorContract::set_timeout_payload(1_000_000),
            )
            .unwrap();
        node.mine_block(2_000).unwrap();
        assert!(matches!(
            node.receipt(&id).unwrap().1,
            drams_chain::contract::TxStatus::Failed(_)
        ));
        // The admin widens the timeout; the sweep at 50_000 (far past the
        // base deadline 100 + 10_000) must now stay silent.
        node.submit_call(
            &li,
            MONITOR_CONTRACT,
            "set_timeout",
            MonitorContract::set_timeout_payload(1_000_000),
        )
        .unwrap();
        node.mine_block(3_000).unwrap();
        node.submit_call(&li, MONITOR_CONTRACT, "advance_epoch", vec![])
            .unwrap();
        node.mine_block(50_000).unwrap();
        assert!(alert_events(&node).is_empty(), "widened timeout held");
        // Restoring the base timeout re-arms the sweep: the group is now
        // long past first_seen + 10_000 and must alert.
        node.submit_call(
            &li,
            MONITOR_CONTRACT,
            "set_timeout",
            MonitorContract::set_timeout_payload(10_000),
        )
        .unwrap();
        node.mine_block(51_000).unwrap();
        node.submit_call(&li, MONITOR_CONTRACT, "advance_epoch", vec![])
            .unwrap();
        node.mine_block(52_000).unwrap();
        let alerts = alert_events(&node);
        assert!(!alerts.is_empty(), "restored timeout sweeps the group");
        assert!(alerts
            .iter()
            .all(|a| matches!(a.kind, AlertKind::MissingLog { .. })));
    }

    #[test]
    fn set_timeout_rejects_zero_and_garbage() {
        let (mut node, li, _) = test_node();
        for payload in [MonitorContract::set_timeout_payload(0), vec![1, 2, 3]] {
            let id = node
                .submit_call(&li, MONITOR_CONTRACT, "set_timeout", payload)
                .unwrap();
            node.mine_block(1_000).unwrap();
            assert!(matches!(
                node.receipt(&id).unwrap().1,
                drams_chain::contract::TxStatus::Failed(_)
            ));
        }
    }

    #[test]
    fn retire_groups_prunes_closed_evidence_and_tombstones_the_group() {
        let (mut node, li, analyser) = test_node();
        for point in ObservationPoint::ALL {
            let d: &[u8] = if point.code() < 2 { b"req" } else { b"resp" };
            submit_entry(&mut node, &li, &entry(20, point, d, 100));
        }
        node.mine_block(1_000).unwrap();
        let entries_before = node
            .host()
            .storage_of(MONITOR_CONTRACT)
            .unwrap()
            .scan_prefix(b"ent/")
            .count();
        assert_eq!(entries_before, 4);

        // Only the analyser may retire.
        let id = node
            .submit_call(
                &li,
                MONITOR_CONTRACT,
                "retire_groups",
                MonitorContract::retire_groups_payload(&[CorrelationId(20)]),
            )
            .unwrap();
        node.mine_block(2_000).unwrap();
        assert!(matches!(
            node.receipt(&id).unwrap().1,
            drams_chain::contract::TxStatus::Failed(_)
        ));

        node.submit_call(
            &analyser,
            MONITOR_CONTRACT,
            "retire_groups",
            MonitorContract::retire_groups_payload(&[CorrelationId(20)]),
        )
        .unwrap();
        node.mine_block(3_000).unwrap();
        let storage = node.host().storage_of(MONITOR_CONTRACT).unwrap();
        assert_eq!(storage.scan_prefix(b"ent/").count(), 0, "evidence pruned");
        assert_eq!(storage.scan_prefix(b"grp/").count(), 1, "tombstone stays");

        // A late duplicate of retired evidence is ignored: no reopened
        // group, no MissingLog at the next sweep.
        submit_entry(
            &mut node,
            &li,
            &entry(20, ObservationPoint::PepRequest, b"req", 100),
        );
        node.submit_call(&li, MONITOR_CONTRACT, "advance_epoch", vec![])
            .unwrap();
        node.mine_block(60_000).unwrap();
        assert!(alert_events(&node).is_empty());
        let storage = node.host().storage_of(MONITOR_CONTRACT).unwrap();
        assert_eq!(storage.scan_prefix(b"ent/").count(), 0);
        assert_eq!(storage.scan_prefix(b"open/").count(), 0);
    }

    #[test]
    fn retire_groups_skips_open_and_unknown_groups() {
        let (mut node, li, analyser) = test_node();
        // An open group: one observation only.
        submit_entry(
            &mut node,
            &li,
            &entry(21, ObservationPoint::PepRequest, b"x", 100),
        );
        node.mine_block(1_000).unwrap();
        node.submit_call(
            &analyser,
            MONITOR_CONTRACT,
            "retire_groups",
            MonitorContract::retire_groups_payload(&[CorrelationId(21), CorrelationId(999)]),
        )
        .unwrap();
        node.mine_block(2_000).unwrap();
        let storage = node.host().storage_of(MONITOR_CONTRACT).unwrap();
        assert_eq!(
            storage.scan_prefix(b"ent/").count(),
            1,
            "open groups keep their evidence"
        );
        // The open group still times out into MissingLog alerts.
        node.submit_call(&li, MONITOR_CONTRACT, "advance_epoch", vec![])
            .unwrap();
        node.mine_block(60_000).unwrap();
        assert!(!alert_events(&node).is_empty());
    }

    #[test]
    fn double_init_fails() {
        let (mut node, li, analyser) = test_node();
        let id = node
            .submit_call(
                &li,
                MONITOR_CONTRACT,
                "init",
                MonitorContract::init_payload(5_000, analyser.public().fingerprint()),
            )
            .unwrap();
        node.mine_block(1_000).unwrap();
        assert!(matches!(
            node.receipt(&id).unwrap().1,
            drams_chain::contract::TxStatus::Failed(_)
        ));
    }

    #[test]
    fn parallel_batch_encoding_is_byte_identical() {
        // Both above and below the fan-out floor, at several worker
        // counts, the parallel encoder must reproduce the serial bytes.
        for n in [3usize, PAR_MIN_BATCH_ENTRIES, PAR_MIN_BATCH_ENTRIES * 3 + 1] {
            let entries: Vec<LogEntry> = (0..n)
                .map(|i| {
                    let point = ObservationPoint::ALL[i % 4];
                    entry(i as u64, point, &[i as u8, 1, 2], 100 + i as u64)
                })
                .collect();
            let expect = encode_batch(&entries);
            let saved = drams_faas::par::workers();
            for w in [1usize, 2, 4, 8] {
                drams_faas::par::set_workers(w);
                assert_eq!(encode_batch_par(&entries, 0), expect, "n={n} workers={w}");
            }
            drams_faas::par::set_workers(saved);
        }
    }
}
