//! Security alerts raised by the monitor contract and the Analyser.

use crate::logent::ObservationPoint;
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::CryptoError;
use drams_faas::des::SimTime;
use drams_faas::msg::CorrelationId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of attack signature was detected.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlertKind {
    /// Request digests differ between PEP and PDP (paper threat: "access
    /// requests … are modified").
    RequestTampering,
    /// Response digests differ between PDP and PEP.
    ResponseTampering,
    /// An observation never arrived before the epoch timeout (suppressed
    /// probe or dropped log).
    MissingLog {
        /// Which observation is missing.
        point: ObservationPoint,
    },
    /// The same observation was submitted twice with different content
    /// (replay or log rewrite attempt).
    ConflictingObservation {
        /// The observation point affected.
        point: ObservationPoint,
    },
    /// The Analyser recomputed a different decision than the PDP logged
    /// ("the policies and the evaluation process are altered").
    PolicyViolation,
    /// The PDP evaluated against a policy version other than the
    /// authorised one.
    WrongPolicyVersion,
    /// The PEP enforced something other than the logged decision.
    EnforcementMismatch,
    /// A log entry's probe MAC failed — the Logging Interface itself is
    /// compromised (paper §I: resilience "to attacks targeting … the
    /// monitoring components").
    MonitorCompromise,
}

impl AlertKind {
    /// Compact code for the canonical encoding.
    fn code(&self) -> u8 {
        match self {
            AlertKind::RequestTampering => 0,
            AlertKind::ResponseTampering => 1,
            AlertKind::MissingLog { .. } => 2,
            AlertKind::ConflictingObservation { .. } => 3,
            AlertKind::PolicyViolation => 4,
            AlertKind::WrongPolicyVersion => 5,
            AlertKind::EnforcementMismatch => 6,
            AlertKind::MonitorCompromise => 7,
        }
    }

    /// The contract/analyser event name for this alert.
    #[must_use]
    pub fn event_name(&self) -> &'static str {
        match self {
            AlertKind::RequestTampering => "alert.request_tampering",
            AlertKind::ResponseTampering => "alert.response_tampering",
            AlertKind::MissingLog { .. } => "alert.missing_log",
            AlertKind::ConflictingObservation { .. } => "alert.conflicting_observation",
            AlertKind::PolicyViolation => "alert.policy_violation",
            AlertKind::WrongPolicyVersion => "alert.wrong_policy_version",
            AlertKind::EnforcementMismatch => "alert.enforcement_mismatch",
            AlertKind::MonitorCompromise => "alert.monitor_compromise",
        }
    }
}

impl fmt::Display for AlertKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AlertKind::MissingLog { point } => write!(f, "missing-log({point})"),
            AlertKind::ConflictingObservation { point } => {
                write!(f, "conflicting-observation({point})")
            }
            other => f.write_str(match other {
                AlertKind::RequestTampering => "request-tampering",
                AlertKind::ResponseTampering => "response-tampering",
                AlertKind::PolicyViolation => "policy-violation",
                AlertKind::WrongPolicyVersion => "wrong-policy-version",
                AlertKind::EnforcementMismatch => "enforcement-mismatch",
                AlertKind::MonitorCompromise => "monitor-compromise",
                _ => unreachable!(),
            }),
        }
    }
}

/// A security alert.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// The detected signature.
    pub kind: AlertKind,
    /// The affected access transaction.
    pub correlation: CorrelationId,
    /// Virtual time at which the detector fired.
    pub detected_at: SimTime,
    /// Human-readable detail.
    pub detail: String,
}

impl Alert {
    /// Creates an alert.
    #[must_use]
    pub fn new(
        kind: AlertKind,
        correlation: CorrelationId,
        detected_at: SimTime,
        detail: impl Into<String>,
    ) -> Self {
        Alert {
            kind,
            correlation,
            detected_at,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Alert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at t={}µs: {}",
            self.kind, self.correlation, self.detected_at, self.detail
        )
    }
}

impl Encode for Alert {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.kind.code());
        match &self.kind {
            AlertKind::MissingLog { point } | AlertKind::ConflictingObservation { point } => {
                w.put_u8(point.code());
            }
            _ => {}
        }
        w.put_u64(self.correlation.0);
        w.put_u64(self.detected_at);
        w.put_str(&self.detail);
    }
}

impl Decode for Alert {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let code = r.get_u8()?;
        let kind = match code {
            0 => AlertKind::RequestTampering,
            1 => AlertKind::ResponseTampering,
            2 => AlertKind::MissingLog {
                point: ObservationPoint::from_code(r.get_u8()?)?,
            },
            3 => AlertKind::ConflictingObservation {
                point: ObservationPoint::from_code(r.get_u8()?)?,
            },
            4 => AlertKind::PolicyViolation,
            5 => AlertKind::WrongPolicyVersion,
            6 => AlertKind::EnforcementMismatch,
            7 => AlertKind::MonitorCompromise,
            other => return Err(CryptoError::Malformed(format!("alert kind {other}"))),
        };
        Ok(Alert {
            kind,
            correlation: CorrelationId(r.get_u64()?),
            detected_at: r.get_u64()?,
            detail: r.get_str()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<AlertKind> {
        vec![
            AlertKind::RequestTampering,
            AlertKind::ResponseTampering,
            AlertKind::MissingLog {
                point: ObservationPoint::PdpRequest,
            },
            AlertKind::ConflictingObservation {
                point: ObservationPoint::PepResponse,
            },
            AlertKind::PolicyViolation,
            AlertKind::WrongPolicyVersion,
            AlertKind::EnforcementMismatch,
            AlertKind::MonitorCompromise,
        ]
    }

    #[test]
    fn codec_round_trip_all_kinds() {
        for kind in all_kinds() {
            let alert = Alert::new(kind.clone(), CorrelationId(5), 100, "details");
            let bytes = alert.to_canonical_bytes();
            assert_eq!(
                Alert::from_canonical_bytes(&bytes).unwrap(),
                alert,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn event_names_are_distinct() {
        let names: std::collections::HashSet<&str> =
            all_kinds().iter().map(AlertKind::event_name).collect();
        assert_eq!(names.len(), all_kinds().len());
    }

    #[test]
    fn display_is_informative() {
        let alert = Alert::new(
            AlertKind::MissingLog {
                point: ObservationPoint::PepRequest,
            },
            CorrelationId(9),
            77,
            "probe silenced",
        );
        let s = alert.to_string();
        assert!(s.contains("missing-log"));
        assert!(s.contains("corr-9"));
        assert!(s.contains("probe silenced"));
    }

    #[test]
    fn decode_rejects_unknown_kind() {
        assert!(Alert::from_canonical_bytes(&[99]).is_err());
    }
}
