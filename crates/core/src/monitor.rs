//! End-to-end DRAMS simulation: configuration, report and ground truth.
//!
//! One run wires together: a workload generator issuing access requests
//! across the federation's tenants; PEPs intercepting and enforcing; the
//! PDP deciding in the infrastructure tenant; probes at all four
//! observation points; per-tenant Logging Interfaces batching entries onto
//! the private chain; the monitor contract matching logs; epoch sweeps;
//! and the Analyser re-evaluating every completed group. An
//! [`Adversary`] may tamper at any
//! interception point, and the run returns both the monitor's alerts and
//! the exact ground truth, so experiments can score detection precisely.
//!
//! The simulation itself lives in [`crate::scenario`]: an event-driven
//! runtime of [`drams_faas::des::SimService`]s. [`run_monitor`] is the
//! compatibility entry point — it runs the *canonical scenario*, which
//! reproduces the classic fixed-topology single-PDP deployment exactly.
//! Richer deployments (multi-PDP federations, phased load, policy churn,
//! tenant join/leave, fault windows) are declared as
//! [`crate::scenario::ScenarioSpec`]s and run through
//! [`crate::scenario::run_scenario`].
//!
//! **Modelling note.** Inside virtual time the chain runs at difficulty 0
//! with a configurable block cadence: wall-clock hashing cannot meaningfully
//! mix with virtual time. The real hashing cost of PoW as a function of
//! difficulty and payload size is measured separately (experiments E1/E2 on
//! the chain crate itself).

use crate::adversary::Adversary;
use crate::alert::Alert;
use crate::logent::ObservationPoint;
use crate::scenario::{run_scenario, ScenarioSpec};
use drams_faas::des::{LatencyStats, SimTime, MILLIS, SECONDS};
use drams_faas::model::FederationSpec;
use drams_faas::msg::CorrelationId;
use drams_faas::pep::EnforcementBias;
use drams_policy::policy::PolicySet;

/// Configuration of one monitor simulation run.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Federation topology.
    pub federation: FederationSpec,
    /// The authorised policy.
    pub policy: PolicySet,
    /// PEP enforcement bias.
    pub bias: EnforcementBias,
    /// Request arrival rate (federation-wide, Poisson).
    pub request_rate_per_sec: f64,
    /// Stop issuing after this many requests.
    pub total_requests: u64,
    /// Hard virtual-time stop.
    pub horizon: SimTime,
    /// Virtual time between blocks on the private chain.
    pub block_interval: SimTime,
    /// Submit an `advance_epoch` every this many blocks.
    pub epoch_blocks: u64,
    /// Group timeout enforced by the contract.
    pub group_timeout: SimTime,
    /// Entries per Logging Interface transaction.
    pub li_batch_size: usize,
    /// Interval at which LIs flush partial batches.
    pub li_flush_interval: SimTime,
    /// Interval at which the Analyser polls the chain.
    pub analyser_poll_interval: SimTime,
    /// Master switch: with `false`, no probes, no chain traffic (the E6
    /// baseline).
    pub monitoring_enabled: bool,
    /// Whether the Analyser runs (contract checks alone otherwise).
    pub analyser_enabled: bool,
    /// Master RNG seed; runs are deterministic per seed. Each simulation
    /// component draws from its own named stream derived from this seed
    /// (see [`crate::scenario::stream_rng`]).
    pub seed: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            federation: FederationSpec::symmetric(2, 2, 2),
            policy: default_policy(),
            bias: EnforcementBias::DenyBiased,
            request_rate_per_sec: 50.0,
            total_requests: 200,
            horizon: 600 * SECONDS,
            block_interval: 500 * MILLIS,
            epoch_blocks: 2,
            group_timeout: 2 * SECONDS,
            li_batch_size: 8,
            li_flush_interval: 100 * MILLIS,
            analyser_poll_interval: 250 * MILLIS,
            monitoring_enabled: true,
            analyser_enabled: true,
            seed: 7,
        }
    }
}

/// A policy over the default workload vocabulary: doctors and nurses may
/// read records during the day; everything else is denied.
#[must_use]
pub fn default_policy() -> PolicySet {
    use drams_policy::attr::{AttributeId, Category};
    use drams_policy::combining::CombiningAlg;
    use drams_policy::decision::Effect;
    use drams_policy::expr::{Expr, Func};
    use drams_policy::policy::Policy;
    use drams_policy::rule::Rule;
    use drams_policy::target::Target;

    let role = |v: &str| {
        Expr::equal(
            Expr::attr(AttributeId::new(Category::Subject, "role")),
            Expr::lit(v),
        )
    };
    PolicySet::builder("federation-root", CombiningAlg::DenyUnlessPermit)
        .policy(
            Policy::builder("clinical-access", CombiningAlg::PermitOverrides)
                .rule(
                    Rule::builder("doctors-any-action", Effect::Permit)
                        .target(Target::expr(role("doctor")))
                        .build(),
                )
                .rule(
                    Rule::builder("nurses-read-daytime", Effect::Permit)
                        .target(Target::expr(role("nurse")))
                        .condition(Expr::and(vec![
                            Expr::equal(
                                Expr::attr(AttributeId::new(Category::Action, "id")),
                                Expr::lit("read"),
                            ),
                            Expr::Apply(
                                Func::Less,
                                vec![
                                    Expr::attr(AttributeId::new(Category::Environment, "hour")),
                                    Expr::lit(20i64),
                                ],
                            ),
                        ]))
                        .build(),
                )
                .build(),
        )
        .build()
}

/// Ground truth of what the adversary actually did during a run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GroundTruth {
    /// Requests tampered on the PEP→PDP wire.
    pub tampered_requests: Vec<CorrelationId>,
    /// Responses tampered on the PDP→PEP wire.
    pub tampered_responses: Vec<CorrelationId>,
    /// Decisions corrupted inside the PDP.
    pub corrupted_decisions: Vec<CorrelationId>,
    /// Enforcements flipped at the PEP.
    pub flipped_enforcements: Vec<CorrelationId>,
    /// Log entries suppressed before reaching an LI.
    pub dropped_logs: Vec<(CorrelationId, ObservationPoint)>,
    /// Log entries altered inside a compromised LI.
    pub tampered_logs: Vec<(CorrelationId, ObservationPoint)>,
    /// Log entries whose evidence was replaced with evidence replayed
    /// from an earlier (possibly cross-tenant) entry.
    pub replayed_logs: Vec<(CorrelationId, ObservationPoint)>,
    /// Committed-log transactions a Byzantine chain node withheld from
    /// its mempool; each suppressed entry is listed.
    pub withheld_logs: Vec<(CorrelationId, ObservationPoint)>,
    /// Whether the PDP ran a swapped policy.
    pub policy_swapped: bool,
    /// Hostile chain forks mounted (re-mining a suffix of the chain).
    pub chain_forks: u64,
    /// Equivocations mounted (two sibling blocks at the same height).
    pub equivocations: u64,
    /// Blocks injected carrying an invalid transaction signature.
    pub invalid_sig_blocks: u64,
}

impl GroundTruth {
    /// Total number of injected attack actions.
    #[must_use]
    pub fn total_attacks(&self) -> usize {
        self.tampered_requests.len()
            + self.tampered_responses.len()
            + self.corrupted_decisions.len()
            + self.flipped_enforcements.len()
            + self.dropped_logs.len()
            + self.tampered_logs.len()
            + self.replayed_logs.len()
            + self.withheld_logs.len()
            + self.chain_forks as usize
            + self.equivocations as usize
            + self.invalid_sig_blocks as usize
    }
}

/// Everything a run measured.
#[derive(Debug, Default)]
pub struct MonitorReport {
    /// Requests issued by the workload.
    pub requests_issued: u64,
    /// Requests whose response reached enforcement.
    pub requests_completed: u64,
    /// Requests the PEP abandoned after its retry deadline budget ran
    /// out (the PDP stayed unreachable through every backoff attempt);
    /// always 0 in the canonical scenario.
    pub requests_dropped: u64,
    /// Accesses actually granted / refused.
    pub granted: u64,
    /// See [`MonitorReport::granted`].
    pub refused: u64,
    /// Subject-to-enforcement latency.
    pub e2e_latency: LatencyStats,
    /// Observation-to-commit latency per log entry.
    pub log_commit_latency: LatencyStats,
    /// Alert-on-chain latency: request issue → alert committed.
    pub detection_latency: LatencyStats,
    /// All alerts committed on-chain, in commit order.
    pub alerts: Vec<Alert>,
    /// Blocks mined.
    pub blocks_mined: u64,
    /// Transactions committed.
    pub txs_committed: u64,
    /// Largest mempool backlog observed.
    pub max_mempool: usize,
    /// Log-entry groups the contract saw to completion.
    pub groups_completed: u64,
    /// Log entries committed on-chain.
    pub entries_logged: u64,
    /// Policy versions activated over the run (1 = no churn).
    pub policy_activations: u64,
    /// Scripted crash-restarts executed (E11 recovery scenarios); 0 in
    /// the canonical scenario.
    pub crash_restarts: u64,
    /// PEP→PDP resends after an attempt timeout (capped exponential
    /// backoff); 0 on a perfect network.
    pub retries_total: u64,
    /// Requests that completed through a non-home PDP slot after the
    /// home slot's circuit breaker opened.
    pub failovers: u64,
    /// Circuit-breaker Closed→Open transitions across all PEP views.
    pub breaker_trips: u64,
    /// Entries an LI spilled to its WAL while the chain was unreachable.
    pub li_spilled: u64,
    /// Spilled entries replayed to the chain after the partition healed.
    pub li_replayed: u64,
    /// Degraded-mode epoch-timeout changes committed on-chain (widen +
    /// restore transactions).
    pub timeout_retunes: u64,
    /// End-to-end latency of requests that completed on a failover slot.
    pub failover_e2e: LatencyStats,
    /// Per-LI partition recovery time: heal → spill fully replayed.
    pub spill_recovery: LatencyStats,
    /// What the network fault plane did to traffic (all zero on a
    /// perfect network).
    pub faults: drams_faas::fault::FaultStats,
    /// Requests refused at the PEP admission gate because the in-flight
    /// window was full (overload shedding); 0 without a load profile.
    pub requests_shed: u64,
    /// Requests admitted past the soft watermark (the degraded band
    /// between 3/4 of the in-flight cap and the cap itself).
    pub degraded_admissions: u64,
    /// Decision-idempotency entries aged out of the PDP retransmission
    /// cache after their retention window closed.
    pub idempotency_evictions: u64,
    /// Entries the PDP engine's bounded decision cache evicted (LRU).
    pub decision_cache_evictions: u64,
    /// Completed decision groups the Analyser retired (evidence pruned
    /// from contract storage after the replay window).
    pub groups_retired: u64,
    /// Superseded authorised-policy versions the Analyser dropped past
    /// the history-retention horizon.
    pub policy_history_retired: u64,
    /// Chain write-ahead-journal compactions (snapshot + prune) run.
    pub journal_compactions: u64,
    /// High-water marks of every bounded state pool (capacity planning
    /// and the E14 regression gate).
    pub peak: PeakState,
    /// Virtual time at which the run ended.
    pub finished_at: SimTime,
}

/// Peak tracked-state sizes per component over one run: the quantities
/// that must stay bounded under overload for the monitor to be
/// long-running. Each is a max over the run, sampled at the points the
/// pool grows.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PeakState {
    /// In-flight (unanswered, unabandoned) PEP requests.
    pub pep_inflight: u64,
    /// As-sent responses held for idempotent retransmission answers
    /// across all PDP slots.
    pub pdp_idempotency: u64,
    /// Entries in the PDP engines' decision caches (max over slots).
    pub pdp_decision_cache: u64,
    /// Log entries resident in LI memory (max over LIs; WAL spill not
    /// counted — that is the bounded-memory escape hatch).
    pub li_resident: u64,
    /// Decision groups queued for retirement in the Analyser's window.
    pub analyser_pending_retire: u64,
    /// Keys in the monitor contract's storage.
    pub contract_storage: u64,
    /// Unconsumed records in the chain node's write-ahead journal.
    pub chain_journal_records: u64,
    /// Authorised-policy versions in the Analyser's verification
    /// history (bounded by the retention horizon under policy churn).
    pub policy_history: u64,
}

impl MonitorReport {
    /// Alerts of a given kind.
    #[must_use]
    pub fn alerts_of(&self, pred: impl Fn(&Alert) -> bool) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| pred(a)).collect()
    }
}

/// Runs one full simulation of the classic fixed-topology deployment —
/// the canonical scenario of the event-driven runtime (see
/// [`crate::scenario`]).
///
/// # Panics
///
/// Panics on internal invariant violations (the chain rejecting its own
/// miner's block), which indicate bugs rather than recoverable errors.
pub fn run_monitor<A: Adversary>(
    config: &MonitorConfig,
    adversary: &mut A,
) -> (MonitorReport, GroundTruth) {
    run_scenario(&ScenarioSpec::canonical(config), adversary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoAdversary;

    fn small_config() -> MonitorConfig {
        MonitorConfig {
            total_requests: 40,
            request_rate_per_sec: 100.0,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn honest_run_completes_cleanly() {
        let (report, truth) = run_monitor(&small_config(), &mut NoAdversary);
        assert_eq!(report.requests_issued, 40);
        assert_eq!(report.requests_completed, 40);
        assert_eq!(truth.total_attacks(), 0);
        // no attacks ⇒ no alerts
        assert!(report.alerts.is_empty(), "alerts: {:?}", report.alerts);
        // every request produced 4 observations, all committed
        assert_eq!(report.entries_logged, 160);
        assert_eq!(report.groups_completed, 40);
        assert!(report.blocks_mined > 0);
        assert!(report.e2e_latency.len() == 40);
        assert!(report.log_commit_latency.mean() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let (a, _) = run_monitor(&small_config(), &mut NoAdversary);
        let (b, _) = run_monitor(&small_config(), &mut NoAdversary);
        assert_eq!(a.requests_completed, b.requests_completed);
        assert_eq!(a.entries_logged, b.entries_logged);
        assert_eq!(a.blocks_mined, b.blocks_mined);
        assert_eq!(a.e2e_latency.mean(), b.e2e_latency.mean());
    }

    #[test]
    fn monitoring_off_still_serves_requests() {
        let config = MonitorConfig {
            monitoring_enabled: false,
            analyser_enabled: false,
            ..small_config()
        };
        let (report, _) = run_monitor(&config, &mut NoAdversary);
        assert_eq!(report.requests_completed, 40);
        assert_eq!(report.entries_logged, 0);
        assert_eq!(report.blocks_mined, 0);
        assert!(report.alerts.is_empty());
    }

    #[test]
    fn deny_biased_policy_splits_grants() {
        let (report, _) = run_monitor(&small_config(), &mut NoAdversary);
        // The default policy permits doctors and daytime nurse reads; the
        // Zipf workload guarantees both outcomes occur.
        assert!(report.granted > 0);
        assert!(report.refused > 0);
        assert_eq!(report.granted + report.refused, 40);
    }

    #[test]
    fn batching_reduces_tx_count() {
        let mut unbatched = small_config();
        unbatched.li_batch_size = 1;
        let mut batched = small_config();
        batched.li_batch_size = 16;
        let (r1, _) = run_monitor(&unbatched, &mut NoAdversary);
        let (r16, _) = run_monitor(&batched, &mut NoAdversary);
        assert_eq!(r1.entries_logged, r16.entries_logged);
        assert!(
            r16.txs_committed < r1.txs_committed,
            "batched {} vs unbatched {}",
            r16.txs_committed,
            r1.txs_committed
        );
    }

    #[test]
    fn larger_block_interval_raises_commit_latency() {
        let mut fast = small_config();
        fast.block_interval = 100 * MILLIS;
        let mut slow = small_config();
        slow.block_interval = 2 * SECONDS;
        slow.group_timeout = 8 * SECONDS;
        let (rf, _) = run_monitor(&fast, &mut NoAdversary);
        let (rs, _) = run_monitor(&slow, &mut NoAdversary);
        assert!(
            rs.log_commit_latency.mean() > rf.log_commit_latency.mean(),
            "slow {} vs fast {}",
            rs.log_commit_latency.mean(),
            rf.log_commit_latency.mean()
        );
    }
}
