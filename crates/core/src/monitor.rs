//! End-to-end DRAMS simulation: the full Figure-1 deployment in virtual
//! time.
//!
//! One run wires together: a workload generator issuing access requests
//! across the federation's tenants; PEPs intercepting and enforcing; the
//! PDP deciding in the infrastructure tenant; probes at all four
//! observation points; per-tenant Logging Interfaces batching entries onto
//! the private chain; the monitor contract matching logs; epoch sweeps;
//! and the Analyser re-evaluating every completed group. An
//! [`Adversary`] may tamper at any
//! interception point, and the run returns both the monitor's alerts and
//! the exact ground truth, so experiments can score detection precisely.
//!
//! **Modelling note.** Inside virtual time the chain runs at difficulty 0
//! with a configurable block cadence: wall-clock hashing cannot meaningfully
//! mix with virtual time. The real hashing cost of PoW as a function of
//! difficulty and payload size is measured separately (experiments E1/E2 on
//! the chain crate itself).

use crate::adversary::Adversary;
use crate::alert::Alert;
use crate::analyser::Analyser;
use crate::contract::{MonitorContract, GROUP_COMPLETE_EVENT, MONITOR_CONTRACT};
use crate::li::LoggingInterface;
use crate::logent::{LogEntry, ObservationPoint, ProbeId};
use crate::probe::Probe;
use drams_chain::chain::ChainConfig;
use drams_chain::node::Node;
use drams_chain::tx::TxId;
use drams_crypto::aead::SymmetricKey;
use drams_crypto::codec::Decode;
use drams_crypto::schnorr::Keypair;
use drams_faas::des::{EventQueue, LatencyStats, SimTime, MILLIS, SECONDS};
use drams_faas::model::FederationSpec;
use drams_faas::msg::{CorrelationId, RequestEnvelope, ResponseEnvelope};
use drams_faas::pep::{EnforcementBias, Pep};
use drams_faas::prp::Prp;
use drams_faas::workload::{PoissonArrivals, RequestGenerator, Vocabulary};
use drams_policy::policy::PolicySet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap};

/// Configuration of one monitor simulation run.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Federation topology.
    pub federation: FederationSpec,
    /// The authorised policy.
    pub policy: PolicySet,
    /// PEP enforcement bias.
    pub bias: EnforcementBias,
    /// Request arrival rate (federation-wide, Poisson).
    pub request_rate_per_sec: f64,
    /// Stop issuing after this many requests.
    pub total_requests: u64,
    /// Hard virtual-time stop.
    pub horizon: SimTime,
    /// Virtual time between blocks on the private chain.
    pub block_interval: SimTime,
    /// Submit an `advance_epoch` every this many blocks.
    pub epoch_blocks: u64,
    /// Group timeout enforced by the contract.
    pub group_timeout: SimTime,
    /// Entries per Logging Interface transaction.
    pub li_batch_size: usize,
    /// Interval at which LIs flush partial batches.
    pub li_flush_interval: SimTime,
    /// Interval at which the Analyser polls the chain.
    pub analyser_poll_interval: SimTime,
    /// Master switch: with `false`, no probes, no chain traffic (the E6
    /// baseline).
    pub monitoring_enabled: bool,
    /// Whether the Analyser runs (contract checks alone otherwise).
    pub analyser_enabled: bool,
    /// RNG seed; runs are deterministic per seed.
    pub seed: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            federation: FederationSpec::symmetric(2, 2, 2),
            policy: default_policy(),
            bias: EnforcementBias::DenyBiased,
            request_rate_per_sec: 50.0,
            total_requests: 200,
            horizon: 600 * SECONDS,
            block_interval: 500 * MILLIS,
            epoch_blocks: 2,
            group_timeout: 2 * SECONDS,
            li_batch_size: 8,
            li_flush_interval: 100 * MILLIS,
            analyser_poll_interval: 250 * MILLIS,
            monitoring_enabled: true,
            analyser_enabled: true,
            seed: 7,
        }
    }
}

/// A policy over the default workload vocabulary: doctors and nurses may
/// read records during the day; everything else is denied.
#[must_use]
pub fn default_policy() -> PolicySet {
    use drams_policy::attr::{AttributeId, Category};
    use drams_policy::combining::CombiningAlg;
    use drams_policy::decision::Effect;
    use drams_policy::expr::{Expr, Func};
    use drams_policy::policy::Policy;
    use drams_policy::rule::Rule;
    use drams_policy::target::Target;

    let role = |v: &str| {
        Expr::equal(
            Expr::attr(AttributeId::new(Category::Subject, "role")),
            Expr::lit(v),
        )
    };
    PolicySet::builder("federation-root", CombiningAlg::DenyUnlessPermit)
        .policy(
            Policy::builder("clinical-access", CombiningAlg::PermitOverrides)
                .rule(
                    Rule::builder("doctors-any-action", Effect::Permit)
                        .target(Target::expr(role("doctor")))
                        .build(),
                )
                .rule(
                    Rule::builder("nurses-read-daytime", Effect::Permit)
                        .target(Target::expr(role("nurse")))
                        .condition(Expr::and(vec![
                            Expr::equal(
                                Expr::attr(AttributeId::new(Category::Action, "id")),
                                Expr::lit("read"),
                            ),
                            Expr::Apply(
                                Func::Less,
                                vec![
                                    Expr::attr(AttributeId::new(Category::Environment, "hour")),
                                    Expr::lit(20i64),
                                ],
                            ),
                        ]))
                        .build(),
                )
                .build(),
        )
        .build()
}

/// Ground truth of what the adversary actually did during a run.
#[derive(Debug, Default, Clone)]
pub struct GroundTruth {
    /// Requests tampered on the PEP→PDP wire.
    pub tampered_requests: Vec<CorrelationId>,
    /// Responses tampered on the PDP→PEP wire.
    pub tampered_responses: Vec<CorrelationId>,
    /// Decisions corrupted inside the PDP.
    pub corrupted_decisions: Vec<CorrelationId>,
    /// Enforcements flipped at the PEP.
    pub flipped_enforcements: Vec<CorrelationId>,
    /// Log entries suppressed before reaching an LI.
    pub dropped_logs: Vec<(CorrelationId, ObservationPoint)>,
    /// Log entries altered inside a compromised LI.
    pub tampered_logs: Vec<(CorrelationId, ObservationPoint)>,
    /// Whether the PDP ran a swapped policy.
    pub policy_swapped: bool,
}

impl GroundTruth {
    /// Total number of injected attack actions.
    #[must_use]
    pub fn total_attacks(&self) -> usize {
        self.tampered_requests.len()
            + self.tampered_responses.len()
            + self.corrupted_decisions.len()
            + self.flipped_enforcements.len()
            + self.dropped_logs.len()
            + self.tampered_logs.len()
    }
}

/// Everything a run measured.
#[derive(Debug, Default)]
pub struct MonitorReport {
    /// Requests issued by the workload.
    pub requests_issued: u64,
    /// Requests whose response reached enforcement.
    pub requests_completed: u64,
    /// Accesses actually granted / refused.
    pub granted: u64,
    /// See [`MonitorReport::granted`].
    pub refused: u64,
    /// Subject-to-enforcement latency.
    pub e2e_latency: LatencyStats,
    /// Observation-to-commit latency per log entry.
    pub log_commit_latency: LatencyStats,
    /// Alert-on-chain latency: request issue → alert committed.
    pub detection_latency: LatencyStats,
    /// All alerts committed on-chain, in commit order.
    pub alerts: Vec<Alert>,
    /// Blocks mined.
    pub blocks_mined: u64,
    /// Transactions committed.
    pub txs_committed: u64,
    /// Largest mempool backlog observed.
    pub max_mempool: usize,
    /// Log-entry groups the contract saw to completion.
    pub groups_completed: u64,
    /// Log entries committed on-chain.
    pub entries_logged: u64,
    /// Virtual time at which the run ended.
    pub finished_at: SimTime,
}

impl MonitorReport {
    /// Alerts of a given kind.
    #[must_use]
    pub fn alerts_of(&self, pred: impl Fn(&Alert) -> bool) -> Vec<&Alert> {
        self.alerts.iter().filter(|a| pred(a)).collect()
    }
}

enum Ev {
    Arrival,
    PdpReceive(RequestEnvelope),
    PepReceive(ResponseEnvelope),
    LiDeliver { li: usize, entry: LogEntry },
    LiFlushTick { li: usize },
    MineTick,
    AnalyserTick,
}

/// Runs one full simulation.
///
/// # Panics
///
/// Panics on internal invariant violations (the chain rejecting its own
/// miner's block), which indicate bugs rather than recoverable errors.
pub fn run_monitor<A: Adversary>(
    config: &MonitorConfig,
    adversary: &mut A,
) -> (MonitorReport, GroundTruth) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queue: EventQueue<Ev> = EventQueue::new();
    let mut report = MonitorReport::default();
    let mut truth = GroundTruth::default();

    // --- access control plane -------------------------------------------
    let tenant_count = config.federation.tenant_count().max(1);
    let mut peps: Vec<Pep> = config
        .federation
        .tenants
        .iter()
        .map(|t| Pep::new(t.pep, t.id, config.bias))
        .collect();
    let authorised = config.policy.clone();
    let active_policy = match adversary.swap_policy(&authorised) {
        Some(swapped) => {
            truth.policy_swapped = true;
            swapped
        }
        None => authorised.clone(),
    };
    // The PRP stores (and pre-compiles) the policy the PDP actually
    // serves — deliberately the *active* policy, not the authorised one:
    // the paper's swap-policy threat is an unauthorised substitution at
    // the PRP, and the Analyser detects it from its own independent
    // authorised copy. Building the PDP from the active version's
    // prepared form means the decision path runs the compiled engine
    // with its decision cache from the start.
    let prp = Prp::new(active_policy);
    let pdp = prp.active().pdp();

    // --- monitoring plane -------------------------------------------------
    let key = SymmetricKey::from_bytes([42; 32]);
    let mut probe_mac_keys: BTreeMap<ProbeId, [u8; 32]> = BTreeMap::new();
    let mut pep_probes: Vec<Probe> = (0..tenant_count)
        .map(|i| {
            let id = ProbeId(i as u32 + 1);
            let mac = mac_key_for(id);
            probe_mac_keys.insert(id, mac);
            Probe::new(id, key.clone(), mac)
        })
        .collect();
    let pdp_probe_id = ProbeId(0);
    let pdp_mac = mac_key_for(pdp_probe_id);
    probe_mac_keys.insert(pdp_probe_id, pdp_mac);
    let mut pdp_probe = Probe::new(pdp_probe_id, key.clone(), pdp_mac);

    // One LI per member tenant + one in the infrastructure tenant.
    let li_count = tenant_count + 1;
    let infra_li = tenant_count;
    let mut lis: Vec<LoggingInterface> = (0..li_count)
        .map(|i| {
            LoggingInterface::new(
                format!("li-{i}"),
                key.clone(),
                Keypair::from_seed(format!("li-{i}").as_bytes()),
                config.li_batch_size,
            )
        })
        .collect();
    // Pending observation timestamps per LI, mapped to tx ids at submit.
    let mut li_pending: Vec<Vec<SimTime>> = vec![Vec::new(); li_count];
    let mut tx_entry_times: HashMap<TxId, Vec<SimTime>> = HashMap::new();

    // --- chain -------------------------------------------------------------
    let admin = Keypair::from_seed(b"drams-admin");
    let analyser_kp = Keypair::from_seed(b"drams-analyser");
    let mut node = Node::new(ChainConfig {
        initial_difficulty_bits: 0,
        retarget_interval: 0,
        max_block_txs: 4096,
        ..ChainConfig::default()
    });
    node.register_contract(Box::new(MonitorContract));
    if config.monitoring_enabled {
        node.submit_call(
            &admin,
            MONITOR_CONTRACT,
            "init",
            MonitorContract::init_payload(config.group_timeout, analyser_kp.public().fingerprint()),
        )
        .expect("init submission");
        node.mine_block(0).expect("genesis follow-up");
    }
    let mut event_cursor = node.events().len();
    let mut analyser = Analyser::new(authorised, key.clone(), analyser_kp, probe_mac_keys);

    // --- workload ----------------------------------------------------------
    let arrivals = PoissonArrivals::with_rate_per_sec(config.request_rate_per_sec);
    let mut generator = RequestGenerator::new(Vocabulary::default(), 1.1, config.seed ^ 0x9e37);
    let mut issued_at_by_corr: HashMap<CorrelationId, SimTime> = HashMap::new();
    let mut drain_until: Option<SimTime> = None;

    // --- initial events ------------------------------------------------------
    queue.schedule(arrivals.next_gap(&mut rng), Ev::Arrival);
    if config.monitoring_enabled {
        queue.schedule(config.block_interval, Ev::MineTick);
        for li in 0..li_count {
            queue.schedule(config.li_flush_interval, Ev::LiFlushTick { li });
        }
        if config.analyser_enabled {
            queue.schedule(config.analyser_poll_interval, Ev::AnalyserTick);
        }
    }

    // --- main loop -----------------------------------------------------------
    while let Some((now, ev)) = queue.pop() {
        if now > config.horizon {
            break;
        }
        if let Some(deadline) = drain_until {
            if now > deadline {
                break;
            }
        }
        match ev {
            Ev::Arrival => {
                if report.requests_issued >= config.total_requests {
                    // workload exhausted; nothing to reschedule
                } else {
                    report.requests_issued += 1;
                    let tenant_idx = rng.gen_range(0..tenant_count);
                    let tenant = &config.federation.tenants[tenant_idx];
                    let service =
                        tenant.services[rng.gen_range(0..tenant.services.len().max(1))].clone();
                    let request = generator.next_request();
                    let mut env = peps[tenant_idx].intercept(service, request, now);
                    issued_at_by_corr.insert(env.correlation, now);

                    if config.monitoring_enabled {
                        let entry = pep_probes[tenant_idx].observe_request(
                            ObservationPoint::PepRequest,
                            &env,
                            now,
                        );
                        deliver_to_li(
                            &mut queue,
                            &config.federation,
                            &mut rng,
                            adversary,
                            &mut truth,
                            tenant_idx,
                            entry,
                            now,
                        );
                    }
                    if adversary.tamper_request_in_transit(&mut env, now) {
                        truth.tampered_requests.push(env.correlation);
                    }
                    let latency = config.federation.tenant_to_infra.sample(&mut rng);
                    queue.schedule(latency, Ev::PdpReceive(env));

                    if report.requests_issued < config.total_requests {
                        queue.schedule(arrivals.next_gap(&mut rng), Ev::Arrival);
                    } else {
                        drain_until = Some(
                            now + config.group_timeout
                                + 6 * config.block_interval
                                + 4 * config.analyser_poll_interval
                                + SECONDS,
                        );
                    }
                }
            }
            Ev::PdpReceive(env) => {
                if config.monitoring_enabled {
                    let entry = pdp_probe.observe_request(ObservationPoint::PdpRequest, &env, now);
                    deliver_to_li_infra(
                        &mut queue,
                        &config.federation,
                        &mut rng,
                        adversary,
                        &mut truth,
                        infra_li,
                        entry,
                        now,
                    );
                }
                let response = pdp.evaluate(&env.request);
                let mut resp_env = ResponseEnvelope {
                    correlation: env.correlation,
                    pep: env.pep,
                    response,
                    policy_version: pdp.policy_version(),
                    decided_at: now,
                };
                if adversary.corrupt_pdp_decision(&mut resp_env, now) {
                    truth.corrupted_decisions.push(resp_env.correlation);
                }
                if config.monitoring_enabled {
                    let entry = pdp_probe.observe_pdp_response(&resp_env, now);
                    deliver_to_li_infra(
                        &mut queue,
                        &config.federation,
                        &mut rng,
                        adversary,
                        &mut truth,
                        infra_li,
                        entry,
                        now,
                    );
                }
                if adversary.tamper_response_in_transit(&mut resp_env, now) {
                    truth.tampered_responses.push(resp_env.correlation);
                }
                let latency = config.federation.tenant_to_infra.sample(&mut rng);
                queue.schedule(latency, Ev::PepReceive(resp_env));
            }
            Ev::PepReceive(env) => {
                let Some(tenant_idx) = peps.iter().position(|p| p.id() == env.pep) else {
                    continue;
                };
                let Some(enforcement) = peps[tenant_idx].enforce(&env) else {
                    continue;
                };
                let mut granted = enforcement.granted;
                if adversary.flip_enforcement(&mut granted, now) {
                    truth.flipped_enforcements.push(env.correlation);
                }
                report.requests_completed += 1;
                if granted {
                    report.granted += 1;
                } else {
                    report.refused += 1;
                }
                if let Some(issued) = issued_at_by_corr.get(&env.correlation) {
                    report.e2e_latency.record(now - issued);
                }
                if config.monitoring_enabled {
                    let entry = pep_probes[tenant_idx].observe_pep_response(&env, granted, now);
                    deliver_to_li(
                        &mut queue,
                        &config.federation,
                        &mut rng,
                        adversary,
                        &mut truth,
                        tenant_idx,
                        entry,
                        now,
                    );
                }
            }
            Ev::LiDeliver { li, entry } => {
                li_pending[li].push(entry.observed_at);
                let ids = lis[li].store(entry, &mut node).expect("li submission");
                assign_tx_times(&mut li_pending[li], &ids, &mut tx_entry_times);
                report.max_mempool = report.max_mempool.max(node.mempool_len());
            }
            Ev::LiFlushTick { li } => {
                let ids = lis[li].flush(&mut node).expect("li flush");
                assign_tx_times(&mut li_pending[li], &ids, &mut tx_entry_times);
                report.max_mempool = report.max_mempool.max(node.mempool_len());
                if should_tick(&drain_until, now) {
                    queue.schedule(config.li_flush_interval, Ev::LiFlushTick { li });
                }
            }
            Ev::MineTick => {
                let next_height = node.chain().tip_header().height + 1;
                if config.epoch_blocks > 0 && next_height % config.epoch_blocks == 0 {
                    node.submit_call(&admin, MONITOR_CONTRACT, "advance_epoch", vec![])
                        .expect("epoch submission");
                }
                report.max_mempool = report.max_mempool.max(node.mempool_len());
                let block = node.mine_block(now).expect("mining");
                report.blocks_mined += 1;
                report.txs_committed += block.transactions.len() as u64;
                for tx in &block.transactions {
                    if let Some(times) = tx_entry_times.remove(&tx.id()) {
                        for t in times {
                            report.log_commit_latency.record(now.saturating_sub(t));
                            report.entries_logged += 1;
                        }
                    }
                }
                // Harvest newly committed contract events.
                let (events, cursor) = node.events_since(event_cursor);
                let new_alerts: Vec<Alert> = events
                    .iter()
                    .filter(|e| e.name.starts_with("alert."))
                    .filter_map(|e| Alert::from_canonical_bytes(&e.data).ok())
                    .collect();
                report.groups_completed += events
                    .iter()
                    .filter(|e| e.name == GROUP_COMPLETE_EVENT)
                    .count() as u64;
                event_cursor = cursor;
                for mut alert in new_alerts {
                    if let Some(issued) = issued_at_by_corr.get(&alert.correlation) {
                        report.detection_latency.record(now.saturating_sub(*issued));
                    }
                    // Detection time on the wall: when the block carrying
                    // the alert was committed.
                    alert.detected_at = now;
                    report.alerts.push(alert);
                }
                if should_tick(&drain_until, now) {
                    queue.schedule(config.block_interval, Ev::MineTick);
                }
            }
            Ev::AnalyserTick => {
                let _ = analyser.poll(&mut node, now);
                if should_tick(&drain_until, now) {
                    queue.schedule(config.analyser_poll_interval, Ev::AnalyserTick);
                }
            }
        }
        report.finished_at = now;
    }

    (report, truth)
}

fn should_tick(drain_until: &Option<SimTime>, now: SimTime) -> bool {
    match drain_until {
        None => true,
        Some(deadline) => now <= *deadline,
    }
}

fn mac_key_for(id: ProbeId) -> [u8; 32] {
    *drams_crypto::sha256::Digest::of_parts(&[b"probe-mac", &id.0.to_be_bytes()]).as_bytes()
}

#[allow(clippy::too_many_arguments)]
fn deliver_to_li<A: Adversary>(
    queue: &mut EventQueue<Ev>,
    federation: &FederationSpec,
    rng: &mut StdRng,
    adversary: &mut A,
    truth: &mut GroundTruth,
    tenant_idx: usize,
    mut entry: LogEntry,
    now: SimTime,
) {
    if adversary.drop_log(&entry, now) {
        truth.dropped_logs.push((entry.correlation, entry.point));
        return;
    }
    if adversary.tamper_log(&mut entry, now) {
        truth.tampered_logs.push((entry.correlation, entry.point));
    }
    let latency = federation.to_logging_interface.sample(rng);
    queue.schedule(
        latency,
        Ev::LiDeliver {
            li: tenant_idx,
            entry,
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn deliver_to_li_infra<A: Adversary>(
    queue: &mut EventQueue<Ev>,
    federation: &FederationSpec,
    rng: &mut StdRng,
    adversary: &mut A,
    truth: &mut GroundTruth,
    infra_li: usize,
    mut entry: LogEntry,
    now: SimTime,
) {
    if adversary.drop_log(&entry, now) {
        truth.dropped_logs.push((entry.correlation, entry.point));
        return;
    }
    if adversary.tamper_log(&mut entry, now) {
        truth.tampered_logs.push((entry.correlation, entry.point));
    }
    let latency = federation.to_logging_interface.sample(rng);
    queue.schedule(
        latency,
        Ev::LiDeliver {
            li: infra_li,
            entry,
        },
    );
}

fn assign_tx_times(
    pending: &mut Vec<SimTime>,
    ids: &[TxId],
    tx_entry_times: &mut HashMap<TxId, Vec<SimTime>>,
) {
    if ids.is_empty() || pending.is_empty() {
        return;
    }
    if ids.len() == 1 {
        tx_entry_times.entry(ids[0]).or_default().append(pending);
    } else {
        // one tx per entry, in order
        for (id, t) in ids.iter().zip(pending.drain(..)) {
            tx_entry_times.entry(*id).or_default().push(t);
        }
        pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::NoAdversary;

    fn small_config() -> MonitorConfig {
        MonitorConfig {
            total_requests: 40,
            request_rate_per_sec: 100.0,
            ..MonitorConfig::default()
        }
    }

    #[test]
    fn honest_run_completes_cleanly() {
        let (report, truth) = run_monitor(&small_config(), &mut NoAdversary);
        assert_eq!(report.requests_issued, 40);
        assert_eq!(report.requests_completed, 40);
        assert_eq!(truth.total_attacks(), 0);
        // no attacks ⇒ no alerts
        assert!(report.alerts.is_empty(), "alerts: {:?}", report.alerts);
        // every request produced 4 observations, all committed
        assert_eq!(report.entries_logged, 160);
        assert_eq!(report.groups_completed, 40);
        assert!(report.blocks_mined > 0);
        assert!(report.e2e_latency.len() == 40);
        assert!(report.log_commit_latency.mean() > 0.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let (a, _) = run_monitor(&small_config(), &mut NoAdversary);
        let (b, _) = run_monitor(&small_config(), &mut NoAdversary);
        assert_eq!(a.requests_completed, b.requests_completed);
        assert_eq!(a.entries_logged, b.entries_logged);
        assert_eq!(a.blocks_mined, b.blocks_mined);
        assert_eq!(a.e2e_latency.mean(), b.e2e_latency.mean());
    }

    #[test]
    fn monitoring_off_still_serves_requests() {
        let config = MonitorConfig {
            monitoring_enabled: false,
            analyser_enabled: false,
            ..small_config()
        };
        let (report, _) = run_monitor(&config, &mut NoAdversary);
        assert_eq!(report.requests_completed, 40);
        assert_eq!(report.entries_logged, 0);
        assert_eq!(report.blocks_mined, 0);
        assert!(report.alerts.is_empty());
    }

    #[test]
    fn deny_biased_policy_splits_grants() {
        let (report, _) = run_monitor(&small_config(), &mut NoAdversary);
        // The default policy permits doctors and daytime nurse reads; the
        // Zipf workload guarantees both outcomes occur.
        assert!(report.granted > 0);
        assert!(report.refused > 0);
        assert_eq!(report.granted + report.refused, 40);
    }

    #[test]
    fn batching_reduces_tx_count() {
        let mut unbatched = small_config();
        unbatched.li_batch_size = 1;
        let mut batched = small_config();
        batched.li_batch_size = 16;
        let (r1, _) = run_monitor(&unbatched, &mut NoAdversary);
        let (r16, _) = run_monitor(&batched, &mut NoAdversary);
        assert_eq!(r1.entries_logged, r16.entries_logged);
        assert!(
            r16.txs_committed < r1.txs_committed,
            "batched {} vs unbatched {}",
            r16.txs_committed,
            r1.txs_committed
        );
    }

    #[test]
    fn larger_block_interval_raises_commit_latency() {
        let mut fast = small_config();
        fast.block_interval = 100 * MILLIS;
        let mut slow = small_config();
        slow.block_interval = 2 * SECONDS;
        slow.group_timeout = 8 * SECONDS;
        let (rf, _) = run_monitor(&fast, &mut NoAdversary);
        let (rs, _) = run_monitor(&slow, &mut NoAdversary);
        assert!(
            rs.log_commit_latency.mean() > rf.log_commit_latency.mean(),
            "slow {} vs fast {}",
            rs.log_commit_latency.mean(),
            rf.log_commit_latency.mean()
        );
    }
}
