//! DRAMS — Decentralised Runtime Access Monitoring System.
//!
//! The paper's primary contribution (Ferdous et al., ICDCS 2017):
//! a runtime monitoring architecture for distributed access control
//! systems in cloud federations, built on a smart-contract blockchain.
//!
//! * [`logent`] — the 4-quadrant access-log schema probes submit.
//! * [`probe`] — probing agents attached to PEPs and the PDP.
//! * [`li`] — the per-tenant Logging Interface (encryption, batching,
//!   chain submission).
//! * [`contract`] — the monitor smart contract: digest matching, epoch
//!   timeouts, conflict detection, on-chain violation registry.
//! * [`analyser`] — the Analyser service re-evaluating logged decisions
//!   against the formal policy semantics (ref \[8\]).
//! * [`alert`] — the security-alert vocabulary.
//! * [`tpm`] — the simulated Trusted Platform Module of §III.
//! * [`adversary`] — attack hooks (implemented by `drams-attack`).
//! * [`monitor`] — configuration, report and ground truth of the
//!   end-to-end virtual-time simulation of Figure 1.
//! * [`scenario`] — the event-driven scenario runtime: the simulation
//!   decomposed into services, plus the declarative [`ScenarioSpec`]
//!   layer (phased load, multi-PDP placement, policy churn, tenant
//!   join/leave, fault windows).
//!
//! # Example: a full monitored federation run
//!
//! ```
//! use drams_core::monitor::{run_monitor, MonitorConfig};
//! use drams_core::adversary::NoAdversary;
//!
//! let config = MonitorConfig {
//!     total_requests: 10,
//!     ..MonitorConfig::default()
//! };
//! let (report, truth) = run_monitor(&config, &mut NoAdversary);
//! assert_eq!(report.requests_completed, 10);
//! assert_eq!(truth.total_attacks(), 0);
//! assert!(report.alerts.is_empty());
//! ```

pub mod adversary;
pub mod alert;
pub mod analyser;
pub mod contract;
pub mod li;
pub mod logent;
pub mod monitor;
pub mod probe;
pub mod scenario;
pub mod tpm;

pub use adversary::{Adversary, NoAdversary};
pub use alert::{Alert, AlertKind};
pub use analyser::Analyser;
pub use contract::{MonitorContract, GROUP_COMPLETE_EVENT, MONITOR_CONTRACT};
pub use li::LoggingInterface;
pub use logent::{LogEntry, ObservationPoint, ProbeId};
pub use monitor::{run_monitor, GroundTruth, MonitorConfig, MonitorReport};
pub use probe::Probe;
pub use scenario::{run_scenario, PdpPlacement, Phase, ScenarioSpec, ScriptedAction};
pub use tpm::{Quote, Tpm, TpmError};
