//! Equivalence property suite: the compiled engine (`drams_policy::compiled`)
//! must agree with the tree-walking reference interpreter on *arbitrary*
//! policies and requests — including the ugly corners the workload
//! generator's analysable fragment never produces: missing attributes,
//! multi-valued bags (singleton-coercion type errors), cross-type
//! comparisons, wrong arities, nested sets under all six combining
//! algorithms, and obligation ordering.
//!
//! The generators below are deliberately *not* the `drams-faas` workload
//! generators: they sample outside the analysable fragment so that every
//! `Indeterminate` flavour and `EvalError` path is exercised, and they
//! bias targets towards the single-attribute-equality shape so the
//! compiled engine's target index is on the hot path of the test, not
//! just its residual fallback.

use drams_policy::compiled::PreparedPolicySet;
use drams_policy::decision::{Effect, ExtDecision, Obligation};
use drams_policy::policy::{Policy, PolicySet};
use drams_policy::prelude::*;
use drams_policy::rule::Rule;
use drams_policy::target::Target;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NAMES: [&str; 5] = ["role", "type", "id", "hour", "tags"];
const STRINGS: [&str; 5] = ["doctor", "nurse", "record", "read", "icu"];

fn rand_category(rng: &mut StdRng) -> Category {
    Category::ALL[rng.gen_range(0..Category::ALL.len())]
}

fn rand_attr_id(rng: &mut StdRng) -> AttributeId {
    AttributeId::new(rand_category(rng), NAMES[rng.gen_range(0..NAMES.len())])
}

fn rand_value(rng: &mut StdRng) -> AttributeValue {
    match rng.gen_range(0..5) {
        0 => AttributeValue::Str(STRINGS[rng.gen_range(0..STRINGS.len())].to_string()),
        1 => AttributeValue::Int(rng.gen_range(-2..4)),
        2 => AttributeValue::Double(rng.gen_range(-1.0..3.0)),
        3 => AttributeValue::Double(0.0), // exercises the -0.0/0.0 key path
        _ => AttributeValue::Bool(rng.gen_bool(0.5)),
    }
}

fn rand_expr(rng: &mut StdRng, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.35) {
        return if rng.gen_bool(0.5) {
            Expr::Lit(rand_value(rng))
        } else {
            Expr::Attr(rand_attr_id(rng))
        };
    }
    let func = Func::ALL[rng.gen_range(0..Func::ALL.len())];
    let arity = match func {
        Func::Not | Func::Size => 1,
        Func::And | Func::Or => rng.gen_range(1..4),
        _ => 2,
    };
    // 10% wrong arity: arity errors must map to the same Indeterminate
    // flavours in both engines.
    let arity = if rng.gen_bool(0.1) { arity + 1 } else { arity };
    let args = (0..arity).map(|_| rand_expr(rng, depth - 1)).collect();
    Expr::Apply(func, args)
}

fn rand_target(rng: &mut StdRng) -> Target {
    if rng.gen_bool(0.25) {
        return Target::Any;
    }
    let clauses = (0..rng.gen_range(1..3))
        .map(|_| {
            (0..rng.gen_range(1..3))
                .map(|_| {
                    if rng.gen_bool(0.6) {
                        // the indexable shape: a single equal(attr, lit)
                        vec![Expr::equal(
                            Expr::Attr(rand_attr_id(rng)),
                            Expr::Lit(rand_value(rng)),
                        )]
                    } else {
                        (0..rng.gen_range(1..3))
                            .map(|_| rand_expr(rng, 2))
                            .collect()
                    }
                })
                .collect()
        })
        .collect();
    Target::Clauses(clauses)
}

fn rand_effect(rng: &mut StdRng) -> Effect {
    if rng.gen_bool(0.5) {
        Effect::Permit
    } else {
        Effect::Deny
    }
}

fn rand_obligations(rng: &mut StdRng, tag: &str) -> Vec<Obligation> {
    (0..rng.gen_range(0..3))
        .map(|i| Obligation::new(format!("{tag}-ob{i}"), rand_effect(rng)))
        .collect()
}

fn rand_alg(rng: &mut StdRng) -> CombiningAlg {
    CombiningAlg::ALL[rng.gen_range(0..CombiningAlg::ALL.len())]
}

fn rand_rule(rng: &mut StdRng, id: String) -> Rule {
    let mut builder = Rule::builder(id.clone(), rand_effect(rng)).target(rand_target(rng));
    if rng.gen_bool(0.5) {
        builder = builder.condition(rand_expr(rng, 2));
    }
    for o in rand_obligations(rng, &id) {
        builder = builder.obligation(o);
    }
    builder.build()
}

/// Child counts are bimodal: mostly narrow nodes (below the compiled
/// engine's MIN_INDEXED_CHILDREN threshold, evaluated without an index)
/// with a fat tail of wide nodes that activate the target index — both
/// paths must stay equivalent.
fn rand_child_count(rng: &mut StdRng) -> usize {
    if rng.gen_bool(0.3) {
        rng.gen_range(8..14)
    } else {
        rng.gen_range(0..5)
    }
}

fn rand_policy(rng: &mut StdRng, id: String) -> Policy {
    let mut builder = Policy::builder(id.clone(), rand_alg(rng)).target(rand_target(rng));
    for r in 0..rand_child_count(rng) {
        builder = builder.rule(rand_rule(rng, format!("{id}-r{r}")));
    }
    for o in rand_obligations(rng, &id) {
        builder = builder.obligation(o);
    }
    builder.build()
}

fn rand_set(rng: &mut StdRng, id: String, depth: u32) -> PolicySet {
    let mut builder = PolicySet::builder(id.clone(), rand_alg(rng)).target(rand_target(rng));
    for c in 0..rand_child_count(rng) {
        if depth > 0 && rng.gen_bool(0.25) {
            builder = builder.set(rand_set(rng, format!("{id}-s{c}"), depth - 1));
        } else {
            builder = builder.policy(rand_policy(rng, format!("{id}-p{c}")));
        }
    }
    for o in rand_obligations(rng, &id) {
        builder = builder.obligation(o);
    }
    builder.build()
}

fn rand_request(rng: &mut StdRng) -> Request {
    let mut request = Request::new();
    // 0..6 draws over a shared small vocabulary: repeats create
    // multi-valued bags, omissions create missing attributes.
    for _ in 0..rng.gen_range(0..6) {
        let id = rand_attr_id(rng);
        request.add(id.category, id.name, rand_value(rng));
    }
    request
}

fn assert_engines_agree(
    set: &PolicySet,
    prepared: &PreparedPolicySet,
    request: &Request,
) -> Result<(), TestCaseError> {
    let (d_ref, o_ref) = set.evaluate(request);
    let (d_compiled, o_compiled) = prepared.evaluate(request);
    prop_assert_eq!(
        d_ref,
        d_compiled,
        "decision diverged on {:?} for {:?}",
        request,
        set
    );
    prop_assert_eq!(
        o_ref,
        o_compiled,
        "obligations diverged on {:?} for {:?}",
        request,
        set
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// The core equivalence property: over randomized policies (all six
    /// combining algorithms, nested sets, conditions, obligations) and
    /// randomized requests (missing attributes, multi-valued bags, mixed
    /// types), the compiled engine returns exactly the interpreter's
    /// extended decision and obligation list.
    #[test]
    fn compiled_engine_matches_interpreter(
        policy_seed in 0u64..1_000_000,
        request_seed in 0u64..1_000_000,
    ) {
        let mut prng = StdRng::seed_from_u64(policy_seed);
        let set = rand_set(&mut prng, "root".to_string(), 2);
        let prepared = PreparedPolicySet::compile(&set);
        let mut rrng = StdRng::seed_from_u64(request_seed);
        for _ in 0..4 {
            assert_engines_agree(&set, &prepared, &rand_request(&mut rrng))?;
        }
        // The empty request maximises missing-attribute Indeterminates.
        assert_engines_agree(&set, &prepared, &Request::new())?;
    }
}

// ---- targeted corner cases (named, deterministic) --------------------------

fn eq(cat: Category, name: &str, val: impl Into<AttributeValue>) -> Expr {
    Expr::equal(Expr::attr(AttributeId::new(cat, name)), Expr::lit(val))
}

fn check(set: &PolicySet, request: &Request) {
    let prepared = PreparedPolicySet::compile(set);
    assert_eq!(
        set.evaluate(request),
        prepared.evaluate(request),
        "engines diverged on {request:?}"
    );
}

#[test]
fn missing_attribute_indeterminate_flavours_agree() {
    // Rule targets reference an attribute the request lacks: the rule
    // must go Indeterminate{P}/Indeterminate{D} by its effect, and the
    // combining algorithms must propagate the flavour identically.
    for alg in CombiningAlg::ALL {
        for effect in [Effect::Permit, Effect::Deny] {
            let set = PolicySet::builder("root", alg)
                .policy(
                    Policy::builder("p", CombiningAlg::DenyOverrides)
                        .rule(
                            Rule::builder("r", effect)
                                .target(Target::expr(eq(Category::Resource, "ghost", "x")))
                                .build(),
                        )
                        .build(),
                )
                .build();
            let request = Request::builder().subject("role", "doctor").build();
            let (d, _) = set.evaluate(&request);
            if alg == CombiningAlg::DenyOverrides && effect == Effect::Deny {
                assert_eq!(
                    d,
                    ExtDecision::IndeterminateD,
                    "sanity: flavour reaches root"
                );
            }
            check(&set, &request);
        }
    }
}

#[test]
fn multi_valued_bag_type_mismatch_agrees() {
    // equal() over a two-valued bag fails singleton coercion — a
    // TypeMismatch, not a NoMatch. The index must keep the policy as a
    // candidate and both engines must go Indeterminate the same way.
    let set = PolicySet::builder("root", CombiningAlg::PermitOverrides)
        .policy(
            Policy::builder("p", CombiningAlg::PermitOverrides)
                .target(Target::expr(eq(Category::Resource, "type", "record")))
                .rule(Rule::always("r", Effect::Permit))
                .build(),
        )
        .build();
    let request = Request::builder()
        .resource("type", "record")
        .resource("type", "image")
        .build();
    let (d, _) = set.evaluate(&request);
    assert_eq!(d, ExtDecision::IndeterminateP, "sanity: bag>1 is an error");
    check(&set, &request);
}

#[test]
fn cross_type_comparison_errors_agree() {
    // less("abc", 3) is a TypeMismatch → condition error → rule
    // Indeterminate by effect.
    let set = PolicySet::builder("root", CombiningAlg::DenyOverrides)
        .policy(
            Policy::builder("p", CombiningAlg::PermitOverrides)
                .rule(
                    Rule::builder("r", Effect::Permit)
                        .condition(Expr::Apply(
                            Func::Less,
                            vec![
                                Expr::attr(AttributeId::new(Category::Subject, "role")),
                                Expr::lit(3i64),
                            ],
                        ))
                        .build(),
                )
                .build(),
        )
        .build();
    let request = Request::builder().subject("role", "doctor").build();
    let (d, _) = set.evaluate(&request);
    assert_eq!(
        d,
        ExtDecision::IndeterminateP,
        "sanity: type error surfaces"
    );
    check(&set, &request);
}

#[test]
fn first_applicable_order_is_preserved_across_index_skips() {
    // Three policies guarded on resource.type plus an unguarded one in
    // the middle: first-applicable must see survivors in document order,
    // not index order.
    let mut root = PolicySet::builder("root", CombiningAlg::FirstApplicable);
    root = root.policy(
        Policy::builder("p0", CombiningAlg::PermitOverrides)
            .target(Target::expr(eq(Category::Resource, "type", "image")))
            .rule(Rule::always("r0", Effect::Permit))
            .build(),
    );
    root = root.policy(
        Policy::builder("p1-unguarded", CombiningAlg::PermitOverrides)
            .target(Target::expr(Expr::Apply(
                Func::Greater,
                vec![
                    Expr::attr(AttributeId::new(Category::Environment, "hour")),
                    Expr::lit(20i64),
                ],
            )))
            .rule(Rule::always("r1", Effect::Deny))
            .build(),
    );
    root = root.policy(
        Policy::builder("p2", CombiningAlg::PermitOverrides)
            .target(Target::expr(eq(Category::Resource, "type", "record")))
            .rule(Rule::always("r2", Effect::Permit))
            .build(),
    );
    // Pad with guarded non-matching policies so the node clears the
    // index threshold and the skips actually happen.
    for i in 3..10 {
        root = root.policy(
            Policy::builder(format!("pad{i}"), CombiningAlg::PermitOverrides)
                .target(Target::expr(eq(Category::Resource, "type", "image")))
                .rule(Rule::always(format!("rp{i}"), Effect::Permit))
                .build(),
        );
    }
    let set = root.build();
    // hour=21 makes the unguarded middle policy fire first even though
    // the guarded p2 also matches.
    let request = Request::builder()
        .resource("type", "record")
        .environment("hour", 21i64)
        .build();
    let (d, _) = set.evaluate(&request);
    assert_eq!(d, ExtDecision::Deny, "sanity: document order decides");
    check(&set, &request);
    // hour=8: middle policy NoMatch, p2 decides.
    let request = Request::builder()
        .resource("type", "record")
        .environment("hour", 8i64)
        .build();
    assert_eq!(set.evaluate(&request).0, ExtDecision::Permit);
    check(&set, &request);
}

#[test]
fn only_one_applicable_counts_skipped_children_correctly() {
    // only-one-applicable: two guarded policies share a resource type →
    // IndeterminateDP; distinct types → the single applicable decides.
    let set = PolicySet::builder("root", CombiningAlg::OnlyOneApplicable)
        .policy(
            Policy::builder("a", CombiningAlg::PermitOverrides)
                .target(Target::expr(eq(Category::Resource, "type", "record")))
                .rule(Rule::always("ra", Effect::Permit))
                .build(),
        )
        .policy(
            Policy::builder("b", CombiningAlg::PermitOverrides)
                .target(Target::expr(eq(Category::Resource, "type", "record")))
                .rule(Rule::always("rb", Effect::Deny))
                .build(),
        )
        .policy(
            Policy::builder("c", CombiningAlg::PermitOverrides)
                .target(Target::expr(eq(Category::Resource, "type", "image")))
                .rule(Rule::always("rc", Effect::Deny))
                .build(),
        );
    // Pad past the index threshold with never-matching guarded policies.
    let set = (3..10)
        .fold(set, |b, i| {
            b.policy(
                Policy::builder(format!("pad{i}"), CombiningAlg::PermitOverrides)
                    .target(Target::expr(eq(Category::Resource, "type", "report")))
                    .rule(Rule::always(format!("rp{i}"), Effect::Permit))
                    .build(),
            )
        })
        .build();
    let record = Request::builder().resource("type", "record").build();
    assert_eq!(set.evaluate(&record).0, ExtDecision::IndeterminateDP);
    check(&set, &record);
    let image = Request::builder().resource("type", "image").build();
    assert_eq!(set.evaluate(&image).0, ExtDecision::Deny);
    check(&set, &image);
    // Missing resource.type: guarded targets are Indeterminate → IndDP.
    let empty = Request::new();
    assert_eq!(set.evaluate(&empty).0, ExtDecision::IndeterminateDP);
    check(&set, &empty);
}
