//! Property tests of the XACML combining-algorithm algebra, over
//! shrinkable randomly-generated policies and requests.

use drams_policy::attr::{AttributeId, Category, Request};
use drams_policy::combining::CombiningAlg;
use drams_policy::decision::{Decision, Effect, ExtDecision};
use drams_policy::expr::{Expr, Func};
use drams_policy::policy::{Policy, PolicySet};
use drams_policy::rule::Rule;
use drams_policy::target::Target;
use proptest::prelude::*;

// ---- strategies -------------------------------------------------------------

fn role_values() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("doctor".to_string()),
        Just("nurse".to_string()),
        Just("admin".to_string()),
    ]
}

fn match_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        role_values().prop_map(|r| Expr::equal(
            Expr::attr(AttributeId::new(Category::Subject, "role")),
            Expr::lit(r),
        )),
        (0i64..24).prop_map(|h| Expr::Apply(
            Func::Less,
            vec![
                Expr::attr(AttributeId::new(Category::Environment, "hour")),
                Expr::lit(h),
            ],
        )),
        Just(Expr::lit(true)),
    ]
}

fn rule_strategy() -> impl Strategy<Value = Rule> {
    (
        any::<bool>(),
        match_expr(),
        proptest::option::of(match_expr()),
        0u32..1000,
    )
        .prop_map(|(permit, target, condition, id)| {
            let effect = if permit { Effect::Permit } else { Effect::Deny };
            let mut b = Rule::builder(format!("r{id}"), effect).target(Target::expr(target));
            if let Some(c) = condition {
                b = b.condition(c);
            }
            b.build()
        })
}

fn rules_strategy() -> impl Strategy<Value = Vec<Rule>> {
    proptest::collection::vec(rule_strategy(), 1..6)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (role_values(), 0i64..24).prop_map(|(role, hour)| {
        Request::builder()
            .subject("role", role)
            .environment("hour", hour)
            .build()
    })
}

fn policy_of(alg: CombiningAlg, rules: Vec<Rule>) -> Policy {
    let mut b = Policy::builder("p", alg);
    for r in rules {
        b = b.rule(r);
    }
    b.build()
}

// ---- laws -------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// deny-overrides and permit-overrides are order-insensitive: rule
    /// permutation cannot change the decision (only obligations may
    /// reorder).
    #[test]
    fn overrides_algorithms_are_permutation_invariant(
        rules in rules_strategy(),
        request in request_strategy(),
        rotation in 0usize..6,
    ) {
        for alg in [CombiningAlg::DenyOverrides, CombiningAlg::PermitOverrides] {
            let forward = policy_of(alg, rules.clone());
            let mut rotated_rules = rules.clone();
            rotated_rules.rotate_left(rotation % rules.len().max(1));
            let rotated = policy_of(alg, rotated_rules);
            prop_assert_eq!(
                forward.evaluate(&request).0,
                rotated.evaluate(&request).0,
                "alg {}", alg
            );
        }
    }

    /// Duality: permit-overrides on rules == effect-mirrored
    /// deny-overrides on effect-mirrored rules.
    #[test]
    fn permit_overrides_is_dual_of_deny_overrides(
        rules in rules_strategy(),
        request in request_strategy(),
    ) {
        let mirrored: Vec<Rule> = rules
            .iter()
            .map(|r| {
                let mut m = r.clone();
                m.effect = m.effect.opposite();
                m
            })
            .collect();
        let po = policy_of(CombiningAlg::PermitOverrides, rules).evaluate(&request).0;
        let do_mirrored = policy_of(CombiningAlg::DenyOverrides, mirrored).evaluate(&request).0;
        let mirror = |d: ExtDecision| match d {
            ExtDecision::Permit => ExtDecision::Deny,
            ExtDecision::Deny => ExtDecision::Permit,
            ExtDecision::IndeterminateP => ExtDecision::IndeterminateD,
            ExtDecision::IndeterminateD => ExtDecision::IndeterminateP,
            other => other,
        };
        prop_assert_eq!(po, mirror(do_mirrored));
    }

    /// deny-unless-permit and permit-unless-deny are total: never
    /// NotApplicable, never Indeterminate.
    #[test]
    fn unless_algorithms_are_total(
        rules in rules_strategy(),
        request in request_strategy(),
    ) {
        for alg in [CombiningAlg::DenyUnlessPermit, CombiningAlg::PermitUnlessDeny] {
            let (d, _) = policy_of(alg, rules.clone()).evaluate(&request);
            prop_assert!(
                matches!(d, ExtDecision::Permit | ExtDecision::Deny),
                "alg {} produced {}", alg, d
            );
        }
    }

    /// deny-unless-permit agrees with permit-overrides whenever the
    /// latter is a definitive Permit, and is Deny otherwise.
    #[test]
    fn deny_unless_permit_collapses_permit_overrides(
        rules in rules_strategy(),
        request in request_strategy(),
    ) {
        let po = policy_of(CombiningAlg::PermitOverrides, rules.clone())
            .evaluate(&request).0;
        let dup = policy_of(CombiningAlg::DenyUnlessPermit, rules)
            .evaluate(&request).0;
        if po == ExtDecision::Permit {
            prop_assert_eq!(dup, ExtDecision::Permit);
        } else {
            prop_assert_eq!(dup, ExtDecision::Deny);
        }
    }

    /// first-applicable: prepending a NotApplicable rule never changes
    /// the outcome.
    #[test]
    fn first_applicable_skips_inapplicable_prefix(
        rules in rules_strategy(),
        request in request_strategy(),
    ) {
        let never = Rule::builder("never", Effect::Deny)
            .target(Target::expr(Expr::equal(
                Expr::attr(AttributeId::new(Category::Subject, "role")),
                Expr::lit("no-such-role"),
            )))
            .build();
        let base = policy_of(CombiningAlg::FirstApplicable, rules.clone())
            .evaluate(&request).0;
        let mut prefixed_rules = vec![never];
        prefixed_rules.extend(rules);
        let prefixed = policy_of(CombiningAlg::FirstApplicable, prefixed_rules)
            .evaluate(&request).0;
        prop_assert_eq!(base, prefixed);
    }

    /// The four-valued decision always matches the extended decision's
    /// collapse, across every algorithm.
    #[test]
    fn responses_are_internally_consistent(
        rules in rules_strategy(),
        request in request_strategy(),
    ) {
        for alg in CombiningAlg::ALL {
            let set = PolicySet::builder("root", alg)
                .policy(policy_of(CombiningAlg::PermitOverrides, rules.clone()))
                .build();
            let (ext, obligations) = set.evaluate(&request);
            let response = drams_policy::decision::Response::new(ext, obligations);
            prop_assert_eq!(response.decision, response.extended.to_decision());
            if response.decision == Decision::Indeterminate
                || response.decision == Decision::NotApplicable
            {
                prop_assert!(response.obligations.is_empty());
            }
        }
    }

    /// Canonical encodings of evaluated artefacts round-trip under every
    /// generated policy (ties parser/codec/engine together).
    #[test]
    fn generated_policies_round_trip_through_codec_and_text(
        rules in rules_strategy(),
    ) {
        use drams_crypto::codec::{Decode, Encode};
        let set = PolicySet::builder("root", CombiningAlg::DenyOverrides)
            .policy(policy_of(CombiningAlg::FirstApplicable, rules))
            .build();
        // binary codec
        let bytes = set.to_canonical_bytes();
        prop_assert_eq!(PolicySet::from_canonical_bytes(&bytes).unwrap(), set.clone());
        // text syntax
        let src = drams_policy::parser::to_source(&set);
        let reparsed = drams_policy::parser::parse_policy_set(&src).unwrap();
        prop_assert_eq!(reparsed, set);
    }
}

/// Non-property regression: literal-condition rules keep working after a
/// mirror (guards the duality test's mirroring helper).
#[test]
fn effect_mirror_preserves_structure() {
    let rule = Rule::builder("r", Effect::Permit)
        .condition(Expr::lit(true))
        .build();
    let mut mirrored = rule.clone();
    mirrored.effect = mirrored.effect.opposite();
    assert_eq!(mirrored.effect, Effect::Deny);
    assert_eq!(mirrored.condition, rule.condition);
}
