//! Attributes, categories and access requests.
//!
//! DRAMS monitors an XACML-style access control system (paper §I: "The FaaS
//! access control system is based on the eXtensible Access Control Markup
//! Language (XACML)"). Requests carry four categories of attributes —
//! subject, resource, action and environment — each a bag-valued map.

use drams_crypto::codec::{decode_seq, Decode, Encode, Reader, Writer};
use drams_crypto::CryptoError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// XACML attribute category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// The requesting subject (user, service).
    Subject,
    /// The protected resource.
    Resource,
    /// The action being attempted.
    Action,
    /// Environmental context (time, location, tenant).
    Environment,
}

impl Category {
    /// All four categories in canonical order.
    pub const ALL: [Category; 4] = [
        Category::Subject,
        Category::Resource,
        Category::Action,
        Category::Environment,
    ];

    /// Canonical lowercase name.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Category::Subject => "subject",
            Category::Resource => "resource",
            Category::Action => "action",
            Category::Environment => "environment",
        }
    }

    /// Parses a category name.
    ///
    /// # Errors
    ///
    /// Returns an error message for unknown names.
    pub fn parse(s: &str) -> Result<Category, String> {
        match s {
            "subject" => Ok(Category::Subject),
            "resource" => Ok(Category::Resource),
            "action" => Ok(Category::Action),
            "environment" => Ok(Category::Environment),
            other => Err(format!("unknown attribute category `{other}`")),
        }
    }

    fn code(self) -> u8 {
        match self {
            Category::Subject => 0,
            Category::Resource => 1,
            Category::Action => 2,
            Category::Environment => 3,
        }
    }

    fn from_code(code: u8) -> Result<Category, CryptoError> {
        match code {
            0 => Ok(Category::Subject),
            1 => Ok(Category::Resource),
            2 => Ok(Category::Action),
            3 => Ok(Category::Environment),
            other => Err(CryptoError::Malformed(format!("category code {other}"))),
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A fully-qualified attribute identifier, e.g. `subject.role`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttributeId {
    /// The category the attribute belongs to.
    pub category: Category,
    /// The attribute name within the category.
    pub name: String,
}

impl AttributeId {
    /// Creates an attribute id.
    pub fn new(category: Category, name: impl Into<String>) -> Self {
        AttributeId {
            category,
            name: name.into(),
        }
    }

    /// Parses `category.name` notation.
    ///
    /// # Errors
    ///
    /// Returns an error message when the format or category is invalid.
    pub fn parse(s: &str) -> Result<AttributeId, String> {
        let (cat, name) = s
            .split_once('.')
            .ok_or_else(|| format!("attribute id `{s}` must be `category.name`"))?;
        if name.is_empty() {
            return Err(format!("attribute id `{s}` has empty name"));
        }
        Ok(AttributeId::new(Category::parse(cat)?, name))
    }
}

impl fmt::Display for AttributeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.category, self.name)
    }
}

/// A typed attribute value.
///
/// `Double` is kept separate from `Int`; cross-type numeric comparison
/// coerces `Int` to `Double` (mirroring FACPL's numeric handling).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum AttributeValue {
    /// UTF-8 string.
    Str(String),
    /// 64-bit signed integer.
    Int(i64),
    /// IEEE-754 double.
    Double(f64),
    /// Boolean.
    Bool(bool),
}

impl AttributeValue {
    /// A human-readable name for the value's type.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            AttributeValue::Str(_) => "string",
            AttributeValue::Int(_) => "int",
            AttributeValue::Double(_) => "double",
            AttributeValue::Bool(_) => "bool",
        }
    }

    /// Numeric view (Int coerced to Double); `None` for non-numerics.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            AttributeValue::Int(i) => Some(*i as f64),
            AttributeValue::Double(d) => Some(*d),
            _ => None,
        }
    }
}

impl PartialEq for AttributeValue {
    fn eq(&self, other: &Self) -> bool {
        use AttributeValue::*;
        match (self, other) {
            (Str(a), Str(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Double(a), Double(b)) => a == b,
            (Int(a), Double(b)) | (Double(b), Int(a)) => (*a as f64) == *b,
            _ => false,
        }
    }
}

impl fmt::Display for AttributeValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeValue::Str(s) => write!(f, "\"{s}\""),
            AttributeValue::Int(i) => write!(f, "{i}"),
            AttributeValue::Double(d) => write!(f, "{d}"),
            AttributeValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for AttributeValue {
    fn from(s: &str) -> Self {
        AttributeValue::Str(s.to_string())
    }
}

impl From<String> for AttributeValue {
    fn from(s: String) -> Self {
        AttributeValue::Str(s)
    }
}

impl From<i64> for AttributeValue {
    fn from(i: i64) -> Self {
        AttributeValue::Int(i)
    }
}

impl From<f64> for AttributeValue {
    fn from(d: f64) -> Self {
        AttributeValue::Double(d)
    }
}

impl From<bool> for AttributeValue {
    fn from(b: bool) -> Self {
        AttributeValue::Bool(b)
    }
}

/// An access request: for each attribute id, a *bag* of values.
///
/// Uses `BTreeMap` so iteration (and thus canonical encoding and hashing)
/// is deterministic — the monitor contract compares request digests across
/// probes, which requires byte-identical encodings.
///
/// # Example
///
/// ```
/// use drams_policy::attr::{Request, Category};
///
/// let req = Request::builder()
///     .subject("role", "doctor")
///     .resource("type", "patient-record")
///     .action("id", "read")
///     .environment("hour", 14i64)
///     .build();
/// assert_eq!(req.bag(Category::Subject, "role").len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Request {
    attributes: BTreeMap<AttributeId, Vec<AttributeValue>>,
}

impl Request {
    /// Creates an empty request.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts building a request fluently.
    #[must_use]
    pub fn builder() -> RequestBuilder {
        RequestBuilder {
            request: Request::new(),
        }
    }

    /// Adds a value to the bag for (category, name).
    pub fn add(
        &mut self,
        category: Category,
        name: impl Into<String>,
        value: impl Into<AttributeValue>,
    ) {
        self.attributes
            .entry(AttributeId::new(category, name))
            .or_default()
            .push(value.into());
    }

    /// The value bag for (category, name); empty slice when absent.
    #[must_use]
    pub fn bag(&self, category: Category, name: &str) -> &[AttributeValue] {
        self.attributes
            .get(&AttributeId::new(category, name))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The value bag for an [`AttributeId`]; empty slice when absent.
    #[must_use]
    pub fn bag_by_id(&self, id: &AttributeId) -> &[AttributeValue] {
        self.attributes.get(id).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterates over `(id, bag)` pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttributeId, &[AttributeValue])> {
        self.attributes.iter().map(|(id, bag)| (id, bag.as_slice()))
    }

    /// Number of distinct attribute ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True when no attributes are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

/// Fluent builder for [`Request`].
#[derive(Debug, Default)]
pub struct RequestBuilder {
    request: Request,
}

impl RequestBuilder {
    /// Adds a subject attribute.
    #[must_use]
    pub fn subject(mut self, name: &str, value: impl Into<AttributeValue>) -> Self {
        self.request.add(Category::Subject, name, value);
        self
    }

    /// Adds a resource attribute.
    #[must_use]
    pub fn resource(mut self, name: &str, value: impl Into<AttributeValue>) -> Self {
        self.request.add(Category::Resource, name, value);
        self
    }

    /// Adds an action attribute.
    #[must_use]
    pub fn action(mut self, name: &str, value: impl Into<AttributeValue>) -> Self {
        self.request.add(Category::Action, name, value);
        self
    }

    /// Adds an environment attribute.
    #[must_use]
    pub fn environment(mut self, name: &str, value: impl Into<AttributeValue>) -> Self {
        self.request.add(Category::Environment, name, value);
        self
    }

    /// Adds an attribute under an explicit category.
    #[must_use]
    pub fn attribute(
        mut self,
        category: Category,
        name: &str,
        value: impl Into<AttributeValue>,
    ) -> Self {
        self.request.add(category, name, value);
        self
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> Request {
        self.request
    }
}

// ---- canonical encoding ----------------------------------------------------

impl Encode for AttributeValue {
    fn encode(&self, w: &mut Writer) {
        match self {
            AttributeValue::Str(s) => {
                w.put_u8(0);
                w.put_str(s);
            }
            AttributeValue::Int(i) => {
                w.put_u8(1);
                w.put_i64(*i);
            }
            AttributeValue::Double(d) => {
                w.put_u8(2);
                w.put_f64(*d);
            }
            AttributeValue::Bool(b) => {
                w.put_u8(3);
                w.put_bool(*b);
            }
        }
    }
}

impl Decode for AttributeValue {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match r.get_u8()? {
            0 => Ok(AttributeValue::Str(r.get_str()?)),
            1 => Ok(AttributeValue::Int(r.get_i64()?)),
            2 => Ok(AttributeValue::Double(r.get_f64()?)),
            3 => Ok(AttributeValue::Bool(r.get_bool()?)),
            other => Err(CryptoError::Malformed(format!("value tag {other}"))),
        }
    }
}

impl Encode for AttributeId {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.category.code());
        w.put_str(&self.name);
    }
}

impl Decode for AttributeId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let category = Category::from_code(r.get_u8()?)?;
        let name = r.get_str()?;
        Ok(AttributeId { category, name })
    }
}

impl Encode for Request {
    fn encode(&self, w: &mut Writer) {
        w.put_varint(self.attributes.len() as u64);
        for (id, bag) in &self.attributes {
            id.encode(w);
            w.put_varint(bag.len() as u64);
            for v in bag {
                v.encode(w);
            }
        }
    }
}

impl Decode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let n = r.get_varint()? as usize;
        if n > r.remaining() {
            return Err(CryptoError::Malformed("request too large".into()));
        }
        let mut attributes = BTreeMap::new();
        for _ in 0..n {
            let id = AttributeId::decode(r)?;
            let bag: Vec<AttributeValue> = decode_seq(r)?;
            attributes.insert(id, bag);
        }
        Ok(Request { attributes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_crypto::codec::{Decode, Encode};

    #[test]
    fn category_parse_round_trip() {
        for c in Category::ALL {
            assert_eq!(Category::parse(c.as_str()).unwrap(), c);
        }
        assert!(Category::parse("bogus").is_err());
    }

    #[test]
    fn attribute_id_parse() {
        let id = AttributeId::parse("subject.role").unwrap();
        assert_eq!(id.category, Category::Subject);
        assert_eq!(id.name, "role");
        assert_eq!(id.to_string(), "subject.role");
        assert!(AttributeId::parse("norole").is_err());
        assert!(AttributeId::parse("subject.").is_err());
        assert!(AttributeId::parse("planet.role").is_err());
    }

    #[test]
    fn value_equality_coerces_numerics() {
        assert_eq!(AttributeValue::Int(3), AttributeValue::Double(3.0));
        assert_ne!(AttributeValue::Int(3), AttributeValue::Double(3.5));
        assert_ne!(AttributeValue::Str("3".into()), AttributeValue::Int(3));
        assert_ne!(AttributeValue::Bool(true), AttributeValue::Int(1));
    }

    #[test]
    fn builder_and_bags() {
        let req = Request::builder()
            .subject("role", "doctor")
            .subject("role", "researcher")
            .resource("type", "record")
            .build();
        assert_eq!(req.bag(Category::Subject, "role").len(), 2);
        assert_eq!(req.bag(Category::Resource, "type").len(), 1);
        assert!(req.bag(Category::Action, "id").is_empty());
        assert_eq!(req.len(), 2);
    }

    #[test]
    fn canonical_encoding_is_order_independent() {
        let mut a = Request::new();
        a.add(Category::Subject, "role", "doctor");
        a.add(Category::Resource, "type", "record");
        let mut b = Request::new();
        b.add(Category::Resource, "type", "record");
        b.add(Category::Subject, "role", "doctor");
        assert_eq!(a.to_canonical_bytes(), b.to_canonical_bytes());
        assert_eq!(a.canonical_digest(), b.canonical_digest());
    }

    #[test]
    fn encoding_round_trips() {
        let req = Request::builder()
            .subject("role", "nurse")
            .subject("clearance", 3i64)
            .resource("sensitivity", 0.7)
            .action("id", "write")
            .environment("emergency", true)
            .build();
        let bytes = req.to_canonical_bytes();
        let back = Request::from_canonical_bytes(&bytes).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn tampered_encoding_changes_digest() {
        // The monitor contract relies on this: any modification of the
        // request between PEP and PDP changes its canonical digest.
        let req = Request::builder().subject("role", "doctor").build();
        let tampered = Request::builder().subject("role", "admin").build();
        assert_ne!(req.canonical_digest(), tampered.canonical_digest());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Request::from_canonical_bytes(&[0xff, 0xff, 0xff]).is_err());
        assert!(AttributeValue::from_canonical_bytes(&[9]).is_err());
    }

    #[test]
    fn value_display() {
        assert_eq!(AttributeValue::from("x").to_string(), "\"x\"");
        assert_eq!(AttributeValue::from(42i64).to_string(), "42");
        assert_eq!(AttributeValue::from(true).to_string(), "true");
    }
}
