//! Text syntax for policies, in the style of FACPL (ref \[8\]).
//!
//! # Grammar
//!
//! ```text
//! policyset  := "policyset" IDENT "{" ALG item* "}"
//! item       := "target" ":" expr
//!             | policyset | policy | obligation
//! policy     := "policy" IDENT "{" ALG pitem* "}"
//! pitem      := "target" ":" expr | rule | obligation
//! rule       := "rule" IDENT "(" ("permit"|"deny") ")" [rulebody]
//! rulebody   := "{" ritem* "}"
//! ritem      := "target" ":" expr | "condition" ":" expr | obligation
//! obligation := "obligation" ("permit"|"deny") IDENT "(" [lit ("," lit)*] ")"
//! expr       := lit | attrref | IDENT "(" [expr ("," expr)*] ")"
//! attrref    := CATEGORY "." IDENT
//! lit        := STRING | NUMBER | "true" | "false"
//! ALG        := "deny-overrides" | "permit-overrides" | "first-applicable"
//!             | "only-one-applicable" | "deny-unless-permit"
//!             | "permit-unless-deny"
//! ```
//!
//! Line comments start with `#`.
//!
//! # Example
//!
//! ```
//! use drams_policy::parser::parse_policy_set;
//!
//! let src = r#"
//! policyset root { deny-overrides
//!   target: equal(resource.type, "record")
//!   policy doctors { permit-overrides
//!     rule allow (permit) {
//!       target: equal(subject.role, "doctor")
//!       condition: less(environment.hour, 18)
//!       obligation permit log("audit")
//!     }
//!     rule fallback (deny)
//!   }
//! }
//! "#;
//! let set = parse_policy_set(src).unwrap();
//! assert_eq!(set.id, "root");
//! ```

use crate::attr::{AttributeId, AttributeValue, Category};
use crate::combining::CombiningAlg;
use crate::decision::{Effect, Obligation};
use crate::expr::{Expr, Func};
use crate::policy::{Policy, PolicyChild, PolicySet};
use crate::rule::Rule;
use crate::target::Target;
use std::fmt;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Double(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Comma,
    Colon,
    Dot,
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn tokenize(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        macro_rules! bump {
            () => {{
                chars.next();
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }};
        }
        if c.is_whitespace() {
            bump!();
            continue;
        }
        if c == '#' {
            while let Some(&c2) = chars.peek() {
                let c = c2;
                bump!();
                if c == '\n' {
                    break;
                }
            }
            continue;
        }
        let simple = match c {
            '{' => Some(Tok::LBrace),
            '}' => Some(Tok::RBrace),
            '(' => Some(Tok::LParen),
            ')' => Some(Tok::RParen),
            ',' => Some(Tok::Comma),
            ':' => Some(Tok::Colon),
            '.' => Some(Tok::Dot),
            _ => None,
        };
        if let Some(tok) = simple {
            bump!();
            out.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c == '"' {
            bump!();
            let mut s = String::new();
            let mut closed = false;
            while let Some(&c2) = chars.peek() {
                let c = c2;
                bump!();
                if c == '"' {
                    closed = true;
                    break;
                }
                if c == '\\' {
                    match chars.peek() {
                        Some(&esc) => {
                            let c = esc;
                            bump!();
                            s.push(match c {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                        }
                        None => break,
                    }
                } else {
                    s.push(c);
                }
            }
            if !closed {
                return Err(ParseError {
                    line: tline,
                    col: tcol,
                    message: "unterminated string".into(),
                });
            }
            out.push(Spanned {
                tok: Tok::Str(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_digit() || c == '-' && out_last_allows_number(&out) {
            let mut s = String::new();
            let mut is_double = false;
            if c == '-' {
                s.push(c);
                bump!();
            }
            while let Some(&c2) = chars.peek() {
                if c2.is_ascii_digit() {
                    let c = c2;
                    s.push(c);
                    bump!();
                } else if c2 == '.' {
                    // lookahead: digit after '.' means a double literal
                    let mut clone = chars.clone();
                    clone.next();
                    if clone.peek().map(|d| d.is_ascii_digit()).unwrap_or(false) {
                        is_double = true;
                        let c = c2;
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                } else {
                    break;
                }
            }
            let tok = if is_double {
                Tok::Double(s.parse().map_err(|e| ParseError {
                    line: tline,
                    col: tcol,
                    message: format!("bad number `{s}`: {e}"),
                })?)
            } else {
                Tok::Int(s.parse().map_err(|e| ParseError {
                    line: tline,
                    col: tcol,
                    message: format!("bad number `{s}`: {e}"),
                })?)
            };
            out.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&c2) = chars.peek() {
                if c2.is_ascii_alphanumeric() || c2 == '_' || c2 == '-' {
                    let c = c2;
                    s.push(c);
                    bump!();
                } else {
                    break;
                }
            }
            out.push(Spanned {
                tok: Tok::Ident(s),
                line: tline,
                col: tcol,
            });
            continue;
        }
        return Err(ParseError {
            line: tline,
            col: tcol,
            message: format!("unexpected character `{c}`"),
        });
    }
    Ok(out)
}

/// `-` only starts a number when it cannot be part of an identifier
/// (identifiers may contain `-`, e.g. `deny-overrides`); after an ident we
/// never expect a number directly.
fn out_last_allows_number(out: &[Spanned]) -> bool {
    !matches!(out.last().map(|s| &s.tok), Some(Tok::Ident(_)))
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| (s.line, s.col))
            .unwrap_or((0, 0));
        Err(ParseError {
            line,
            col,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == tok => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected {what}, found {t:?}"))
            }
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            Some(t) => self.err(format!("expected {what}, found {t:?}")),
            None => self.err(format!("expected {what}, found end of input")),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let id = self.expect_ident(&format!("`{kw}`"))?;
        if id == kw {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found `{id}`"))
        }
    }

    fn parse_algorithm(&mut self) -> Result<CombiningAlg, ParseError> {
        let name = self.expect_ident("combining algorithm")?;
        CombiningAlg::by_name(&name)
            .ok_or(())
            .or_else(|_| self.err(format!("unknown combining algorithm `{name}`")))
    }

    fn parse_effect(&mut self) -> Result<Effect, ParseError> {
        let name = self.expect_ident("`permit` or `deny`")?;
        match name.as_str() {
            "permit" => Ok(Effect::Permit),
            "deny" => Ok(Effect::Deny),
            other => self.err(format!("expected `permit` or `deny`, found `{other}`")),
        }
    }

    fn parse_literal(&mut self) -> Result<AttributeValue, ParseError> {
        match self.next() {
            Some(Tok::Str(s)) => Ok(AttributeValue::Str(s)),
            Some(Tok::Int(i)) => Ok(AttributeValue::Int(i)),
            Some(Tok::Double(d)) => Ok(AttributeValue::Double(d)),
            Some(Tok::Ident(id)) if id == "true" => Ok(AttributeValue::Bool(true)),
            Some(Tok::Ident(id)) if id == "false" => Ok(AttributeValue::Bool(false)),
            Some(t) => self.err(format!("expected literal, found {t:?}")),
            None => self.err("expected literal, found end of input"),
        }
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Str(_)) | Some(Tok::Int(_)) | Some(Tok::Double(_)) => {
                Ok(Expr::Lit(self.parse_literal()?))
            }
            Some(Tok::Ident(id)) => {
                if id == "true" || id == "false" {
                    return Ok(Expr::Lit(self.parse_literal()?));
                }
                self.pos += 1;
                match self.peek() {
                    Some(Tok::Dot) => {
                        self.pos += 1;
                        let name = self.expect_ident("attribute name")?;
                        let category = Category::parse(&id)
                            .map_err(|_| ())
                            .or_else(|()| self.err(format!("`{id}` is not a category")))?;
                        Ok(Expr::Attr(AttributeId::new(category, name)))
                    }
                    Some(Tok::LParen) => {
                        let func = Func::by_name(&id)
                            .ok_or(())
                            .or_else(|_| self.err(format!("unknown function `{id}`")))?;
                        self.pos += 1;
                        let mut args = Vec::new();
                        if self.peek() == Some(&Tok::RParen) {
                            self.pos += 1;
                        } else {
                            loop {
                                args.push(self.parse_expr()?);
                                match self.next() {
                                    Some(Tok::Comma) => continue,
                                    Some(Tok::RParen) => break,
                                    Some(t) => {
                                        return self
                                            .err(format!("expected `,` or `)`, found {t:?}"))
                                    }
                                    None => return self.err("unterminated argument list"),
                                }
                            }
                        }
                        Ok(Expr::Apply(func, args))
                    }
                    _ => self.err(format!(
                        "identifier `{id}` must be a function call or `category.name`"
                    )),
                }
            }
            Some(t) => self.err(format!("expected expression, found {t:?}")),
            None => self.err("expected expression, found end of input"),
        }
    }

    fn parse_obligation(&mut self) -> Result<Obligation, ParseError> {
        // caller consumed `obligation`
        let effect = self.parse_effect()?;
        let id = self.expect_ident("obligation id")?;
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
        } else {
            loop {
                args.push(self.parse_literal()?);
                match self.next() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    Some(t) => return self.err(format!("expected `,` or `)`, found {t:?}")),
                    None => return self.err("unterminated obligation arguments"),
                }
            }
        }
        Ok(Obligation {
            id,
            fulfill_on: effect,
            args,
        })
    }

    fn parse_rule(&mut self) -> Result<Rule, ParseError> {
        // caller consumed `rule`
        let id = self.expect_ident("rule id")?;
        self.expect(&Tok::LParen, "`(`")?;
        let effect = self.parse_effect()?;
        self.expect(&Tok::RParen, "`)`")?;
        let mut builder = Rule::builder(id, effect);
        if self.peek() == Some(&Tok::LBrace) {
            self.pos += 1;
            loop {
                match self.peek().cloned() {
                    Some(Tok::RBrace) => {
                        self.pos += 1;
                        break;
                    }
                    Some(Tok::Ident(kw)) => {
                        self.pos += 1;
                        match kw.as_str() {
                            "target" => {
                                self.expect(&Tok::Colon, "`:`")?;
                                builder = builder.target(Target::expr(self.parse_expr()?));
                            }
                            "condition" => {
                                self.expect(&Tok::Colon, "`:`")?;
                                builder = builder.condition(self.parse_expr()?);
                            }
                            "obligation" => {
                                builder = builder.obligation(self.parse_obligation()?);
                            }
                            other => return self.err(format!("unexpected `{other}` in rule body")),
                        }
                    }
                    Some(t) => return self.err(format!("unexpected {t:?} in rule body")),
                    None => return self.err("unterminated rule body"),
                }
            }
        }
        Ok(builder.build())
    }

    fn parse_policy(&mut self) -> Result<Policy, ParseError> {
        // caller consumed `policy`
        let id = self.expect_ident("policy id")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let algorithm = self.parse_algorithm()?;
        let mut builder = Policy::builder(id, algorithm);
        loop {
            match self.peek().cloned() {
                Some(Tok::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Ident(kw)) => {
                    self.pos += 1;
                    match kw.as_str() {
                        "target" => {
                            self.expect(&Tok::Colon, "`:`")?;
                            builder = builder.target(Target::expr(self.parse_expr()?));
                        }
                        "rule" => builder = builder.rule(self.parse_rule()?),
                        "obligation" => builder = builder.obligation(self.parse_obligation()?),
                        other => return self.err(format!("unexpected `{other}` in policy body")),
                    }
                }
                Some(t) => return self.err(format!("unexpected {t:?} in policy body")),
                None => return self.err("unterminated policy body"),
            }
        }
        Ok(builder.build())
    }

    fn parse_policy_set(&mut self) -> Result<PolicySet, ParseError> {
        self.expect_keyword("policyset")?;
        let id = self.expect_ident("policy set id")?;
        self.expect(&Tok::LBrace, "`{`")?;
        let algorithm = self.parse_algorithm()?;
        let mut builder = PolicySet::builder(id, algorithm);
        loop {
            match self.peek().cloned() {
                Some(Tok::RBrace) => {
                    self.pos += 1;
                    break;
                }
                Some(Tok::Ident(kw)) => match kw.as_str() {
                    "target" => {
                        self.pos += 1;
                        self.expect(&Tok::Colon, "`:`")?;
                        builder = builder.target(Target::expr(self.parse_expr()?));
                    }
                    "policy" => {
                        self.pos += 1;
                        builder = builder.policy(self.parse_policy()?);
                    }
                    "policyset" => {
                        builder = builder.set(self.parse_policy_set()?);
                    }
                    "obligation" => {
                        self.pos += 1;
                        builder = builder.obligation(self.parse_obligation()?);
                    }
                    other => {
                        self.pos += 1;
                        let msg = format!("unexpected `{other}` in policy set body");
                        return self.err(msg);
                    }
                },
                Some(t) => return self.err(format!("unexpected {t:?} in policy set body")),
                None => return self.err("unterminated policy set body"),
            }
        }
        Ok(builder.build())
    }
}

/// Parses a policy set from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] with line/column on any syntax error.
pub fn parse_policy_set(src: &str) -> Result<PolicySet, ParseError> {
    let toks = tokenize(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let set = parser.parse_policy_set()?;
    if parser.pos != parser.toks.len() {
        return parser.err("trailing input after policy set");
    }
    Ok(set)
}

/// Parses a single expression from source text (used by tests and tools).
///
/// # Errors
///
/// Returns a [`ParseError`] on any syntax error.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let toks = tokenize(src)?;
    let mut parser = Parser { toks, pos: 0 };
    let e = parser.parse_expr()?;
    if parser.pos != parser.toks.len() {
        return parser.err("trailing input after expression");
    }
    Ok(e)
}

// ---- pretty printer ---------------------------------------------------------

/// Renders a policy set back to parseable source text.
#[must_use]
pub fn to_source(set: &PolicySet) -> String {
    let mut out = String::new();
    write_set(set, 0, &mut out);
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_set(set: &PolicySet, depth: usize, out: &mut String) {
    indent(depth, out);
    out.push_str(&format!("policyset {} {{ {}\n", set.id, set.algorithm));
    write_target(&set.target, depth + 1, out);
    for child in &set.children {
        match child {
            PolicyChild::Policy(p) => write_policy(p, depth + 1, out),
            PolicyChild::Set(s) => write_set(s, depth + 1, out),
        }
    }
    for o in &set.obligations {
        write_obligation(o, depth + 1, out);
    }
    indent(depth, out);
    out.push_str("}\n");
}

fn write_policy(p: &Policy, depth: usize, out: &mut String) {
    indent(depth, out);
    out.push_str(&format!("policy {} {{ {}\n", p.id, p.algorithm));
    write_target(&p.target, depth + 1, out);
    for r in &p.rules {
        write_rule(r, depth + 1, out);
    }
    for o in &p.obligations {
        write_obligation(o, depth + 1, out);
    }
    indent(depth, out);
    out.push_str("}\n");
}

fn write_rule(r: &Rule, depth: usize, out: &mut String) {
    indent(depth, out);
    let effect = match r.effect {
        Effect::Permit => "permit",
        Effect::Deny => "deny",
    };
    let has_body = r.target != Target::Any || r.condition.is_some() || !r.obligations.is_empty();
    if !has_body {
        out.push_str(&format!("rule {} ({effect})\n", r.id));
        return;
    }
    out.push_str(&format!("rule {} ({effect}) {{\n", r.id));
    write_target(&r.target, depth + 1, out);
    if let Some(c) = &r.condition {
        indent(depth + 1, out);
        out.push_str(&format!("condition: {c}\n"));
    }
    for o in &r.obligations {
        write_obligation(o, depth + 1, out);
    }
    indent(depth, out);
    out.push_str("}\n");
}

fn write_target(t: &Target, depth: usize, out: &mut String) {
    if let Target::Clauses(clauses) = t {
        // The parser only produces single-expression targets; print richer
        // clause structures as an `and` of `or`s so output stays parseable.
        let expr = clauses_to_expr(clauses);
        indent(depth, out);
        out.push_str(&format!("target: {expr}\n"));
    }
}

fn clauses_to_expr(clauses: &[Vec<Vec<Expr>>]) -> Expr {
    let mut ands: Vec<Expr> = Vec::new();
    for any_of in clauses {
        let mut ors: Vec<Expr> = Vec::new();
        for all_of in any_of {
            let conj = if all_of.len() == 1 {
                all_of[0].clone()
            } else {
                Expr::and(all_of.to_vec())
            };
            ors.push(conj);
        }
        ands.push(if ors.len() == 1 {
            ors.remove(0)
        } else {
            Expr::or(ors)
        });
    }
    if ands.len() == 1 {
        ands.remove(0)
    } else {
        Expr::and(ands)
    }
}

fn write_obligation(o: &Obligation, depth: usize, out: &mut String) {
    indent(depth, out);
    let effect = match o.fulfill_on {
        Effect::Permit => "permit",
        Effect::Deny => "deny",
    };
    let args: Vec<String> = o.args.iter().map(|a| a.to_string()).collect();
    out.push_str(&format!(
        "obligation {effect} {}({})\n",
        o.id,
        args.join(", ")
    ));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Request;
    use crate::decision::ExtDecision;

    const SAMPLE: &str = r#"
# A healthcare data-sharing policy.
policyset root { deny-overrides
  target: equal(resource.type, "record")
  policy doctors { permit-overrides
    rule allow-read (permit) {
      target: equal(subject.role, "doctor")
      condition: and(equal(action.id, "read"), less(environment.hour, 18))
      obligation permit log("audit", 1)
    }
    rule fallback (deny)
  }
  obligation deny alert("security")
}
"#;

    #[test]
    fn parses_sample() {
        let set = parse_policy_set(SAMPLE).unwrap();
        assert_eq!(set.id, "root");
        assert_eq!(set.algorithm, CombiningAlg::DenyOverrides);
        assert_eq!(set.children.len(), 1);
        assert_eq!(set.obligations.len(), 1);
        match &set.children[0] {
            PolicyChild::Policy(p) => {
                assert_eq!(p.id, "doctors");
                assert_eq!(p.rules.len(), 2);
                assert_eq!(p.rules[0].obligations.len(), 1);
            }
            other => panic!("expected policy, got {other:?}"),
        }
    }

    #[test]
    fn parsed_policy_evaluates() {
        let set = parse_policy_set(SAMPLE).unwrap();
        let req = Request::builder()
            .subject("role", "doctor")
            .resource("type", "record")
            .action("id", "read")
            .environment("hour", 9i64)
            .build();
        // allow-read permits inside the permit-overrides policy, so the
        // policy yields Permit; the root combines that single child.
        assert_eq!(set.evaluate(&req).0, ExtDecision::Permit);
        // After hours the permit rule's condition fails, fallback denies.
        let late = Request::builder()
            .subject("role", "doctor")
            .resource("type", "record")
            .action("id", "read")
            .environment("hour", 22i64)
            .build();
        assert_eq!(set.evaluate(&late).0, ExtDecision::Deny);
    }

    #[test]
    fn round_trip_through_pretty_printer() {
        let set = parse_policy_set(SAMPLE).unwrap();
        let src2 = to_source(&set);
        let set2 = parse_policy_set(&src2).unwrap();
        assert_eq!(set, set2);
    }

    #[test]
    fn parse_expr_literals() {
        assert_eq!(parse_expr("42").unwrap(), Expr::lit(42i64));
        assert_eq!(parse_expr("-7").unwrap(), Expr::lit(-7i64));
        assert_eq!(parse_expr("2.5").unwrap(), Expr::lit(2.5));
        assert_eq!(parse_expr("true").unwrap(), Expr::lit(true));
        assert_eq!(parse_expr("\"hi\"").unwrap(), Expr::lit("hi"));
    }

    #[test]
    fn parse_expr_attr_and_nested_calls() {
        let e =
            parse_expr("and(equal(subject.role, \"dr\"), not(in(\"x\", resource.tags)))").unwrap();
        assert_eq!(e.referenced_attributes().len(), 2);
    }

    #[test]
    fn error_has_position() {
        let err = parse_policy_set("policyset x { bogus-alg }").unwrap_err();
        assert!(err.to_string().contains("unknown combining algorithm"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_unknown_function() {
        assert!(parse_expr("frobnicate(1)").is_err());
    }

    #[test]
    fn rejects_unknown_category() {
        assert!(parse_expr("equal(planet.role, 1)").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(parse_policy_set(
            "policyset x { deny-overrides target: equal(subject.a, \"oops) }"
        )
        .is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_policy_set("policyset x { deny-overrides } extra").is_err());
    }

    #[test]
    fn nested_policy_sets_parse() {
        let src = r#"
policyset outer { first-applicable
  policyset inner { permit-unless-deny
    policy p { deny-overrides
      rule r (deny)
    }
  }
}
"#;
        let set = parse_policy_set(src).unwrap();
        assert_eq!(set.children.len(), 1);
        assert!(matches!(set.children[0], PolicyChild::Set(_)));
    }

    #[test]
    fn comments_are_skipped() {
        let src = "# leading\npolicyset x { deny-overrides # trailing\n}";
        assert!(parse_policy_set(src).is_ok());
    }

    #[test]
    fn empty_obligation_args() {
        let src = r#"
policyset x { deny-overrides
  policy p { deny-overrides
    rule r (permit) { obligation permit ping() }
  }
}
"#;
        let set = parse_policy_set(src).unwrap();
        match &set.children[0] {
            PolicyChild::Policy(p) => assert!(p.rules[0].obligations[0].args.is_empty()),
            _ => unreachable!(),
        }
    }
}
