//! XACML 3.0 combining algorithms over extended decisions.
//!
//! Implements the six standard algorithms with the *extended Indeterminate*
//! semantics of XACML 3.0 Appendix C. The Analyser re-evaluates logged
//! decisions with exactly these tables, so fidelity here is what makes the
//! "altered evaluation process" detection of the paper meaningful.

use crate::attr::Request;
use crate::decision::{ExtDecision, Obligation};
use crate::target::MatchResult;
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::CryptoError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A combining algorithm identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CombiningAlg {
    /// Deny wins over everything (XACML C.2).
    DenyOverrides,
    /// Permit wins over everything (XACML C.4).
    PermitOverrides,
    /// First child with a definitive decision wins (XACML C.8).
    FirstApplicable,
    /// Exactly one child may be applicable (XACML C.9).
    OnlyOneApplicable,
    /// Any permit → Permit, otherwise Deny; never NA/Indeterminate (C.6).
    DenyUnlessPermit,
    /// Any deny → Deny, otherwise Permit; never NA/Indeterminate (C.7).
    PermitUnlessDeny,
}

impl CombiningAlg {
    /// All six algorithms.
    pub const ALL: [CombiningAlg; 6] = [
        CombiningAlg::DenyOverrides,
        CombiningAlg::PermitOverrides,
        CombiningAlg::FirstApplicable,
        CombiningAlg::OnlyOneApplicable,
        CombiningAlg::DenyUnlessPermit,
        CombiningAlg::PermitUnlessDeny,
    ];

    /// Canonical textual name, used by the parser.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CombiningAlg::DenyOverrides => "deny-overrides",
            CombiningAlg::PermitOverrides => "permit-overrides",
            CombiningAlg::FirstApplicable => "first-applicable",
            CombiningAlg::OnlyOneApplicable => "only-one-applicable",
            CombiningAlg::DenyUnlessPermit => "deny-unless-permit",
            CombiningAlg::PermitUnlessDeny => "permit-unless-deny",
        }
    }

    /// Looks an algorithm up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<CombiningAlg> {
        CombiningAlg::ALL.iter().copied().find(|a| a.name() == name)
    }
}

impl fmt::Display for CombiningAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Encode for CombiningAlg {
    fn encode(&self, w: &mut Writer) {
        let code = CombiningAlg::ALL
            .iter()
            .position(|a| a == self)
            .expect("algorithm in ALL") as u8;
        w.put_u8(code);
    }
}

impl Decode for CombiningAlg {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let code = r.get_u8()?;
        CombiningAlg::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| CryptoError::Malformed(format!("combining alg code {code}")))
    }
}

/// Anything a combining algorithm can combine: rules, policies, policy
/// sets. Applicability (target only) and full evaluation are separated
/// because `only-one-applicable` needs the former without the latter.
pub trait Combinable {
    /// Target-only applicability check.
    fn applicability(&self, request: &Request) -> MatchResult;
    /// Full evaluation: extended decision plus contributed obligations.
    fn evaluate(&self, request: &Request) -> (ExtDecision, Vec<Obligation>);
}

/// Combines children under `alg` for `request`.
///
/// Obligations are accumulated from every child whose decision equals the
/// combined decision (XACML §7.18); indeterminate outcomes carry none.
pub fn combine<C: Combinable>(
    alg: CombiningAlg,
    children: &[C],
    request: &Request,
) -> (ExtDecision, Vec<Obligation>) {
    combine_with(
        alg,
        children.len(),
        &mut |i| children[i].applicability(request),
        &mut |i| children[i].evaluate(request),
    )
}

/// Index-based combining core, generic over the obligation representation.
///
/// This is the single implementation of the six algorithms' truth tables.
/// The tree-walking interpreter instantiates it with owned
/// [`Obligation`]s; the compiled engine (`crate::compiled`) instantiates
/// it with borrowed `&Obligation`s over its target-indexed candidate
/// lists. `applicability(i)`/`evaluate(i)` address the `i`-th child in
/// document order.
pub(crate) fn combine_with<Ob, A, E>(
    alg: CombiningAlg,
    n: usize,
    applicability: &mut A,
    evaluate: &mut E,
) -> (ExtDecision, Vec<Ob>)
where
    A: FnMut(usize) -> MatchResult,
    E: FnMut(usize) -> (ExtDecision, Vec<Ob>),
{
    match alg {
        CombiningAlg::DenyOverrides => overrides(n, evaluate, ExtDecision::Deny),
        CombiningAlg::PermitOverrides => overrides(n, evaluate, ExtDecision::Permit),
        CombiningAlg::FirstApplicable => first_applicable(n, evaluate),
        CombiningAlg::OnlyOneApplicable => only_one_applicable(n, applicability, evaluate),
        CombiningAlg::DenyUnlessPermit => {
            unless(n, evaluate, ExtDecision::Permit, ExtDecision::Deny)
        }
        CombiningAlg::PermitUnlessDeny => {
            unless(n, evaluate, ExtDecision::Deny, ExtDecision::Permit)
        }
    }
}

/// Shared implementation of deny-overrides / permit-overrides.
///
/// `winner` is the overriding decision (Deny for deny-overrides). The
/// extended-indeterminate table is XACML 3.0 C.2/C.4 with the roles of
/// D and P swapped for permit-overrides.
fn overrides<Ob, E: FnMut(usize) -> (ExtDecision, Vec<Ob>)>(
    n: usize,
    evaluate: &mut E,
    winner: ExtDecision,
) -> (ExtDecision, Vec<Ob>) {
    let loser = match winner {
        ExtDecision::Deny => ExtDecision::Permit,
        _ => ExtDecision::Deny,
    };
    let (ind_winner, ind_loser) = match winner {
        ExtDecision::Deny => (ExtDecision::IndeterminateD, ExtDecision::IndeterminateP),
        _ => (ExtDecision::IndeterminateP, ExtDecision::IndeterminateD),
    };

    let mut saw_winner = false;
    let mut saw_loser = false;
    let mut saw_ind_winner = false;
    let mut saw_ind_loser = false;
    let mut saw_ind_dp = false;
    let mut winner_obligations = Vec::new();
    let mut loser_obligations = Vec::new();

    for i in 0..n {
        let (d, obs) = evaluate(i);
        if d == winner {
            saw_winner = true;
            winner_obligations.extend(obs);
        } else if d == loser {
            saw_loser = true;
            loser_obligations.extend(obs);
        } else if d == ind_winner {
            saw_ind_winner = true;
        } else if d == ind_loser {
            saw_ind_loser = true;
        } else if d == ExtDecision::IndeterminateDP {
            saw_ind_dp = true;
        }
    }

    if saw_winner {
        return (winner, winner_obligations);
    }
    if saw_ind_dp {
        return (ExtDecision::IndeterminateDP, Vec::new());
    }
    if saw_ind_winner && (saw_ind_loser || saw_loser) {
        return (ExtDecision::IndeterminateDP, Vec::new());
    }
    if saw_ind_winner {
        return (ind_winner, Vec::new());
    }
    if saw_loser {
        return (loser, loser_obligations);
    }
    if saw_ind_loser {
        return (ind_loser, Vec::new());
    }
    (ExtDecision::NotApplicable, Vec::new())
}

fn first_applicable<Ob, E: FnMut(usize) -> (ExtDecision, Vec<Ob>)>(
    n: usize,
    evaluate: &mut E,
) -> (ExtDecision, Vec<Ob>) {
    for i in 0..n {
        let (d, obs) = evaluate(i);
        match d {
            ExtDecision::Permit | ExtDecision::Deny => return (d, obs),
            ExtDecision::NotApplicable => continue,
            ind => return (ind, Vec::new()),
        }
    }
    (ExtDecision::NotApplicable, Vec::new())
}

fn only_one_applicable<Ob, A, E>(
    n: usize,
    applicability: &mut A,
    evaluate: &mut E,
) -> (ExtDecision, Vec<Ob>)
where
    A: FnMut(usize) -> MatchResult,
    E: FnMut(usize) -> (ExtDecision, Vec<Ob>),
{
    let mut applicable: Option<usize> = None;
    for i in 0..n {
        match applicability(i) {
            MatchResult::Indeterminate => return (ExtDecision::IndeterminateDP, Vec::new()),
            MatchResult::Match => {
                if applicable.is_some() {
                    return (ExtDecision::IndeterminateDP, Vec::new());
                }
                applicable = Some(i);
            }
            MatchResult::NoMatch => {}
        }
    }
    match applicable {
        Some(i) => evaluate(i),
        None => (ExtDecision::NotApplicable, Vec::new()),
    }
}

/// deny-unless-permit / permit-unless-deny: `sought` short-circuits,
/// anything else collapses to `fallback`.
fn unless<Ob, E: FnMut(usize) -> (ExtDecision, Vec<Ob>)>(
    n: usize,
    evaluate: &mut E,
    sought: ExtDecision,
    fallback: ExtDecision,
) -> (ExtDecision, Vec<Ob>) {
    let mut fallback_obligations = Vec::new();
    for i in 0..n {
        let (d, obs) = evaluate(i);
        if d == sought {
            return (sought, obs);
        }
        if d == fallback {
            fallback_obligations.extend(obs);
        }
    }
    (fallback, fallback_obligations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decision::Effect;
    use ExtDecision as D;

    /// A stub child with a fixed outcome.
    struct Fixed {
        decision: D,
        applicability: MatchResult,
        obligation: Option<&'static str>,
    }

    impl Fixed {
        fn new(decision: D) -> Self {
            let applicability = match decision {
                D::NotApplicable => MatchResult::NoMatch,
                _ => MatchResult::Match,
            };
            Fixed {
                decision,
                applicability,
                obligation: None,
            }
        }

        fn with_obligation(mut self, id: &'static str) -> Self {
            self.obligation = Some(id);
            self
        }

        fn indeterminate_target(mut self) -> Self {
            self.applicability = MatchResult::Indeterminate;
            self
        }
    }

    impl Combinable for Fixed {
        fn applicability(&self, _request: &Request) -> MatchResult {
            self.applicability
        }
        fn evaluate(&self, _request: &Request) -> (D, Vec<Obligation>) {
            let obs = self
                .obligation
                .map(|id| {
                    let effect = match self.decision {
                        D::Permit => Effect::Permit,
                        _ => Effect::Deny,
                    };
                    vec![Obligation::new(id, effect)]
                })
                .unwrap_or_default();
            (self.decision, obs)
        }
    }

    fn run(alg: CombiningAlg, decisions: &[D]) -> D {
        let children: Vec<Fixed> = decisions.iter().map(|d| Fixed::new(*d)).collect();
        combine(alg, &children, &Request::new()).0
    }

    // --- deny-overrides truth table (XACML C.2) ---

    #[test]
    fn deny_overrides_table() {
        use CombiningAlg::DenyOverrides as A;
        assert_eq!(run(A, &[D::Permit, D::Deny]), D::Deny);
        assert_eq!(run(A, &[D::Deny, D::IndeterminateDP]), D::Deny);
        assert_eq!(run(A, &[D::Permit, D::Permit]), D::Permit);
        assert_eq!(run(A, &[D::NotApplicable]), D::NotApplicable);
        assert_eq!(run(A, &[]), D::NotApplicable);
        assert_eq!(run(A, &[D::IndeterminateDP, D::Permit]), D::IndeterminateDP);
        // IndD + Permit → IndDP
        assert_eq!(run(A, &[D::IndeterminateD, D::Permit]), D::IndeterminateDP);
        // IndD + IndP → IndDP
        assert_eq!(
            run(A, &[D::IndeterminateD, D::IndeterminateP]),
            D::IndeterminateDP
        );
        // IndD alone → IndD
        assert_eq!(
            run(A, &[D::IndeterminateD, D::NotApplicable]),
            D::IndeterminateD
        );
        // Permit + IndP → Permit
        assert_eq!(run(A, &[D::Permit, D::IndeterminateP]), D::Permit);
        // IndP alone → IndP
        assert_eq!(run(A, &[D::IndeterminateP]), D::IndeterminateP);
    }

    #[test]
    fn permit_overrides_table_is_dual() {
        use CombiningAlg::PermitOverrides as A;
        assert_eq!(run(A, &[D::Permit, D::Deny]), D::Permit);
        assert_eq!(run(A, &[D::Deny, D::Deny]), D::Deny);
        assert_eq!(run(A, &[D::IndeterminateP, D::Deny]), D::IndeterminateDP);
        assert_eq!(
            run(A, &[D::IndeterminateP, D::IndeterminateD]),
            D::IndeterminateDP
        );
        assert_eq!(run(A, &[D::IndeterminateP]), D::IndeterminateP);
        assert_eq!(run(A, &[D::Deny, D::IndeterminateD]), D::Deny);
        assert_eq!(run(A, &[D::IndeterminateD]), D::IndeterminateD);
        assert_eq!(run(A, &[]), D::NotApplicable);
    }

    #[test]
    fn first_applicable_short_circuits() {
        use CombiningAlg::FirstApplicable as A;
        assert_eq!(run(A, &[D::NotApplicable, D::Deny, D::Permit]), D::Deny);
        assert_eq!(run(A, &[D::Permit, D::Deny]), D::Permit);
        assert_eq!(run(A, &[D::NotApplicable]), D::NotApplicable);
        assert_eq!(run(A, &[D::IndeterminateP, D::Deny]), D::IndeterminateP);
    }

    #[test]
    fn only_one_applicable_cases() {
        use CombiningAlg::OnlyOneApplicable as A;
        // exactly one applicable → its decision
        assert_eq!(run(A, &[D::NotApplicable, D::Deny]), D::Deny);
        assert_eq!(run(A, &[D::Permit, D::NotApplicable]), D::Permit);
        // two applicable → IndDP
        assert_eq!(run(A, &[D::Permit, D::Deny]), D::IndeterminateDP);
        // none applicable → NA
        assert_eq!(
            run(A, &[D::NotApplicable, D::NotApplicable]),
            D::NotApplicable
        );
        // indeterminate target → IndDP
        let children = vec![Fixed::new(D::Permit).indeterminate_target()];
        assert_eq!(combine(A, &children, &Request::new()).0, D::IndeterminateDP);
    }

    #[test]
    fn deny_unless_permit_never_indeterminate() {
        use CombiningAlg::DenyUnlessPermit as A;
        assert_eq!(run(A, &[D::IndeterminateDP]), D::Deny);
        assert_eq!(run(A, &[D::NotApplicable]), D::Deny);
        assert_eq!(run(A, &[D::Deny, D::Permit]), D::Permit);
        assert_eq!(run(A, &[]), D::Deny);
    }

    #[test]
    fn permit_unless_deny_never_indeterminate() {
        use CombiningAlg::PermitUnlessDeny as A;
        assert_eq!(run(A, &[D::IndeterminateDP]), D::Permit);
        assert_eq!(run(A, &[D::Deny, D::Permit]), D::Deny);
        assert_eq!(run(A, &[]), D::Permit);
    }

    #[test]
    fn obligations_follow_the_decision() {
        let children = vec![
            Fixed::new(D::Permit).with_obligation("log-permit"),
            Fixed::new(D::Deny).with_obligation("log-deny"),
            Fixed::new(D::Permit).with_obligation("notify"),
        ];
        let (d, obs) = combine(CombiningAlg::DenyOverrides, &children, &Request::new());
        assert_eq!(d, D::Deny);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].id, "log-deny");

        let (d, obs) = combine(CombiningAlg::PermitOverrides, &children, &Request::new());
        assert_eq!(d, D::Permit);
        let ids: Vec<&str> = obs.iter().map(|o| o.id.as_str()).collect();
        assert_eq!(ids, vec!["log-permit", "notify"]);
    }

    #[test]
    fn indeterminate_outcomes_carry_no_obligations() {
        let children = vec![
            Fixed::new(D::IndeterminateD).with_obligation("x"),
            Fixed::new(D::Permit).with_obligation("y"),
        ];
        let (d, obs) = combine(CombiningAlg::DenyOverrides, &children, &Request::new());
        assert_eq!(d, D::IndeterminateDP);
        assert!(obs.is_empty());
    }

    #[test]
    fn algorithm_names_round_trip() {
        for alg in CombiningAlg::ALL {
            assert_eq!(CombiningAlg::by_name(alg.name()), Some(alg));
        }
        assert_eq!(CombiningAlg::by_name("nope"), None);
    }

    #[test]
    fn codec_round_trip() {
        use drams_crypto::codec::{Decode, Encode};
        for alg in CombiningAlg::ALL {
            let bytes = alg.to_canonical_bytes();
            assert_eq!(CombiningAlg::from_canonical_bytes(&bytes).unwrap(), alg);
        }
    }
}
