//! Access decisions, obligations and PDP responses.

use crate::attr::AttributeValue;
use drams_crypto::codec::{decode_seq, Decode, Encode, Reader, Writer};
use drams_crypto::CryptoError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The effect a rule produces when it applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effect {
    /// Grant the request.
    Permit,
    /// Refuse the request.
    Deny,
}

impl Effect {
    /// The opposite effect.
    #[must_use]
    pub fn opposite(self) -> Effect {
        match self {
            Effect::Permit => Effect::Deny,
            Effect::Deny => Effect::Permit,
        }
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Permit => f.write_str("permit"),
            Effect::Deny => f.write_str("deny"),
        }
    }
}

/// XACML 3.0 *extended* decision, distinguishing the potential effects an
/// `Indeterminate` could have produced. Combining algorithms operate on
/// this type; the wire-level [`Decision`] collapses the three flavours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtDecision {
    /// Definitive permit.
    Permit,
    /// Definitive deny.
    Deny,
    /// The element does not apply to the request.
    NotApplicable,
    /// Error; had it evaluated, the result could only have been Permit.
    IndeterminateP,
    /// Error; had it evaluated, the result could only have been Deny.
    IndeterminateD,
    /// Error; the result could have been either.
    IndeterminateDP,
}

impl ExtDecision {
    /// Collapses to the four-valued wire decision.
    #[must_use]
    pub fn to_decision(self) -> Decision {
        match self {
            ExtDecision::Permit => Decision::Permit,
            ExtDecision::Deny => Decision::Deny,
            ExtDecision::NotApplicable => Decision::NotApplicable,
            _ => Decision::Indeterminate,
        }
    }

    /// The indeterminate flavour carrying this effect.
    #[must_use]
    pub fn indeterminate_for(effect: Effect) -> ExtDecision {
        match effect {
            Effect::Permit => ExtDecision::IndeterminateP,
            Effect::Deny => ExtDecision::IndeterminateD,
        }
    }

    /// True for any of the three indeterminate flavours.
    #[must_use]
    pub fn is_indeterminate(self) -> bool {
        matches!(
            self,
            ExtDecision::IndeterminateP
                | ExtDecision::IndeterminateD
                | ExtDecision::IndeterminateDP
        )
    }
}

impl fmt::Display for ExtDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExtDecision::Permit => "Permit",
            ExtDecision::Deny => "Deny",
            ExtDecision::NotApplicable => "NotApplicable",
            ExtDecision::IndeterminateP => "Indeterminate{P}",
            ExtDecision::IndeterminateD => "Indeterminate{D}",
            ExtDecision::IndeterminateDP => "Indeterminate{DP}",
        };
        f.write_str(s)
    }
}

/// The four-valued XACML decision returned to the PEP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Decision {
    /// Grant.
    Permit,
    /// Refuse.
    Deny,
    /// No policy applied.
    NotApplicable,
    /// Evaluation error.
    Indeterminate,
}

impl Decision {
    fn code(self) -> u8 {
        match self {
            Decision::Permit => 0,
            Decision::Deny => 1,
            Decision::NotApplicable => 2,
            Decision::Indeterminate => 3,
        }
    }

    fn from_code(code: u8) -> Result<Decision, CryptoError> {
        match code {
            0 => Ok(Decision::Permit),
            1 => Ok(Decision::Deny),
            2 => Ok(Decision::NotApplicable),
            3 => Ok(Decision::Indeterminate),
            other => Err(CryptoError::Malformed(format!("decision code {other}"))),
        }
    }
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Decision::Permit => "Permit",
            Decision::Deny => "Deny",
            Decision::NotApplicable => "NotApplicable",
            Decision::Indeterminate => "Indeterminate",
        };
        f.write_str(s)
    }
}

/// An obligation attached to a decision: an action the PEP must discharge
/// when enforcing (e.g. "write an audit record", "notify the data owner").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Obligation {
    /// Obligation identifier, e.g. `log-access`.
    pub id: String,
    /// When this obligation applies.
    pub fulfill_on: Effect,
    /// Static arguments.
    pub args: Vec<AttributeValue>,
}

impl Obligation {
    /// Creates an obligation with no arguments.
    pub fn new(id: impl Into<String>, fulfill_on: Effect) -> Self {
        Obligation {
            id: id.into(),
            fulfill_on,
            args: Vec::new(),
        }
    }

    /// Adds an argument (builder style).
    #[must_use]
    pub fn with_arg(mut self, arg: impl Into<AttributeValue>) -> Self {
        self.args.push(arg.into());
        self
    }
}

/// The full response a PDP returns for one request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// The four-valued decision.
    pub decision: Decision,
    /// The extended decision (diagnostic detail).
    pub extended: ExtDecision,
    /// Obligations the PEP must fulfil, in document order.
    pub obligations: Vec<Obligation>,
}

impl Response {
    /// Builds a response from an extended decision and obligations.
    #[must_use]
    pub fn new(extended: ExtDecision, obligations: Vec<Obligation>) -> Self {
        Response {
            decision: extended.to_decision(),
            extended,
            obligations,
        }
    }

    /// True when the decision is `Permit`.
    #[must_use]
    pub fn is_permit(&self) -> bool {
        self.decision == Decision::Permit
    }
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.extended)?;
        if !self.obligations.is_empty() {
            write!(f, " [")?;
            for (i, o) in self.obligations.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", o.id)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

// ---- canonical encoding ----------------------------------------------------

impl Encode for Effect {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self {
            Effect::Permit => 0,
            Effect::Deny => 1,
        });
    }
}

impl Decode for Effect {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match r.get_u8()? {
            0 => Ok(Effect::Permit),
            1 => Ok(Effect::Deny),
            other => Err(CryptoError::Malformed(format!("effect code {other}"))),
        }
    }
}

impl Encode for Decision {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.code());
    }
}

impl Decode for Decision {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        Decision::from_code(r.get_u8()?)
    }
}

impl Encode for ExtDecision {
    fn encode(&self, w: &mut Writer) {
        let code = match self {
            ExtDecision::Permit => 0,
            ExtDecision::Deny => 1,
            ExtDecision::NotApplicable => 2,
            ExtDecision::IndeterminateP => 3,
            ExtDecision::IndeterminateD => 4,
            ExtDecision::IndeterminateDP => 5,
        };
        w.put_u8(code);
    }
}

impl Decode for ExtDecision {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match r.get_u8()? {
            0 => Ok(ExtDecision::Permit),
            1 => Ok(ExtDecision::Deny),
            2 => Ok(ExtDecision::NotApplicable),
            3 => Ok(ExtDecision::IndeterminateP),
            4 => Ok(ExtDecision::IndeterminateD),
            5 => Ok(ExtDecision::IndeterminateDP),
            other => Err(CryptoError::Malformed(format!("ext decision code {other}"))),
        }
    }
}

impl Encode for Obligation {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.id);
        self.fulfill_on.encode(w);
        w.put_varint(self.args.len() as u64);
        for a in &self.args {
            a.encode(w);
        }
    }
}

impl Decode for Obligation {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let id = r.get_str()?;
        let fulfill_on = Effect::decode(r)?;
        let args = decode_seq(r)?;
        Ok(Obligation {
            id,
            fulfill_on,
            args,
        })
    }
}

impl Encode for Response {
    fn encode(&self, w: &mut Writer) {
        self.decision.encode(w);
        self.extended.encode(w);
        w.put_varint(self.obligations.len() as u64);
        for o in &self.obligations {
            o.encode(w);
        }
    }
}

impl Decode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let decision = Decision::decode(r)?;
        let extended = ExtDecision::decode(r)?;
        let obligations = decode_seq(r)?;
        // Enforce internal consistency on decode: the four-valued decision
        // must match the extended one (canonicality).
        if extended.to_decision() != decision {
            return Err(CryptoError::Malformed(
                "response decision/extended mismatch".into(),
            ));
        }
        Ok(Response {
            decision,
            extended,
            obligations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drams_crypto::codec::{Decode, Encode};

    #[test]
    fn extended_collapses_correctly() {
        assert_eq!(ExtDecision::Permit.to_decision(), Decision::Permit);
        assert_eq!(ExtDecision::Deny.to_decision(), Decision::Deny);
        assert_eq!(
            ExtDecision::NotApplicable.to_decision(),
            Decision::NotApplicable
        );
        for d in [
            ExtDecision::IndeterminateP,
            ExtDecision::IndeterminateD,
            ExtDecision::IndeterminateDP,
        ] {
            assert_eq!(d.to_decision(), Decision::Indeterminate);
            assert!(d.is_indeterminate());
        }
    }

    #[test]
    fn indeterminate_for_effect() {
        assert_eq!(
            ExtDecision::indeterminate_for(Effect::Permit),
            ExtDecision::IndeterminateP
        );
        assert_eq!(
            ExtDecision::indeterminate_for(Effect::Deny),
            ExtDecision::IndeterminateD
        );
    }

    #[test]
    fn effect_opposite() {
        assert_eq!(Effect::Permit.opposite(), Effect::Deny);
        assert_eq!(Effect::Deny.opposite(), Effect::Permit);
    }

    #[test]
    fn response_round_trip() {
        let resp = Response::new(
            ExtDecision::Permit,
            vec![
                Obligation::new("log-access", Effect::Permit).with_arg("audit"),
                Obligation::new("notify", Effect::Permit).with_arg(3i64),
            ],
        );
        let bytes = resp.to_canonical_bytes();
        assert_eq!(Response::from_canonical_bytes(&bytes).unwrap(), resp);
    }

    #[test]
    fn decode_rejects_inconsistent_response() {
        let resp = Response::new(ExtDecision::Permit, vec![]);
        let mut bytes = resp.to_canonical_bytes();
        bytes[0] = 1; // flip Decision to Deny, leave extended as Permit
        assert!(Response::from_canonical_bytes(&bytes).is_err());
    }

    #[test]
    fn response_digests_differ_on_decision() {
        // The monitor contract's response-tamper check depends on this.
        let permit = Response::new(ExtDecision::Permit, vec![]);
        let deny = Response::new(ExtDecision::Deny, vec![]);
        assert_ne!(permit.canonical_digest(), deny.canonical_digest());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            ExtDecision::IndeterminateDP.to_string(),
            "Indeterminate{DP}"
        );
        let r = Response::new(
            ExtDecision::Deny,
            vec![Obligation::new("alert", Effect::Deny)],
        );
        assert_eq!(r.to_string(), "Deny [alert]");
    }
}
