//! Expression language for targets and conditions.
//!
//! A small, total functional language in the style of FACPL (ref \[8\] of the
//! paper): function applications over literals and attribute designators.
//! Evaluation is three-valued — an expression yields a value, or an
//! *error* (missing attribute / type mismatch) which policy evaluation
//! maps to the XACML `Indeterminate` decisions.

use crate::attr::{AttributeId, AttributeValue, Request};
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::CryptoError;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Why an expression failed to evaluate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvalError {
    /// The request carries no value for the designated attribute.
    MissingAttribute(AttributeId),
    /// An operand had the wrong type for the function.
    TypeMismatch {
        /// The function being applied.
        function: String,
        /// Description of the offending operand.
        detail: String,
    },
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingAttribute(id) => write!(f, "missing attribute `{id}`"),
            EvalError::TypeMismatch { function, detail } => {
                write!(f, "type mismatch in `{function}`: {detail}")
            }
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A value produced by expression evaluation: a single value or a bag.
#[derive(Debug, Clone, PartialEq)]
pub enum Evaluated {
    /// A single attribute value.
    One(AttributeValue),
    /// A bag of values (attribute designators evaluate to bags).
    Bag(Vec<AttributeValue>),
}

/// Borrow-first evaluation result used internally by both the reference
/// interpreter and the compiled engine: literals and request bags are
/// *borrowed*, and owned values are materialised only for computed
/// function results. The public [`Evaluated`] is produced once, at the
/// top of [`Expr::eval`], instead of cloning at every node visit.
#[derive(Debug)]
pub(crate) enum ValueView<'a> {
    /// A single value (borrowed literal or owned function result).
    One(Cow<'a, AttributeValue>),
    /// A bag borrowed straight from the request.
    Bag(&'a [AttributeValue]),
}

impl<'a> ValueView<'a> {
    /// Collapses to a single value: singleton bags auto-coerce.
    pub(crate) fn single(self, function: &str) -> Result<Cow<'a, AttributeValue>, EvalError> {
        match self {
            ValueView::One(v) => Ok(v),
            ValueView::Bag(bag) if bag.len() == 1 => Ok(Cow::Borrowed(&bag[0])),
            ValueView::Bag(bag) => Err(EvalError::TypeMismatch {
                function: function.to_string(),
                detail: format!("expected a single value, got a bag of {}", bag.len()),
            }),
        }
    }

    /// Bag cardinality (single values count as singleton bags).
    fn bag_len(&self) -> usize {
        match self {
            ValueView::One(_) => 1,
            ValueView::Bag(bag) => bag.len(),
        }
    }

    /// Membership test against the bag view (single values are singleton
    /// bags).
    fn contains(&self, needle: &AttributeValue) -> bool {
        match self {
            ValueView::One(v) => v.as_ref() == needle,
            ValueView::Bag(bag) => bag.contains(needle),
        }
    }

    fn into_evaluated(self) -> Evaluated {
        match self {
            ValueView::One(v) => Evaluated::One(v.into_owned()),
            ValueView::Bag(bag) => Evaluated::Bag(bag.to_vec()),
        }
    }
}

/// Built-in function identifiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Func {
    /// Polymorphic equality (numeric coercion between Int and Double).
    Equal,
    /// Negated equality.
    NotEqual,
    /// Numeric or string `<`.
    Less,
    /// Numeric or string `<=`.
    LessEq,
    /// Numeric or string `>`.
    Greater,
    /// Numeric or string `>=`.
    GreaterEq,
    /// `in(x, bag)` — membership test.
    In,
    /// Logical conjunction (strict three-valued: errors propagate unless a
    /// `false` operand short-circuits them).
    And,
    /// Logical disjunction (dual of [`Func::And`]).
    Or,
    /// Logical negation.
    Not,
    /// Numeric addition.
    Add,
    /// Numeric subtraction.
    Sub,
    /// Numeric multiplication.
    Mul,
    /// Numeric division.
    Div,
    /// String prefix test.
    StartsWith,
    /// Substring test.
    Contains,
    /// Bag size.
    Size,
}

impl Func {
    /// Canonical name used by the parser and pretty-printer.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Func::Equal => "equal",
            Func::NotEqual => "not-equal",
            Func::Less => "less",
            Func::LessEq => "less-eq",
            Func::Greater => "greater",
            Func::GreaterEq => "greater-eq",
            Func::In => "in",
            Func::And => "and",
            Func::Or => "or",
            Func::Not => "not",
            Func::Add => "add",
            Func::Sub => "sub",
            Func::Mul => "mul",
            Func::Div => "div",
            Func::StartsWith => "starts-with",
            Func::Contains => "contains",
            Func::Size => "size",
        }
    }

    /// Looks a function up by name.
    #[must_use]
    pub fn by_name(name: &str) -> Option<Func> {
        Some(match name {
            "equal" => Func::Equal,
            "not-equal" => Func::NotEqual,
            "less" => Func::Less,
            "less-eq" => Func::LessEq,
            "greater" => Func::Greater,
            "greater-eq" => Func::GreaterEq,
            "in" => Func::In,
            "and" => Func::And,
            "or" => Func::Or,
            "not" => Func::Not,
            "add" => Func::Add,
            "sub" => Func::Sub,
            "mul" => Func::Mul,
            "div" => Func::Div,
            "starts-with" => Func::StartsWith,
            "contains" => Func::Contains,
            "size" => Func::Size,
            _ => return None,
        })
    }

    /// All functions (used by generators and the analyser).
    pub const ALL: [Func; 17] = [
        Func::Equal,
        Func::NotEqual,
        Func::Less,
        Func::LessEq,
        Func::Greater,
        Func::GreaterEq,
        Func::In,
        Func::And,
        Func::Or,
        Func::Not,
        Func::Add,
        Func::Sub,
        Func::Mul,
        Func::Div,
        Func::StartsWith,
        Func::Contains,
        Func::Size,
    ];

    fn code(self) -> u8 {
        Func::ALL.iter().position(|f| *f == self).unwrap() as u8
    }

    fn from_code(code: u8) -> Result<Func, CryptoError> {
        Func::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| CryptoError::Malformed(format!("function code {code}")))
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Lit(AttributeValue),
    /// An attribute designator — evaluates to the request's bag.
    Attr(AttributeId),
    /// Function application.
    Apply(Func, Vec<Expr>),
}

impl Expr {
    /// Literal constructor.
    pub fn lit(v: impl Into<AttributeValue>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Attribute designator constructor.
    #[must_use]
    pub fn attr(id: AttributeId) -> Expr {
        Expr::Attr(id)
    }

    /// `equal(a, b)` convenience constructor.
    #[must_use]
    pub fn equal(a: Expr, b: Expr) -> Expr {
        Expr::Apply(Func::Equal, vec![a, b])
    }

    /// `and(...)` convenience constructor.
    #[must_use]
    pub fn and(operands: Vec<Expr>) -> Expr {
        Expr::Apply(Func::And, operands)
    }

    /// `or(...)` convenience constructor.
    #[must_use]
    pub fn or(operands: Vec<Expr>) -> Expr {
        Expr::Apply(Func::Or, operands)
    }

    /// `not(x)` convenience constructor.
    #[must_use]
    pub fn not(x: Expr) -> Expr {
        Expr::Apply(Func::Not, vec![x])
    }

    /// Evaluates against a request.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for missing attributes, type mismatches or
    /// division by zero — policy evaluation maps these to `Indeterminate`.
    pub fn eval(&self, request: &Request) -> Result<Evaluated, EvalError> {
        Ok(self.eval_view(request)?.into_evaluated())
    }

    /// Borrow-first evaluation: no literal or bag is cloned on the way
    /// down; owned values exist only for computed function results.
    pub(crate) fn eval_view<'a>(
        &'a self,
        request: &'a Request,
    ) -> Result<ValueView<'a>, EvalError> {
        match self {
            Expr::Lit(v) => Ok(ValueView::One(Cow::Borrowed(v))),
            Expr::Attr(id) => {
                let bag = request.bag_by_id(id);
                if bag.is_empty() {
                    Err(EvalError::MissingAttribute(id.clone()))
                } else {
                    Ok(ValueView::Bag(bag))
                }
            }
            Expr::Apply(func, args) => apply_func(
                *func,
                args.len(),
                &mut |i| args[i].eval_view(request),
                &mut |i| match &args[i] {
                    Expr::Attr(id) => Some(request.bag_by_id(id).len()),
                    _ => None,
                },
            ),
        }
    }

    /// Evaluates and coerces to a boolean (the shape conditions need).
    ///
    /// # Errors
    ///
    /// As [`Expr::eval`], plus a type mismatch when the result is not
    /// boolean.
    pub fn eval_bool(&self, request: &Request) -> Result<bool, EvalError> {
        bool_result(self.eval_view(request)?)
    }

    /// All attribute ids referenced by this expression.
    #[must_use]
    pub fn referenced_attributes(&self) -> Vec<AttributeId> {
        let mut out = Vec::new();
        self.collect_attrs(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_attrs(&self, out: &mut Vec<AttributeId>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Attr(id) => out.push(id.clone()),
            Expr::Apply(_, args) => {
                for a in args {
                    a.collect_attrs(out);
                }
            }
        }
    }

    /// Structural size (node count) — used by workload generators to
    /// calibrate policy complexity.
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Expr::Lit(_) | Expr::Attr(_) => 1,
            Expr::Apply(_, args) => 1 + args.iter().map(Expr::size).sum::<usize>(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Attr(id) => write!(f, "{id}"),
            Expr::Apply(func, args) => {
                write!(f, "{}(", func.name())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn arity_error(func: Func, expected: &str, got: usize) -> EvalError {
    EvalError::TypeMismatch {
        function: func.name().to_string(),
        detail: format!("expected {expected} arguments, got {got}"),
    }
}

/// Coerces an evaluated view to the boolean shape conditions need.
pub(crate) fn bool_result(view: ValueView<'_>) -> Result<bool, EvalError> {
    match view.single("condition")?.as_ref() {
        AttributeValue::Bool(b) => Ok(*b),
        other => Err(EvalError::TypeMismatch {
            function: "condition".to_string(),
            detail: format!("expected bool, got {}", other.type_name()),
        }),
    }
}

/// Applies a built-in function over lazily-evaluated arguments.
///
/// This is the single source of truth for function semantics, shared by
/// the tree-walking reference interpreter and the compiled engine
/// (`crate::compiled`): `eval_arg(i)` evaluates the `i`-th argument on
/// demand, and `attr_bag_len(i)` reports the request bag length when the
/// `i`-th argument is a bare attribute designator (the `size()` special
/// case, which must not error on missing attributes).
pub(crate) fn apply_func<'a, E, L>(
    func: Func,
    argc: usize,
    eval_arg: &mut E,
    attr_bag_len: &mut L,
) -> Result<ValueView<'a>, EvalError>
where
    E: FnMut(usize) -> Result<ValueView<'a>, EvalError>,
    L: FnMut(usize) -> Option<usize>,
{
    use AttributeValue as V;
    let one = |v: V| Ok(ValueView::One(Cow::Owned(v)));
    match func {
        Func::Equal | Func::NotEqual => {
            if argc != 2 {
                return Err(arity_error(func, "2", argc));
            }
            let a = eval_arg(0)?.single(func.name())?;
            let b = eval_arg(1)?.single(func.name())?;
            let eq = a.as_ref() == b.as_ref();
            one(V::Bool(if func == Func::Equal { eq } else { !eq }))
        }
        Func::Less | Func::LessEq | Func::Greater | Func::GreaterEq => {
            if argc != 2 {
                return Err(arity_error(func, "2", argc));
            }
            let a = eval_arg(0)?.single(func.name())?;
            let b = eval_arg(1)?.single(func.name())?;
            let ord = compare(func, a.as_ref(), b.as_ref())?;
            one(V::Bool(ord))
        }
        Func::In => {
            if argc != 2 {
                return Err(arity_error(func, "2", argc));
            }
            let needle = eval_arg(0)?.single(func.name())?;
            let bag = eval_arg(1)?;
            one(V::Bool(bag.contains(needle.as_ref())))
        }
        Func::And | Func::Or => {
            if argc == 0 {
                return Err(arity_error(func, "≥1", 0));
            }
            // Three-valued logic: a dominant operand (false for and, true
            // for or) short-circuits even in the presence of errors in
            // other operands; otherwise errors propagate.
            let dominant = func == Func::Or;
            let mut saw_error: Option<EvalError> = None;
            for i in 0..argc {
                match eval_arg(i).and_then(|v| match v.single(func.name())?.as_ref() {
                    V::Bool(b) => Ok(*b),
                    other => Err(EvalError::TypeMismatch {
                        function: func.name().to_string(),
                        detail: format!("expected bool operand, got {}", other.type_name()),
                    }),
                }) {
                    Ok(b) if b == dominant => return one(V::Bool(dominant)),
                    Ok(_) => {}
                    Err(e) => saw_error = Some(saw_error.unwrap_or(e)),
                }
            }
            match saw_error {
                Some(e) => Err(e),
                None => one(V::Bool(!dominant)),
            }
        }
        Func::Not => {
            if argc != 1 {
                return Err(arity_error(func, "1", argc));
            }
            match eval_arg(0)?.single(func.name())?.as_ref() {
                V::Bool(b) => one(V::Bool(!b)),
                other => Err(EvalError::TypeMismatch {
                    function: "not".to_string(),
                    detail: format!("expected bool, got {}", other.type_name()),
                }),
            }
        }
        Func::Add | Func::Sub | Func::Mul | Func::Div => {
            if argc != 2 {
                return Err(arity_error(func, "2", argc));
            }
            let a = eval_arg(0)?.single(func.name())?;
            let b = eval_arg(1)?.single(func.name())?;
            one(arithmetic(func, a.as_ref(), b.as_ref())?)
        }
        Func::StartsWith | Func::Contains => {
            if argc != 2 {
                return Err(arity_error(func, "2", argc));
            }
            let a = eval_arg(0)?.single(func.name())?;
            let b = eval_arg(1)?.single(func.name())?;
            match (a.as_ref(), b.as_ref()) {
                (V::Str(hay), V::Str(needle)) => {
                    let result = if func == Func::StartsWith {
                        hay.starts_with(needle.as_str())
                    } else {
                        hay.contains(needle.as_str())
                    };
                    one(V::Bool(result))
                }
                _ => Err(EvalError::TypeMismatch {
                    function: func.name().to_string(),
                    detail: format!(
                        "expected strings, got {} and {}",
                        a.type_name(),
                        b.type_name()
                    ),
                }),
            }
        }
        Func::Size => {
            if argc != 1 {
                return Err(arity_error(func, "1", argc));
            }
            // size() of a missing attribute is 0, not an error — this lets
            // policies test for attribute presence.
            let n = match attr_bag_len(0) {
                Some(n) => n,
                None => eval_arg(0)?.bag_len(),
            };
            one(V::Int(n as i64))
        }
    }
}

pub(crate) fn compare(
    func: Func,
    a: &AttributeValue,
    b: &AttributeValue,
) -> Result<bool, EvalError> {
    use std::cmp::Ordering;
    use AttributeValue as V;
    let ord = match (a, b) {
        (V::Str(x), V::Str(y)) => x.cmp(y),
        _ => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(EvalError::TypeMismatch {
                        function: func.name().to_string(),
                        detail: format!("cannot compare {} with {}", a.type_name(), b.type_name()),
                    })
                }
            };
            x.partial_cmp(&y).unwrap_or(Ordering::Equal)
        }
    };
    Ok(match func {
        Func::Less => ord == Ordering::Less,
        Func::LessEq => ord != Ordering::Greater,
        Func::Greater => ord == Ordering::Greater,
        Func::GreaterEq => ord != Ordering::Less,
        _ => unreachable!("compare called with non-comparison function"),
    })
}

pub(crate) fn arithmetic(
    func: Func,
    a: &AttributeValue,
    b: &AttributeValue,
) -> Result<AttributeValue, EvalError> {
    use AttributeValue as V;
    // Int op Int stays Int (except division, which promotes); otherwise Double.
    match (a, b) {
        (V::Int(x), V::Int(y)) if func != Func::Div => {
            let r = match func {
                Func::Add => x.wrapping_add(*y),
                Func::Sub => x.wrapping_sub(*y),
                Func::Mul => x.wrapping_mul(*y),
                _ => unreachable!(),
            };
            Ok(V::Int(r))
        }
        _ => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(EvalError::TypeMismatch {
                        function: func.name().to_string(),
                        detail: format!(
                            "expected numbers, got {} and {}",
                            a.type_name(),
                            b.type_name()
                        ),
                    })
                }
            };
            if func == Func::Div && y == 0.0 {
                return Err(EvalError::DivisionByZero);
            }
            let r = match func {
                Func::Add => x + y,
                Func::Sub => x - y,
                Func::Mul => x * y,
                Func::Div => x / y,
                _ => unreachable!(),
            };
            Ok(V::Double(r))
        }
    }
}

// ---- canonical encoding ----------------------------------------------------

impl Encode for Expr {
    fn encode(&self, w: &mut Writer) {
        match self {
            Expr::Lit(v) => {
                w.put_u8(0);
                v.encode(w);
            }
            Expr::Attr(id) => {
                w.put_u8(1);
                id.encode(w);
            }
            Expr::Apply(func, args) => {
                w.put_u8(2);
                w.put_u8(func.code());
                w.put_varint(args.len() as u64);
                for a in args {
                    a.encode(w);
                }
            }
        }
    }
}

impl Decode for Expr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match r.get_u8()? {
            0 => Ok(Expr::Lit(AttributeValue::decode(r)?)),
            1 => Ok(Expr::Attr(AttributeId::decode(r)?)),
            2 => {
                let func = Func::from_code(r.get_u8()?)?;
                let n = r.get_varint()? as usize;
                if n > r.remaining() {
                    return Err(CryptoError::Malformed("expr arity too large".into()));
                }
                let mut args = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    args.push(Expr::decode(r)?);
                }
                Ok(Expr::Apply(func, args))
            }
            other => Err(CryptoError::Malformed(format!("expr tag {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Category;
    use drams_crypto::codec::{Decode, Encode};

    fn req() -> Request {
        Request::builder()
            .subject("role", "doctor")
            .subject("dept", "cardio")
            .action("id", "read")
            .environment("hour", 14i64)
            .environment("load", 0.5)
            .build()
    }

    fn attr(cat: Category, name: &str) -> Expr {
        Expr::attr(AttributeId::new(cat, name))
    }

    #[test]
    fn literal_evaluates_to_itself() {
        let e = Expr::lit(42i64);
        assert_eq!(
            e.eval(&req()).unwrap(),
            Evaluated::One(AttributeValue::Int(42))
        );
    }

    #[test]
    fn equal_on_attribute() {
        let e = Expr::equal(attr(Category::Subject, "role"), Expr::lit("doctor"));
        assert_eq!(e.eval_bool(&req()).unwrap(), true);
        let e2 = Expr::equal(attr(Category::Subject, "role"), Expr::lit("nurse"));
        assert_eq!(e2.eval_bool(&req()).unwrap(), false);
    }

    #[test]
    fn missing_attribute_is_error() {
        let e = Expr::equal(attr(Category::Subject, "ghost"), Expr::lit("x"));
        assert!(matches!(
            e.eval_bool(&req()),
            Err(EvalError::MissingAttribute(_))
        ));
    }

    #[test]
    fn numeric_comparisons() {
        let h = attr(Category::Environment, "hour");
        assert!(Expr::Apply(Func::Less, vec![h.clone(), Expr::lit(18i64)])
            .eval_bool(&req())
            .unwrap());
        assert!(
            Expr::Apply(Func::GreaterEq, vec![h.clone(), Expr::lit(14i64)])
                .eval_bool(&req())
                .unwrap()
        );
        // int vs double coercion
        assert!(Expr::Apply(Func::Greater, vec![h, Expr::lit(13.5)])
            .eval_bool(&req())
            .unwrap());
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        let e = Expr::Apply(Func::Less, vec![Expr::lit("abc"), Expr::lit("abd")]);
        assert!(e.eval_bool(&req()).unwrap());
    }

    #[test]
    fn cross_type_comparison_errors() {
        let e = Expr::Apply(Func::Less, vec![Expr::lit("abc"), Expr::lit(3i64)]);
        assert!(matches!(
            e.eval_bool(&req()),
            Err(EvalError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn in_checks_bag_membership() {
        let e = Expr::Apply(
            Func::In,
            vec![Expr::lit("cardio"), attr(Category::Subject, "dept")],
        );
        assert!(e.eval_bool(&req()).unwrap());
        let e2 = Expr::Apply(
            Func::In,
            vec![Expr::lit("neuro"), attr(Category::Subject, "dept")],
        );
        assert!(!e2.eval_bool(&req()).unwrap());
    }

    #[test]
    fn and_or_short_circuit_over_errors() {
        let missing = Expr::equal(attr(Category::Subject, "ghost"), Expr::lit(1i64));
        // and(false, error) = false
        let e = Expr::and(vec![Expr::lit(false), missing.clone()]);
        assert_eq!(e.eval_bool(&req()).unwrap(), false);
        // or(true, error) = true
        let e = Expr::or(vec![Expr::lit(true), missing.clone()]);
        assert_eq!(e.eval_bool(&req()).unwrap(), true);
        // and(true, error) = error
        let e = Expr::and(vec![Expr::lit(true), missing.clone()]);
        assert!(e.eval_bool(&req()).is_err());
        // or(false, error) = error
        let e = Expr::or(vec![Expr::lit(false), missing]);
        assert!(e.eval_bool(&req()).is_err());
    }

    #[test]
    fn not_negates() {
        assert_eq!(Expr::not(Expr::lit(true)).eval_bool(&req()).unwrap(), false);
        assert!(Expr::not(Expr::lit(1i64)).eval_bool(&req()).is_err());
    }

    #[test]
    fn arithmetic_works() {
        let e = Expr::Apply(Func::Add, vec![Expr::lit(2i64), Expr::lit(3i64)]);
        assert_eq!(
            e.eval(&req()).unwrap(),
            Evaluated::One(AttributeValue::Int(5))
        );
        let e = Expr::Apply(Func::Div, vec![Expr::lit(7i64), Expr::lit(2i64)]);
        assert_eq!(
            e.eval(&req()).unwrap(),
            Evaluated::One(AttributeValue::Double(3.5))
        );
        let e = Expr::Apply(Func::Div, vec![Expr::lit(1i64), Expr::lit(0i64)]);
        assert_eq!(e.eval(&req()), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn string_functions() {
        let e = Expr::Apply(
            Func::StartsWith,
            vec![attr(Category::Subject, "dept"), Expr::lit("car")],
        );
        assert!(e.eval_bool(&req()).unwrap());
        let e = Expr::Apply(
            Func::Contains,
            vec![attr(Category::Subject, "dept"), Expr::lit("ardi")],
        );
        assert!(e.eval_bool(&req()).unwrap());
    }

    #[test]
    fn size_handles_missing_gracefully() {
        let e = Expr::Apply(Func::Size, vec![attr(Category::Subject, "ghost")]);
        assert_eq!(
            e.eval(&req()).unwrap(),
            Evaluated::One(AttributeValue::Int(0))
        );
        let e = Expr::Apply(Func::Size, vec![attr(Category::Subject, "role")]);
        assert_eq!(
            e.eval(&req()).unwrap(),
            Evaluated::One(AttributeValue::Int(1))
        );
    }

    #[test]
    fn referenced_attributes_collects_and_dedups() {
        let role = attr(Category::Subject, "role");
        let e = Expr::and(vec![
            Expr::equal(role.clone(), Expr::lit("a")),
            Expr::equal(role, Expr::lit("b")),
            Expr::equal(attr(Category::Action, "id"), Expr::lit("read")),
        ]);
        let attrs = e.referenced_attributes();
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn display_round_trips_conceptually() {
        let e = Expr::and(vec![
            Expr::equal(attr(Category::Subject, "role"), Expr::lit("doctor")),
            Expr::Apply(
                Func::Less,
                vec![attr(Category::Environment, "hour"), Expr::lit(18i64)],
            ),
        ]);
        assert_eq!(
            e.to_string(),
            "and(equal(subject.role, \"doctor\"), less(environment.hour, 18))"
        );
    }

    #[test]
    fn codec_round_trip() {
        let e = Expr::and(vec![
            Expr::equal(attr(Category::Subject, "role"), Expr::lit("doctor")),
            Expr::not(Expr::Apply(
                Func::In,
                vec![Expr::lit("x"), attr(Category::Resource, "tags")],
            )),
            Expr::Apply(Func::Add, vec![Expr::lit(1.5), Expr::lit(2i64)]),
        ]);
        let bytes = e.to_canonical_bytes();
        assert_eq!(Expr::from_canonical_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn wrong_arity_is_type_error() {
        let e = Expr::Apply(Func::Equal, vec![Expr::lit(1i64)]);
        assert!(matches!(
            e.eval(&req()),
            Err(EvalError::TypeMismatch { .. })
        ));
        let e = Expr::Apply(Func::Not, vec![]);
        assert!(e.eval(&req()).is_err());
    }

    #[test]
    fn size_counts_expression_nodes() {
        let e = Expr::and(vec![Expr::lit(true), Expr::lit(false)]);
        assert_eq!(e.size(), 3);
    }
}
