//! Policies and policy sets — the interior nodes of the policy tree.

use crate::attr::Request;
use crate::combining::{combine, Combinable, CombiningAlg};
use crate::decision::{Effect, ExtDecision, Obligation};
use crate::rule::Rule;
use crate::target::{MatchResult, Target};
use drams_crypto::codec::{decode_seq, Decode, Encode, Reader, Writer};
use drams_crypto::sha256::Digest;
use drams_crypto::CryptoError;
use serde::{Deserialize, Serialize};

/// A policy: a target, a rule-combining algorithm and a list of rules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    /// Policy identifier, unique within its parent.
    pub id: String,
    /// Applicability target.
    pub target: Target,
    /// How rule decisions are combined.
    pub algorithm: CombiningAlg,
    /// The rules, in document order.
    pub rules: Vec<Rule>,
    /// Policy-level obligations.
    pub obligations: Vec<Obligation>,
}

impl Policy {
    /// Starts building a policy.
    pub fn builder(id: impl Into<String>, algorithm: CombiningAlg) -> PolicyBuilder {
        PolicyBuilder {
            policy: Policy {
                id: id.into(),
                target: Target::Any,
                algorithm,
                rules: Vec::new(),
                obligations: Vec::new(),
            },
        }
    }

    /// Evaluates this policy (XACML 3.0 §7.12).
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> (ExtDecision, Vec<Obligation>) {
        evaluate_node(
            &self.target,
            self.algorithm,
            &self.rules,
            &self.obligations,
            request,
        )
    }

    /// All attribute ids referenced anywhere inside.
    #[must_use]
    pub fn referenced_attributes(&self) -> Vec<crate::attr::AttributeId> {
        let mut out = self.target.referenced_attributes();
        for r in &self.rules {
            out.extend(r.referenced_attributes());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Structural size.
    #[must_use]
    pub fn size(&self) -> usize {
        self.target.size() + self.rules.iter().map(Rule::size).sum::<usize>() + 1
    }
}

/// Builder for [`Policy`].
#[derive(Debug)]
pub struct PolicyBuilder {
    policy: Policy,
}

impl PolicyBuilder {
    /// Sets the target.
    #[must_use]
    pub fn target(mut self, target: Target) -> Self {
        self.policy.target = target;
        self
    }

    /// Appends a rule.
    #[must_use]
    pub fn rule(mut self, rule: Rule) -> Self {
        self.policy.rules.push(rule);
        self
    }

    /// Appends a policy-level obligation.
    #[must_use]
    pub fn obligation(mut self, obligation: Obligation) -> Self {
        self.policy.obligations.push(obligation);
        self
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> Policy {
        self.policy
    }
}

/// A child of a policy set: either a policy or a nested policy set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyChild {
    /// A leaf policy.
    Policy(Policy),
    /// A nested policy set.
    Set(PolicySet),
}

impl PolicyChild {
    /// The child's identifier.
    #[must_use]
    pub fn id(&self) -> &str {
        match self {
            PolicyChild::Policy(p) => &p.id,
            PolicyChild::Set(s) => &s.id,
        }
    }
}

/// A policy set: a target, a policy-combining algorithm and children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicySet {
    /// Identifier, unique within its parent.
    pub id: String,
    /// Applicability target.
    pub target: Target,
    /// How child decisions are combined.
    pub algorithm: CombiningAlg,
    /// Child policies / policy sets, in document order.
    pub children: Vec<PolicyChild>,
    /// Set-level obligations.
    pub obligations: Vec<Obligation>,
}

impl PolicySet {
    /// Starts building a policy set.
    pub fn builder(id: impl Into<String>, algorithm: CombiningAlg) -> PolicySetBuilder {
        PolicySetBuilder {
            set: PolicySet {
                id: id.into(),
                target: Target::Any,
                algorithm,
                children: Vec::new(),
                obligations: Vec::new(),
            },
        }
    }

    /// Evaluates this policy set.
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> (ExtDecision, Vec<Obligation>) {
        evaluate_node(
            &self.target,
            self.algorithm,
            &self.children,
            &self.obligations,
            request,
        )
    }

    /// All attribute ids referenced anywhere inside.
    #[must_use]
    pub fn referenced_attributes(&self) -> Vec<crate::attr::AttributeId> {
        let mut out = self.target.referenced_attributes();
        for c in &self.children {
            match c {
                PolicyChild::Policy(p) => out.extend(p.referenced_attributes()),
                PolicyChild::Set(s) => out.extend(s.referenced_attributes()),
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Structural size (expression nodes + elements).
    #[must_use]
    pub fn size(&self) -> usize {
        self.target.size()
            + self
                .children
                .iter()
                .map(|c| match c {
                    PolicyChild::Policy(p) => p.size(),
                    PolicyChild::Set(s) => s.size(),
                })
                .sum::<usize>()
            + 1
    }

    /// Total number of rules in the subtree.
    #[must_use]
    pub fn rule_count(&self) -> usize {
        self.children
            .iter()
            .map(|c| match c {
                PolicyChild::Policy(p) => p.rules.len(),
                PolicyChild::Set(s) => s.rule_count(),
            })
            .sum()
    }

    /// A version digest of the canonical encoding — this is the "policy
    /// version" the Analyser pins a logged decision to.
    #[must_use]
    pub fn version_digest(&self) -> Digest {
        self.canonical_digest()
    }
}

/// Builder for [`PolicySet`].
#[derive(Debug)]
pub struct PolicySetBuilder {
    set: PolicySet,
}

impl PolicySetBuilder {
    /// Sets the target.
    #[must_use]
    pub fn target(mut self, target: Target) -> Self {
        self.set.target = target;
        self
    }

    /// Appends a leaf policy.
    #[must_use]
    pub fn policy(mut self, policy: Policy) -> Self {
        self.set.children.push(PolicyChild::Policy(policy));
        self
    }

    /// Appends a nested policy set.
    #[must_use]
    pub fn set(mut self, set: PolicySet) -> Self {
        self.set.children.push(PolicyChild::Set(set));
        self
    }

    /// Appends a set-level obligation.
    #[must_use]
    pub fn obligation(mut self, obligation: Obligation) -> Self {
        self.set.obligations.push(obligation);
        self
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> PolicySet {
        self.set
    }
}

/// Shared Policy/PolicySet evaluation skeleton (XACML §7.12/§7.13):
/// target gating, child combining, own-obligation attachment and the
/// Indeterminate-target adjustment.
fn evaluate_node<C: Combinable>(
    target: &Target,
    algorithm: CombiningAlg,
    children: &[C],
    own_obligations: &[Obligation],
    request: &Request,
) -> (ExtDecision, Vec<Obligation>) {
    match target.matches(request) {
        MatchResult::NoMatch => (ExtDecision::NotApplicable, Vec::new()),
        MatchResult::Match => {
            let (d, mut obs) = combine(algorithm, children, request);
            let own_effect = match d {
                ExtDecision::Permit => Some(Effect::Permit),
                ExtDecision::Deny => Some(Effect::Deny),
                _ => None,
            };
            if let Some(effect) = own_effect {
                obs.extend(
                    own_obligations
                        .iter()
                        .filter(|o| o.fulfill_on == effect)
                        .cloned(),
                );
            } else {
                obs.clear();
            }
            (d, obs)
        }
        MatchResult::Indeterminate => {
            // Evaluate children anyway to determine the indeterminate
            // flavour (XACML 3.0 §7.12, table "Indeterminate" row).
            let (d, _) = combine(algorithm, children, request);
            let adjusted = match d {
                ExtDecision::NotApplicable => ExtDecision::NotApplicable,
                ExtDecision::Permit => ExtDecision::IndeterminateP,
                ExtDecision::Deny => ExtDecision::IndeterminateD,
                ind => ind,
            };
            (adjusted, Vec::new())
        }
    }
}

impl Combinable for Rule {
    fn applicability(&self, request: &Request) -> MatchResult {
        Rule::applicability(self, request)
    }
    fn evaluate(&self, request: &Request) -> (ExtDecision, Vec<Obligation>) {
        Rule::evaluate(self, request)
    }
}

impl Combinable for Policy {
    fn applicability(&self, request: &Request) -> MatchResult {
        self.target.matches(request)
    }
    fn evaluate(&self, request: &Request) -> (ExtDecision, Vec<Obligation>) {
        Policy::evaluate(self, request)
    }
}

impl Combinable for PolicyChild {
    fn applicability(&self, request: &Request) -> MatchResult {
        match self {
            PolicyChild::Policy(p) => p.target.matches(request),
            PolicyChild::Set(s) => s.target.matches(request),
        }
    }
    fn evaluate(&self, request: &Request) -> (ExtDecision, Vec<Obligation>) {
        match self {
            PolicyChild::Policy(p) => p.evaluate(request),
            PolicyChild::Set(s) => s.evaluate(request),
        }
    }
}

// ---- canonical encoding ----------------------------------------------------

impl Encode for Policy {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.id);
        self.target.encode(w);
        self.algorithm.encode(w);
        w.put_varint(self.rules.len() as u64);
        for r in &self.rules {
            r.encode(w);
        }
        w.put_varint(self.obligations.len() as u64);
        for o in &self.obligations {
            o.encode(w);
        }
    }
}

impl Decode for Policy {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let id = r.get_str()?;
        let target = Target::decode(r)?;
        let algorithm = CombiningAlg::decode(r)?;
        let rules = decode_seq(r)?;
        let obligations = decode_seq(r)?;
        Ok(Policy {
            id,
            target,
            algorithm,
            rules,
            obligations,
        })
    }
}

impl Encode for PolicyChild {
    fn encode(&self, w: &mut Writer) {
        match self {
            PolicyChild::Policy(p) => {
                w.put_u8(0);
                p.encode(w);
            }
            PolicyChild::Set(s) => {
                w.put_u8(1);
                s.encode(w);
            }
        }
    }
}

impl Decode for PolicyChild {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match r.get_u8()? {
            0 => Ok(PolicyChild::Policy(Policy::decode(r)?)),
            1 => Ok(PolicyChild::Set(PolicySet::decode(r)?)),
            other => Err(CryptoError::Malformed(format!("policy child tag {other}"))),
        }
    }
}

impl Encode for PolicySet {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.id);
        self.target.encode(w);
        self.algorithm.encode(w);
        w.put_varint(self.children.len() as u64);
        for c in &self.children {
            c.encode(w);
        }
        w.put_varint(self.obligations.len() as u64);
        for o in &self.obligations {
            o.encode(w);
        }
    }
}

impl Decode for PolicySet {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let id = r.get_str()?;
        let target = Target::decode(r)?;
        let algorithm = CombiningAlg::decode(r)?;
        let children = decode_seq(r)?;
        let obligations = decode_seq(r)?;
        Ok(PolicySet {
            id,
            target,
            algorithm,
            children,
            obligations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttributeId, Category};
    use crate::expr::Expr;

    fn role_target(val: &str) -> Target {
        Target::expr(Expr::equal(
            Expr::attr(AttributeId::new(Category::Subject, "role")),
            Expr::lit(val),
        ))
    }

    fn request(role: &str) -> Request {
        Request::builder().subject("role", role).build()
    }

    fn sample_policy() -> Policy {
        Policy::builder("doctors", CombiningAlg::DenyOverrides)
            .target(role_target("doctor"))
            .rule(
                Rule::builder("allow-read", Effect::Permit)
                    .target(Target::expr(Expr::equal(
                        Expr::attr(AttributeId::new(Category::Action, "id")),
                        Expr::lit("read"),
                    )))
                    .build(),
            )
            .rule(Rule::always("default-deny", Effect::Deny))
            .build()
    }

    #[test]
    fn policy_target_gates_rules() {
        let p = sample_policy();
        assert_eq!(p.evaluate(&request("nurse")).0, ExtDecision::NotApplicable);
    }

    #[test]
    fn deny_overrides_policy_denies_with_both_rules_firing() {
        let p = sample_policy();
        let req = Request::builder()
            .subject("role", "doctor")
            .action("id", "read")
            .build();
        // allow-read permits, default-deny denies; deny-overrides → Deny.
        assert_eq!(p.evaluate(&req).0, ExtDecision::Deny);
    }

    #[test]
    fn permit_overrides_policy_permits() {
        let mut p = sample_policy();
        p.algorithm = CombiningAlg::PermitOverrides;
        let req = Request::builder()
            .subject("role", "doctor")
            .action("id", "read")
            .build();
        assert_eq!(p.evaluate(&req).0, ExtDecision::Permit);
    }

    #[test]
    fn indeterminate_target_adjusts_flavour() {
        // Policy target references a missing attribute; rules would Permit.
        let p = Policy::builder("p", CombiningAlg::PermitOverrides)
            .target(Target::expr(Expr::equal(
                Expr::attr(AttributeId::new(Category::Resource, "ghost")),
                Expr::lit("x"),
            )))
            .rule(Rule::always("r", Effect::Permit))
            .build();
        assert_eq!(
            p.evaluate(&request("doctor")).0,
            ExtDecision::IndeterminateP
        );
        // If children are NotApplicable, the whole node is NotApplicable
        // despite the indeterminate target.
        let p2 = Policy::builder("p2", CombiningAlg::PermitOverrides)
            .target(Target::expr(Expr::equal(
                Expr::attr(AttributeId::new(Category::Resource, "ghost")),
                Expr::lit("x"),
            )))
            .rule(
                Rule::builder("r", Effect::Permit)
                    .target(role_target("nobody"))
                    .build(),
            )
            .build();
        assert_eq!(
            p2.evaluate(&request("doctor")).0,
            ExtDecision::NotApplicable
        );
    }

    #[test]
    fn policy_set_nests() {
        let set = PolicySet::builder("root", CombiningAlg::FirstApplicable)
            .policy(sample_policy())
            .policy(
                Policy::builder("fallback", CombiningAlg::PermitOverrides)
                    .rule(Rule::always("deny-all", Effect::Deny))
                    .build(),
            )
            .build();
        // nurse: first policy NA, fallback denies.
        assert_eq!(set.evaluate(&request("nurse")).0, ExtDecision::Deny);
        // doctor without action: allow-read NA, default-deny fires.
        assert_eq!(set.evaluate(&request("doctor")).0, ExtDecision::Deny);
    }

    #[test]
    fn policy_level_obligations_attach_on_matching_effect() {
        let p = Policy::builder("p", CombiningAlg::PermitOverrides)
            .rule(Rule::always("r", Effect::Permit))
            .obligation(Obligation::new("audit", Effect::Permit))
            .obligation(Obligation::new("alarm", Effect::Deny))
            .build();
        let (d, obs) = p.evaluate(&request("any"));
        assert_eq!(d, ExtDecision::Permit);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].id, "audit");
    }

    #[test]
    fn codec_round_trip_deep() {
        let set = PolicySet::builder("root", CombiningAlg::OnlyOneApplicable)
            .target(role_target("doctor"))
            .policy(sample_policy())
            .set(
                PolicySet::builder("nested", CombiningAlg::DenyUnlessPermit)
                    .policy(
                        Policy::builder("inner", CombiningAlg::FirstApplicable)
                            .rule(Rule::always("r", Effect::Permit))
                            .build(),
                    )
                    .build(),
            )
            .obligation(Obligation::new("top", Effect::Deny).with_arg(true))
            .build();
        let bytes = set.to_canonical_bytes();
        assert_eq!(PolicySet::from_canonical_bytes(&bytes).unwrap(), set);
    }

    #[test]
    fn version_digest_changes_with_any_edit() {
        let set = PolicySet::builder("root", CombiningAlg::DenyOverrides)
            .policy(sample_policy())
            .build();
        let v1 = set.version_digest();
        let mut edited = set.clone();
        if let PolicyChild::Policy(p) = &mut edited.children[0] {
            p.rules[0].effect = Effect::Deny;
        }
        assert_ne!(edited.version_digest(), v1);
    }

    #[test]
    fn rule_count_recurses() {
        let set = PolicySet::builder("root", CombiningAlg::DenyOverrides)
            .policy(sample_policy())
            .set(
                PolicySet::builder("nested", CombiningAlg::DenyOverrides)
                    .policy(sample_policy())
                    .build(),
            )
            .build();
        assert_eq!(set.rule_count(), 4);
    }
}
