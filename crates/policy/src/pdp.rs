//! The Policy Decision Point.
//!
//! In the FaaS deployment (paper Figure 1) the PDP lives in the
//! infrastructure tenant: PEPs forward intercepted requests here, the PDP
//! evaluates them against the policy in force and returns the decision the
//! PEP then enforces.
//!
//! Since the compiled-engine rework the PDP evaluates through a
//! [`PreparedPolicySet`] (interned attributes, arena expressions, target
//! index) and memoises responses in a **decision cache** keyed by the
//! request's canonical digest — sound because evaluation is a pure
//! function of `(policy version, request)`, and the cache is dropped
//! whenever the policy in force changes. The original tree-walking
//! interpreter stays available as [`Pdp::evaluate_interpreted`], the
//! reference oracle the benches and property tests compare against.

use crate::attr::Request;
use crate::compiled::PreparedPolicySet;
use crate::decision::Response;
use crate::policy::PolicySet;
use drams_crypto::codec::Encode;
use drams_crypto::sha256::Digest;
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default decision-cache capacity (responses). See
/// [`Pdp::with_cache_capacity`] to tune or disable.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// LRU state: responses keyed by digest, each stamped with a recency
/// tick, plus the tick→digest index that makes the oldest entry O(log n)
/// to find. Ticks are unique (monotone counter), so the index is a map,
/// not a multimap.
#[derive(Debug, Default)]
struct LruState {
    map: HashMap<Digest, (Response, u64)>,
    recency: BTreeMap<u64, Digest>,
    tick: u64,
}

impl LruState {
    fn touch(&mut self, digest: Digest) -> Option<Response> {
        let (response, stamp) = self.map.get_mut(&digest)?;
        let response = response.clone();
        self.recency.remove(&std::mem::replace(stamp, self.tick));
        self.recency.insert(self.tick, digest);
        self.tick += 1;
        Some(response)
    }

    fn insert(&mut self, digest: Digest, response: Response, capacity: usize) -> u64 {
        let mut evicted = 0;
        while self.map.len() >= capacity {
            let Some((_, oldest)) = self.recency.pop_first() else {
                break;
            };
            self.map.remove(&oldest);
            evicted += 1;
        }
        self.map.insert(digest, (response, self.tick));
        self.recency.insert(self.tick, digest);
        self.tick += 1;
        evicted
    }
}

/// Memoised responses keyed by request digest, valid for exactly one
/// policy version. True LRU: every hit refreshes the entry's recency,
/// and a full cache evicts exactly the least-recently-used entry.
#[derive(Debug, Default)]
struct DecisionCache {
    lru: Mutex<LruState>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A Policy Decision Point bound to one root policy set.
///
/// # Example
///
/// ```
/// use drams_policy::prelude::*;
/// use drams_policy::pdp::Pdp;
///
/// let root = PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
///     .policy(
///         Policy::builder("p", CombiningAlg::PermitOverrides)
///             .rule(Rule::always("allow", Effect::Permit))
///             .build(),
///     )
///     .build();
/// let pdp = Pdp::new(root);
/// let response = pdp.evaluate(&Request::new());
/// assert!(response.is_permit());
/// ```
#[derive(Debug)]
pub struct Pdp {
    root: PolicySet,
    prepared: Arc<PreparedPolicySet>,
    version: Digest,
    evaluations: AtomicU64,
    cache_capacity: usize,
    cache: DecisionCache,
}

impl Pdp {
    /// Creates a PDP for a root policy set, compiling it and enabling
    /// the decision cache at [`DEFAULT_CACHE_CAPACITY`].
    #[must_use]
    pub fn new(root: PolicySet) -> Self {
        Pdp::with_cache_capacity(root, DEFAULT_CACHE_CAPACITY)
    }

    /// Creates a PDP with an explicit decision-cache capacity.
    /// `capacity == 0` disables caching (every request re-evaluates).
    #[must_use]
    pub fn with_cache_capacity(root: PolicySet, capacity: usize) -> Self {
        let prepared = Arc::new(PreparedPolicySet::compile(&root));
        Pdp::assemble(root, prepared, capacity)
    }

    /// Creates a PDP from an already-compiled policy (e.g. the PRP
    /// pre-compiles every published version, so activating one does not
    /// stall the decision path on recompilation).
    ///
    /// # Panics
    ///
    /// In debug builds, panics when `prepared` was not compiled from
    /// `root` (version digest mismatch) — mixing the two would make the
    /// interpreted oracle diverge from the compiled engine. The check
    /// re-encodes and hashes the whole policy set, so release builds
    /// skip it and trust the caller (the PRP compiles at publication,
    /// so the pair is constructed in one place).
    #[must_use]
    pub fn from_prepared(root: PolicySet, prepared: Arc<PreparedPolicySet>) -> Self {
        debug_assert_eq!(
            root.version_digest(),
            prepared.version_digest(),
            "prepared policy does not match the source policy set"
        );
        Pdp::assemble(root, prepared, DEFAULT_CACHE_CAPACITY)
    }

    fn assemble(root: PolicySet, prepared: Arc<PreparedPolicySet>, capacity: usize) -> Self {
        let version = prepared.version_digest();
        Pdp {
            root,
            prepared,
            version,
            evaluations: AtomicU64::new(0),
            cache_capacity: capacity,
            cache: DecisionCache::default(),
        }
    }

    /// The root policy set currently in force.
    #[must_use]
    pub fn root(&self) -> &PolicySet {
        &self.root
    }

    /// The compiled form of the policy in force.
    #[must_use]
    pub fn prepared(&self) -> &Arc<PreparedPolicySet> {
        &self.prepared
    }

    /// Digest identifying the policy version in force.
    #[must_use]
    pub fn policy_version(&self) -> Digest {
        self.version
    }

    /// Replaces the policy in force (policy administration). Recompiles
    /// and drops the decision cache — cached responses belong to the old
    /// version.
    pub fn set_root(&mut self, root: PolicySet) {
        self.prepared = Arc::new(PreparedPolicySet::compile(&root));
        self.version = self.prepared.version_digest();
        self.root = root;
        self.cache = DecisionCache::default();
    }

    /// Evaluates a request and returns the full response (compiled
    /// engine, decision cache).
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> Response {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        if self.cache_capacity == 0 {
            let (extended, obligations) = self.prepared.evaluate(request);
            return Response::new(extended, obligations);
        }
        let digest = request.canonical_digest();
        if let Some(hit) = self.cache.lru.lock().expect("cache lock").touch(digest) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        let (extended, obligations) = self.prepared.evaluate(request);
        let response = Response::new(extended, obligations);
        let evicted = self.cache.lru.lock().expect("cache lock").insert(
            digest,
            response.clone(),
            self.cache_capacity,
        );
        if evicted > 0 {
            self.cache.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
        response
    }

    /// Evaluates through the tree-walking reference interpreter —
    /// uncached, unindexed. This is the oracle the compiled engine is
    /// benchmarked and property-tested against.
    #[must_use]
    pub fn evaluate_interpreted(&self, request: &Request) -> Response {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let (extended, obligations) = self.root.evaluate(request);
        Response::new(extended, obligations)
    }

    /// Number of evaluations performed (diagnostics).
    #[must_use]
    pub fn evaluation_count(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// `(hits, misses)` of the decision cache since the last policy
    /// change.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.cache.hits.load(Ordering::Relaxed),
            self.cache.misses.load(Ordering::Relaxed),
        )
    }

    /// Responses currently held in the decision cache.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.lru.lock().expect("cache lock").map.len()
    }

    /// Responses evicted (LRU) since the last policy change.
    #[must_use]
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttributeId, Category};
    use crate::combining::CombiningAlg;
    use crate::decision::{Decision, Effect};
    use crate::expr::Expr;
    use crate::policy::Policy;
    use crate::rule::Rule;
    use crate::target::Target;

    fn pdp() -> Pdp {
        let root = PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .rule(Rule::always("allow", Effect::Permit))
                    .build(),
            )
            .build();
        Pdp::new(root)
    }

    fn role_pdp(capacity: usize) -> Pdp {
        let root = PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .rule(
                        Rule::builder("doctors", Effect::Permit)
                            .target(Target::expr(Expr::equal(
                                Expr::attr(AttributeId::new(Category::Subject, "role")),
                                Expr::lit("doctor"),
                            )))
                            .build(),
                    )
                    .build(),
            )
            .build();
        Pdp::with_cache_capacity(root, capacity)
    }

    #[test]
    fn evaluates_and_counts() {
        let pdp = pdp();
        assert_eq!(pdp.evaluation_count(), 0);
        let r = pdp.evaluate(&Request::new());
        assert_eq!(r.decision, Decision::Permit);
        assert_eq!(pdp.evaluation_count(), 1);
    }

    #[test]
    fn version_tracks_policy_changes() {
        let mut pdp = pdp();
        let v1 = pdp.policy_version();
        let new_root = PolicySet::builder("root2", CombiningAlg::DenyOverrides).build();
        pdp.set_root(new_root);
        assert_ne!(pdp.policy_version(), v1);
        // empty deny-overrides root → NotApplicable
        assert_eq!(
            pdp.evaluate(&Request::new()).decision,
            Decision::NotApplicable
        );
    }

    #[test]
    fn compiled_agrees_with_interpreter() {
        let pdp = role_pdp(0);
        for request in [
            Request::builder().subject("role", "doctor").build(),
            Request::builder().subject("role", "nurse").build(),
            Request::new(),
        ] {
            assert_eq!(pdp.evaluate(&request), pdp.evaluate_interpreted(&request));
        }
    }

    #[test]
    fn decision_cache_hits_on_repeats() {
        let pdp = role_pdp(DEFAULT_CACHE_CAPACITY);
        let request = Request::builder().subject("role", "doctor").build();
        let first = pdp.evaluate(&request);
        let second = pdp.evaluate(&request);
        assert_eq!(first, second);
        assert_eq!(pdp.cache_stats(), (1, 1));
        // A different request misses.
        let _ = pdp.evaluate(&Request::builder().subject("role", "nurse").build());
        assert_eq!(pdp.cache_stats(), (1, 2));
    }

    #[test]
    fn cache_is_dropped_on_policy_change() {
        let mut pdp = role_pdp(DEFAULT_CACHE_CAPACITY);
        let request = Request::builder().subject("role", "doctor").build();
        assert_eq!(pdp.evaluate(&request).decision, Decision::Permit);
        // Swap in a policy that denies everyone; the cached Permit must
        // not survive.
        pdp.set_root(PolicySet::builder("root2", CombiningAlg::DenyUnlessPermit).build());
        assert_eq!(pdp.evaluate(&request).decision, Decision::Deny);
        assert_eq!(pdp.cache_stats(), (0, 1));
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let pdp = role_pdp(0);
        let request = Request::builder().subject("role", "doctor").build();
        let _ = pdp.evaluate(&request);
        let _ = pdp.evaluate(&request);
        assert_eq!(pdp.cache_stats(), (0, 0));
    }

    #[test]
    fn tiny_cache_evicts_and_stays_correct() {
        let pdp = role_pdp(1);
        let doctor = Request::builder().subject("role", "doctor").build();
        let nurse = Request::builder().subject("role", "nurse").build();
        for _ in 0..3 {
            assert_eq!(pdp.evaluate(&doctor).decision, Decision::Permit);
            assert_eq!(pdp.evaluate(&nurse).decision, Decision::Deny);
        }
        assert_eq!(
            pdp.cache_evictions(),
            5,
            "each insert past the first evicts"
        );
        assert_eq!(pdp.cache_len(), 1);
    }

    #[test]
    fn lru_keeps_the_hot_entry_under_cold_churn() {
        // Capacity 2: one hot request re-touched between every cold miss
        // must never be evicted — churn only cycles the cold slot.
        let pdp = role_pdp(2);
        let hot = Request::builder().subject("role", "doctor").build();
        let _ = pdp.evaluate(&hot);
        for i in 0..8 {
            let cold = Request::builder()
                .subject("role", format!("intern-{i}"))
                .build();
            let _ = pdp.evaluate(&cold);
            let _ = pdp.evaluate(&hot); // refresh recency
        }
        let (hits, misses) = pdp.cache_stats();
        assert_eq!(hits, 8, "the hot entry hit on every revisit");
        assert_eq!(misses, 9, "1 hot miss + 8 distinct cold misses");
        assert_eq!(pdp.cache_evictions(), 7, "only cold entries cycled out");
    }

    #[test]
    fn eviction_counter_stays_zero_below_capacity() {
        let pdp = role_pdp(DEFAULT_CACHE_CAPACITY);
        for i in 0..16 {
            let _ = pdp.evaluate(&Request::builder().subject("role", format!("r{i}")).build());
        }
        assert_eq!(pdp.cache_evictions(), 0);
        assert_eq!(pdp.cache_len(), 16);
    }

    #[test]
    fn from_prepared_reuses_compilation() {
        let root = pdp().root().clone();
        let prepared = Arc::new(PreparedPolicySet::compile(&root));
        let pdp = Pdp::from_prepared(root, prepared.clone());
        assert_eq!(pdp.policy_version(), prepared.version_digest());
        assert!(pdp.evaluate(&Request::new()).is_permit());
    }

    #[test]
    #[should_panic(expected = "prepared policy does not match")]
    fn from_prepared_rejects_mismatch() {
        let root = pdp().root().clone();
        let other = PolicySet::builder("other", CombiningAlg::DenyOverrides).build();
        let _ = Pdp::from_prepared(root, Arc::new(PreparedPolicySet::compile(&other)));
    }

    #[test]
    fn pdp_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pdp>();
    }
}
