//! The Policy Decision Point.
//!
//! In the FaaS deployment (paper Figure 1) the PDP lives in the
//! infrastructure tenant: PEPs forward intercepted requests here, the PDP
//! evaluates them against the policy in force and returns the decision the
//! PEP then enforces.

use crate::attr::Request;
use crate::decision::Response;
use crate::policy::PolicySet;
use drams_crypto::sha256::Digest;
use std::sync::atomic::{AtomicU64, Ordering};

/// A Policy Decision Point bound to one root policy set.
///
/// # Example
///
/// ```
/// use drams_policy::prelude::*;
/// use drams_policy::pdp::Pdp;
///
/// let root = PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
///     .policy(
///         Policy::builder("p", CombiningAlg::PermitOverrides)
///             .rule(Rule::always("allow", Effect::Permit))
///             .build(),
///     )
///     .build();
/// let pdp = Pdp::new(root);
/// let response = pdp.evaluate(&Request::new());
/// assert!(response.is_permit());
/// ```
#[derive(Debug)]
pub struct Pdp {
    root: PolicySet,
    version: Digest,
    evaluations: AtomicU64,
}

impl Pdp {
    /// Creates a PDP for a root policy set.
    #[must_use]
    pub fn new(root: PolicySet) -> Self {
        let version = root.version_digest();
        Pdp {
            root,
            version,
            evaluations: AtomicU64::new(0),
        }
    }

    /// The root policy set currently in force.
    #[must_use]
    pub fn root(&self) -> &PolicySet {
        &self.root
    }

    /// Digest identifying the policy version in force.
    #[must_use]
    pub fn policy_version(&self) -> Digest {
        self.version
    }

    /// Replaces the policy in force (policy administration).
    pub fn set_root(&mut self, root: PolicySet) {
        self.version = root.version_digest();
        self.root = root;
    }

    /// Evaluates a request and returns the full response.
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> Response {
        self.evaluations.fetch_add(1, Ordering::Relaxed);
        let (extended, obligations) = self.root.evaluate(request);
        Response::new(extended, obligations)
    }

    /// Number of evaluations performed (diagnostics).
    #[must_use]
    pub fn evaluation_count(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combining::CombiningAlg;
    use crate::decision::{Decision, Effect};
    use crate::policy::Policy;
    use crate::rule::Rule;

    fn pdp() -> Pdp {
        let root = PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .rule(Rule::always("allow", Effect::Permit))
                    .build(),
            )
            .build();
        Pdp::new(root)
    }

    #[test]
    fn evaluates_and_counts() {
        let pdp = pdp();
        assert_eq!(pdp.evaluation_count(), 0);
        let r = pdp.evaluate(&Request::new());
        assert_eq!(r.decision, Decision::Permit);
        assert_eq!(pdp.evaluation_count(), 1);
    }

    #[test]
    fn version_tracks_policy_changes() {
        let mut pdp = pdp();
        let v1 = pdp.policy_version();
        let new_root = PolicySet::builder("root2", CombiningAlg::DenyOverrides).build();
        pdp.set_root(new_root);
        assert_ne!(pdp.policy_version(), v1);
        // empty deny-overrides root → NotApplicable
        assert_eq!(
            pdp.evaluate(&Request::new()).decision,
            Decision::NotApplicable
        );
    }

    #[test]
    fn pdp_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Pdp>();
    }
}
