//! XACML 3.0–style access-control policy engine (FACPL-flavoured).
//!
//! This crate implements the access-control system that DRAMS (Ferdous et
//! al., ICDCS 2017) monitors: the paper's FaaS federation enforces XACML
//! policies through a central PDP and distributed PEPs, and the DRAMS
//! Analyser re-evaluates logged decisions against the *formal semantics* of
//! those policies (ref \[8\] — Margheri et al.'s FACPL framework). Both the
//! PDP and the Analyser in this workspace evaluate policies with the code
//! in this crate, but from independently-stored policy copies — which is
//! exactly what lets the Analyser detect a lying PDP.
//!
//! # Structure
//!
//! * [`attr`] — categories, attribute ids/values, requests (bag semantics).
//! * [`expr`] — the expression language for targets and conditions.
//! * [`target`] — applicability targets (`Match`/`NoMatch`/`Indeterminate`).
//! * [`rule`] — rules (effect + target + condition + obligations).
//! * [`policy`] — policies and policy sets.
//! * [`combining`] — the six XACML 3.0 combining algorithms with extended
//!   `Indeterminate` semantics.
//! * [`decision`] — decisions, obligations, responses.
//! * [`compiled`] — the compiled engine: interned attributes, arena
//!   expressions, prepared requests and target-indexed policy sets. The
//!   tree-walking evaluators above remain the reference semantics; the
//!   compiled engine is property-tested equivalent and is what the PDP
//!   and the Analyser actually run.
//! * [`pdp`] — the Policy Decision Point (compiled engine + decision
//!   cache).
//! * [`parser`] — a FACPL-like text syntax plus pretty-printer.
//!
//! # Example
//!
//! ```
//! use drams_policy::prelude::*;
//! use drams_policy::{parser::parse_policy_set, pdp::Pdp};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let set = parse_policy_set(r#"
//!   policyset root { deny-overrides
//!     policy p { permit-overrides
//!       rule allow (permit) { target: equal(subject.role, "doctor") }
//!     }
//!   }
//! "#)?;
//! let pdp = Pdp::new(set);
//! let req = Request::builder().subject("role", "doctor").build();
//! assert!(pdp.evaluate(&req).is_permit());
//! # Ok(())
//! # }
//! ```

pub mod attr;
pub mod combining;
pub mod compiled;
pub mod decision;
pub mod expr;
pub mod parser;
pub mod pdp;
pub mod policy;
pub mod rule;
pub mod target;

/// Convenient glob-import of the types needed to build and evaluate
/// policies.
pub mod prelude {
    pub use crate::attr::{AttributeId, AttributeValue, Category, Request, RequestBuilder};
    pub use crate::combining::CombiningAlg;
    pub use crate::compiled::PreparedPolicySet;
    pub use crate::decision::{Decision, Effect, ExtDecision, Obligation, Response};
    pub use crate::expr::{Expr, Func};
    pub use crate::pdp::Pdp;
    pub use crate::policy::{Policy, PolicyChild, PolicySet};
    pub use crate::rule::Rule;
    pub use crate::target::{MatchResult, Target};
}
