//! The compiled evaluation engine.
//!
//! The tree-walking interpreter in [`expr`](crate::expr)/[`policy`](crate::policy)
//! is the *reference semantics*: it works directly on the `Expr` tree,
//! looks attributes up by `(Category, String)` in the request's
//! `BTreeMap`, and evaluates every child of a policy set for every
//! request. That is exactly what the paper's E5 experiment stresses —
//! PDP decision latency as the policy base grows — and it leaves a lot
//! of performance on the table.
//!
//! This module compiles a [`PolicySet`] once into a form built for the
//! hot path:
//!
//! * [`AttrInterner`] — every [`AttributeId`] referenced anywhere in the
//!   policy is mapped to a dense `u32` symbol.
//! * [`CompiledExpr`] — expressions flattened into an arena (one `Vec`
//!   of nodes + one `Vec` of argument indices, no per-node boxing),
//!   evaluated borrow-first through the crate-internal `ValueView`: literals and request
//!   bags are borrowed, owned values exist only for computed results.
//! * [`PreparedRequest`] — the request's bags re-indexed by symbol, so
//!   every attribute lookup during evaluation is one array access.
//! * [`PreparedPolicySet`] — the compiled tree plus a **target index**
//!   per combining node: children whose target is a single-attribute
//!   equality disjunction (the overwhelmingly common shape, e.g.
//!   `resource.type == "record"`) are bucketed by `(symbol, value)`, and
//!   a request only evaluates the children its attribute values select.
//!   Skipping is *exact*: a child is skipped only when its target is
//!   definitively `NoMatch` (singleton bag, value not in the bucket), so
//!   `Indeterminate` flavours — missing attributes, multi-valued bags —
//!   and combining-algorithm document order are preserved bit-for-bit.
//!   The equivalence property suite (`tests/prop_compiled.rs`) checks
//!   this against the interpreter on randomized policies.
//!
//! Function application and the six combining algorithms are *shared*
//! with the interpreter ([`expr::apply_func`](crate::expr) and
//! [`combining::combine_with`](crate::combining)), so the two engines
//! cannot drift on the truth tables — only on traversal, which is what
//! the property tests pin down.

use crate::attr::{AttributeId, AttributeValue, Request};
use crate::combining::{combine_with, CombiningAlg};
use crate::decision::{Effect, ExtDecision, Obligation};
use crate::expr::{apply_func, bool_result, compare, EvalError, Expr, Func, ValueView};
use crate::policy::{Policy, PolicyChild, PolicySet};
use crate::rule::Rule;
use crate::target::{MatchResult, Target};
use drams_crypto::sha256::Digest;
use std::borrow::Cow;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher for the index maps: their keys are
/// small fixed-width integers ((Sym, u64) buckets), where SipHash's
/// DoS resistance buys nothing and costs a large slice of the per-request
/// index probe.
#[derive(Debug, Clone, Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    fn write_u64(&mut self, i: u64) {
        const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
        self.0 = (self.0.rotate_left(5) ^ i).wrapping_mul(SEED);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Dense symbol assigned to an interned [`AttributeId`].
pub type Sym = u32;

/// Interns attribute ids to dense `u32` symbols.
///
/// Built at policy-compile time from every id the policy references;
/// request attributes outside this set cannot influence evaluation and
/// are simply not indexed.
#[derive(Debug, Clone, Default)]
pub struct AttrInterner {
    ids: Vec<AttributeId>,
    map: HashMap<AttributeId, Sym>,
}

impl AttrInterner {
    fn intern(&mut self, id: &AttributeId) -> Sym {
        if let Some(&s) = self.map.get(id) {
            return s;
        }
        let s = self.ids.len() as Sym;
        self.ids.push(id.clone());
        self.map.insert(id.clone(), s);
        s
    }

    /// The symbol for `id`, if the policy references it.
    #[must_use]
    pub fn lookup(&self, id: &AttributeId) -> Option<Sym> {
        self.map.get(id).copied()
    }

    /// The id behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics when the symbol was not produced by this interner.
    #[must_use]
    pub fn resolve(&self, sym: Sym) -> &AttributeId {
        &self.ids[sym as usize]
    }

    /// Number of interned ids.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing is interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A request re-indexed for O(1) symbol lookup: `bags[sym]` borrows the
/// request's value bag (empty slice when absent).
#[derive(Debug)]
pub struct PreparedRequest<'r> {
    bags: Vec<&'r [AttributeValue]>,
}

impl<'r> PreparedRequest<'r> {
    /// The bag for a symbol; empty when the request has no such attribute.
    #[must_use]
    pub fn bag(&self, sym: Sym) -> &'r [AttributeValue] {
        self.bags[sym as usize]
    }
}

// ---- compiled expressions ---------------------------------------------------

/// One arena node of a [`CompiledExpr`].
#[derive(Debug, Clone)]
enum Node {
    Lit(AttributeValue),
    Attr(Sym),
    /// Specialised `cmp(attr, lit)` / `cmp(lit, attr)` — the dominant
    /// leaf shape in targets and conditions, evaluated without the
    /// generic application machinery. Semantics are identical to the
    /// generic path (missing attribute and bag-coercion errors
    /// included).
    CmpAttrLit {
        func: Func,
        sym: Sym,
        value: AttributeValue,
        attr_first: bool,
    },
    Apply {
        func: Func,
        args_start: u32,
        args_len: u32,
    },
}

/// An [`Expr`] flattened into an arena: `nodes` in post-order, argument
/// lists as contiguous index runs in `args`.
#[derive(Debug, Clone)]
pub struct CompiledExpr {
    nodes: Vec<Node>,
    args: Vec<u32>,
    root: u32,
}

impl CompiledExpr {
    /// Compiles an expression, interning every attribute id it mentions.
    #[must_use]
    pub fn compile(expr: &Expr, interner: &mut AttrInterner) -> CompiledExpr {
        let mut c = CompiledExpr {
            nodes: Vec::with_capacity(expr.size()),
            args: Vec::new(),
            root: 0,
        };
        c.root = c.push(expr, interner);
        c
    }

    fn push(&mut self, expr: &Expr, interner: &mut AttrInterner) -> u32 {
        let node = match expr {
            Expr::Lit(v) => Node::Lit(v.clone()),
            Expr::Attr(id) => Node::Attr(interner.intern(id)),
            Expr::Apply(func, argv) if is_comparison(*func) && argv.len() == 2 => {
                match argv.as_slice() {
                    [Expr::Attr(id), Expr::Lit(v)] => Node::CmpAttrLit {
                        func: *func,
                        sym: interner.intern(id),
                        value: v.clone(),
                        attr_first: true,
                    },
                    [Expr::Lit(v), Expr::Attr(id)] => Node::CmpAttrLit {
                        func: *func,
                        sym: interner.intern(id),
                        value: v.clone(),
                        attr_first: false,
                    },
                    _ => self.push_apply(*func, argv, interner),
                }
            }
            Expr::Apply(func, argv) => self.push_apply(*func, argv, interner),
        };
        let idx = self.nodes.len() as u32;
        self.nodes.push(node);
        idx
    }

    fn push_apply(&mut self, func: Func, argv: &[Expr], interner: &mut AttrInterner) -> Node {
        let idxs: Vec<u32> = argv.iter().map(|a| self.push(a, interner)).collect();
        let args_start = self.args.len() as u32;
        self.args.extend(idxs);
        Node::Apply {
            func,
            args_start,
            args_len: argv.len() as u32,
        }
    }

    /// Evaluates against a prepared request.
    ///
    /// # Errors
    ///
    /// The same [`EvalError`]s as [`Expr::eval`].
    pub(crate) fn eval<'a>(
        &'a self,
        request: &PreparedRequest<'a>,
        interner: &'a AttrInterner,
    ) -> Result<ValueView<'a>, EvalError> {
        self.eval_node(self.root, request, interner)
    }

    fn eval_node<'a>(
        &'a self,
        idx: u32,
        request: &PreparedRequest<'a>,
        interner: &'a AttrInterner,
    ) -> Result<ValueView<'a>, EvalError> {
        match &self.nodes[idx as usize] {
            Node::Lit(v) => Ok(ValueView::One(Cow::Borrowed(v))),
            Node::Attr(sym) => {
                let bag = request.bag(*sym);
                if bag.is_empty() {
                    Err(EvalError::MissingAttribute(interner.resolve(*sym).clone()))
                } else {
                    Ok(ValueView::Bag(bag))
                }
            }
            Node::CmpAttrLit {
                func,
                sym,
                value,
                attr_first,
            } => cmp_attr_lit(*func, *sym, value, *attr_first, request, interner)
                .map(|b| ValueView::One(Cow::Owned(AttributeValue::Bool(b)))),
            Node::Apply {
                func,
                args_start,
                args_len,
            } => {
                let argix = &self.args[*args_start as usize..(*args_start + *args_len) as usize];
                apply_func(
                    *func,
                    argix.len(),
                    &mut |i| self.eval_node(argix[i], request, interner),
                    &mut |i| match self.nodes[argix[i] as usize] {
                        Node::Attr(sym) => Some(request.bag(sym).len()),
                        _ => None,
                    },
                )
            }
        }
    }

    fn eval_bool(
        &self,
        request: &PreparedRequest<'_>,
        interner: &AttrInterner,
    ) -> Result<bool, EvalError> {
        // Targets and conditions are overwhelmingly a single comparison;
        // evaluate it without the ValueView round-trip.
        if let Node::CmpAttrLit {
            func,
            sym,
            value,
            attr_first,
        } = &self.nodes[self.root as usize]
        {
            return cmp_attr_lit(*func, *sym, value, *attr_first, request, interner);
        }
        bool_result(self.eval(request, interner)?)
    }
}

/// The specialised comparison: mirrors the generic path exactly — a
/// missing attribute errors, a non-singleton bag fails singleton
/// coercion, and the literal operand can never error.
fn cmp_attr_lit(
    func: Func,
    sym: Sym,
    value: &AttributeValue,
    attr_first: bool,
    request: &PreparedRequest<'_>,
    interner: &AttrInterner,
) -> Result<bool, EvalError> {
    let attr_value = match request.bag(sym) {
        [] => return Err(EvalError::MissingAttribute(interner.resolve(sym).clone())),
        [single] => single,
        bag => {
            return Err(EvalError::TypeMismatch {
                function: func.name().to_string(),
                detail: format!("expected a single value, got a bag of {}", bag.len()),
            })
        }
    };
    let (a, b) = if attr_first {
        (attr_value, value)
    } else {
        (value, attr_value)
    };
    match func {
        Func::Equal => Ok(a == b),
        Func::NotEqual => Ok(a != b),
        _ => compare(func, a, b),
    }
}

// ---- compiled targets -------------------------------------------------------

/// A pre-compiled [`Target`].
#[derive(Debug, Clone)]
enum CompiledTarget {
    Any,
    /// The `Target::expr` shape — one AnyOf, one AllOf, one match — hot
    /// enough to deserve a traversal-free representation.
    Single(CompiledExpr),
    Clauses(Vec<Vec<Vec<CompiledExpr>>>),
}

impl CompiledTarget {
    fn compile(target: &Target, interner: &mut AttrInterner) -> CompiledTarget {
        match target {
            Target::Any => CompiledTarget::Any,
            Target::Clauses(clauses) => {
                if let [any_of] = clauses.as_slice() {
                    if let [all_of] = any_of.as_slice() {
                        if let [m] = all_of.as_slice() {
                            return CompiledTarget::Single(CompiledExpr::compile(m, interner));
                        }
                    }
                }
                CompiledTarget::Clauses(
                    clauses
                        .iter()
                        .map(|any_of| {
                            any_of
                                .iter()
                                .map(|all_of| {
                                    all_of
                                        .iter()
                                        .map(|m| CompiledExpr::compile(m, interner))
                                        .collect()
                                })
                                .collect()
                        })
                        .collect(),
                )
            }
        }
    }

    /// Mirrors [`Target::matches`] exactly.
    fn matches(&self, request: &PreparedRequest<'_>, interner: &AttrInterner) -> MatchResult {
        let clauses = match self {
            CompiledTarget::Any => return MatchResult::Match,
            CompiledTarget::Single(m) => {
                // one clause, one conjunct: the three-valued tables
                // collapse to the expression's own outcome.
                return match m.eval_bool(request, interner) {
                    Ok(true) => MatchResult::Match,
                    Ok(false) => MatchResult::NoMatch,
                    Err(_) => MatchResult::Indeterminate,
                };
            }
            CompiledTarget::Clauses(c) => c,
        };
        let mut target_indeterminate = false;
        for any_of in clauses {
            let mut any_matched = false;
            let mut any_indeterminate = false;
            for all_of in any_of {
                match eval_all_of(all_of, request, interner) {
                    MatchResult::Match => {
                        any_matched = true;
                        break;
                    }
                    MatchResult::NoMatch => {}
                    MatchResult::Indeterminate => any_indeterminate = true,
                }
            }
            if any_matched {
                continue;
            }
            if any_indeterminate {
                target_indeterminate = true;
                continue;
            }
            return MatchResult::NoMatch;
        }
        if target_indeterminate {
            MatchResult::Indeterminate
        } else {
            MatchResult::Match
        }
    }
}

fn eval_all_of(
    all_of: &[CompiledExpr],
    request: &PreparedRequest<'_>,
    interner: &AttrInterner,
) -> MatchResult {
    let mut indeterminate = false;
    for m in all_of {
        match m.eval_bool(request, interner) {
            Ok(true) => {}
            Ok(false) => return MatchResult::NoMatch,
            Err(_) => indeterminate = true,
        }
    }
    if indeterminate {
        MatchResult::Indeterminate
    } else {
        MatchResult::Match
    }
}

// ---- target index -----------------------------------------------------------

/// True for the binary comparison functions the arena specialises and
/// the target index understands.
fn is_comparison(func: Func) -> bool {
    matches!(
        func,
        Func::Equal | Func::NotEqual | Func::Less | Func::LessEq | Func::Greater | Func::GreaterEq
    )
}

/// 64-bit index key respecting [`AttributeValue`]'s equality (Int/Double
/// coerce, `-0.0 == 0.0`): equal values always produce equal keys, so a
/// bucket lookup can never *miss* a matching child. Unequal values may
/// collide (different types, FNV collisions) — harmless over-inclusion:
/// the spurious candidate is fully evaluated and its target rejects the
/// request. Keys are plain `u64`s so the request-time lookup never
/// allocates (a `String`-keyed map would clone the request value per
/// probe).
fn value_key(v: &AttributeValue) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x1000_0000_01b3;
    fn fnv(tag: u8, bytes: &[u8]) -> u64 {
        let mut h = FNV_OFFSET ^ u64::from(tag);
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
    fn norm(x: f64) -> u64 {
        // collapse -0.0 onto 0.0 so the key matches PartialEq
        if x == 0.0 {
            0.0f64.to_bits()
        } else {
            x.to_bits()
        }
    }
    match v {
        AttributeValue::Str(s) => fnv(1, s.as_bytes()),
        AttributeValue::Bool(b) => fnv(2, &[u8::from(*b)]),
        AttributeValue::Int(i) => fnv(3, &norm(*i as f64).to_le_bytes()),
        AttributeValue::Double(d) => fnv(3, &norm(*d).to_le_bytes()),
    }
}

/// An indexable guard extracted from a child's target: one AnyOf clause
/// that is a pure single-attribute equality disjunction. If the
/// request's bag for `sym` is a singleton whose value is in `keys`, the
/// clause may match; if it is a singleton *not* in `keys`, the clause —
/// and therefore the whole target — is definitively `NoMatch`. Any
/// non-singleton bag (missing or multi-valued) can make the clause
/// `Indeterminate`, so the child stays a candidate.
#[derive(Debug, Clone)]
struct Guard {
    sym: Sym,
    keys: Vec<u64>,
}

/// True when the target contains an empty AnyOf clause, which can never
/// match: the child is `NotApplicable` for every request and contributes
/// nothing under any combining algorithm.
fn target_is_dead(target: &Target) -> bool {
    matches!(target, Target::Clauses(clauses) if clauses.iter().any(Vec::is_empty))
}

fn extract_guard(target: &Target, interner: &mut AttrInterner) -> Option<Guard> {
    let Target::Clauses(clauses) = target else {
        return None;
    };
    'clause: for any_of in clauses {
        if any_of.is_empty() {
            continue;
        }
        let mut sym: Option<Sym> = None;
        let mut keys: Vec<u64> = Vec::with_capacity(any_of.len());
        for all_of in any_of {
            let [m] = all_of.as_slice() else {
                continue 'clause;
            };
            let Expr::Apply(Func::Equal, args) = m else {
                continue 'clause;
            };
            let (id, value) = match args.as_slice() {
                [Expr::Attr(id), Expr::Lit(v)] | [Expr::Lit(v), Expr::Attr(id)] => (id, v),
                _ => continue 'clause,
            };
            let s = interner.intern(id);
            match sym {
                None => sym = Some(s),
                Some(prev) if prev == s => {}
                Some(_) => continue 'clause,
            }
            let key = value_key(value);
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        return sym.map(|sym| Guard { sym, keys });
    }
    None
}

/// A target index over the children of one combining node.
#[derive(Debug, Clone, Default)]
struct ChildIndex {
    /// Children with no usable guard — always candidates.
    residual: Vec<u32>,
    /// All children guarded on a symbol (candidates whenever the
    /// request's bag for that symbol is not a singleton).
    by_sym: FxMap<Sym, Vec<u32>>,
    /// Children selected by a concrete `(symbol, value-key)`.
    by_value: FxMap<(Sym, u64), Vec<u32>>,
    /// Distinct guarded symbols, in first-seen order.
    syms: Vec<Sym>,
    /// Whether any child was guarded or dead (else `candidates` is the
    /// identity and allocation is skipped).
    trivial: bool,
}

/// The candidate children for one request, in document order.
enum Candidates<'i> {
    /// Every child is a candidate (no index entries).
    All(usize),
    /// A single bucket, borrowed straight from the index (already in
    /// document order) — the common case when all children are guarded
    /// on one symbol, e.g. policies partitioned by `resource.type`.
    Borrowed(&'i [u32]),
    /// A small merged subset held inline — no heap allocation (the
    /// per-policy rule index hits this on every request).
    Inline {
        buf: [u32; INLINE_CANDIDATES],
        len: usize,
    },
    /// A large merged subset, sorted back into document order.
    Owned(Vec<u32>),
}

const INLINE_CANDIDATES: usize = 16;

/// Nodes with fewer children than this skip index construction — see
/// the comment in [`ChildIndex::build`].
const MIN_INDEXED_CHILDREN: usize = 8;

impl ChildIndex {
    fn build(entries: Vec<(Option<Guard>, bool)>) -> ChildIndex {
        let n = entries.len();
        let mut index = ChildIndex::default();
        let mut any_indexed = false;
        for (i, (guard, dead)) in entries.into_iter().enumerate() {
            let i = i as u32;
            if dead {
                any_indexed = true;
                continue;
            }
            match guard {
                Some(Guard { sym, keys }) => {
                    any_indexed = true;
                    if !index.by_sym.contains_key(&sym) {
                        index.syms.push(sym);
                    }
                    index.by_sym.entry(sym).or_default().push(i);
                    for key in keys {
                        index.by_value.entry((sym, key)).or_default().push(i);
                    }
                }
                None => index.residual.push(i),
            }
        }
        // Below ~8 children the index probes (bag check + two hash
        // lookups per guarded symbol, then a merge) cost more than just
        // evaluating every child's target, which is one specialised
        // comparison each — measured on the E5 workload's 5-rule
        // policies. Wide nodes (policy sets with hundreds of children)
        // are where the index earns its keep.
        index.trivial = !any_indexed || n < MIN_INDEXED_CHILDREN;
        debug_assert!(index.trivial || index.residual.len() < n);
        index
    }

    fn candidates<'i>(&'i self, request: &PreparedRequest<'_>, n: usize) -> Candidates<'i> {
        if self.trivial {
            return Candidates::All(n);
        }
        let bucket_for = |sym: Sym| -> Option<&'i [u32]> {
            let bag = request.bag(sym);
            if let [single] = bag {
                self.by_value
                    .get(&(sym, value_key(single)))
                    .map(Vec::as_slice)
            } else {
                // missing or multi-valued bag: the guard clause may be
                // Indeterminate, so every child guarded on this symbol
                // must be evaluated in full.
                self.by_sym.get(&sym).map(Vec::as_slice)
            }
        };
        // Fast path: no residual children and one guarded symbol — the
        // bucket slice *is* the candidate list, no allocation, no sort.
        if self.residual.is_empty() {
            if let [sym] = self.syms.as_slice() {
                return Candidates::Borrowed(bucket_for(*sym).unwrap_or(&[]));
            }
        }
        // Inline merge when the subset is small (per-policy rule indexes
        // are), falling back to a heap Vec for wide nodes.
        let mut buf = [0u32; INLINE_CANDIDATES];
        let mut len = 0usize;
        let mut spill: Option<Vec<u32>> = None;
        {
            let mut push_all = |children: &[u32]| match &mut spill {
                Some(v) => v.extend_from_slice(children),
                None => {
                    if len + children.len() <= INLINE_CANDIDATES {
                        buf[len..len + children.len()].copy_from_slice(children);
                        len += children.len();
                    } else {
                        let mut v = Vec::with_capacity(len + children.len() + 8);
                        v.extend_from_slice(&buf[..len]);
                        v.extend_from_slice(children);
                        spill = Some(v);
                    }
                }
            };
            push_all(&self.residual);
            for &sym in &self.syms {
                if let Some(children) = bucket_for(sym) {
                    push_all(children);
                }
            }
        }
        match spill {
            Some(mut v) => {
                v.sort_unstable();
                Candidates::Owned(v)
            }
            None => {
                buf[..len].sort_unstable();
                Candidates::Inline { buf, len }
            }
        }
    }
}

impl Candidates<'_> {
    fn len(&self) -> usize {
        match self {
            Candidates::All(n) => *n,
            Candidates::Borrowed(c) => c.len(),
            Candidates::Inline { len, .. } => *len,
            Candidates::Owned(c) => c.len(),
        }
    }

    /// Maps a dense candidate position back to the child's document
    /// index.
    fn child(&self, i: usize) -> usize {
        match self {
            Candidates::All(_) => i,
            Candidates::Borrowed(c) => c[i] as usize,
            Candidates::Inline { buf, .. } => buf[i] as usize,
            Candidates::Owned(c) => c[i] as usize,
        }
    }
}

// ---- compiled rules / policies / sets --------------------------------------

/// Obligations pre-split by the effect they fire on, so evaluation never
/// filters.
#[derive(Debug, Clone, Default)]
struct SplitObligations {
    permit: Vec<Obligation>,
    deny: Vec<Obligation>,
}

impl SplitObligations {
    fn of(obligations: &[Obligation]) -> SplitObligations {
        let mut split = SplitObligations::default();
        for o in obligations {
            match o.fulfill_on {
                Effect::Permit => split.permit.push(o.clone()),
                Effect::Deny => split.deny.push(o.clone()),
            }
        }
        split
    }

    fn for_effect(&self, effect: Effect) -> &[Obligation] {
        match effect {
            Effect::Permit => &self.permit,
            Effect::Deny => &self.deny,
        }
    }
}

#[derive(Debug, Clone)]
struct CompiledRule {
    effect: Effect,
    target: CompiledTarget,
    condition: Option<CompiledExpr>,
    /// Pre-filtered to `fulfill_on == effect`, in document order.
    obligations: Vec<Obligation>,
}

impl CompiledRule {
    fn compile(rule: &Rule, interner: &mut AttrInterner) -> CompiledRule {
        CompiledRule {
            effect: rule.effect,
            target: CompiledTarget::compile(&rule.target, interner),
            condition: rule
                .condition
                .as_ref()
                .map(|c| CompiledExpr::compile(c, interner)),
            obligations: rule
                .obligations
                .iter()
                .filter(|o| o.fulfill_on == rule.effect)
                .cloned()
                .collect(),
        }
    }

    fn applicability(&self, request: &PreparedRequest<'_>, interner: &AttrInterner) -> MatchResult {
        self.target.matches(request, interner)
    }

    /// Mirrors [`Rule::evaluate`] with borrowed obligations.
    fn evaluate<'a>(
        &'a self,
        request: &PreparedRequest<'a>,
        interner: &'a AttrInterner,
    ) -> (ExtDecision, Vec<&'a Obligation>) {
        match self.target.matches(request, interner) {
            MatchResult::NoMatch => (ExtDecision::NotApplicable, Vec::new()),
            MatchResult::Indeterminate => (ExtDecision::indeterminate_for(self.effect), Vec::new()),
            MatchResult::Match => match &self.condition {
                None => self.fire(),
                Some(cond) => match cond.eval_bool(request, interner) {
                    Ok(true) => self.fire(),
                    Ok(false) => (ExtDecision::NotApplicable, Vec::new()),
                    Err(_) => (ExtDecision::indeterminate_for(self.effect), Vec::new()),
                },
            },
        }
    }

    fn fire(&self) -> (ExtDecision, Vec<&Obligation>) {
        let decision = match self.effect {
            Effect::Permit => ExtDecision::Permit,
            Effect::Deny => ExtDecision::Deny,
        };
        (decision, self.obligations.iter().collect())
    }
}

#[derive(Debug, Clone)]
struct CompiledPolicy {
    target: CompiledTarget,
    algorithm: CombiningAlg,
    rules: Vec<CompiledRule>,
    index: ChildIndex,
    obligations: SplitObligations,
}

impl CompiledPolicy {
    fn compile(policy: &Policy, interner: &mut AttrInterner) -> CompiledPolicy {
        let entries = policy
            .rules
            .iter()
            .map(|r| {
                (
                    extract_guard(&r.target, interner),
                    target_is_dead(&r.target),
                )
            })
            .collect();
        CompiledPolicy {
            target: CompiledTarget::compile(&policy.target, interner),
            algorithm: policy.algorithm,
            rules: policy
                .rules
                .iter()
                .map(|r| CompiledRule::compile(r, interner))
                .collect(),
            index: ChildIndex::build(entries),
            obligations: SplitObligations::of(&policy.obligations),
        }
    }

    fn applicability(&self, request: &PreparedRequest<'_>, interner: &AttrInterner) -> MatchResult {
        self.target.matches(request, interner)
    }

    fn evaluate<'a>(
        &'a self,
        request: &PreparedRequest<'a>,
        interner: &'a AttrInterner,
    ) -> (ExtDecision, Vec<&'a Obligation>) {
        eval_gated(
            &self.target,
            &self.obligations,
            request,
            interner,
            &mut |request| {
                let cands = self.index.candidates(request, self.rules.len());
                combine_with(
                    self.algorithm,
                    cands.len(),
                    &mut |i| self.rules[cands.child(i)].applicability(request, interner),
                    &mut |i| self.rules[cands.child(i)].evaluate(request, interner),
                )
            },
        )
    }
}

#[derive(Debug, Clone)]
enum CompiledChild {
    Policy(CompiledPolicy),
    Set(CompiledSet),
}

impl CompiledChild {
    fn applicability(&self, request: &PreparedRequest<'_>, interner: &AttrInterner) -> MatchResult {
        match self {
            CompiledChild::Policy(p) => p.applicability(request, interner),
            CompiledChild::Set(s) => s.applicability(request, interner),
        }
    }

    fn evaluate<'a>(
        &'a self,
        request: &PreparedRequest<'a>,
        interner: &'a AttrInterner,
    ) -> (ExtDecision, Vec<&'a Obligation>) {
        match self {
            CompiledChild::Policy(p) => p.evaluate(request, interner),
            CompiledChild::Set(s) => s.evaluate(request, interner),
        }
    }
}

#[derive(Debug, Clone)]
struct CompiledSet {
    target: CompiledTarget,
    algorithm: CombiningAlg,
    children: Vec<CompiledChild>,
    index: ChildIndex,
    obligations: SplitObligations,
}

impl CompiledSet {
    fn compile(set: &PolicySet, interner: &mut AttrInterner) -> CompiledSet {
        let entries = set
            .children
            .iter()
            .map(|c| {
                let target = match c {
                    PolicyChild::Policy(p) => &p.target,
                    PolicyChild::Set(s) => &s.target,
                };
                (extract_guard(target, interner), target_is_dead(target))
            })
            .collect();
        CompiledSet {
            target: CompiledTarget::compile(&set.target, interner),
            algorithm: set.algorithm,
            children: set
                .children
                .iter()
                .map(|c| match c {
                    PolicyChild::Policy(p) => {
                        CompiledChild::Policy(CompiledPolicy::compile(p, interner))
                    }
                    PolicyChild::Set(s) => CompiledChild::Set(CompiledSet::compile(s, interner)),
                })
                .collect(),
            index: ChildIndex::build(entries),
            obligations: SplitObligations::of(&set.obligations),
        }
    }

    fn applicability(&self, request: &PreparedRequest<'_>, interner: &AttrInterner) -> MatchResult {
        self.target.matches(request, interner)
    }

    fn evaluate<'a>(
        &'a self,
        request: &PreparedRequest<'a>,
        interner: &'a AttrInterner,
    ) -> (ExtDecision, Vec<&'a Obligation>) {
        eval_gated(
            &self.target,
            &self.obligations,
            request,
            interner,
            &mut |request| {
                let cands = self.index.candidates(request, self.children.len());
                combine_with(
                    self.algorithm,
                    cands.len(),
                    &mut |i| self.children[cands.child(i)].applicability(request, interner),
                    &mut |i| self.children[cands.child(i)].evaluate(request, interner),
                )
            },
        )
    }
}

/// The shared Policy/PolicySet evaluation skeleton, mirroring
/// `policy::evaluate_node` (XACML §7.12/§7.13): target gating, child
/// combining, own-obligation attachment and the Indeterminate-target
/// adjustment.
fn eval_gated<'a, C>(
    target: &'a CompiledTarget,
    own: &'a SplitObligations,
    request: &PreparedRequest<'a>,
    interner: &'a AttrInterner,
    combine_children: &mut C,
) -> (ExtDecision, Vec<&'a Obligation>)
where
    C: FnMut(&PreparedRequest<'a>) -> (ExtDecision, Vec<&'a Obligation>),
{
    match target.matches(request, interner) {
        MatchResult::NoMatch => (ExtDecision::NotApplicable, Vec::new()),
        MatchResult::Match => {
            let (d, mut obs) = combine_children(request);
            let own_effect = match d {
                ExtDecision::Permit => Some(Effect::Permit),
                ExtDecision::Deny => Some(Effect::Deny),
                _ => None,
            };
            if let Some(effect) = own_effect {
                obs.extend(own.for_effect(effect).iter());
            } else {
                obs.clear();
            }
            (d, obs)
        }
        MatchResult::Indeterminate => {
            // Evaluate children anyway to determine the indeterminate
            // flavour (XACML 3.0 §7.12, table "Indeterminate" row).
            let (d, _) = combine_children(request);
            let adjusted = match d {
                ExtDecision::NotApplicable => ExtDecision::NotApplicable,
                ExtDecision::Permit => ExtDecision::IndeterminateP,
                ExtDecision::Deny => ExtDecision::IndeterminateD,
                ind => ind,
            };
            (adjusted, Vec::new())
        }
    }
}

// ---- the public prepared policy set ----------------------------------------

/// A [`PolicySet`] compiled for the hot path: interned attributes, arena
/// expressions, target indexes. Immutable once built; shared freely
/// across threads (e.g. behind an `Arc` by the PDP and the PRP).
#[derive(Debug, Clone)]
pub struct PreparedPolicySet {
    interner: AttrInterner,
    root: CompiledSet,
    version: Digest,
}

impl PreparedPolicySet {
    /// Compiles a policy set. Compilation walks the tree once; literals
    /// are cloned here, never again at evaluation time.
    #[must_use]
    pub fn compile(set: &PolicySet) -> PreparedPolicySet {
        let mut interner = AttrInterner::default();
        let root = CompiledSet::compile(set, &mut interner);
        PreparedPolicySet {
            interner,
            root,
            version: set.version_digest(),
        }
    }

    /// The version digest of the source policy set.
    #[must_use]
    pub fn version_digest(&self) -> Digest {
        self.version
    }

    /// The attribute interner (symbols are dense `0..attribute_count`).
    #[must_use]
    pub fn interner(&self) -> &AttrInterner {
        &self.interner
    }

    /// Number of distinct attribute ids the policy references.
    #[must_use]
    pub fn attribute_count(&self) -> usize {
        self.interner.len()
    }

    /// Re-indexes a request's bags by symbol. O(request attributes).
    #[must_use]
    pub fn prepare<'r>(&self, request: &'r Request) -> PreparedRequest<'r> {
        const EMPTY: &[AttributeValue] = &[];
        let mut bags = vec![EMPTY; self.interner.len()];
        for (id, bag) in request.iter() {
            if let Some(sym) = self.interner.lookup(id) {
                bags[sym as usize] = bag;
            }
        }
        PreparedRequest { bags }
    }

    /// Evaluates a request: prepare + evaluate, cloning obligations only
    /// into the final result.
    ///
    /// Semantically identical to [`PolicySet::evaluate`] on the source
    /// set (property-tested in `tests/prop_compiled.rs`).
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> (ExtDecision, Vec<Obligation>) {
        self.evaluate_prepared(&self.prepare(request))
    }

    /// Evaluates an already-prepared request (the PDP's decision-cache
    /// miss path).
    #[must_use]
    pub fn evaluate_prepared(
        &self,
        request: &PreparedRequest<'_>,
    ) -> (ExtDecision, Vec<Obligation>) {
        let (d, obs) = self.root.evaluate(request, &self.interner);
        (d, obs.into_iter().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Category;

    fn eq(cat: Category, name: &str, val: impl Into<AttributeValue>) -> Expr {
        Expr::equal(Expr::attr(AttributeId::new(cat, name)), Expr::lit(val))
    }

    fn assert_equivalent(set: &PolicySet, request: &Request) {
        let prepared = PreparedPolicySet::compile(set);
        let (d_ref, o_ref) = set.evaluate(request);
        let (d_c, o_c) = prepared.evaluate(request);
        assert_eq!(d_ref, d_c, "decision diverged for {request:?}");
        assert_eq!(o_ref, o_c, "obligations diverged for {request:?}");
    }

    fn indexed_set(root_alg: CombiningAlg) -> PolicySet {
        // Policies partitioned by resource.type, like the workload
        // generator's federations — the shape the target index serves.
        // Nine guarded policies + the fallback clears the
        // MIN_INDEXED_CHILDREN threshold.
        const TYPES: [&str; 3] = ["record", "image", "report"];
        let mut root = PolicySet::builder("root", root_alg);
        for i in 0..9 {
            let rtype = TYPES[i % TYPES.len()];
            root = root.policy(
                Policy::builder(format!("p{i}"), CombiningAlg::PermitOverrides)
                    .target(Target::expr(eq(Category::Resource, "type", rtype)))
                    .rule(
                        Rule::builder(format!("r{i}"), Effect::Permit)
                            .target(Target::expr(eq(Category::Subject, "role", "doctor")))
                            .obligation(Obligation::new(format!("log{i}"), Effect::Permit))
                            .build(),
                    )
                    .build(),
            );
        }
        root.policy(
            Policy::builder("fallback", CombiningAlg::PermitOverrides)
                .rule(Rule::always("deny-all", Effect::Deny))
                .build(),
        )
        .build()
    }

    #[test]
    fn interner_is_dense_and_stable() {
        let set = indexed_set(CombiningAlg::DenyOverrides);
        let prepared = PreparedPolicySet::compile(&set);
        assert_eq!(prepared.attribute_count(), 2); // resource.type, subject.role
        let sym = prepared
            .interner()
            .lookup(&AttributeId::new(Category::Resource, "type"))
            .unwrap();
        assert_eq!(
            prepared.interner().resolve(sym),
            &AttributeId::new(Category::Resource, "type")
        );
        assert!(prepared
            .interner()
            .lookup(&AttributeId::new(Category::Subject, "ghost"))
            .is_none());
    }

    #[test]
    fn matches_interpreter_on_indexed_sets() {
        for alg in CombiningAlg::ALL {
            let set = indexed_set(alg);
            for request in [
                Request::builder()
                    .subject("role", "doctor")
                    .resource("type", "record")
                    .build(),
                Request::builder()
                    .subject("role", "nurse")
                    .resource("type", "image")
                    .build(),
                // missing resource.type → guarded policies go Indeterminate
                Request::builder().subject("role", "doctor").build(),
                // multi-valued bag → equal() errors, stays a candidate
                Request::builder()
                    .subject("role", "doctor")
                    .resource("type", "record")
                    .resource("type", "image")
                    .build(),
                // unknown resource type → only the fallback applies
                Request::builder()
                    .subject("role", "doctor")
                    .resource("type", "prescription")
                    .build(),
                Request::new(),
            ] {
                assert_equivalent(&set, &request);
            }
        }
    }

    #[test]
    fn index_skips_non_candidates() {
        let set = indexed_set(CombiningAlg::DenyOverrides);
        let prepared = PreparedPolicySet::compile(&set);
        let request = Request::builder()
            .subject("role", "doctor")
            .resource("type", "record")
            .build();
        let pr = prepared.prepare(&request);
        let cands = prepared.root.index.candidates(&pr, 10);
        let picked: Vec<usize> = (0..cands.len()).map(|i| cands.child(i)).collect();
        // the three "record" policies + the unguarded fallback
        assert_eq!(picked, vec![0, 3, 6, 9]);
        assert!(!matches!(cands, Candidates::All(_)));
    }

    #[test]
    fn numeric_guard_keys_coerce_like_equality() {
        // Int guard value must be found by a Double request value and
        // vice versa, matching AttributeValue's PartialEq.
        let set = PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("hour14", CombiningAlg::PermitOverrides)
                    .target(Target::expr(eq(Category::Environment, "hour", 14i64)))
                    .rule(Rule::always("ok", Effect::Permit))
                    .build(),
            )
            .build();
        for request in [
            Request::builder().environment("hour", 14i64).build(),
            Request::builder().environment("hour", 14.0).build(),
            Request::builder().environment("hour", 13.5).build(),
            Request::builder().environment("hour", -0.0).build(),
        ] {
            assert_equivalent(&set, &request);
        }
    }

    #[test]
    fn dead_targets_are_pruned() {
        // An empty AnyOf clause can never match; the interpreter yields
        // NotApplicable and the compiled engine prunes the child.
        let mut set = indexed_set(CombiningAlg::DenyOverrides);
        if let PolicyChild::Policy(p) = &mut set.children[0] {
            p.target = Target::Clauses(vec![vec![]]);
        }
        let request = Request::builder()
            .subject("role", "doctor")
            .resource("type", "record")
            .build();
        assert_equivalent(&set, &request);
    }

    #[test]
    fn obligation_order_is_preserved_across_skips() {
        // permit-overrides collects obligations from every permitting
        // child in document order, even when the index skips others.
        let types = [
            "record", "record", "image", "record", "image", "image", "record", "image",
        ];
        let mut root = PolicySet::builder("root", CombiningAlg::PermitOverrides);
        for (i, rtype) in types.iter().enumerate() {
            root = root.policy(
                Policy::builder(format!("p{i}"), CombiningAlg::PermitOverrides)
                    .target(Target::expr(eq(Category::Resource, "type", *rtype)))
                    .rule(
                        Rule::builder(format!("r{i}"), Effect::Permit)
                            .obligation(Obligation::new(format!("ob{i}"), Effect::Permit))
                            .build(),
                    )
                    .build(),
            );
        }
        let set = root.build();
        let request = Request::builder().resource("type", "record").build();
        let prepared = PreparedPolicySet::compile(&set);
        let (_, obs) = prepared.evaluate(&request);
        let ids: Vec<&str> = obs.iter().map(|o| o.id.as_str()).collect();
        assert_eq!(ids, vec!["ob0", "ob1", "ob3", "ob6"]);
        assert_equivalent(&set, &request);
    }

    #[test]
    fn nested_sets_compile_and_agree() {
        let inner = indexed_set(CombiningAlg::FirstApplicable);
        let set = PolicySet::builder("outer", CombiningAlg::DenyOverrides)
            .target(Target::expr(eq(Category::Action, "id", "read")))
            .set(inner)
            .build();
        for request in [
            Request::builder()
                .subject("role", "doctor")
                .resource("type", "record")
                .action("id", "read")
                .build(),
            Request::builder()
                .subject("role", "doctor")
                .resource("type", "record")
                .action("id", "write")
                .build(),
            Request::builder().resource("type", "record").build(),
        ] {
            assert_equivalent(&set, &request);
        }
    }

    #[test]
    fn size_special_case_survives_compilation() {
        // size(missing-attr) is 0, not an error, in both engines.
        let set = PolicySet::builder("root", CombiningAlg::DenyUnlessPermit)
            .policy(
                Policy::builder("p", CombiningAlg::PermitOverrides)
                    .rule(
                        Rule::builder("present", Effect::Permit)
                            .condition(Expr::equal(
                                Expr::Apply(
                                    Func::Size,
                                    vec![Expr::attr(AttributeId::new(Category::Subject, "ghost"))],
                                ),
                                Expr::lit(0i64),
                            ))
                            .build(),
                    )
                    .build(),
            )
            .build();
        assert_equivalent(&set, &Request::new());
        assert_equivalent(&set, &Request::builder().subject("ghost", "boo").build());
    }
}
