//! Rules — the leaves of the policy tree.

use crate::attr::Request;
use crate::decision::{Effect, ExtDecision, Obligation};
use crate::expr::Expr;
use crate::target::{MatchResult, Target};
use drams_crypto::codec::{decode_seq, Decode, Encode, Reader, Writer};
use drams_crypto::CryptoError;
use serde::{Deserialize, Serialize};

/// A single access-control rule: target + optional condition + effect.
///
/// Evaluation follows XACML 3.0 §7.11:
///
/// | target        | condition | result                  |
/// |---------------|-----------|-------------------------|
/// | NoMatch       | —         | NotApplicable           |
/// | Indeterminate | —         | Indeterminate{effect}   |
/// | Match         | true      | effect                  |
/// | Match         | false     | NotApplicable           |
/// | Match         | error     | Indeterminate{effect}   |
///
/// # Example
///
/// ```
/// use drams_policy::prelude::*;
///
/// let rule = Rule::builder("r1", Effect::Permit)
///     .target(Target::expr(Expr::equal(
///         Expr::attr(AttributeId::new(Category::Subject, "role")),
///         Expr::lit("doctor"),
///     )))
///     .build();
/// let req = Request::builder().subject("role", "doctor").build();
/// assert_eq!(rule.evaluate(&req).0, ExtDecision::Permit);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Rule identifier, unique within its policy.
    pub id: String,
    /// The effect produced when the rule applies.
    pub effect: Effect,
    /// Applicability target.
    pub target: Target,
    /// Optional boolean condition, evaluated only when the target matches.
    pub condition: Option<Expr>,
    /// Obligations attached to this rule.
    pub obligations: Vec<Obligation>,
}

impl Rule {
    /// Starts building a rule.
    pub fn builder(id: impl Into<String>, effect: Effect) -> RuleBuilder {
        RuleBuilder {
            rule: Rule {
                id: id.into(),
                effect,
                target: Target::Any,
                condition: None,
                obligations: Vec::new(),
            },
        }
    }

    /// A rule that always fires with the given effect.
    pub fn always(id: impl Into<String>, effect: Effect) -> Rule {
        Rule::builder(id, effect).build()
    }

    /// Target applicability only (used by `only-one-applicable`).
    #[must_use]
    pub fn applicability(&self, request: &Request) -> MatchResult {
        self.target.matches(request)
    }

    /// Full rule evaluation.
    #[must_use]
    pub fn evaluate(&self, request: &Request) -> (ExtDecision, Vec<Obligation>) {
        match self.target.matches(request) {
            MatchResult::NoMatch => (ExtDecision::NotApplicable, Vec::new()),
            MatchResult::Indeterminate => (ExtDecision::indeterminate_for(self.effect), Vec::new()),
            MatchResult::Match => match &self.condition {
                None => self.fire(),
                Some(cond) => match cond.eval_bool(request) {
                    Ok(true) => self.fire(),
                    Ok(false) => (ExtDecision::NotApplicable, Vec::new()),
                    Err(_) => (ExtDecision::indeterminate_for(self.effect), Vec::new()),
                },
            },
        }
    }

    fn fire(&self) -> (ExtDecision, Vec<Obligation>) {
        let decision = match self.effect {
            Effect::Permit => ExtDecision::Permit,
            Effect::Deny => ExtDecision::Deny,
        };
        let obligations = self
            .obligations
            .iter()
            .filter(|o| o.fulfill_on == self.effect)
            .cloned()
            .collect();
        (decision, obligations)
    }

    /// All attribute ids referenced by target and condition.
    #[must_use]
    pub fn referenced_attributes(&self) -> Vec<crate::attr::AttributeId> {
        let mut out = self.target.referenced_attributes();
        if let Some(c) = &self.condition {
            out.extend(c.referenced_attributes());
        }
        out.sort();
        out.dedup();
        out
    }

    /// Structural size (expression nodes in target + condition).
    #[must_use]
    pub fn size(&self) -> usize {
        self.target.size() + self.condition.as_ref().map(Expr::size).unwrap_or(0) + 1
    }
}

/// Builder for [`Rule`].
#[derive(Debug)]
pub struct RuleBuilder {
    rule: Rule,
}

impl RuleBuilder {
    /// Sets the target.
    #[must_use]
    pub fn target(mut self, target: Target) -> Self {
        self.rule.target = target;
        self
    }

    /// Sets the condition.
    #[must_use]
    pub fn condition(mut self, condition: Expr) -> Self {
        self.rule.condition = Some(condition);
        self
    }

    /// Adds an obligation.
    #[must_use]
    pub fn obligation(mut self, obligation: Obligation) -> Self {
        self.rule.obligations.push(obligation);
        self
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> Rule {
        self.rule
    }
}

impl Encode for Rule {
    fn encode(&self, w: &mut Writer) {
        w.put_str(&self.id);
        self.effect.encode(w);
        self.target.encode(w);
        match &self.condition {
            None => w.put_u8(0),
            Some(c) => {
                w.put_u8(1);
                c.encode(w);
            }
        }
        w.put_varint(self.obligations.len() as u64);
        for o in &self.obligations {
            o.encode(w);
        }
    }
}

impl Decode for Rule {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        let id = r.get_str()?;
        let effect = Effect::decode(r)?;
        let target = Target::decode(r)?;
        let condition = match r.get_u8()? {
            0 => None,
            1 => Some(Expr::decode(r)?),
            other => return Err(CryptoError::Malformed(format!("condition tag {other}"))),
        };
        let obligations = decode_seq(r)?;
        Ok(Rule {
            id,
            effect,
            target,
            condition,
            obligations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttributeId, Category};
    use drams_crypto::codec::{Decode, Encode};

    fn role_eq(val: &str) -> Expr {
        Expr::equal(
            Expr::attr(AttributeId::new(Category::Subject, "role")),
            Expr::lit(val),
        )
    }

    fn doctor() -> Request {
        Request::builder()
            .subject("role", "doctor")
            .environment("hour", 10i64)
            .build()
    }

    #[test]
    fn always_rule_fires() {
        let (d, _) = Rule::always("r", Effect::Deny).evaluate(&doctor());
        assert_eq!(d, ExtDecision::Deny);
    }

    #[test]
    fn target_nomatch_gives_not_applicable() {
        let rule = Rule::builder("r", Effect::Permit)
            .target(Target::expr(role_eq("nurse")))
            .build();
        assert_eq!(rule.evaluate(&doctor()).0, ExtDecision::NotApplicable);
    }

    #[test]
    fn target_indeterminate_flavours_by_effect() {
        let missing = Expr::equal(
            Expr::attr(AttributeId::new(Category::Resource, "ghost")),
            Expr::lit("x"),
        );
        let permit = Rule::builder("p", Effect::Permit)
            .target(Target::expr(missing.clone()))
            .build();
        assert_eq!(permit.evaluate(&doctor()).0, ExtDecision::IndeterminateP);
        let deny = Rule::builder("d", Effect::Deny)
            .target(Target::expr(missing))
            .build();
        assert_eq!(deny.evaluate(&doctor()).0, ExtDecision::IndeterminateD);
    }

    #[test]
    fn condition_false_gives_not_applicable() {
        let rule = Rule::builder("r", Effect::Permit)
            .target(Target::expr(role_eq("doctor")))
            .condition(Expr::Apply(
                crate::expr::Func::Greater,
                vec![
                    Expr::attr(AttributeId::new(Category::Environment, "hour")),
                    Expr::lit(18i64),
                ],
            ))
            .build();
        assert_eq!(rule.evaluate(&doctor()).0, ExtDecision::NotApplicable);
    }

    #[test]
    fn condition_error_gives_indeterminate() {
        let rule = Rule::builder("r", Effect::Deny)
            .condition(Expr::equal(
                Expr::attr(AttributeId::new(Category::Environment, "ghost")),
                Expr::lit(1i64),
            ))
            .build();
        assert_eq!(rule.evaluate(&doctor()).0, ExtDecision::IndeterminateD);
    }

    #[test]
    fn obligations_fire_with_matching_effect_only() {
        let rule = Rule::builder("r", Effect::Permit)
            .obligation(Obligation::new("log", Effect::Permit))
            .obligation(Obligation::new("alert", Effect::Deny))
            .build();
        let (d, obs) = rule.evaluate(&doctor());
        assert_eq!(d, ExtDecision::Permit);
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].id, "log");
    }

    #[test]
    fn codec_round_trip() {
        let rule = Rule::builder("r42", Effect::Deny)
            .target(Target::expr(role_eq("doctor")))
            .condition(Expr::lit(true))
            .obligation(Obligation::new("audit", Effect::Deny).with_arg(7i64))
            .build();
        let bytes = rule.to_canonical_bytes();
        assert_eq!(Rule::from_canonical_bytes(&bytes).unwrap(), rule);
    }

    #[test]
    fn size_and_referenced_attributes() {
        let rule = Rule::builder("r", Effect::Permit)
            .target(Target::expr(role_eq("doctor")))
            .condition(role_eq("doctor"))
            .build();
        assert_eq!(rule.referenced_attributes().len(), 1);
        assert!(rule.size() > 1);
    }
}
