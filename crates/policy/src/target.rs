//! Policy/rule targets.
//!
//! A target decides *applicability*: whether a rule, policy or policy set
//! is relevant to a request at all. Structure follows XACML 3.0:
//! `Target = AND over AnyOf; AnyOf = OR over AllOf; AllOf = AND over Match`.
//! Evaluation is three-valued: `Match`, `NoMatch` or `Indeterminate`.

use crate::attr::Request;
use crate::expr::{EvalError, Expr};
use drams_crypto::codec::{Decode, Encode, Reader, Writer};
use drams_crypto::CryptoError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of matching a target against a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchResult {
    /// The element applies.
    Match,
    /// The element does not apply.
    NoMatch,
    /// Matching failed (missing attribute / type error).
    Indeterminate,
}

/// A target.
///
/// `Target::Any` (the empty target) matches every request, mirroring
/// XACML's absent-target semantics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Target {
    /// Matches everything.
    Any,
    /// Conjunction of disjunctions of boolean match expressions.
    ///
    /// Outer `Vec` = AnyOf list (ANDed); middle `Vec` = AllOf list (ORed);
    /// inner `Vec` = matches (ANDed).
    Clauses(Vec<Vec<Vec<Expr>>>),
}

impl Target {
    /// A target that applies to every request.
    #[must_use]
    pub fn any() -> Target {
        Target::Any
    }

    /// A target consisting of a single boolean expression.
    #[must_use]
    pub fn expr(e: Expr) -> Target {
        Target::Clauses(vec![vec![vec![e]]])
    }

    /// A target that is the conjunction of several expressions.
    #[must_use]
    pub fn all(exprs: Vec<Expr>) -> Target {
        Target::Clauses(vec![vec![exprs]])
    }

    /// Evaluates applicability for `request`.
    #[must_use]
    pub fn matches(&self, request: &Request) -> MatchResult {
        let clauses = match self {
            Target::Any => return MatchResult::Match,
            Target::Clauses(c) => c,
        };
        // Target = AND of AnyOfs
        let mut target_indeterminate = false;
        for any_of in clauses {
            // AnyOf = OR of AllOfs
            let mut any_matched = false;
            let mut any_indeterminate = false;
            for all_of in any_of {
                // AllOf = AND of Matches
                match eval_all_of(all_of, request) {
                    MatchResult::Match => {
                        any_matched = true;
                        break;
                    }
                    MatchResult::NoMatch => {}
                    MatchResult::Indeterminate => any_indeterminate = true,
                }
            }
            if any_matched {
                continue;
            }
            if any_indeterminate {
                target_indeterminate = true;
                continue;
            }
            return MatchResult::NoMatch;
        }
        if target_indeterminate {
            MatchResult::Indeterminate
        } else {
            MatchResult::Match
        }
    }

    /// All attribute ids mentioned anywhere in the target.
    #[must_use]
    pub fn referenced_attributes(&self) -> Vec<crate::attr::AttributeId> {
        let mut out = Vec::new();
        if let Target::Clauses(clauses) = self {
            for any_of in clauses {
                for all_of in any_of {
                    for m in all_of {
                        out.extend(m.referenced_attributes());
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Structural size (total expression nodes).
    #[must_use]
    pub fn size(&self) -> usize {
        match self {
            Target::Any => 0,
            Target::Clauses(clauses) => clauses
                .iter()
                .flat_map(|any_of| any_of.iter())
                .flat_map(|all_of| all_of.iter())
                .map(Expr::size)
                .sum(),
        }
    }
}

impl Default for Target {
    fn default() -> Self {
        Target::Any
    }
}

fn eval_all_of(all_of: &[Expr], request: &Request) -> MatchResult {
    let mut indeterminate = false;
    for m in all_of {
        match m.eval_bool(request) {
            Ok(true) => {}
            Ok(false) => return MatchResult::NoMatch,
            Err(EvalError::MissingAttribute(_)) | Err(_) => indeterminate = true,
        }
    }
    if indeterminate {
        MatchResult::Indeterminate
    } else {
        MatchResult::Match
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Any => f.write_str("any"),
            Target::Clauses(clauses) => {
                for (i, any_of) in clauses.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" AND ")?;
                    }
                    f.write_str("(")?;
                    for (j, all_of) in any_of.iter().enumerate() {
                        if j > 0 {
                            f.write_str(" OR ")?;
                        }
                        f.write_str("(")?;
                        for (k, m) in all_of.iter().enumerate() {
                            if k > 0 {
                                f.write_str(" ∧ ")?;
                            }
                            write!(f, "{m}")?;
                        }
                        f.write_str(")")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
        }
    }
}

impl Encode for Target {
    fn encode(&self, w: &mut Writer) {
        match self {
            Target::Any => w.put_u8(0),
            Target::Clauses(clauses) => {
                w.put_u8(1);
                w.put_varint(clauses.len() as u64);
                for any_of in clauses {
                    w.put_varint(any_of.len() as u64);
                    for all_of in any_of {
                        w.put_varint(all_of.len() as u64);
                        for m in all_of {
                            m.encode(w);
                        }
                    }
                }
            }
        }
    }
}

impl Decode for Target {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CryptoError> {
        match r.get_u8()? {
            0 => Ok(Target::Any),
            1 => {
                let n = r.get_varint()? as usize;
                check_len(n, r)?;
                let mut clauses = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    let n_any = r.get_varint()? as usize;
                    check_len(n_any, r)?;
                    let mut any_of = Vec::with_capacity(n_any.min(64));
                    for _ in 0..n_any {
                        let n_all = r.get_varint()? as usize;
                        check_len(n_all, r)?;
                        let mut all_of = Vec::with_capacity(n_all.min(64));
                        for _ in 0..n_all {
                            all_of.push(Expr::decode(r)?);
                        }
                        any_of.push(all_of);
                    }
                    clauses.push(any_of);
                }
                Ok(Target::Clauses(clauses))
            }
            other => Err(CryptoError::Malformed(format!("target tag {other}"))),
        }
    }
}

fn check_len(n: usize, r: &Reader<'_>) -> Result<(), CryptoError> {
    if n > r.remaining() {
        Err(CryptoError::Malformed("target length too large".into()))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{AttributeId, Category, Request};

    fn eq(cat: Category, name: &str, val: &str) -> Expr {
        Expr::equal(Expr::attr(AttributeId::new(cat, name)), Expr::lit(val))
    }

    fn doctor_request() -> Request {
        Request::builder()
            .subject("role", "doctor")
            .action("id", "read")
            .build()
    }

    #[test]
    fn any_matches_everything() {
        assert_eq!(Target::any().matches(&Request::new()), MatchResult::Match);
    }

    #[test]
    fn single_expr_match() {
        let t = Target::expr(eq(Category::Subject, "role", "doctor"));
        assert_eq!(t.matches(&doctor_request()), MatchResult::Match);
        let t2 = Target::expr(eq(Category::Subject, "role", "nurse"));
        assert_eq!(t2.matches(&doctor_request()), MatchResult::NoMatch);
    }

    #[test]
    fn missing_attribute_gives_indeterminate() {
        let t = Target::expr(eq(Category::Resource, "type", "record"));
        assert_eq!(t.matches(&doctor_request()), MatchResult::Indeterminate);
    }

    #[test]
    fn anyof_or_semantics() {
        // role == nurse OR role == doctor
        let t = Target::Clauses(vec![vec![
            vec![eq(Category::Subject, "role", "nurse")],
            vec![eq(Category::Subject, "role", "doctor")],
        ]]);
        assert_eq!(t.matches(&doctor_request()), MatchResult::Match);
    }

    #[test]
    fn allof_and_semantics() {
        let t = Target::all(vec![
            eq(Category::Subject, "role", "doctor"),
            eq(Category::Action, "id", "read"),
        ]);
        assert_eq!(t.matches(&doctor_request()), MatchResult::Match);
        let t2 = Target::all(vec![
            eq(Category::Subject, "role", "doctor"),
            eq(Category::Action, "id", "write"),
        ]);
        assert_eq!(t2.matches(&doctor_request()), MatchResult::NoMatch);
    }

    #[test]
    fn conjunction_of_anyofs() {
        // (role==doctor) AND (action==read OR action==write)
        let t = Target::Clauses(vec![
            vec![vec![eq(Category::Subject, "role", "doctor")]],
            vec![
                vec![eq(Category::Action, "id", "read")],
                vec![eq(Category::Action, "id", "write")],
            ],
        ]);
        assert_eq!(t.matches(&doctor_request()), MatchResult::Match);
    }

    #[test]
    fn no_match_beats_indeterminate_in_anyof_only_when_none_match() {
        // AnyOf: [missing-attr match (indeterminate), false match] →
        // neither matches, one indeterminate → Indeterminate overall.
        let t = Target::Clauses(vec![vec![
            vec![eq(Category::Resource, "type", "record")],
            vec![eq(Category::Subject, "role", "nurse")],
        ]]);
        assert_eq!(t.matches(&doctor_request()), MatchResult::Indeterminate);
        // But a definitive sibling match wins over the indeterminate.
        let t2 = Target::Clauses(vec![vec![
            vec![eq(Category::Resource, "type", "record")],
            vec![eq(Category::Subject, "role", "doctor")],
        ]]);
        assert_eq!(t2.matches(&doctor_request()), MatchResult::Match);
    }

    #[test]
    fn definitive_nomatch_in_and_clause_beats_indeterminate() {
        // (missing) AND (false) → NoMatch because one conjunct is a
        // definitive NoMatch at the AnyOf level.
        let t = Target::Clauses(vec![
            vec![vec![eq(Category::Resource, "type", "record")]],
            vec![vec![eq(Category::Subject, "role", "nurse")]],
        ]);
        assert_eq!(t.matches(&doctor_request()), MatchResult::NoMatch);
    }

    #[test]
    fn codec_round_trip() {
        let t = Target::Clauses(vec![
            vec![vec![eq(Category::Subject, "role", "doctor")]],
            vec![
                vec![eq(Category::Action, "id", "read")],
                vec![
                    eq(Category::Action, "id", "write"),
                    eq(Category::Subject, "ward", "icu"),
                ],
            ],
        ]);
        let bytes = t.to_canonical_bytes();
        assert_eq!(Target::from_canonical_bytes(&bytes).unwrap(), t);
        let any = Target::Any;
        assert_eq!(
            Target::from_canonical_bytes(&any.to_canonical_bytes()).unwrap(),
            any
        );
    }

    #[test]
    fn referenced_attributes_and_size() {
        let t = Target::all(vec![
            eq(Category::Subject, "role", "doctor"),
            eq(Category::Action, "id", "read"),
        ]);
        assert_eq!(t.referenced_attributes().len(), 2);
        assert!(t.size() > 0);
        assert_eq!(Target::Any.size(), 0);
    }
}
