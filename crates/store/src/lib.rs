//! Durable storage for DRAMS: the hybrid log store and the crash-safe
//! log engine.
//!
//! Two halves live here:
//!
//! 1. **The ref-\[9\] hybrid store** (paper §III: "a hybrid approach
//!    combining classical database with blockchain system should offer an
//!    adequate flexibility to find a trade-off between latency, integrity
//!    guarantees and, in case of public chain, cost"). Log entries land in
//!    a fast append-only store immediately ([`kvlog`]); every
//!    `anchor_period` entries the segment's Merkle root is committed to
//!    the blockchain ([`anchor`]). Reads are instant; integrity becomes
//!    unconditional once the covering anchor commits — the
//!    *tamper-exposure window* is the tail not yet anchored, and
//!    experiment E3 measures exactly that trade-off.
//!
//! 2. **The durable log engine** backing crash-recovery: a segmented
//!    append-only log with length-prefixed, checksummed records
//!    ([`segment`]), torn-tail truncation on open, segment rotation and
//!    snapshot+prune compaction ([`wal`]), over pluggable storage
//!    backends with an explicit fsync policy ([`backend`]). On top of it,
//!    [`persist`] gives the chain node a write-ahead journal and full
//!    replay recovery; `drams-core` uses the same engine for the Logging
//!    Interface's unflushed-batch backlog and the Analyser's verification
//!    checkpoint. Experiment E11 crash-restarts each of those services
//!    mid-run and requires byte-identical results.
//!
//! # Example: a crash-safe log
//!
//! ```
//! use drams_store::backend::{Durability, MemBackend};
//! use drams_store::wal::{Wal, WalConfig};
//!
//! # fn main() -> Result<(), drams_store::StoreError> {
//! let config = WalConfig { segment_records: 4, durability: Durability::Flushed };
//! let mut wal = Wal::open(Box::new(MemBackend::new()), config)?;
//! wal.append(b"observation 0")?;
//! wal.append(b"observation 1")?;
//!
//! // The process dies; flushed records survive.
//! wal.simulate_crash()?;
//! let recovered = wal.replay()?;
//! assert_eq!(recovered.len(), 2);
//! assert_eq!(recovered[1], (1, b"observation 1".to_vec()));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod anchor;
pub mod backend;
pub mod error;
pub mod kvlog;
pub mod persist;
pub mod segment;
pub mod wal;

pub use anchor::{AnchorContract, AnchoredStore, AuditOutcome, ANCHOR_CONTRACT};
pub use backend::{Backend, Durability, FsBackend, MemBackend};
pub use error::StoreError;
pub use kvlog::{KvLog, Segment};
pub use persist::{compact_node_journal, recover_node, WalJournal};
pub use wal::{SnapshotStore, Wal, WalConfig};
