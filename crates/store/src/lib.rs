//! Hybrid database + blockchain log store.
//!
//! Paper §III: "a hybrid approach combining classical database with
//! blockchain system should offer an adequate flexibility to find a
//! trade-off between latency, integrity guarantees and, in case of public
//! chain, cost. A preliminary design to such a system is presented in
//! \[9\]" (Gaetani et al.). This crate implements that design: log entries
//! land in a fast append-only store immediately; every `anchor_period`
//! entries the segment's Merkle root is committed to the blockchain. Reads
//! are instant; integrity becomes unconditional once the covering anchor
//! commits — the *tamper-exposure window* is the tail not yet anchored,
//! and experiment E3 measures exactly that trade-off.

pub mod anchor;
pub mod kvlog;

pub use anchor::{AnchorContract, AnchoredStore, AuditOutcome, ANCHOR_CONTRACT};
pub use kvlog::{KvLog, Segment};
