//! The write-ahead log and snapshot store.
//!
//! [`Wal`] manages a directory of segment files (format in
//! [`crate::segment`]): appends go to the tail segment, which rotates
//! every [`WalConfig::segment_records`] records; recovery on open repairs
//! torn tails by truncation and rejects mid-log corruption with a typed
//! error; [`Wal::prune_through`] deletes sealed segments made redundant
//! by a snapshot. [`SnapshotStore`] holds one atomically-replaced,
//! checksummed snapshot — a consumer's compacted state plus the log
//! sequence number it covers.
//!
//! # Recovery state machine (on [`Wal::open`])
//!
//! ```text
//!          ┌────────────┐ per segment file, in index order
//!          │ scan bytes │
//!          └─────┬──────┘
//!    ┌───────────┼──────────────────────┐
//!    ▼           ▼                      ▼
//!  clean    torn damage            mid-segment damage
//!    │           │                      │
//!    │     last file? ──no──────────────┤
//!    │           │ yes                  ▼
//!    │           ▼                Err(Corrupt)   (refuse to open)
//!    │     truncate to the
//!    │     valid prefix
//!    ▼           ▼
//!   accept records; check index/sequence continuity; tail reopens
//! ```
//!
//! # Example
//!
//! ```
//! use drams_store::backend::{Durability, MemBackend};
//! use drams_store::wal::{Wal, WalConfig};
//!
//! # fn main() -> Result<(), drams_store::StoreError> {
//! let config = WalConfig { segment_records: 2, durability: Durability::Flushed };
//! let mut wal = Wal::open(Box::new(MemBackend::new()), config)?;
//! for payload in [b"a".as_slice(), b"b", b"c"] {
//!     wal.append(payload)?;
//! }
//! let replayed = wal.replay()?;
//! assert_eq!(replayed.len(), 3);
//! assert_eq!(replayed[2], (2, b"c".to_vec()));
//! assert_eq!(wal.segment_count(), 2); // rotated after two records
//! # Ok(())
//! # }
//! ```

use crate::backend::{Backend, Durability};
use crate::error::StoreError;
use crate::segment::{frame_record, scan, SegmentHeader, HEADER_LEN};

/// Prefix of segment file names (`seg-00000000.wal`, …).
pub const SEGMENT_PREFIX: &str = "seg-";
/// Suffix of segment file names.
pub const SEGMENT_SUFFIX: &str = ".wal";
/// Name of the snapshot file a [`Wal`] (or [`SnapshotStore`]) manages.
pub const SNAPSHOT_FILE: &str = "snapshot.snap";

/// Magic bytes opening a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"DRSN";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Tuning knobs of a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalConfig {
    /// Records per segment before the tail rotates.
    pub segment_records: usize,
    /// Whether appends are synced record-by-record
    /// ([`Durability::Flushed`]) or only on explicit [`Wal::sync`]
    /// ([`Durability::Buffered`]).
    pub durability: Durability,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_records: 1024,
            durability: Durability::Flushed,
        }
    }
}

/// In-memory index entry for one live segment file.
#[derive(Debug, Clone, Copy)]
struct SegInfo {
    index: u64,
    first_seq: u64,
    records: u64,
}

impl SegInfo {
    fn file_name(&self) -> String {
        segment_file_name(self.index)
    }
    fn end_seq(&self) -> u64 {
        self.first_seq + self.records
    }
}

/// The file name of segment `index`.
#[must_use]
pub fn segment_file_name(index: u64) -> String {
    format!("{SEGMENT_PREFIX}{index:08}{SEGMENT_SUFFIX}")
}

/// A segmented, checksummed write-ahead log over a [`Backend`].
#[derive(Debug)]
pub struct Wal {
    backend: Box<dyn Backend>,
    config: WalConfig,
    segments: Vec<SegInfo>,
    next_seq: u64,
}

impl Wal {
    /// Opens (and recovers) a log from `backend`.
    ///
    /// Torn tails — an incomplete record, an incomplete header, or a
    /// checksum failure on the final record of the final segment — are
    /// repaired by truncating to the last intact record. Damage anywhere
    /// else refuses to open.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on mid-log corruption or broken segment
    /// continuity; [`StoreError::Io`] on backend failure.
    pub fn open(backend: Box<dyn Backend>, config: WalConfig) -> Result<Self, StoreError> {
        assert!(config.segment_records > 0, "segment capacity must be >= 1");
        let mut wal = Wal {
            backend,
            config,
            segments: Vec::new(),
            next_seq: 0,
        };
        wal.recover()?;
        Ok(wal)
    }

    fn recover(&mut self) -> Result<(), StoreError> {
        let names: Vec<String> = self
            .backend
            .list()
            .into_iter()
            .filter(|n| n.starts_with(SEGMENT_PREFIX) && n.ends_with(SEGMENT_SUFFIX))
            .collect();
        let mut segments: Vec<SegInfo> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let bytes = self.backend.read(name)?;
            let last = i + 1 == names.len();
            let outcome = scan(name, &bytes)?;
            if outcome.torn_tail || (outcome.valid_len as usize) < bytes.len() {
                if !last {
                    return Err(StoreError::Corrupt {
                        file: name.clone(),
                        offset: outcome.valid_len,
                        reason: "torn tail in a non-final segment".into(),
                    });
                }
                self.backend.truncate(name, outcome.valid_len)?;
            }
            if (outcome.valid_len as usize) < HEADER_LEN {
                // Header never made it to the medium: the segment was
                // created by a torn rotation. Only acceptable at the
                // very end of the log; drop the file entirely.
                if !last {
                    return Err(StoreError::Corrupt {
                        file: name.clone(),
                        offset: 0,
                        reason: "headerless segment before the end of the log".into(),
                    });
                }
                self.backend.remove(name)?;
                continue;
            }
            let info = SegInfo {
                index: outcome.header.index,
                first_seq: outcome.header.first_seq,
                records: outcome.records.len() as u64,
            };
            if let Some(prev) = segments.last() {
                if info.index <= prev.index || info.first_seq != prev.end_seq() {
                    return Err(StoreError::Corrupt {
                        file: name.clone(),
                        offset: 0,
                        reason: format!(
                            "segment continuity broken: index {} first_seq {} after \
                             index {} ending at seq {}",
                            info.index,
                            info.first_seq,
                            prev.index,
                            prev.end_seq()
                        ),
                    });
                }
            }
            segments.push(info);
        }
        self.next_seq = segments.last().map_or(0, SegInfo::end_seq);
        self.segments = segments;
        Ok(())
    }

    /// The sequence number the next append will get.
    #[must_use]
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The first sequence number still retained (later when pruned).
    #[must_use]
    pub fn first_retained_seq(&self) -> u64 {
        self.segments.first().map_or(self.next_seq, |s| s.first_seq)
    }

    /// Number of live segment files.
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// True when no records are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.first_retained_seq() == self.next_seq
    }

    /// Appends one record, rotating the tail segment when full. Returns
    /// the record's sequence number. Under [`Durability::Flushed`] the
    /// record is durable when this returns.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64, StoreError> {
        let rotate = match self.segments.last() {
            None => true,
            Some(tail) => tail.records >= self.config.segment_records as u64,
        };
        if rotate {
            let index = self.segments.last().map_or(0, |s| s.index + 1);
            let info = SegInfo {
                index,
                first_seq: self.next_seq,
                records: 0,
            };
            let header = SegmentHeader {
                index,
                first_seq: self.next_seq,
            };
            self.backend.append(&info.file_name(), &header.to_bytes())?;
            self.segments.push(info);
        }
        let tail = self.segments.last_mut().expect("tail ensured above");
        let mut frame = Vec::with_capacity(payload.len() + 8);
        frame_record(payload, &mut frame);
        let name = tail.file_name();
        self.backend.append(&name, &frame)?;
        tail.records += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.config.durability == Durability::Flushed {
            self.backend.sync(&name)?;
        }
        Ok(seq)
    }

    /// Forces buffered appends to durable storage (a no-op under
    /// [`Durability::Flushed`], where every append already synced).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if let Some(tail) = self.segments.last() {
            self.backend.sync(&tail.file_name())?;
        }
        Ok(())
    }

    /// Replays every retained record as `(seq, payload)` in order.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if a segment was damaged since open.
    pub fn replay(&self) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        self.replay_from(0)
    }

    /// Replays retained records with `seq >= from_seq`.
    ///
    /// # Errors
    ///
    /// As [`Wal::replay`].
    pub fn replay_from(&self, from_seq: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        let mut out = Vec::new();
        for info in &self.segments {
            if info.end_seq() <= from_seq {
                continue;
            }
            let name = info.file_name();
            let bytes = self.backend.read(&name)?;
            let outcome = scan(&name, &bytes)?;
            for (i, payload) in outcome.records.into_iter().enumerate() {
                let seq = info.first_seq + i as u64;
                if seq >= from_seq {
                    out.push((seq, payload));
                }
            }
        }
        Ok(out)
    }

    /// Deletes sealed (non-tail) segments whose every record has
    /// `seq < upto_seq` — compaction after a snapshot covering those
    /// records. Returns how many segment files were removed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    pub fn prune_through(&mut self, upto_seq: u64) -> Result<usize, StoreError> {
        let mut removed = 0;
        while self.segments.len() > 1 {
            let first = self.segments[0];
            if first.end_seq() > upto_seq {
                break;
            }
            self.backend.remove(&first.file_name())?;
            self.segments.remove(0);
            removed += 1;
        }
        Ok(removed)
    }

    /// Writes this log's snapshot file atomically: `payload` plus the
    /// sequence number it covers (records with `seq < upto_seq` are
    /// folded into the snapshot). Typically followed by
    /// [`Wal::prune_through`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    pub fn write_snapshot(&mut self, upto_seq: u64, payload: &[u8]) -> Result<(), StoreError> {
        write_snapshot_file(self.backend.as_mut(), upto_seq, payload)
    }

    /// Reads this log's snapshot, if one was written.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the snapshot fails its checksum.
    pub fn read_snapshot(&self) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        read_snapshot_file(self.backend.as_ref())
    }

    /// Models a crash of the owning process: the backend drops whatever
    /// a power cut would lose, then the log re-runs open-time recovery
    /// (truncating any torn tail this produced).
    ///
    /// # Errors
    ///
    /// As [`Wal::open`].
    pub fn simulate_crash(&mut self) -> Result<(), StoreError> {
        self.backend.simulate_crash();
        self.recover()
    }
}

fn write_snapshot_file(
    backend: &mut dyn Backend,
    upto_seq: u64,
    payload: &[u8],
) -> Result<(), StoreError> {
    let mut bytes = Vec::with_capacity(24 + payload.len());
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_be_bytes());
    bytes.extend_from_slice(&upto_seq.to_be_bytes());
    bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    bytes.extend_from_slice(&crate::segment::crc32(payload).to_be_bytes());
    bytes.extend_from_slice(payload);
    backend.write_atomic(SNAPSHOT_FILE, &bytes)
}

fn read_snapshot_file(backend: &dyn Backend) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
    let bytes = match backend.read(SNAPSHOT_FILE) {
        Ok(b) => b,
        Err(StoreError::NotFound(_)) => return Ok(None),
        Err(e) => return Err(e),
    };
    let corrupt = |offset: u64, reason: &str| StoreError::Corrupt {
        file: SNAPSHOT_FILE.to_string(),
        offset,
        reason: reason.to_string(),
    };
    if bytes.len() < 24 {
        return Err(corrupt(0, "snapshot shorter than its header"));
    }
    if bytes[..4] != SNAPSHOT_MAGIC {
        return Err(corrupt(0, "bad snapshot magic"));
    }
    let version = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(corrupt(4, "unsupported snapshot version"));
    }
    let seq = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u32::from_be_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if bytes.len() != 24 + len {
        return Err(corrupt(16, "snapshot length mismatch"));
    }
    let payload = &bytes[24..];
    if crate::segment::crc32(payload) != crc {
        return Err(corrupt(20, "snapshot checksum mismatch"));
    }
    Ok(Some((seq, payload.to_vec())))
}

/// A standalone checkpoint store: one atomically-replaced, checksummed
/// snapshot on its own [`Backend`] — for consumers (like the Analyser)
/// whose durable state is a compact checkpoint rather than a log.
#[derive(Debug)]
pub struct SnapshotStore {
    backend: Box<dyn Backend>,
}

impl SnapshotStore {
    /// Creates a snapshot store over `backend`.
    #[must_use]
    pub fn new(backend: Box<dyn Backend>) -> Self {
        SnapshotStore { backend }
    }

    /// Atomically replaces the snapshot with `payload`, tagged with the
    /// consumer-defined sequence number `seq`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on backend failure.
    pub fn save(&mut self, seq: u64, payload: &[u8]) -> Result<(), StoreError> {
        write_snapshot_file(self.backend.as_mut(), seq, payload)
    }

    /// Loads the snapshot, if any.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when the snapshot fails its checksum.
    pub fn load(&self) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        read_snapshot_file(self.backend.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::MemBackend;

    fn mem_wal(segment_records: usize, durability: Durability) -> Wal {
        Wal::open(
            Box::new(MemBackend::new()),
            WalConfig {
                segment_records,
                durability,
            },
        )
        .unwrap()
    }

    fn payload(i: u64) -> Vec<u8> {
        format!("record-{i}").into_bytes()
    }

    #[test]
    fn appends_assign_sequential_seqs_and_rotate() {
        let mut wal = mem_wal(3, Durability::Flushed);
        for i in 0..7 {
            assert_eq!(wal.append(&payload(i)).unwrap(), i);
        }
        assert_eq!(wal.segment_count(), 3);
        assert_eq!(wal.next_seq(), 7);
        let replayed = wal.replay().unwrap();
        assert_eq!(replayed.len(), 7);
        for (i, (seq, bytes)) in replayed.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*bytes, payload(i as u64));
        }
        assert_eq!(wal.replay_from(5).unwrap().len(), 2);
    }

    #[test]
    fn open_on_empty_backend_is_a_fresh_log() {
        let wal = mem_wal(4, Durability::Flushed);
        assert!(wal.is_empty());
        assert_eq!(wal.next_seq(), 0);
        assert_eq!(wal.segment_count(), 0);
        assert!(wal.replay().unwrap().is_empty());
        assert!(wal.read_snapshot().unwrap().is_none());
    }

    #[test]
    fn flushed_wal_survives_a_crash_intact() {
        let mut wal = mem_wal(4, Durability::Flushed);
        for i in 0..6 {
            wal.append(&payload(i)).unwrap();
        }
        wal.simulate_crash().unwrap();
        assert_eq!(wal.next_seq(), 6);
        assert_eq!(wal.replay().unwrap().len(), 6);
    }

    #[test]
    fn buffered_wal_loses_the_unsynced_tail_on_crash() {
        let mut wal = mem_wal(100, Durability::Buffered);
        for i in 0..4 {
            wal.append(&payload(i)).unwrap();
        }
        wal.sync().unwrap();
        for i in 4..9 {
            wal.append(&payload(i)).unwrap();
        }
        wal.simulate_crash().unwrap();
        assert_eq!(wal.next_seq(), 4, "unsynced records are gone");
        assert_eq!(wal.replay().unwrap().len(), 4);
        // The log keeps working after the truncation.
        assert_eq!(wal.append(&payload(100)).unwrap(), 4);
    }

    #[test]
    fn torn_tail_on_reopen_truncates_and_resumes() {
        // Write a segment's bytes directly, tearing the last 3 bytes off
        // the third record, as a crash mid-append would.
        let mut raw = MemBackend::new();
        let name = segment_file_name(0);
        let mut bytes = SegmentHeader {
            index: 0,
            first_seq: 0,
        }
        .to_bytes()
        .to_vec();
        for i in 0..3 {
            frame_record(&payload(i), &mut bytes);
        }
        raw.append(&name, &bytes[..bytes.len() - 3]).unwrap();
        raw.sync(&name).unwrap();
        let mut wal = Wal::open(Box::new(raw), WalConfig::default()).unwrap();
        assert_eq!(wal.next_seq(), 2, "torn third record truncated away");
        assert_eq!(wal.replay().unwrap().len(), 2);
        // The log resumes appending where the intact prefix ended.
        assert_eq!(wal.append(&payload(2)).unwrap(), 2);
        assert_eq!(wal.replay().unwrap().len(), 3);
    }

    #[test]
    fn mid_log_corruption_refuses_to_open() {
        let mut raw = MemBackend::new();
        let name = segment_file_name(0);
        let mut bytes = SegmentHeader {
            index: 0,
            first_seq: 0,
        }
        .to_bytes()
        .to_vec();
        for i in 0..3 {
            frame_record(&payload(i), &mut bytes);
        }
        bytes[HEADER_LEN + 9] ^= 0x40; // corrupt record 0's payload
        raw.append(&name, &bytes).unwrap();
        raw.sync(&name).unwrap();
        let err = Wal::open(Box::new(raw), WalConfig::default()).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn snapshot_at_segment_boundary_prunes_and_survives_crash_reopen() {
        let mut wal = mem_wal(4, Durability::Flushed);
        for i in 0..8 {
            wal.append(&payload(i)).unwrap();
        }
        assert_eq!(wal.segment_count(), 2);
        // Snapshot exactly at the segment boundary (seq 4 starts seg 1).
        wal.write_snapshot(4, b"state@4").unwrap();
        assert_eq!(wal.prune_through(4).unwrap(), 1);
        assert_eq!(wal.segment_count(), 1);
        assert_eq!(wal.first_retained_seq(), 4);
        // Crash + recover: the reopened log starts mid-sequence.
        wal.simulate_crash().unwrap();
        let (snap_seq, snap) = wal.read_snapshot().unwrap().unwrap();
        assert_eq!(snap_seq, 4);
        assert_eq!(snap, b"state@4");
        let replayed = wal.replay_from(snap_seq).unwrap();
        assert_eq!(replayed.first().unwrap().0, 4);
        assert_eq!(replayed.len(), 4);
        // Appends continue with globally consistent sequence numbers.
        assert_eq!(wal.append(&payload(8)).unwrap(), 8);
    }

    #[test]
    fn prune_never_removes_the_tail_segment() {
        let mut wal = mem_wal(2, Durability::Flushed);
        for i in 0..6 {
            wal.append(&payload(i)).unwrap();
        }
        assert_eq!(wal.segment_count(), 3);
        // Everything is consumed, but the tail must survive to preserve
        // sequence continuity.
        assert_eq!(wal.prune_through(6).unwrap(), 2);
        assert_eq!(wal.segment_count(), 1);
        assert_eq!(wal.next_seq(), 6);
        assert_eq!(wal.append(&payload(6)).unwrap(), 6);
    }

    #[test]
    fn snapshot_store_round_trips_and_detects_corruption() {
        let mut store = SnapshotStore::new(Box::new(MemBackend::new()));
        assert!(store.load().unwrap().is_none());
        store.save(17, b"checkpoint").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), (17, b"checkpoint".to_vec()));
        store.save(18, b"newer").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), (18, b"newer".to_vec()));

        // Corrupting the payload surfaces as a typed error.
        let mut raw = MemBackend::new();
        write_snapshot_file(&mut raw, 3, b"payload").unwrap();
        let mut bytes = raw.read(SNAPSHOT_FILE).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        raw.write_atomic(SNAPSHOT_FILE, &bytes).unwrap();
        let store = SnapshotStore::new(Box::new(raw));
        assert!(matches!(store.load(), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn fs_backend_wal_round_trips_with_torn_tail() {
        use crate::backend::FsBackend;
        let dir = std::env::temp_dir().join(format!("drams-wal-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let backend = FsBackend::open(&dir).unwrap();
            let mut wal = Wal::open(
                Box::new(backend),
                WalConfig {
                    segment_records: 3,
                    durability: Durability::Flushed,
                },
            )
            .unwrap();
            for i in 0..5 {
                wal.append(&payload(i)).unwrap();
            }
            wal.write_snapshot(3, b"fs-state").unwrap();
            wal.prune_through(3).unwrap();
        }
        // Tear the tail file on disk: drop the final 2 bytes.
        {
            let name = segment_file_name(1);
            let path = dir.join(&name);
            let len = std::fs::metadata(&path).unwrap().len();
            let file = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            file.set_len(len - 2).unwrap();
        }
        {
            let backend = FsBackend::open(&dir).unwrap();
            let wal = Wal::open(
                Box::new(backend),
                WalConfig {
                    segment_records: 3,
                    durability: Durability::Flushed,
                },
            )
            .unwrap();
            assert_eq!(wal.next_seq(), 4, "torn record 4 truncated");
            assert_eq!(wal.first_retained_seq(), 3, "pruned prefix stays gone");
            assert_eq!(wal.read_snapshot().unwrap().unwrap().0, 3);
            let replayed = wal.replay_from(3).unwrap();
            assert_eq!(replayed, vec![(3, payload(3))]);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "segment capacity must be >= 1")]
    fn zero_segment_capacity_panics() {
        let _ = Wal::open(
            Box::new(MemBackend::new()),
            WalConfig {
                segment_records: 0,
                durability: Durability::Flushed,
            },
        );
    }
}
