//! Error types for the storage engine.

use std::fmt;

/// Errors from the durable log engine ([`crate::wal`], [`crate::segment`],
/// [`crate::backend`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// An I/O operation on the backing storage failed.
    Io(String),
    /// A segment (or snapshot) is corrupt in a way that torn-tail
    /// truncation must **not** repair: the damage is not at the physical
    /// end of the log, so it cannot be a crash artefact.
    Corrupt {
        /// The file the corruption was found in.
        file: String,
        /// Byte offset of the corrupt record or header.
        offset: u64,
        /// Human-readable diagnosis.
        reason: String,
    },
    /// A record or snapshot payload failed to decode after its checksum
    /// verified — the writer stored something the reader cannot parse.
    Codec(String),
    /// The requested file does not exist in the backend.
    NotFound(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(msg) => write!(f, "storage i/o failed: {msg}"),
            StoreError::Corrupt {
                file,
                offset,
                reason,
            } => {
                write!(f, "corrupt store file `{file}` at byte {offset}: {reason}")
            }
            StoreError::Codec(msg) => write!(f, "stored payload does not decode: {msg}"),
            StoreError::NotFound(name) => write!(f, "no such store file `{name}`"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

impl From<drams_crypto::CryptoError> for StoreError {
    fn from(e: drams_crypto::CryptoError) -> Self {
        StoreError::Codec(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let errors = [
            StoreError::Io("disk full".into()),
            StoreError::Corrupt {
                file: "seg-000000.wal".into(),
                offset: 24,
                reason: "checksum mismatch".into(),
            },
            StoreError::Codec("truncated".into()),
            StoreError::NotFound("snapshot.snap".into()),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::Other, "boom");
        assert!(matches!(StoreError::from(io), StoreError::Io(_)));
    }
}
