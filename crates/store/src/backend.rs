//! Storage backends and the durability policy.
//!
//! The log engine ([`crate::wal`]) talks to its storage through the
//! [`Backend`] trait, so the same recovery logic runs against three very
//! different media:
//!
//! * [`MemBackend`] — an in-memory filesystem for tests and the
//!   virtual-time simulation. It tracks the *synced* length of every file
//!   separately from the written length, so
//!   [`MemBackend::simulate_crash`] can model exactly what a power cut
//!   preserves: bytes that were synced survive, buffered bytes vanish.
//! * [`FsBackend`] — a directory of real files for recovery tests and
//!   the E11 storage benchmarks.
//!
//! Whether a write is synced immediately is **not** implicit in the
//! backend: the engine asks for a sync according to its configured
//! [`Durability`], making the fsync/flush trade-off an explicit knob
//! (in-memory for unit tests, [`Durability::Buffered`] for benches,
//! [`Durability::Flushed`] for crash-recovery guarantees).

use crate::error::StoreError;
use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// When appended bytes are forced to durable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Durability {
    /// Writes stay in the write buffer until an explicit sync; a crash
    /// loses the unsynced tail (which recovery then truncates). The
    /// fast mode for benchmarks and bulk loads.
    Buffered,
    /// Every record is synced as it is appended; a crash loses nothing
    /// that the engine acknowledged. The mode the crash-recovery
    /// scenarios run under.
    Flushed,
}

/// Abstract append-oriented file storage under a single directory.
///
/// All names are flat (no subdirectories). Implementations must make
/// [`Backend::write_atomic`] all-or-nothing: after a crash the file holds
/// either the old contents or the new, never a mix.
pub trait Backend: std::fmt::Debug {
    /// File names present, in lexicographic order.
    fn list(&self) -> Vec<String>;

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when absent, [`StoreError::Io`] on read
    /// failure.
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Appends bytes to a file, creating it when absent.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure.
    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Replaces a file's contents atomically (write-temp + rename) and
    /// durably.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on write failure.
    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Truncates a file to `len` bytes (torn-tail recovery).
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when absent, [`StoreError::Io`] on
    /// failure.
    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError>;

    /// Removes a file (segment pruning). Removing an absent file is not
    /// an error.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on failure.
    fn remove(&mut self, name: &str) -> Result<(), StoreError>;

    /// Forces a file's appended bytes to durable storage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on failure.
    fn sync(&mut self, name: &str) -> Result<(), StoreError>;

    /// Models a crash: discards whatever a real power cut would lose.
    /// Only meaningful for [`MemBackend`]; durable backends keep
    /// everything that reached the medium and treat this as a no-op.
    fn simulate_crash(&mut self) {}
}

/// One in-memory file: written bytes plus the synced watermark.
#[derive(Debug, Default, Clone)]
struct MemFile {
    bytes: Vec<u8>,
    synced_len: usize,
}

/// An in-memory [`Backend`] with crash simulation.
#[derive(Debug, Default, Clone)]
pub struct MemBackend {
    files: BTreeMap<String, MemFile>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    #[must_use]
    pub fn new() -> Self {
        MemBackend::default()
    }

    /// Bytes currently written to `name` (synced or not); `None` when the
    /// file does not exist. Test hook.
    #[must_use]
    pub fn len_of(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(|f| f.bytes.len())
    }
}

impl Backend for MemBackend {
    fn list(&self) -> Vec<String> {
        self.files.keys().cloned().collect()
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        self.files
            .get(name)
            .map(|f| f.bytes.clone())
            .ok_or_else(|| StoreError::NotFound(name.to_string()))
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.files
            .entry(name.to_string())
            .or_default()
            .bytes
            .extend_from_slice(bytes);
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        // Atomic replace is modelled as durable (rename + fsync).
        self.files.insert(
            name.to_string(),
            MemFile {
                bytes: bytes.to_vec(),
                synced_len: bytes.len(),
            },
        );
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        let file = self
            .files
            .get_mut(name)
            .ok_or_else(|| StoreError::NotFound(name.to_string()))?;
        file.bytes.truncate(len as usize);
        file.synced_len = file.synced_len.min(file.bytes.len());
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.files.remove(name);
        Ok(())
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        if let Some(file) = self.files.get_mut(name) {
            file.synced_len = file.bytes.len();
        }
        Ok(())
    }

    fn simulate_crash(&mut self) {
        // A file whose directory entry was never made durable (nothing
        // synced since creation) may survive as an empty file — the
        // "empty segment file" recovery case — so the entry is kept.
        for file in self.files.values_mut() {
            file.bytes.truncate(file.synced_len);
        }
    }
}

/// A real-directory [`Backend`] for on-disk recovery tests and the E11
/// storage benchmarks.
#[derive(Debug)]
pub struct FsBackend {
    root: PathBuf,
    /// Cached append handles, so per-record appends do not reopen files.
    #[allow(clippy::type_complexity)]
    handles: HashMap<String, fs::File>,
}

impl FsBackend {
    /// Opens (creating if needed) a backend rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        Ok(FsBackend {
            root,
            handles: HashMap::new(),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn handle(&mut self, name: &str) -> Result<&mut fs::File, StoreError> {
        if !self.handles.contains_key(name) {
            let file = fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.path(name))?;
            self.handles.insert(name.to_string(), file);
        }
        Ok(self.handles.get_mut(name).expect("inserted above"))
    }
}

impl Backend for FsBackend {
    fn list(&self) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(&self.root)
            .into_iter()
            .flatten()
            .flatten()
            .filter(|e| e.file_type().map(|t| t.is_file()).unwrap_or(false))
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        names
    }

    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        match fs::read(self.path(name)) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(name.to_string()))
            }
            Err(e) => Err(e.into()),
        }
    }

    fn append(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        self.handle(name)?.write_all(bytes)?;
        Ok(())
    }

    fn write_atomic(&mut self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, self.path(name))?;
        self.handles.remove(name);
        Ok(())
    }

    fn truncate(&mut self, name: &str, len: u64) -> Result<(), StoreError> {
        self.handles.remove(name);
        let file = match fs::OpenOptions::new().write(true).open(self.path(name)) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(name.to_string()))
            }
            Err(e) => return Err(e.into()),
        };
        file.set_len(len)?;
        file.sync_all()?;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), StoreError> {
        self.handles.remove(name);
        match fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn sync(&mut self, name: &str) -> Result<(), StoreError> {
        if let Some(file) = self.handles.get_mut(name) {
            file.flush()?;
            file.sync_all()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_round_trips() {
        let mut b = MemBackend::new();
        b.append("a.wal", b"hello ").unwrap();
        b.append("a.wal", b"world").unwrap();
        assert_eq!(b.read("a.wal").unwrap(), b"hello world");
        assert_eq!(b.list(), vec!["a.wal".to_string()]);
        b.truncate("a.wal", 5).unwrap();
        assert_eq!(b.read("a.wal").unwrap(), b"hello");
        b.remove("a.wal").unwrap();
        assert!(matches!(b.read("a.wal"), Err(StoreError::NotFound(_))));
        b.remove("a.wal").unwrap(); // idempotent
    }

    #[test]
    fn mem_crash_drops_unsynced_tail_only() {
        let mut b = MemBackend::new();
        b.append("a.wal", b"durable").unwrap();
        b.sync("a.wal").unwrap();
        b.append("a.wal", b" buffered").unwrap();
        b.simulate_crash();
        assert_eq!(b.read("a.wal").unwrap(), b"durable");
        // A never-synced file survives as an empty file.
        let mut b = MemBackend::new();
        b.append("b.wal", b"gone").unwrap();
        b.simulate_crash();
        assert_eq!(b.read("b.wal").unwrap(), b"");
    }

    #[test]
    fn mem_write_atomic_is_durable() {
        let mut b = MemBackend::new();
        b.write_atomic("snap", b"state").unwrap();
        b.simulate_crash();
        assert_eq!(b.read("snap").unwrap(), b"state");
    }

    #[test]
    fn fs_backend_round_trips() {
        let dir = std::env::temp_dir().join(format!("drams-store-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut b = FsBackend::open(&dir).unwrap();
            b.append("a.wal", b"hello ").unwrap();
            b.append("a.wal", b"world").unwrap();
            b.sync("a.wal").unwrap();
            assert_eq!(b.read("a.wal").unwrap(), b"hello world");
            b.truncate("a.wal", 5).unwrap();
            b.append("a.wal", b"!").unwrap();
            b.sync("a.wal").unwrap();
            assert_eq!(b.read("a.wal").unwrap(), b"hello!");
            b.write_atomic("snap", b"state").unwrap();
            assert_eq!(b.read("snap").unwrap(), b"state");
            assert_eq!(b.list(), vec!["a.wal".to_string(), "snap".to_string()]);
            b.remove("a.wal").unwrap();
            assert!(matches!(b.read("a.wal"), Err(StoreError::NotFound(_))));
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
