//! Append-only segmented log store (the "classical database" half).

use drams_crypto::merkle::{MerkleProof, MerkleTree};
use drams_crypto::sha256::Digest;

/// A sealed segment: a fixed-size run of entries with its Merkle tree.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Index of this segment (0-based).
    pub index: u64,
    /// First global sequence number in the segment.
    pub first_seq: u64,
    /// The entries.
    entries: Vec<Vec<u8>>,
    tree: MerkleTree,
}

impl Segment {
    /// The segment's Merkle root (what gets anchored).
    #[must_use]
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the segment holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inclusion proof for the entry at `offset` within the segment.
    #[must_use]
    pub fn proof(&self, offset: usize) -> Option<MerkleProof> {
        self.tree.proof(offset)
    }

    /// Entry bytes at `offset`.
    #[must_use]
    pub fn entry(&self, offset: usize) -> Option<&[u8]> {
        self.entries.get(offset).map(Vec::as_slice)
    }
}

/// The append-only log: an open tail plus sealed segments.
#[derive(Debug)]
pub struct KvLog {
    segment_size: usize,
    sealed: Vec<Segment>,
    tail: Vec<Vec<u8>>,
    next_seq: u64,
}

impl KvLog {
    /// Creates a log that seals a segment every `segment_size` entries.
    ///
    /// # Panics
    ///
    /// Panics when `segment_size` is 0.
    #[must_use]
    pub fn new(segment_size: usize) -> Self {
        assert!(segment_size > 0, "segment size must be at least 1");
        KvLog {
            segment_size,
            sealed: Vec::new(),
            tail: Vec::new(),
            next_seq: 0,
        }
    }

    /// Appends an entry; returns `(sequence number, sealed segment)` where
    /// the segment is `Some` exactly when this append completed one.
    pub fn append(&mut self, entry: Vec<u8>) -> (u64, Option<&Segment>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.tail.push(entry);
        if self.tail.len() >= self.segment_size {
            let first_seq = seq + 1 - self.segment_size as u64;
            let entries = std::mem::take(&mut self.tail);
            let tree = MerkleTree::from_leaves(entries.iter().map(Vec::as_slice));
            let segment = Segment {
                index: self.sealed.len() as u64,
                first_seq,
                entries,
                tree,
            };
            self.sealed.push(segment);
            (seq, self.sealed.last())
        } else {
            (seq, None)
        }
    }

    /// Total entries appended.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.next_seq
    }

    /// True when nothing was appended.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.next_seq == 0
    }

    /// Entries in the unsealed tail (the tamper-exposure window).
    #[must_use]
    pub fn unsealed_len(&self) -> usize {
        self.tail.len()
    }

    /// Sealed segments.
    #[must_use]
    pub fn segments(&self) -> &[Segment] {
        &self.sealed
    }

    /// Reads an entry by global sequence number (sealed or tail).
    #[must_use]
    pub fn get(&self, seq: u64) -> Option<&[u8]> {
        if seq >= self.next_seq {
            return None;
        }
        let segment_idx = (seq / self.segment_size as u64) as usize;
        if segment_idx < self.sealed.len() {
            let offset = (seq % self.segment_size as u64) as usize;
            self.sealed[segment_idx].entry(offset)
        } else {
            let offset = (seq - self.sealed.len() as u64 * self.segment_size as u64) as usize;
            self.tail.get(offset).map(Vec::as_slice)
        }
    }

    /// Locates `(segment, offset)` for a sealed sequence number.
    #[must_use]
    pub fn locate(&self, seq: u64) -> Option<(&Segment, usize)> {
        let segment_idx = (seq / self.segment_size as u64) as usize;
        let segment = self.sealed.get(segment_idx)?;
        Some((segment, (seq % self.segment_size as u64) as usize))
    }

    /// Overwrites an entry in place — **test/attack hook**: simulates a
    /// database-level tamper that the anchoring must detect.
    pub fn tamper(&mut self, seq: u64, new_value: Vec<u8>) -> bool {
        let segment_idx = (seq / self.segment_size as u64) as usize;
        if segment_idx < self.sealed.len() {
            let offset = (seq % self.segment_size as u64) as usize;
            if let Some(slot) = self.sealed[segment_idx].entries.get_mut(offset) {
                *slot = new_value;
                return true;
            }
            false
        } else {
            let offset = (seq - self.sealed.len() as u64 * self.segment_size as u64) as usize;
            if let Some(slot) = self.tail.get_mut(offset) {
                *slot = new_value;
                return true;
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u64) -> Vec<u8> {
        format!("log-entry-{i}").into_bytes()
    }

    #[test]
    fn appends_and_reads_back() {
        let mut log = KvLog::new(4);
        for i in 0..10 {
            let (seq, _) = log.append(entry(i));
            assert_eq!(seq, i);
        }
        assert_eq!(log.len(), 10);
        assert_eq!(log.get(0).unwrap(), entry(0).as_slice());
        assert_eq!(log.get(9).unwrap(), entry(9).as_slice());
        assert!(log.get(10).is_none());
    }

    #[test]
    fn seals_segments_at_boundary() {
        let mut log = KvLog::new(3);
        assert!(log.append(entry(0)).1.is_none());
        assert!(log.append(entry(1)).1.is_none());
        let (seq, sealed) = log.append(entry(2));
        assert_eq!(seq, 2);
        let segment = sealed.expect("third append seals");
        assert_eq!(segment.index, 0);
        assert_eq!(segment.first_seq, 0);
        assert_eq!(segment.len(), 3);
        assert_eq!(log.unsealed_len(), 0);
        log.append(entry(3));
        assert_eq!(log.unsealed_len(), 1);
    }

    #[test]
    fn segment_proofs_verify() {
        let mut log = KvLog::new(4);
        for i in 0..8 {
            log.append(entry(i));
        }
        for seq in 0..8u64 {
            let (segment, offset) = log.locate(seq).unwrap();
            let proof = segment.proof(offset).unwrap();
            assert!(proof.verify(&segment.root(), &entry(seq)));
        }
    }

    #[test]
    fn tamper_breaks_proofs() {
        let mut log = KvLog::new(4);
        for i in 0..4 {
            log.append(entry(i));
        }
        let original_root = log.segments()[0].root();
        assert!(log.tamper(2, b"forged".to_vec()));
        let (segment, offset) = log.locate(2).unwrap();
        // Root recomputation is not automatic — the stored tree still has
        // the original root, so the tampered entry fails its own proof.
        let proof = segment.proof(offset).unwrap();
        assert!(!proof.verify(&original_root, segment.entry(offset).unwrap()));
    }

    #[test]
    fn tail_tamper_is_reported() {
        let mut log = KvLog::new(10);
        log.append(entry(0));
        assert!(log.tamper(0, b"forged".to_vec()));
        assert_eq!(log.get(0).unwrap(), b"forged");
        assert!(!log.tamper(5, b"nope".to_vec()));
    }

    #[test]
    #[should_panic(expected = "segment size must be at least 1")]
    fn zero_segment_size_panics() {
        let _ = KvLog::new(0);
    }
}
