//! Chain-node persistence: the node's write-ahead journal and recovery.
//!
//! [`WalJournal`] implements [`drams_chain::node::NodeJournal`] over a
//! shared [`Wal`]: every transaction the node accepts and every block it
//! imports becomes one tagged, checksummed WAL record. [`recover_node`]
//! replays that log into a fresh node — transactions re-submitted, blocks
//! re-imported, in recorded order — reconstructing chain, contract state
//! *and* mempool exactly as they were when the journal was last synced.
//!
//! The journal is shared via `Rc<RefCell<…>>` so a crash-recovery harness
//! can keep the log alive across the simulated death of the node that
//! writes to it (the scenario runtime's `CrashRestart` does exactly
//! this).
//!
//! # Example
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use drams_chain::chain::ChainConfig;
//! use drams_chain::contract::KvStoreContract;
//! use drams_chain::node::Node;
//! use drams_crypto::schnorr::Keypair;
//! use drams_store::backend::MemBackend;
//! use drams_store::persist::{recover_node, WalJournal};
//! use drams_store::wal::{Wal, WalConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ChainConfig { initial_difficulty_bits: 0, retarget_interval: 0,
//!                            ..ChainConfig::default() };
//! let wal = Rc::new(RefCell::new(Wal::open(
//!     Box::new(MemBackend::new()), WalConfig::default())?));
//!
//! let mut node = Node::new(config.clone());
//! node.register_contract(Box::new(KvStoreContract));
//! node.set_journal(Box::new(WalJournal::new(wal.clone())));
//! let kp = Keypair::from_seed(b"doc-li");
//! node.submit_call(&kp, "kvstore", "put", b"entry".to_vec())?;
//! node.mine_block(1_000)?;
//! node.submit_call(&kp, "kvstore", "put", b"pending".to_vec())?;
//! drop(node); // the process dies
//!
//! let recovered = recover_node(&wal.borrow(), config, vec![Box::new(KvStoreContract)])?;
//! assert_eq!(recovered.chain().tip_header().height, 1);
//! assert_eq!(recovered.mempool_len(), 1, "pending tx survives via the WAL");
//! # Ok(())
//! # }
//! ```

use crate::error::StoreError;
use crate::wal::Wal;
use drams_chain::block::Block;
use drams_chain::chain::ChainConfig;
use drams_chain::contract::SmartContract;
use drams_chain::error::ChainError;
use drams_chain::node::{Node, NodeJournal};
use drams_chain::tx::Transaction;
use drams_crypto::codec::{Decode, Encode};
use std::cell::RefCell;
use std::rc::Rc;

/// Record tag: the payload is a canonical [`Transaction`].
pub const TAG_TX: u8 = 1;
/// Record tag: the payload is a canonical [`Block`].
pub const TAG_BLOCK: u8 = 2;

/// A [`NodeJournal`] writing tagged records into a shared [`Wal`].
#[derive(Debug)]
pub struct WalJournal {
    wal: Rc<RefCell<Wal>>,
}

impl WalJournal {
    /// Wraps a shared WAL as a node journal.
    #[must_use]
    pub fn new(wal: Rc<RefCell<Wal>>) -> Self {
        WalJournal { wal }
    }

    fn record(&mut self, tag: u8, payload: &dyn Encode) -> Result<(), String> {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&payload.to_canonical_bytes());
        self.wal
            .borrow_mut()
            .append(&bytes)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }
}

impl NodeJournal for WalJournal {
    fn record_transaction(&mut self, tx: &Transaction) -> Result<(), String> {
        self.record(TAG_TX, tx)
    }

    fn record_block(&mut self, block: &Block) -> Result<(), String> {
        self.record(TAG_BLOCK, block)
    }
}

/// Rebuilds a node from its journal: a fresh node with `config` and
/// `contracts` registered, then every journaled record replayed in
/// order. The returned node carries **no** journal — attach one (over
/// the same WAL) with [`Node::set_journal`] to keep journaling.
///
/// Replay tolerates exactly the benign duplicates write-ahead journaling
/// produces (a transaction journaled but then rejected by the mempool,
/// or pruned into a block earlier in the log); everything else — an
/// undecodable record, a block the chain refuses — is an error, because
/// it means the journal does not describe a state this node ever held.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when the WAL itself is damaged,
/// [`StoreError::Codec`] when a record does not decode or does not
/// replay.
pub fn recover_node(
    wal: &Wal,
    config: ChainConfig,
    contracts: Vec<Box<dyn SmartContract>>,
) -> Result<Node, StoreError> {
    let mut node = Node::new(config);
    for contract in contracts {
        node.register_contract(contract);
    }
    for (seq, record) in wal.replay()? {
        let Some((&tag, payload)) = record.split_first() else {
            return Err(StoreError::Codec(format!("empty journal record {seq}")));
        };
        match tag {
            TAG_TX => {
                let tx = Transaction::from_canonical_bytes(payload)
                    .map_err(|e| StoreError::Codec(format!("journal record {seq}: {e}")))?;
                match node.submit_transaction(tx) {
                    Ok(_) | Err(ChainError::DuplicateTransaction) => {}
                    Err(e) => {
                        return Err(StoreError::Codec(format!(
                            "journal record {seq} does not replay: {e}"
                        )))
                    }
                }
            }
            TAG_BLOCK => {
                let block = Block::from_canonical_bytes(payload)
                    .map_err(|e| StoreError::Codec(format!("journal record {seq}: {e}")))?;
                node.receive_block(block).map_err(|e| {
                    StoreError::Codec(format!("journal record {seq} does not replay: {e}"))
                })?;
            }
            other => {
                return Err(StoreError::Codec(format!(
                    "journal record {seq} has unknown tag {other}"
                )))
            }
        }
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Durability, MemBackend};
    use crate::wal::WalConfig;
    use drams_chain::contract::KvStoreContract;
    use drams_crypto::schnorr::Keypair;

    fn config() -> ChainConfig {
        ChainConfig {
            initial_difficulty_bits: 0,
            retarget_interval: 0,
            ..ChainConfig::default()
        }
    }

    fn journaled_node() -> (Node, Rc<RefCell<Wal>>) {
        let wal = Rc::new(RefCell::new(
            Wal::open(
                Box::new(MemBackend::new()),
                WalConfig {
                    segment_records: 8,
                    durability: Durability::Flushed,
                },
            )
            .unwrap(),
        ));
        let mut node = Node::new(config());
        node.register_contract(Box::new(KvStoreContract));
        node.set_journal(Box::new(WalJournal::new(wal.clone())));
        (node, wal)
    }

    #[test]
    fn recovered_node_matches_chain_contracts_and_mempool() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        for i in 0..5 {
            node.submit_call(&kp, "kvstore", "put", format!("e{i}").into_bytes())
                .unwrap();
            if i % 2 == 1 {
                node.mine_block(1_000 + i).unwrap();
            }
        }
        // One committed-history marker and the live mempool to compare.
        let tip = node.chain().tip_hash();
        let events = node.events().len();
        let pending = node.mempool_len();
        assert!(pending > 0, "test wants a non-empty mempool");
        drop(node);

        let recovered =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        assert_eq!(recovered.chain().tip_hash(), tip);
        assert_eq!(recovered.events().len(), events);
        assert_eq!(recovered.mempool_len(), pending);
        // The recovered node keeps working: mine the pending tail.
        let mut recovered = recovered;
        let block = recovered.mine_block(9_999).unwrap();
        assert_eq!(block.transactions.len(), pending);
    }

    #[test]
    fn recovery_after_simulated_crash_loses_nothing_when_flushed() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        node.submit_call(&kp, "kvstore", "put", b"a".to_vec())
            .unwrap();
        node.mine_block(1).unwrap();
        node.submit_call(&kp, "kvstore", "put", b"b".to_vec())
            .unwrap();
        let tip = node.chain().tip_hash();
        drop(node);

        wal.borrow_mut().simulate_crash().unwrap();
        let recovered =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        assert_eq!(recovered.chain().tip_hash(), tip);
        assert_eq!(recovered.mempool_len(), 1);
    }

    #[test]
    fn garbage_journal_record_is_a_typed_error() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        node.submit_call(&kp, "kvstore", "put", b"a".to_vec())
            .unwrap();
        drop(node);
        wal.borrow_mut().append(&[99, 1, 2, 3]).unwrap();
        let err =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap_err();
        assert!(matches!(err, StoreError::Codec(_)), "{err:?}");
    }

    #[test]
    fn recovered_node_continues_journaling_on_the_same_wal() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        node.submit_call(&kp, "kvstore", "put", b"a".to_vec())
            .unwrap();
        node.mine_block(1).unwrap();
        drop(node);

        let mut recovered =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        recovered.set_journal(Box::new(WalJournal::new(wal.clone())));
        recovered
            .submit_call(&kp, "kvstore", "put", b"c".to_vec())
            .unwrap();
        recovered.mine_block(2).unwrap();
        let tip = recovered.chain().tip_hash();
        drop(recovered);

        // A second recovery sees the whole combined history.
        let again = recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        assert_eq!(again.chain().tip_hash(), tip);
        assert_eq!(again.chain().tip_header().height, 2);
    }
}
