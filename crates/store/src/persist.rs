//! Chain-node persistence: the node's write-ahead journal and recovery.
//!
//! [`WalJournal`] implements [`drams_chain::node::NodeJournal`] over a
//! shared [`Wal`]: every transaction the node accepts and every block it
//! imports becomes one tagged, checksummed WAL record. [`recover_node`]
//! replays that log into a fresh node — transactions re-submitted, blocks
//! re-imported, in recorded order — reconstructing chain, contract state
//! *and* mempool exactly as they were when the journal was last synced.
//!
//! The journal is shared via `Rc<RefCell<…>>` so a crash-recovery harness
//! can keep the log alive across the simulated death of the node that
//! writes to it (the scenario runtime's `CrashRestart` does exactly
//! this).
//!
//! # Example
//!
//! ```
//! use std::cell::RefCell;
//! use std::rc::Rc;
//! use drams_chain::chain::ChainConfig;
//! use drams_chain::contract::KvStoreContract;
//! use drams_chain::node::Node;
//! use drams_crypto::schnorr::Keypair;
//! use drams_store::backend::MemBackend;
//! use drams_store::persist::{recover_node, WalJournal};
//! use drams_store::wal::{Wal, WalConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = ChainConfig { initial_difficulty_bits: 0, retarget_interval: 0,
//!                            ..ChainConfig::default() };
//! let wal = Rc::new(RefCell::new(Wal::open(
//!     Box::new(MemBackend::new()), WalConfig::default())?));
//!
//! let mut node = Node::new(config.clone());
//! node.register_contract(Box::new(KvStoreContract));
//! node.set_journal(Box::new(WalJournal::new(wal.clone())));
//! let kp = Keypair::from_seed(b"doc-li");
//! node.submit_call(&kp, "kvstore", "put", b"entry".to_vec())?;
//! node.mine_block(1_000)?;
//! node.submit_call(&kp, "kvstore", "put", b"pending".to_vec())?;
//! drop(node); // the process dies
//!
//! let recovered = recover_node(&wal.borrow(), config, vec![Box::new(KvStoreContract)])?;
//! assert_eq!(recovered.chain().tip_header().height, 1);
//! assert_eq!(recovered.mempool_len(), 1, "pending tx survives via the WAL");
//! # Ok(())
//! # }
//! ```

use crate::error::StoreError;
use crate::wal::Wal;
use drams_chain::block::Block;
use drams_chain::chain::ChainConfig;
use drams_chain::contract::SmartContract;
use drams_chain::error::ChainError;
use drams_chain::node::{Node, NodeJournal};
use drams_chain::tx::Transaction;
use drams_crypto::codec::{Decode, Encode};
use std::cell::RefCell;
use std::rc::Rc;

/// Record tag: the payload is a canonical [`Transaction`].
pub const TAG_TX: u8 = 1;
/// Record tag: the payload is a canonical [`Block`].
pub const TAG_BLOCK: u8 = 2;

/// A [`NodeJournal`] writing tagged records into a shared [`Wal`].
#[derive(Debug)]
pub struct WalJournal {
    wal: Rc<RefCell<Wal>>,
}

impl WalJournal {
    /// Wraps a shared WAL as a node journal.
    #[must_use]
    pub fn new(wal: Rc<RefCell<Wal>>) -> Self {
        WalJournal { wal }
    }

    fn record(&mut self, tag: u8, payload: &dyn Encode) -> Result<(), String> {
        let mut bytes = vec![tag];
        bytes.extend_from_slice(&payload.to_canonical_bytes());
        self.wal
            .borrow_mut()
            .append(&bytes)
            .map(|_| ())
            .map_err(|e| e.to_string())
    }
}

impl NodeJournal for WalJournal {
    fn record_transaction(&mut self, tx: &Transaction) -> Result<(), String> {
        self.record(TAG_TX, tx)
    }

    fn record_block(&mut self, block: &Block) -> Result<(), String> {
        self.record(TAG_BLOCK, block)
    }
}

/// Replays one tagged journal record into `node`. `label` names the
/// record in error messages (a WAL sequence number or a snapshot index).
fn replay_record(node: &mut Node, label: &str, record: &[u8]) -> Result<(), StoreError> {
    let Some((&tag, payload)) = record.split_first() else {
        return Err(StoreError::Codec(format!("empty journal record {label}")));
    };
    match tag {
        TAG_TX => {
            let tx = Transaction::from_canonical_bytes(payload)
                .map_err(|e| StoreError::Codec(format!("journal record {label}: {e}")))?;
            match node.submit_transaction(tx) {
                Ok(_) | Err(ChainError::DuplicateTransaction) => Ok(()),
                Err(e) => Err(StoreError::Codec(format!(
                    "journal record {label} does not replay: {e}"
                ))),
            }
        }
        TAG_BLOCK => {
            let block = Block::from_canonical_bytes(payload)
                .map_err(|e| StoreError::Codec(format!("journal record {label}: {e}")))?;
            node.receive_block(block).map(|_| ()).map_err(|e| {
                StoreError::Codec(format!("journal record {label} does not replay: {e}"))
            })
        }
        other => Err(StoreError::Codec(format!(
            "journal record {label} has unknown tag {other}"
        ))),
    }
}

/// Decodes a packed compaction snapshot (see [`compact_node_journal`])
/// into the journal records it folded.
fn unpack_records(payload: &[u8]) -> Result<Vec<Vec<u8>>, StoreError> {
    let mut records = Vec::new();
    let mut rest = payload;
    while !rest.is_empty() {
        if rest.len() < 4 {
            return Err(StoreError::Codec("truncated journal snapshot".into()));
        }
        let len = u32::from_be_bytes(rest[..4].try_into().expect("length checked")) as usize;
        rest = &rest[4..];
        if rest.len() < len {
            return Err(StoreError::Codec(
                "truncated journal snapshot record".into(),
            ));
        }
        records.push(rest[..len].to_vec());
        rest = &rest[len..];
    }
    Ok(records)
}

fn pack_records<'a>(records: impl IntoIterator<Item = &'a Vec<u8>>) -> Vec<u8> {
    let mut out = Vec::new();
    for record in records {
        out.extend_from_slice(&(record.len() as u32).to_be_bytes());
        out.extend_from_slice(record);
    }
    out
}

/// The effective journal stream: records folded into the compaction
/// snapshot (if any) followed by the live WAL tail.
fn effective_records(wal: &Wal) -> Result<Vec<Vec<u8>>, StoreError> {
    let (base_seq, mut records) = match wal.read_snapshot()? {
        Some((seq, payload)) => (seq, unpack_records(&payload)?),
        None => (0, Vec::new()),
    };
    records.extend(wal.replay_from(base_seq)?.into_iter().map(|(_, r)| r));
    Ok(records)
}

/// Compacts a node journal in place: transaction records whose
/// transaction was later included in a journaled block are redundant
/// (the block replays them), so they are dropped; everything that
/// remains — blocks in order plus still-pending transactions — is folded
/// into the WAL's snapshot file and the sealed segments behind it are
/// pruned. Recovery through [`recover_node`] is unchanged by compaction:
/// it replays the snapshot records before the live tail.
///
/// Returns `(records_before, records_after)`.
///
/// # Errors
///
/// As [`recover_node`] for a damaged WAL or snapshot; [`StoreError::Io`]
/// on backend failure while writing.
pub fn compact_node_journal(wal: &mut Wal) -> Result<(u64, u64), StoreError> {
    use drams_chain::tx::TxId;
    use std::collections::BTreeSet;

    let records = effective_records(wal)?;
    let mut included: BTreeSet<TxId> = BTreeSet::new();
    for record in &records {
        if let Some((&TAG_BLOCK, payload)) = record.split_first() {
            let block = Block::from_canonical_bytes(payload)
                .map_err(|e| StoreError::Codec(format!("journal block record: {e}")))?;
            included.extend(
                block
                    .transactions
                    .iter()
                    .map(drams_chain::tx::Transaction::id),
            );
        }
    }
    let kept: Vec<&Vec<u8>> = records
        .iter()
        .filter(|record| match record.split_first() {
            Some((&TAG_TX, payload)) => Transaction::from_canonical_bytes(payload)
                .map(|tx| !included.contains(&tx.id()))
                .unwrap_or(true),
            _ => true,
        })
        .collect();
    let after = kept.len() as u64;
    let packed = pack_records(kept.into_iter());
    let upto = wal.next_seq();
    wal.write_snapshot(upto, &packed)?;
    wal.prune_through(upto)?;
    Ok((records.len() as u64, after))
}

/// Rebuilds a node from its journal: a fresh node with `config` and
/// `contracts` registered, then every journaled record replayed in
/// order — records folded into a compaction snapshot (see
/// [`compact_node_journal`]) first, then the live WAL tail. The returned
/// node carries **no** journal — attach one (over the same WAL) with
/// [`Node::set_journal`] to keep journaling.
///
/// Replay tolerates exactly the benign duplicates write-ahead journaling
/// produces (a transaction journaled but then rejected by the mempool,
/// or pruned into a block earlier in the log); everything else — an
/// undecodable record, a block the chain refuses — is an error, because
/// it means the journal does not describe a state this node ever held.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when the WAL itself is damaged,
/// [`StoreError::Codec`] when a record does not decode or does not
/// replay.
pub fn recover_node(
    wal: &Wal,
    config: ChainConfig,
    contracts: Vec<Box<dyn SmartContract>>,
) -> Result<Node, StoreError> {
    let mut node = Node::new(config);
    for contract in contracts {
        node.register_contract(contract);
    }
    let (base_seq, snapshot_records) = match wal.read_snapshot()? {
        Some((seq, payload)) => (seq, unpack_records(&payload)?),
        None => (0, Vec::new()),
    };
    for (i, record) in snapshot_records.iter().enumerate() {
        replay_record(&mut node, &format!("snapshot[{i}]"), record)?;
    }
    for (seq, record) in wal.replay_from(base_seq)? {
        replay_record(&mut node, &seq.to_string(), &record)?;
    }
    Ok(node)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{Durability, MemBackend};
    use crate::wal::WalConfig;
    use drams_chain::contract::KvStoreContract;
    use drams_crypto::schnorr::Keypair;

    fn config() -> ChainConfig {
        ChainConfig {
            initial_difficulty_bits: 0,
            retarget_interval: 0,
            ..ChainConfig::default()
        }
    }

    fn journaled_node() -> (Node, Rc<RefCell<Wal>>) {
        let wal = Rc::new(RefCell::new(
            Wal::open(
                Box::new(MemBackend::new()),
                WalConfig {
                    segment_records: 8,
                    durability: Durability::Flushed,
                },
            )
            .unwrap(),
        ));
        let mut node = Node::new(config());
        node.register_contract(Box::new(KvStoreContract));
        node.set_journal(Box::new(WalJournal::new(wal.clone())));
        (node, wal)
    }

    #[test]
    fn recovered_node_matches_chain_contracts_and_mempool() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        for i in 0..5 {
            node.submit_call(&kp, "kvstore", "put", format!("e{i}").into_bytes())
                .unwrap();
            if i % 2 == 1 {
                node.mine_block(1_000 + i).unwrap();
            }
        }
        // One committed-history marker and the live mempool to compare.
        let tip = node.chain().tip_hash();
        let events = node.events().len();
        let pending = node.mempool_len();
        assert!(pending > 0, "test wants a non-empty mempool");
        drop(node);

        let recovered =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        assert_eq!(recovered.chain().tip_hash(), tip);
        assert_eq!(recovered.events().len(), events);
        assert_eq!(recovered.mempool_len(), pending);
        // The recovered node keeps working: mine the pending tail.
        let mut recovered = recovered;
        let block = recovered.mine_block(9_999).unwrap();
        assert_eq!(block.transactions.len(), pending);
    }

    #[test]
    fn recovery_after_simulated_crash_loses_nothing_when_flushed() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        node.submit_call(&kp, "kvstore", "put", b"a".to_vec())
            .unwrap();
        node.mine_block(1).unwrap();
        node.submit_call(&kp, "kvstore", "put", b"b".to_vec())
            .unwrap();
        let tip = node.chain().tip_hash();
        drop(node);

        wal.borrow_mut().simulate_crash().unwrap();
        let recovered =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        assert_eq!(recovered.chain().tip_hash(), tip);
        assert_eq!(recovered.mempool_len(), 1);
    }

    #[test]
    fn garbage_journal_record_is_a_typed_error() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        node.submit_call(&kp, "kvstore", "put", b"a".to_vec())
            .unwrap();
        drop(node);
        wal.borrow_mut().append(&[99, 1, 2, 3]).unwrap();
        let err =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap_err();
        assert!(matches!(err, StoreError::Codec(_)), "{err:?}");
    }

    #[test]
    fn recovered_node_continues_journaling_on_the_same_wal() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        node.submit_call(&kp, "kvstore", "put", b"a".to_vec())
            .unwrap();
        node.mine_block(1).unwrap();
        drop(node);

        let mut recovered =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        recovered.set_journal(Box::new(WalJournal::new(wal.clone())));
        recovered
            .submit_call(&kp, "kvstore", "put", b"c".to_vec())
            .unwrap();
        recovered.mine_block(2).unwrap();
        let tip = recovered.chain().tip_hash();
        drop(recovered);

        // A second recovery sees the whole combined history.
        let again = recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        assert_eq!(again.chain().tip_hash(), tip);
        assert_eq!(again.chain().tip_header().height, 2);
    }

    #[test]
    fn compaction_drops_included_tx_records_and_recovery_is_unchanged() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        for i in 0..6 {
            node.submit_call(&kp, "kvstore", "put", format!("e{i}").into_bytes())
                .unwrap();
            node.mine_block(1_000 + i).unwrap();
        }
        // One pending tx must survive compaction verbatim.
        node.submit_call(&kp, "kvstore", "put", b"pending".to_vec())
            .unwrap();
        let tip = node.chain().tip_hash();
        let events = node.events().len();
        drop(node);

        let (before, after) = compact_node_journal(&mut wal.borrow_mut()).unwrap();
        // 7 tx records + 6 block records journaled; the 6 included tx
        // records fold away, the pending one and every block stay.
        assert_eq!(before, 13);
        assert_eq!(after, 7);
        assert_eq!(wal.borrow().segment_count(), 1, "sealed segments pruned");

        let recovered =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        assert_eq!(recovered.chain().tip_hash(), tip);
        assert_eq!(recovered.events().len(), events);
        assert_eq!(recovered.mempool_len(), 1, "pending tx survives compaction");
    }

    #[test]
    fn compaction_is_idempotent_and_composes_with_later_appends() {
        let (mut node, wal) = journaled_node();
        let kp = Keypair::from_seed(b"persist-tests");
        node.submit_call(&kp, "kvstore", "put", b"a".to_vec())
            .unwrap();
        node.mine_block(1).unwrap();
        drop(node);

        compact_node_journal(&mut wal.borrow_mut()).unwrap();
        let (before, after) = compact_node_journal(&mut wal.borrow_mut()).unwrap();
        assert_eq!(before, after, "second pass finds nothing to fold");

        // New activity after compaction lands in the live tail and a
        // second compaction folds it too.
        let mut node =
            recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        node.set_journal(Box::new(WalJournal::new(wal.clone())));
        node.submit_call(&kp, "kvstore", "put", b"b".to_vec())
            .unwrap();
        node.mine_block(2).unwrap();
        let tip = node.chain().tip_hash();
        drop(node);
        compact_node_journal(&mut wal.borrow_mut()).unwrap();
        wal.borrow_mut().simulate_crash().unwrap();
        let again = recover_node(&wal.borrow(), config(), vec![Box::new(KvStoreContract)]).unwrap();
        assert_eq!(again.chain().tip_hash(), tip);
        assert_eq!(again.chain().tip_header().height, 2);
    }
}
