//! On-disk segment format: header, record framing, and the recovery scan.
//!
//! A segment file is a fixed header followed by a run of length-prefixed,
//! checksummed records:
//!
//! ```text
//! ┌──────────── segment header (24 bytes) ────────────┐
//! │ magic "DRSG" │ version u32 │ index u64 │ first_seq u64 │
//! ├──────────────────── record 0 ─────────────────────┤
//! │ len u32 │ crc32(payload) u32 │ payload (len bytes) │
//! ├──────────────────── record 1 ─────────────────────┤
//! │ …                                                  │
//! ```
//!
//! All integers are big-endian. The CRC is IEEE CRC-32 over the payload
//! bytes only (the length is implicitly covered: a corrupted length either
//! lands mid-payload, failing the CRC, or runs past EOF, failing framing).
//!
//! Recovery semantics ([`scan`]) distinguish two kinds of damage:
//!
//! * **Torn tail** — the damage is at the physical end of the file (an
//!   incomplete header, an incomplete record frame, or a checksum failure
//!   on the *final* record). This is what a crash mid-write produces; the
//!   scan reports the longest valid prefix and the caller truncates to it.
//! * **Mid-segment corruption** — a record fails its checksum but more
//!   bytes follow it. A crash cannot produce that shape, so it surfaces
//!   as [`StoreError::Corrupt`], never as a silent skip.

use crate::error::StoreError;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: [u8; 4] = *b"DRSG";
/// Current segment format version.
pub const SEGMENT_VERSION: u32 = 1;
/// Size of the fixed segment header in bytes.
pub const HEADER_LEN: usize = 24;
/// Size of a record frame (length + checksum) in bytes.
pub const FRAME_LEN: usize = 8;

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// IEEE CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// The decoded fixed header of a segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Monotone segment index within the log.
    pub index: u64,
    /// Global sequence number of the segment's first record.
    pub first_seq: u64,
}

impl SegmentHeader {
    /// Encodes the header.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut out = [0u8; HEADER_LEN];
        out[..4].copy_from_slice(&SEGMENT_MAGIC);
        out[4..8].copy_from_slice(&SEGMENT_VERSION.to_be_bytes());
        out[8..16].copy_from_slice(&self.index.to_be_bytes());
        out[16..24].copy_from_slice(&self.first_seq.to_be_bytes());
        out
    }
}

/// Frames one record (length + checksum + payload) into `out`.
pub fn frame_record(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(payload).to_be_bytes());
    out.extend_from_slice(payload);
}

/// What a recovery scan found in one segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanOutcome {
    /// The decoded header.
    pub header: SegmentHeader,
    /// Record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Length in bytes of the valid prefix (header + intact records).
    pub valid_len: u64,
    /// True when bytes after `valid_len` were a torn tail that must be
    /// truncated away.
    pub torn_tail: bool,
}

/// Scans a segment file's bytes, separating torn tails (recoverable)
/// from mid-segment corruption (a typed error).
///
/// `file` is used only for error reporting.
///
/// # Errors
///
/// [`StoreError::Corrupt`] when the header is malformed on a non-empty,
/// non-torn file, or when a record fails its checksum with more bytes
/// following it.
pub fn scan(file: &str, bytes: &[u8]) -> Result<ScanOutcome, StoreError> {
    let corrupt = |offset: u64, reason: String| StoreError::Corrupt {
        file: file.to_string(),
        offset,
        reason,
    };
    if bytes.len() < HEADER_LEN {
        // An incomplete header can only be a torn creation; the caller
        // discards the file. Header fields are placeholders.
        return Ok(ScanOutcome {
            header: SegmentHeader {
                index: 0,
                first_seq: 0,
            },
            records: Vec::new(),
            valid_len: 0,
            torn_tail: !bytes.is_empty(),
        });
    }
    if bytes[..4] != SEGMENT_MAGIC {
        return Err(corrupt(0, "bad segment magic".into()));
    }
    let version = u32::from_be_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != SEGMENT_VERSION {
        return Err(corrupt(4, format!("unsupported segment version {version}")));
    }
    let header = SegmentHeader {
        index: u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes")),
        first_seq: u64::from_be_bytes(bytes[16..24].try_into().expect("8 bytes")),
    };

    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    let mut valid_len = HEADER_LEN as u64;
    let mut torn_tail = false;
    while offset < bytes.len() {
        // Incomplete frame or payload: can only be the torn tail.
        if bytes.len() - offset < FRAME_LEN {
            torn_tail = true;
            break;
        }
        let len =
            u32::from_be_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        let payload_at = offset + FRAME_LEN;
        if bytes.len() - payload_at < len {
            torn_tail = true;
            break;
        }
        let payload = &bytes[payload_at..payload_at + len];
        let end = payload_at + len;
        if crc32(payload) != crc {
            if end == bytes.len() {
                // Checksum failure on the final record: a torn write of
                // the payload after the frame reached the medium.
                torn_tail = true;
                break;
            }
            return Err(corrupt(
                offset as u64,
                format!(
                    "record {} fails its checksum with {} bytes following it",
                    records.len(),
                    bytes.len() - end
                ),
            ));
        }
        records.push(payload.to_vec());
        offset = end;
        valid_len = end as u64;
    }
    Ok(ScanOutcome {
        header,
        records,
        valid_len,
        torn_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segment_with(records: &[&[u8]]) -> Vec<u8> {
        let mut bytes = SegmentHeader {
            index: 3,
            first_seq: 12,
        }
        .to_bytes()
        .to_vec();
        for r in records {
            frame_record(r, &mut bytes);
        }
        bytes
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn clean_segment_scans_fully() {
        let bytes = segment_with(&[b"alpha", b"", b"gamma"]);
        let out = scan("seg", &bytes).unwrap();
        assert_eq!(out.header.index, 3);
        assert_eq!(out.header.first_seq, 12);
        assert_eq!(
            out.records,
            vec![b"alpha".to_vec(), Vec::new(), b"gamma".to_vec()]
        );
        assert_eq!(out.valid_len, bytes.len() as u64);
        assert!(!out.torn_tail);
    }

    #[test]
    fn empty_file_is_a_torn_creation() {
        let out = scan("seg", &[]).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.valid_len, 0);
        assert!(!out.torn_tail, "nothing to truncate in an empty file");
        // A partial header is torn.
        let out = scan("seg", &SEGMENT_MAGIC).unwrap();
        assert_eq!(out.valid_len, 0);
        assert!(out.torn_tail);
    }

    #[test]
    fn truncated_mid_record_tail_recovers_by_truncation() {
        let full = segment_with(&[b"alpha", b"beta"]);
        let intact = segment_with(&[b"alpha"]);
        // Cut anywhere inside the second record: frame, or payload.
        for cut in intact.len() + 1..full.len() {
            let out = scan("seg", &full[..cut]).unwrap();
            assert!(out.torn_tail, "cut at {cut}");
            assert_eq!(out.records, vec![b"alpha".to_vec()], "cut at {cut}");
            assert_eq!(out.valid_len, intact.len() as u64, "cut at {cut}");
        }
    }

    #[test]
    fn checksum_corruption_in_the_middle_is_a_typed_error() {
        let mut bytes = segment_with(&[b"alpha", b"beta"]);
        // Flip one payload byte of the *first* record.
        bytes[HEADER_LEN + FRAME_LEN] ^= 0x01;
        let err = scan("seg-x", &bytes).unwrap_err();
        match err {
            StoreError::Corrupt { file, offset, .. } => {
                assert_eq!(file, "seg-x");
                assert_eq!(offset, HEADER_LEN as u64);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn checksum_corruption_on_final_record_is_a_torn_tail() {
        let mut bytes = segment_with(&[b"alpha", b"beta"]);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        let out = scan("seg", &bytes).unwrap();
        assert!(out.torn_tail);
        assert_eq!(out.records, vec![b"alpha".to_vec()]);
    }

    #[test]
    fn bad_magic_and_version_are_corrupt() {
        let mut bytes = segment_with(&[b"alpha"]);
        bytes[0] = b'X';
        assert!(matches!(
            scan("seg", &bytes),
            Err(StoreError::Corrupt { offset: 0, .. })
        ));
        let mut bytes = segment_with(&[b"alpha"]);
        bytes[7] = 9; // version 9
        assert!(matches!(
            scan("seg", &bytes),
            Err(StoreError::Corrupt { offset: 4, .. })
        ));
    }
}
